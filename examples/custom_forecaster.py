#!/usr/bin/env python3
"""Plugging a custom forecasting algorithm into FoReCo.

The paper notes that "FoReCo is flexible to support other forecasting
algorithms, which can be integrated in a modular fashion".  This example
implements a small custom forecaster — per-joint linear extrapolation of the
last two commands — against the :class:`repro.forecasting.Forecaster`
interface, registers it under a name with
:func:`repro.forecasting.register_forecaster`, and compares it with the
built-in VAR, MA, exponential-smoothing and VARMA algorithms on the same
bursty-loss scenario by sweeping the ``foreco.algorithm`` axis of a
:class:`repro.ScenarioSpec` grid.

Run it with::

    python examples/custom_forecaster.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro import get_scenario
from repro.forecasting import Forecaster, register_forecaster
from repro.scenarios import scenario_grid


class LinearExtrapolationForecaster(Forecaster):
    """Predict the next command by continuing the last observed joint velocity."""

    name = "linear-extrapolation"

    def _fit(self, commands: np.ndarray) -> None:
        # Nothing to learn: the forecaster only uses the last two commands.
        return None

    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        if history.shape[0] < 2:
            return history[-1]
        return history[-1] + (history[-1] - history[-2])


LABELS = {
    "var": "VAR (paper prototype)",
    "ma": "Moving Average",
    "ses": "Exponential smoothing",
    "varma": "VARMA (future work)",
    "linear-extrapolation": "custom linear extrapolation",
}


def main() -> None:
    # Once registered, the custom algorithm is addressable by name from any
    # ScenarioSpec — exactly like the built-ins.
    register_forecaster("linear-extrapolation", LinearExtrapolationForecaster)

    base = get_scenario("bursty-loss", seed=9).with_channel(burst_length=15)
    specs = scenario_grid(base, {"foreco.algorithm": tuple(LABELS)})
    sweep = repro.sweep(specs, jobs=2)

    print(f"{'forecaster':<30s} {'FoReCo RMSE [mm]':>18s}")
    print("-" * 50)
    for row in sweep:
        label = LABELS[row.spec.foreco.algorithm]
        print(f"{label:<30s} {row.mean_rmse_foreco_mm:>18.2f}")


if __name__ == "__main__":
    main()
