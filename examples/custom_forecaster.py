#!/usr/bin/env python3
"""Plugging a custom forecasting algorithm into FoReCo.

The paper notes that "FoReCo is flexible to support other forecasting
algorithms, which can be integrated in a modular fashion".  This example
implements a small custom forecaster — per-joint linear extrapolation of the
last two commands — against the :class:`repro.forecasting.Forecaster`
interface, plugs it into the recovery engine, and compares it with the
built-in VAR, MA and exponential-smoothing algorithms on the same bursty-loss
scenario.

Run it with::

    python examples/custom_forecaster.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.forecasting import Forecaster, make_forecaster
from repro.teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from repro.wireless import ConsecutiveLossInjector


class LinearExtrapolationForecaster(Forecaster):
    """Predict the next command by continuing the last observed joint velocity."""

    name = "linear-extrapolation"

    def _fit(self, commands: np.ndarray) -> None:
        # Nothing to learn: the forecaster only uses the last two commands.
        return None

    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        if history.shape[0] < 2:
            return history[-1]
        return history[-1] + (history[-1] - history[-2])


def evaluate(forecaster: Forecaster, training, commands, delays) -> float:
    config = ForecoConfig(record=forecaster.record, max_step_rad=0.04)
    recovery = ForecoRecovery(config, forecaster=forecaster)
    recovery.train(training.commands)
    outcome = RemoteControlSimulation(recovery).run(commands, delays)
    return outcome.rmse_foreco_mm


def main() -> None:
    controller = RemoteController()
    training = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=1), n_repetitions=8
    )
    testing = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=2), n_repetitions=2
    )
    commands = testing.head_seconds(30.0).commands
    injector = ConsecutiveLossInjector(burst_length=15, n_bursts=5, min_gap=80, seed=9)
    delays = injector.to_trace(commands.shape[0]).delays()

    candidates: dict[str, Forecaster] = {
        "VAR (paper prototype)": make_forecaster("var", record=10),
        "Moving Average": make_forecaster("ma", record=10),
        "Exponential smoothing": make_forecaster("ses", record=10),
        "VARMA (future work)": make_forecaster("varma", record=10),
        "custom linear extrapolation": LinearExtrapolationForecaster(record=10),
    }
    print(f"{'forecaster':<30s} {'FoReCo RMSE [mm]':>18s}")
    print("-" * 50)
    for label, forecaster in candidates.items():
        rmse = evaluate(forecaster, training, commands, delays)
        print(f"{label:<30s} {rmse:>18.2f}")


if __name__ == "__main__":
    main()
