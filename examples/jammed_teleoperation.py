#!/usr/bin/env python3
"""Jammed teleoperation with the PID controller in the loop (paper Fig. 10).

Drives a 30-second pick-and-place run over a channel attacked by a bursty
2.4 GHz jammer (Gilbert–Elliott model), executes it through the per-joint PID
controller, and reports the RMSE of the stock stack vs FoReCo plus how long
the PID needs to settle after the longest jam burst ends — the "channel
recovery" transient highlighted in the paper.

Run it with::

    python examples/jammed_teleoperation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.robot import NiryoOneArm
from repro.teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from repro.wireless import GilbertElliottJammer, JammerConfig


def main() -> None:
    controller = RemoteController()
    training = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=1), n_repetitions=8
    )
    testing = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=2), n_repetitions=2
    )
    commands = testing.head_seconds(30.0).commands

    config = ForecoConfig()
    recovery = ForecoRecovery(config)
    recovery.train(training.commands)

    jammer = GilbertElliottJammer(JammerConfig(), seed=5)
    trace = jammer.sample_trace(commands.shape[0])
    delays = trace.delays()
    print(f"jammer: {trace.loss_rate():.1%} of commands lost, "
          f"longest outage {trace.longest_outage(config.deadline_ms)} commands")

    simulation = RemoteControlSimulation(recovery, use_pid=True)
    outcome = simulation.run(commands, delays)
    print(f"no-forecast RMSE : {outcome.rmse_no_forecast_mm:.2f} mm")
    print(f"FoReCo RMSE      : {outcome.rmse_foreco_mm:.2f} mm")
    print(f"improvement      : x{outcome.improvement_factor:.2f}")

    # Report the worst transient of the stock stack after an outage ends.
    arm = NiryoOneArm()
    baseline = arm.kinematics.positions(outcome.baseline.joints) * 1000.0
    defined = arm.kinematics.positions(outcome.defined.joints) * 1000.0
    errors = np.linalg.norm(baseline - defined, axis=1)
    late = ~np.isfinite(delays) | (delays > config.deadline_ms)
    worst_slot = int(np.argmax(errors))
    print(f"worst baseline error {errors.max():.1f} mm at t = {worst_slot * 0.02:.2f} s "
          f"(command late there: {bool(late[worst_slot])})")


if __name__ == "__main__":
    main()
