#!/usr/bin/env python3
"""Jammed teleoperation with the PID controller in the loop (paper Fig. 10).

Runs the ``jammer`` scenario preset — a 30-second pick-and-place run over a
channel attacked by a bursty 2.4 GHz jammer (Gilbert–Elliott model),
executed through the per-joint PID controller — and reports the RMSE of the
stock stack vs FoReCo plus the worst baseline transient after the channel
recovers, the effect highlighted in the paper.

Run it with::

    python examples/jammed_teleoperation.py
"""

from __future__ import annotations

import numpy as np

from repro import get_scenario, run_scenario
from repro.robot import NiryoOneArm


def main() -> None:
    spec = get_scenario("jammer", seed=5)
    print(f"scenario         : {spec.describe()}")

    result = run_scenario(spec)
    outcome = result.outcome
    delays = result.delays_ms
    deadline_ms = spec.foreco.to_config().deadline_ms
    late = ~np.isfinite(delays) | (delays > deadline_ms)

    lost_share = float(np.mean(~np.isfinite(delays)))
    print(f"jammer           : {lost_share:.1%} of commands lost, "
          f"late/lost share {result.mean_late_fraction:.1%}")
    print(f"no-forecast RMSE : {result.mean_rmse_no_forecast_mm:.2f} mm")
    print(f"FoReCo RMSE      : {result.mean_rmse_foreco_mm:.2f} mm")
    print(f"improvement      : x{result.improvement_factor:.2f}")

    # Report the worst transient of the stock stack after an outage ends.
    arm = NiryoOneArm()
    baseline = arm.kinematics.positions(outcome.baseline.joints) * 1000.0
    defined = arm.kinematics.positions(outcome.defined.joints) * 1000.0
    errors = np.linalg.norm(baseline - defined, axis=1)
    worst_slot = int(np.argmax(errors))
    print(f"worst baseline error {errors.max():.1f} mm at t = {worst_slot * 0.02:.2f} s "
          f"(command late there: {bool(late[worst_slot])})")


if __name__ == "__main__":
    main()
