#!/usr/bin/env python3
"""Controlled consecutive-loss recovery: a miniature of the paper's Fig. 9.

Deliberately drops bursts of 5, 10 and 25 consecutive commands from a
pick-and-place run — each burst length is one variation of the
``bursty-loss`` scenario preset — and shows, around one burst, how the
end-effector distance-from-origin evolves for:

* the defined trajectory (what the operator commanded),
* the stock stack (repeats the last command during the burst),
* FoReCo (injects VAR forecasts).

Run it with::

    python examples/controlled_loss_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro import get_scenario, sweep
from repro.robot import NiryoOneArm


def text_plot(times_s: np.ndarray, series: dict[str, np.ndarray], width: int = 60) -> str:
    """Tiny ASCII rendering of a few distance-from-origin curves."""
    lines = []
    all_values = np.concatenate(list(series.values()))
    low, high = float(all_values.min()), float(all_values.max())
    span = max(high - low, 1e-9)
    for label, values in series.items():
        marks = [" "] * width
        for value in values:
            index = int((value - low) / span * (width - 1))
            marks[index] = "#"
        lines.append(f"{label:<12s} [{low:6.1f} mm] {''.join(marks)} [{high:6.1f} mm]")
    lines.append(f"(window {times_s[0]:.2f}s .. {times_s[-1]:.2f}s)")
    return "\n".join(lines)


def main() -> None:
    arm = NiryoOneArm()
    base = get_scenario("bursty-loss", seed=1).with_channel(n_bursts=4, min_gap=80)

    # One facade call resolves all three burst lengths (sharing datasets and
    # the trained forecaster across them).
    bursts = (5, 10, 25)
    results = sweep([base.with_channel(burst_length=burst) for burst in bursts])

    for burst, result in zip(bursts, results):
        outcome = result.outcome
        print(f"== {burst} consecutive losses ==")
        print(f"   no-forecast RMSE {result.mean_rmse_no_forecast_mm:6.2f} mm")
        print(f"   FoReCo RMSE      {result.mean_rmse_foreco_mm:6.2f} mm "
              f"(x{result.improvement_factor:.1f} better)")

        # Zoom on the first burst, plus a little context either side.
        mask = ~np.isfinite(result.delays_ms)
        commands = outcome.defined.joints
        start = int(np.argmax(mask))
        window = slice(max(0, start - 10), min(commands.shape[0], start + burst + 15))
        times = np.arange(commands.shape[0])[window] * 0.02
        series = {
            "defined": arm.trajectory_distance_mm(commands[window]),
            "no forecast": arm.trajectory_distance_mm(outcome.baseline.joints[window]),
            "FoReCo": arm.trajectory_distance_mm(outcome.foreco.joints[window]),
        }
        print(text_plot(times, series))
        print()


if __name__ == "__main__":
    main()
