#!/usr/bin/env python3
"""Controlled consecutive-loss recovery: a miniature of the paper's Fig. 9.

Deliberately drops bursts of 5, 10 and 25 consecutive commands from a
pick-and-place run and shows, around one burst, how the end-effector
distance-from-origin evolves for:

* the defined trajectory (what the operator commanded),
* the stock stack (repeats the last command during the burst),
* FoReCo (injects VAR forecasts).

Run it with::

    python examples/controlled_loss_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.robot import NiryoOneArm
from repro.teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from repro.wireless import ConsecutiveLossInjector


def text_plot(times_s: np.ndarray, series: dict[str, np.ndarray], width: int = 60) -> str:
    """Tiny ASCII rendering of a few distance-from-origin curves."""
    lines = []
    all_values = np.concatenate(list(series.values()))
    low, high = float(all_values.min()), float(all_values.max())
    span = max(high - low, 1e-9)
    for label, values in series.items():
        marks = [" "] * width
        for value in values:
            index = int((value - low) / span * (width - 1))
            marks[index] = "#"
        lines.append(f"{label:<12s} [{low:6.1f} mm] {''.join(marks)} [{high:6.1f} mm]")
    lines.append(f"(window {times_s[0]:.2f}s .. {times_s[-1]:.2f}s)")
    return "\n".join(lines)


def main() -> None:
    controller = RemoteController()
    training = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=1), n_repetitions=8
    )
    testing = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=2), n_repetitions=2
    )
    commands = testing.head_seconds(30.0).commands

    recovery = ForecoRecovery(ForecoConfig())
    recovery.train(training.commands)
    simulation = RemoteControlSimulation(recovery)
    arm = NiryoOneArm()

    for burst in (5, 10, 25):
        injector = ConsecutiveLossInjector(burst_length=burst, n_bursts=4, min_gap=80, seed=burst)
        mask = injector.lost_mask(commands.shape[0])
        delays = np.where(mask, np.inf, 1.0)
        outcome = simulation.run(commands, delays)
        print(f"== {burst} consecutive losses ==")
        print(f"   no-forecast RMSE {outcome.rmse_no_forecast_mm:6.2f} mm")
        print(f"   FoReCo RMSE      {outcome.rmse_foreco_mm:6.2f} mm "
              f"(x{outcome.improvement_factor:.1f} better)")

        # Zoom on the first burst, plus a little context either side.
        start = int(np.argmax(mask))
        window = slice(max(0, start - 10), min(commands.shape[0], start + burst + 15))
        times = np.arange(commands.shape[0])[window] * 0.02
        series = {
            "defined": arm.trajectory_distance_mm(commands[window]),
            "no forecast": arm.trajectory_distance_mm(outcome.baseline.joints[window]),
            "FoReCo": arm.trajectory_distance_mm(outcome.foreco.joints[window]),
        }
        print(text_plot(times, series))
        print()


if __name__ == "__main__":
    main()
