#!/usr/bin/env python3
"""Live service mode: online admission control over a fleet workload.

Runs the ``service-shared-ap`` preset through the :func:`repro.serve`
facade: operators arrive on the virtual clock, an admission policy places
(or rejects) each session, and the engine streams incremental
:class:`repro.service.ServiceSnapshot` metrics.  The script then re-serves
the identical spec to show live replay determinism, and ranks all three
admission policies on the same workload with
:func:`repro.service.compare_policies`.

Run it with::

    python examples/live_service.py
"""

from __future__ import annotations

from repro import get_service, serve
from repro.service import compare_policies, pace_snapshots


def main() -> None:
    # A small instance of the preset (the registry default is larger).
    spec = get_service("service-shared-ap").with_template(scale="ci")
    print(f"service    : {spec.describe()}")
    print(f"spec hash  : {spec.spec_hash()}  (the store address)\n")

    result = serve(spec)
    print(result.to_text(), "\n")

    # Watch the stream "live": 60 virtual seconds per wall second.  Pacing
    # is a display shim only — the result is identical either way.
    print("snapshot stream (x60 speedup):")
    for snapshot in pace_snapshots(result.snapshots[:6], speedup=60.0):
        p99 = snapshot.rolling_p99_recovery
        print(
            f"  t={snapshot.time_s:6.1f}s active={snapshot.active_sessions:2d} "
            f"admitted={snapshot.admitted:2d} dropped={snapshot.dropped} "
            f"p99-recovery={'--' if p99 is None else f'{p99:.2f}'}"
        )

    # Virtual time means perfect replay: serving the same spec twice is
    # bit-identical, snapshot stream included.
    again = serve(spec)
    print(f"\nreplay identical : {again.to_dict() == result.to_dict()}")

    # Rank the three admission policies on this exact workload (identical
    # arrivals and channel draws — only the admission decisions differ).
    comparison = compare_policies(spec)
    print("\n" + comparison.to_text())


if __name__ == "__main__":
    main()
