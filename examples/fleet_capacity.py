#!/usr/bin/env python3
"""Capacity planning with the fleet simulator: find the AP's operator knee.

How many operators can one access point serve before the service degrades?
This walkthrough sweeps the operator population of the ``shared-ap`` fleet
preset (everyone keys up at once — the worst case) and reads the knee off
the service-level metrics:

* **AP utilisation** climbs with N until the air-time budget saturates;
* past the knee the shared backlog grows without bound, the **late
  fraction** goes to 1 and **p99 completion** takes off;
* the capacity verdict is the largest N that stays inside the SLO.

Because fleet specs are hashable values, the sweep runs through the
ordinary :func:`repro.sweep` facade — add ``store="path/"`` and re-runs
(or grown sweeps) compute only what is new, exactly like scenario sweeps.

Run it with::

    PYTHONPATH=src python examples/fleet_capacity.py

See ``docs/fleet.md`` for the fleet model and the metric definitions.
"""

from __future__ import annotations

import repro
from repro.fleet import get_fleet

#: Operator populations to probe (the preset AP saturates inside this range).
POPULATIONS = (1, 2, 3, 4, 5, 6)

#: Service-level objectives for the capacity verdict.
SLO_LATE_FRACTION = 0.20  # at most 20% of commands late/lost on average
SLO_P99_RECOVERY = 0.80  # 99% of sessions recover >= 80% of missing slots


def main() -> None:
    """Sweep the population, print the table, state the capacity verdict."""
    fleets = [
        get_fleet("shared-ap", operators=n).with_(name=f"shared-ap-{n}", ap_capacity=max(POPULATIONS))
        for n in POPULATIONS
    ]
    sweep = repro.sweep(fleets, jobs=4)

    header = (
        f"{'ops':>4s} {'util':>6s} {'late':>6s} {'p99 rec':>8s} "
        f"{'p50 compl':>10s} {'p99 compl':>10s} {'FoReCo RMSE':>12s}"
    )
    print("shared-ap capacity sweep (one AP, simultaneous arrivals)")
    print(header)
    print("-" * len(header))
    capacity = 0
    for n, row in zip(POPULATIONS, sweep):
        within_slo = (
            row.mean_late_fraction <= SLO_LATE_FRACTION
            and row.p99_recovery >= SLO_P99_RECOVERY
            and row.dropped_sessions == 0
        )
        if within_slo and n == capacity + 1:
            capacity = n
        marker = "" if within_slo else "  <- SLO violated"
        print(
            f"{n:>4d} {row.mean_ap_utilization:>6.2f} {row.mean_late_fraction:>6.2f} "
            f"{row.p99_recovery:>8.2f} {row.p50_completion_s:>9.1f}s {row.p99_completion_s:>9.1f}s "
            f"{row.mean_rmse_foreco_mm:>10.2f}mm{marker}"
        )

    print()
    budget = fleets[0].template.foreco.command_period_ms / fleets[0].ap_service_ms
    print(
        f"air-time budget: one {fleets[0].template.foreco.command_period_ms:g} ms period / "
        f"{fleets[0].ap_service_ms:g} ms per command = {budget:.1f} commands/slot"
    )
    print(f"capacity verdict: {capacity} operators per AP meet the SLO "
          f"(late <= {SLO_LATE_FRACTION:.0%}, p99 recovery >= {SLO_P99_RECOVERY:.0%})")
    print("the next operator tips the shared backlog into unbounded growth.")


if __name__ == "__main__":
    main()
