#!/usr/bin/env python3
"""Capacity planning with the fleet simulator: find the AP's operator knee.

How many operators can one access point serve before the service degrades?
This used to be a manual grid sweep; it is now one call into the SLO-driven
capacity planner::

    plan = repro.plan("plan-shared-ap")

The planner (:mod:`repro.fleet.plan`) warm-starts from the analytic
air-time bracket, probes real fleet evaluations around it by dual-gradient
ascent on the Lagrangian of (minimize capacity s.t. SLO), and reports the
chosen capacity, the predicted metrics at the knee, the probe ledger and a
convergence trace.  Because every probe memoizes through the result store,
add ``store="path/"`` and re-planning (or replanning with tighter gates
over the same fleet) computes only what is new.

The old population sweep is kept below as an independent **cross-check**:
the largest population inside the SLO must agree with the planner's knee —
the admission arithmetic makes ``N`` operators at capacity ``N`` the same
contention problem as the planner's capacity-``N`` probe.

Run it with::

    PYTHONPATH=src python examples/fleet_capacity.py

See ``docs/fleet.md`` ("Capacity planning") for the method and the SLO
semantics.
"""

from __future__ import annotations

import repro
from repro.fleet import get_fleet

#: Operator populations the cross-check sweeps (covers the knee region).
POPULATIONS = (1, 2, 3, 4, 5, 6)

#: Service-level objectives (the ``plan-shared-ap`` preset uses the same).
SLO_LATE_FRACTION = 0.20  # at most 20% of commands late/lost on average
SLO_P99_RECOVERY = 0.80  # 99% of sessions recover >= 80% of missing slots


def sweep_knee() -> int:
    """The legacy grid sweep: largest population that stays inside the SLO."""
    fleets = [
        get_fleet("shared-ap", operators=n).with_(name=f"shared-ap-{n}", ap_capacity=max(POPULATIONS))
        for n in POPULATIONS
    ]
    sweep = repro.sweep(fleets, jobs=4)

    header = (
        f"{'ops':>4s} {'util':>6s} {'late':>6s} {'p99 rec':>8s} "
        f"{'p50 compl':>10s} {'p99 compl':>10s} {'FoReCo RMSE':>12s}"
    )
    print("cross-check: shared-ap population sweep (one AP, simultaneous arrivals)")
    print(header)
    print("-" * len(header))
    capacity = 0
    for n, row in zip(POPULATIONS, sweep):
        within_slo = (
            row.mean_late_fraction <= SLO_LATE_FRACTION
            and row.p99_recovery >= SLO_P99_RECOVERY
            and row.dropped_sessions == 0
        )
        if within_slo and n == capacity + 1:
            capacity = n
        marker = "" if within_slo else "  <- SLO violated"
        print(
            f"{n:>4d} {row.mean_ap_utilization:>6.2f} {row.mean_late_fraction:>6.2f} "
            f"{row.p99_recovery:>8.2f} {row.p50_completion_s:>9.1f}s {row.p99_completion_s:>9.1f}s "
            f"{row.mean_rmse_foreco_mm:>10.2f}mm{marker}"
        )
    return capacity


def main() -> None:
    """Plan the capacity, print the report, cross-check against the sweep."""
    plan = repro.plan("plan-shared-ap")
    print(plan.to_text())
    print()

    spec = plan.spec
    budget = spec.fleet.template.foreco.command_period_ms / spec.fleet.ap_service_ms
    print(
        f"air-time budget: one {spec.fleet.template.foreco.command_period_ms:g} ms period / "
        f"{spec.fleet.ap_service_ms:g} ms per command = {budget:.1f} commands/slot "
        f"(the analytic bracket the search starts from)"
    )
    print()

    swept = sweep_knee()
    print()
    agree = "agrees with" if swept == plan.capacity else "DISAGREES with"
    print(
        f"capacity verdict: {plan.capacity} operators per AP meet the SLO "
        f"(late <= {SLO_LATE_FRACTION:.0%}, p99 recovery >= {SLO_P99_RECOVERY:.0%}); "
        f"the population sweep's knee at {swept} {agree} the planner."
    )
    print("the next operator tips the shared backlog into unbounded growth.")
    if swept != plan.capacity:
        raise SystemExit("cross-check failed: sweep knee != planned capacity")


if __name__ == "__main__":
    main()
