#!/usr/bin/env python3
"""Interference sweep: a miniature version of the paper's Fig. 8 heatmaps.

Declares the sweep as a grid of :class:`repro.ScenarioSpec` values — robots
sharing the 802.11 medium x interference probability x burst duration — and
fans it out over worker threads with the :func:`repro.sweep` facade.  The
result is a uniform table with the trajectory RMSE of the stock stack and of
FoReCo for every cell; thanks to spec-derived seeding it is identical no
matter how many workers run it.  The full-size sweep lives in
``repro.experiments.fig8_simulation_heatmap`` (run it via
``foreco-experiments fig8 --jobs 4``).

Run it with::

    python examples/interference_sweep.py
"""

from __future__ import annotations

import repro
from repro.scenarios import ScenarioSpec, scenario_grid, wireless_channel

ROBOT_COUNTS = (5, 15, 25)
PROBABILITIES = (0.01, 0.05)
DURATIONS = (10, 100)
REPETITIONS = 2
JOBS = 4


def main() -> None:
    base = ScenarioSpec(
        name="interference-sweep",
        channel=wireless_channel(),
        seed=1,
        repetitions=REPETITIONS,
    )
    specs = scenario_grid(
        base,
        {
            "channel.n_robots": ROBOT_COUNTS,
            "channel.probability": PROBABILITIES,
            "channel.duration_slots": DURATIONS,
        },
    )
    print(f"{len(specs)} scenarios x {REPETITIONS} repetitions on {JOBS} workers\n")

    sweep = repro.sweep(specs, jobs=JOBS)

    header = (
        f"{'robots':>6s} {'p_if':>6s} {'T_if':>6s} {'late':>6s} "
        f"{'no-forecast':>12s} {'FoReCo':>8s} {'gain':>6s}"
    )
    print(header)
    print("-" * len(header))
    for row in sweep:
        options = row.spec.channel.options()
        print(
            f"{options['n_robots']:>6d} {options['probability']:>6.3f} "
            f"{options['duration_slots']:>6d} {row.mean_late_fraction:>6.2f} "
            f"{row.mean_rmse_no_forecast_mm:>10.2f}mm {row.mean_rmse_foreco_mm:>6.2f}mm "
            f"{row.improvement_factor:>5.1f}x"
        )

    worst = sweep.worst(metric="mean_rmse_no_forecast_mm")
    print(f"\nworst cell without forecasting: {worst.spec.channel.describe()}")
    print(f"  -> {worst.mean_rmse_no_forecast_mm:.2f} mm baseline, "
          f"{worst.mean_rmse_foreco_mm:.2f} mm with FoReCo")


if __name__ == "__main__":
    main()
