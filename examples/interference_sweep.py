#!/usr/bin/env python3
"""Interference sweep: a miniature version of the paper's Fig. 8 heatmaps.

Sweeps the interference probability and duration for several factory-floor
sizes (number of robots sharing the 802.11 medium) and prints the trajectory
RMSE of the stock stack and of FoReCo for every cell, plus the improvement
factor.  The full-size sweep lives in ``repro.experiments.fig8_simulation_heatmap``
(run it via ``foreco-experiments fig8``).

Run it with::

    python examples/interference_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.core import ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from repro.wireless import InterferenceSource, WirelessChannel

ROBOT_COUNTS = (5, 15, 25)
PROBABILITIES = (0.01, 0.05)
DURATIONS = (10, 100)
REPETITIONS = 2


def main() -> None:
    controller = RemoteController()
    training = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=1), n_repetitions=8
    )
    testing = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=2), n_repetitions=2
    )

    recovery = ForecoRecovery(ForecoConfig())
    recovery.train(training.commands)
    simulation = RemoteControlSimulation(recovery)

    header = f"{'robots':>6s} {'p_if':>6s} {'T_if':>6s} {'late':>6s} {'no-forecast':>12s} {'FoReCo':>8s} {'gain':>6s}"
    print(header)
    print("-" * len(header))
    for robots in ROBOT_COUNTS:
        for probability in PROBABILITIES:
            for duration in DURATIONS:
                baseline, foreco, late = [], [], []
                for repetition in range(REPETITIONS):
                    channel = WirelessChannel(
                        n_robots=robots,
                        interference=InterferenceSource(probability, duration),
                        seed=100 * robots + repetition,
                    )
                    delays = channel.sample_trace(len(testing)).delays()
                    outcome = simulation.run(testing.commands, delays)
                    baseline.append(outcome.rmse_no_forecast_mm)
                    foreco.append(outcome.rmse_foreco_mm)
                    late.append(outcome.late_fraction)
                gain = np.mean(baseline) / max(np.mean(foreco), 1e-9)
                print(
                    f"{robots:>6d} {probability:>6.3f} {duration:>6d} {np.mean(late):>6.2f} "
                    f"{np.mean(baseline):>10.2f}mm {np.mean(foreco):>6.2f}mm {gain:>5.1f}x"
                )


if __name__ == "__main__":
    main()
