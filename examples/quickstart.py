#!/usr/bin/env python3
"""Quickstart: describe a teleoperation scenario declaratively and run it.

Every workload in this package — the paper experiments, the sweeps, the
benchmarks — is described by a :class:`repro.ScenarioSpec`: a frozen value
object naming the operator, the channel model and its parameters, the FoReCo
configuration, the sizing scale, the seed and the repetition count.  This
script walks through the essentials:

1. fetch a named preset from the scenario registry (a congested access
   point) and customise it;
2. run it through the :func:`repro.run_scenario` facade — dataset
   generation, forecaster training and the baseline-vs-FoReCo simulation
   all happen behind one call, addressed by the spec's hash;
3. read the uniform result row (RMSE pair, improvement, late share).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import get_scenario, run_scenario, scenario_names


def main() -> None:
    # 1. A declarative scenario: start from a registry preset and customise.
    spec = get_scenario("congested-ap", seed=3).with_channel(n_robots=15)
    print(f"available presets : {', '.join(scenario_names())}")
    print(f"scenario          : {spec.describe()}")
    print(f"spec hash         : {spec.spec_hash()}  (the result-cache key)")

    # 2. Resolve the spec: datasets, training and simulation in one call.
    # (Pass store="path/" to persist the result and make reruns free, or
    # seed=N to override the spec's seed without rebuilding it.)
    result = run_scenario(spec)

    # 3. The uniform result row every scenario produces.
    print(f"repetitions       : {result.repetitions}")
    print(f"late/lost share   : {result.mean_late_fraction:.1%}")
    print(f"recovered slots   : {result.mean_recovery_fraction:.1%}")
    print(f"no-forecast RMSE  : {result.mean_rmse_no_forecast_mm:.2f} mm")
    print(f"FoReCo RMSE       : {result.mean_rmse_foreco_mm:.2f} mm")
    print(f"improvement       : x{result.improvement_factor:.1f}")

    # Every random draw is seeded from the spec, so re-running the same
    # spec reproduces the result bit for bit.
    again = run_scenario(spec)
    print(f"replayed re-run   : {again.to_dict() == result.to_dict()}")


if __name__ == "__main__":
    main()
