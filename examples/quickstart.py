#!/usr/bin/env python3
"""Quickstart: train FoReCo and recover a teleoperation session end to end.

This script walks through the whole FoReCo pipeline on a small synthetic
workload:

1. generate the experienced-operator (training) and inexperienced-operator
   (test) pick-and-place command streams at 50 Hz;
2. train the VAR forecaster through the FoReCo training pipeline (the same
   stages the paper profiles in Table I);
3. replay the test stream through an interference-prone IEEE 802.11 channel;
4. compare the stock robot stack ("no forecasting") with FoReCo.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import CommandDataset, ForecoConfig, ForecoRecovery, RemoteControlSimulation, TrainingPipeline
from repro.teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from repro.wireless import InterferenceSource, WirelessChannel


def main() -> None:
    # 1. Operator datasets (the paper uses 100 task repetitions; we use a few).
    controller = RemoteController()
    training_stream = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=1), n_repetitions=8
    )
    test_stream = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=2), n_repetitions=2
    )
    print(f"training commands : {len(training_stream)}")
    print(f"test commands     : {len(test_stream)}")

    # 2. Train FoReCo through the staged pipeline (Table I stages).
    config = ForecoConfig()  # Ω = 20 ms, τ = 0, VAR with R = 10
    dataset = CommandDataset(training_stream.n_joints, period_ms=config.command_period_ms)
    dataset.extend(training_stream.commands)
    forecaster, report = TrainingPipeline(config).run(dataset)
    print(
        "training pipeline : "
        f"load {report.timings.load_data_s * 1000:.1f} ms, "
        f"quality {report.timings.quality_check_s * 1000:.1f} ms, "
        f"fit {report.timings.training_s * 1000:.1f} ms, "
        f"test RMSE {report.test_rmse:.4f} rad, "
        f"inference {report.inference_time_ms:.3f} ms/forecast"
    )

    recovery = ForecoRecovery(config, forecaster=forecaster)

    # 3. An interference-prone 802.11 channel shared by 15 robots.
    channel = WirelessChannel(
        n_robots=15,
        interference=InterferenceSource(probability=0.05, duration_slots=100),
        seed=3,
    )
    trace = channel.sample_trace(len(test_stream))
    print(
        "channel           : "
        f"{trace.late_rate(config.deadline_ms):.1%} of commands late/lost, "
        f"longest outage {trace.longest_outage(config.deadline_ms)} commands"
    )

    # 4. Stock stack vs FoReCo.
    outcome = RemoteControlSimulation(recovery).run(test_stream.commands, trace.delays())
    print(f"no-forecast RMSE  : {outcome.rmse_no_forecast_mm:.2f} mm")
    print(f"FoReCo RMSE       : {outcome.rmse_foreco_mm:.2f} mm")
    print(f"improvement       : x{outcome.improvement_factor:.1f}")


if __name__ == "__main__":
    main()
