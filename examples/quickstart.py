#!/usr/bin/env python3
"""Quickstart: describe a teleoperation scenario declaratively and run it.

Every workload in this package — the paper experiments, the sweeps, the
benchmarks — is described by a :class:`repro.ScenarioSpec`: a frozen value
object naming the operator, the channel model and its parameters, the FoReCo
configuration, the sizing scale, the seed and the repetition count.  This
script walks through the essentials:

1. fetch a named preset from the scenario registry (a congested access
   point) and customise it;
2. run it through the :class:`repro.SessionEngine` — dataset generation,
   forecaster training and the baseline-vs-FoReCo simulation all happen
   behind one call, cached by the spec's hash;
3. read the uniform result row (RMSE pair, improvement, late share).

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SessionEngine, get_scenario, scenario_names


def main() -> None:
    # 1. A declarative scenario: start from a registry preset and customise.
    spec = get_scenario("congested-ap", seed=3).with_channel(n_robots=15)
    print(f"available presets : {', '.join(scenario_names())}")
    print(f"scenario          : {spec.describe()}")
    print(f"spec hash         : {spec.spec_hash()}  (the result-cache key)")

    # 2. Resolve the spec: datasets, training and simulation in one call.
    engine = SessionEngine()
    datasets = engine.datasets(spec)
    print(f"training commands : {len(datasets.experienced)}")
    print(f"test commands     : {len(datasets.inexperienced)}")

    result = engine.run(spec)

    # 3. The uniform result row every scenario produces.
    print(f"late/lost share   : {result.mean_late_fraction:.1%}")
    print(f"recovered slots   : {result.mean_recovery_fraction:.1%}")
    print(f"no-forecast RMSE  : {result.mean_rmse_no_forecast_mm:.2f} mm")
    print(f"FoReCo RMSE       : {result.mean_rmse_foreco_mm:.2f} mm")
    print(f"improvement       : x{result.improvement_factor:.1f}")

    # Re-running the same spec is free: the engine caches by spec hash.
    again = engine.run(spec)
    print(f"cached re-run     : {again is result}")


if __name__ == "__main__":
    main()
