#!/usr/bin/env python3
"""Resumable sweep: a persistent store makes reruns compute only what's new.

The first invocation computes a small controlled-loss grid and persists
every finished session in a :class:`repro.scenarios.ResultStore` (one JSON
shard per spec, content-addressed by the spec hash plus the engine epoch).
Run it again and everything is a store hit — nothing is recomputed; then
the script *grows* the grid and shows that only the new cells run.  Kill it
halfway through the first run and it resumes from what it finished.

Finally, :func:`repro.analysis.load_sweep` re-renders the sweep table purely
from the store — the path figures take to refresh without recomputation.

Run it (twice!) with::

    python examples/resumable_sweep.py

The store lives in ``.foreco-store/`` next to the repository; delete the
directory to start cold.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis import load_sweep
from repro.scenarios import ResultStore, ScenarioSpec, loss_burst_channel, scenario_grid

STORE_DIR = Path(__file__).resolve().parent.parent / ".foreco-store"

BURST_LENGTHS = (5, 10, 15)
SEEDS = (1, 2)
GROWN_SEEDS = (1, 2, 3)  # the second phase extends the seed axis
REPETITIONS = 2


def run_grid(store: ResultStore, seeds, label: str):
    base = ScenarioSpec(
        name="resumable-sweep",
        channel=loss_burst_channel(burst_length=10),
        repetitions=REPETITIONS,
        seed=1,
    )
    specs = scenario_grid(base, {"channel.burst_length": BURST_LENGTHS, "seed": seeds})
    sweep = repro.sweep(specs, jobs=4, store=store)
    print(
        f"{label}: {sweep.store_hits} hits / {sweep.store_misses} misses "
        f"({100 * sweep.hit_fraction:.0f}% reused)"
    )
    return specs, sweep


def main() -> None:
    store = ResultStore(STORE_DIR)
    print(f"store: {STORE_DIR} ({len(store)} entries, epoch {store.epoch})\n")

    specs, sweep = run_grid(store, SEEDS, "base grid   ")
    # Rerunning the same grid is pure replay — zero computation.
    run_grid(store, SEEDS, "rerun       ")
    # Growing the grid reuses the overlap; only the new seed column runs.
    grown_specs, _ = run_grid(store, GROWN_SEEDS, "grown grid  ")

    # Re-render the table straight from disk (what figure scripts do).
    loaded = load_sweep(ResultStore(STORE_DIR), grown_specs)
    print(f"\nre-rendered from the store ({loaded.store_hits} rows, 0 computed):\n")
    print(loaded.to_table())

    stats = store.stats()
    print(
        f"\nstore now holds {stats.entries} results "
        f"({stats.total_bytes / 1024:.0f} KiB); delete {STORE_DIR.name}/ to start cold"
    )


if __name__ == "__main__":
    main()
