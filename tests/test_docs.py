"""Docs-site consistency checks.

The mkdocs build itself runs in CI; these tests catch the failure modes that
do not need mkdocs installed: the generated preset reference drifting from
the registries, broken relative links between docs pages, and nav entries
pointing at missing files."""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"

#: Markdown inline links: [text](target), excluding images handled the same.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def test_generated_presets_page_in_sync():
    """docs/presets.md must match what scripts/generate_docs.py renders.

    Runs the generator's ``--check`` in a fresh interpreter (as CI does):
    other tests register temporary presets/forecasters in this process,
    which must not leak into the reference page.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "generate_docs.py"), "--check"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        "docs/presets.md is stale - run 'PYTHONPATH=src python scripts/generate_docs.py'\n"
        + result.stdout
        + result.stderr
    )


def test_docs_internal_links_resolve():
    for page in sorted(DOCS.glob("*.md")):
        for target in _LINK.findall(page.read_text(encoding="utf-8")):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            assert (page.parent / relative).exists(), (
                f"{page.name}: broken internal link to {target!r}"
            )


def test_architecture_mentions_every_subpackage():
    """docs/architecture.md must cover the whole src/repro tree.

    The module map drifted silently when wireless/markov.py and
    scenarios/store.py landed; this pins the invariant that every
    ``src/repro/*`` subpackage is at least mentioned by name.
    """
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    packages = sorted(
        path.name
        for path in (REPO_ROOT / "src" / "repro").iterdir()
        if path.is_dir() and (path / "__init__.py").exists()
    )
    assert packages, "expected src/repro to contain subpackages"
    missing = [name for name in packages if f"repro.{name}" not in text]
    assert not missing, f"docs/architecture.md does not mention: {missing}"


def test_mkdocs_nav_files_exist():
    config = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
    pages = re.findall(r":\s*([\w\-]+\.md)\s*$", config, flags=re.MULTILINE)
    assert pages, "mkdocs.yml nav should list at least one page"
    for page in pages:
        assert (DOCS / page).exists(), f"mkdocs.yml nav references missing docs/{page}"
    # Every docs page should be reachable from the nav.
    for page in DOCS.glob("*.md"):
        assert page.name in pages, f"docs/{page.name} is not listed in mkdocs.yml nav"
