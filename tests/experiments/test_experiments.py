"""Integration tests: every paper figure/table experiment runs at CI scale and
reproduces the qualitative result reported by the paper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    build_datasets,
    fig6_dataset,
    fig7_forecast_accuracy,
    fig8_simulation_heatmap,
    fig9_controlled_losses,
    fig10_jammer,
    get_scale,
    table1_training_profile,
    table2_hardware_timing,
)
from repro.experiments.runner import EXPERIMENTS, run_experiments
from repro.errors import ConfigurationError


def test_scales_registry():
    assert get_scale("ci").name == "ci"
    assert get_scale(get_scale("standard")).name == "standard"
    with pytest.raises(ConfigurationError):
        get_scale("galactic")
    assert get_scale("full").train_repetitions == 100  # the paper's dataset size


def test_build_datasets_cached_and_sized():
    first = build_datasets("ci", seed=123)
    second = build_datasets("ci", seed=123)
    assert first is second  # cached
    assert first.n_joints == 6
    assert len(first.experienced) > len(first.inexperienced)


def test_fig6_dataset_trace_matches_paper_envelope():
    result = fig6_dataset.run("ci")
    assert result.n_commands > 1000
    assert 150.0 < result.min_distance_mm < 450.0
    assert 400.0 < result.max_distance_mm < 700.0
    assert result.max_distance_mm - result.min_distance_mm > 100.0
    assert "Fig. 6" in result.to_text()
    assert len(result.series(20)) <= 21


def test_fig7_var_beats_ma_and_error_grows():
    result = fig7_forecast_accuracy.run("ci", algorithms=("var", "ma"))
    assert set(result.rmse_mm) == {"var", "ma"}
    # Ordering: VAR at least as accurate as MA at every window (paper Fig. 7).
    var_curve = np.array(result.rmse_mm["var"])
    ma_curve = np.array(result.rmse_mm["ma"])
    assert np.all(var_curve <= ma_curve + 1e-9)
    # Error grows with the forecasting window for both algorithms.
    assert var_curve[-1] > var_curve[0]
    assert ma_curve[-1] > ma_curve[0]
    assert "window" in result.to_text()


def test_fig8_foreco_reduces_error_and_trends_hold():
    result = fig8_simulation_heatmap.run(
        "ci", robot_counts=(5, 25), probabilities=(0.01, 0.05), durations=(10, 100)
    )
    for robots in (5, 25):
        foreco = result.foreco[robots]
        baseline = result.no_forecast[robots]
        # FoReCo wins in the worst cell of every robot count.
        assert result.improvement_factor(robots) > 1.0
        # Errors grow when interference becomes heavier (best cell -> worst cell).
        assert baseline.cell(0.05, 100).mean > baseline.cell(0.01, 10).mean
        assert foreco.cell(0.05, 100).mean >= foreco.cell(0.01, 10).mean
        # FoReCo stays within the paper's bounded-error envelope (< 20 mm).
        assert foreco.max_mean() < 20.0
    assert "Fig. 8" in result.to_text()


def test_fig9_foreco_wins_and_drift_grows_with_burst_length():
    result = fig9_controlled_losses.run("ci")
    for burst in result.burst_lengths:
        assert result.improvement_factor(burst) > 1.0
    # The forecast drift (max error) grows as the loss bursts get longer.
    assert (
        result.max_error_foreco_mm[25]
        > result.max_error_foreco_mm[10]
        > result.max_error_foreco_mm[5]
    )
    assert "Fig. 9" in result.to_text()


def test_fig10_jammer_improvement_and_recovery_transient():
    result = fig10_jammer.run("ci")
    assert result.improvement_factor > 1.0
    assert 0.0 < result.jammed_fraction < 1.0
    assert result.longest_burst_commands >= 5
    # The PID settling transient after channel recovery is below one second.
    assert 0.0 <= result.pid_settling_ms <= 1000.0
    assert "Fig. 10" in result.to_text()


def test_table1_stage_profile_shape():
    result = table1_training_profile.run("ci", repetitions=2)
    assert set(result.stage_stats) == {"load_data", "downsampling", "check_quality", "training_model"}
    assert result.total_mean_s > 0.0
    # Inference is far below the 20 ms control period (paper: 1.6 ms on the Pi).
    assert result.inference_ms < 20.0
    assert result.projected_pi_total_s > result.total_mean_s
    assert "Table I" in result.to_text()


def test_table2_hardware_ordering():
    result = table2_hardware_timing.run("ci")
    assert result.training_minutes("raspberry-pi3") > result.training_minutes("jetson-nano")
    assert result.training_minutes("jetson-nano") > result.training_minutes("laptop")
    assert result.training_minutes("laptop") >= result.training_minutes("edge-server")
    assert result.inference_ms("raspberry-pi3") > result.inference_ms("edge-server")
    # Even the slowest platform forecasts well within the 20 ms control period.
    assert result.inference_ms("raspberry-pi3") < 20.0
    assert "Table II" in result.to_text()


def test_runner_registry_and_report():
    assert set(EXPERIMENTS) == {"fig6", "fig7", "fig8", "fig9", "fig10", "table1", "table2"}
    report = run_experiments(["fig6"], scale="ci", seed=42)
    assert "Fig. 6" in report
    with pytest.raises(ConfigurationError):
        run_experiments(["fig99"], scale="ci", seed=42)
    with pytest.raises(ConfigurationError):
        run_experiments([], scale="ci", seed=42)  # nothing selected


def test_runner_scenarios_and_json_format():
    import json

    report = run_experiments(
        ["fig6"], scale="ci", seed=42, jobs=2, fmt="json", scenarios=["bursty-loss"]
    )
    document = json.loads(report)
    assert document["experiments"]["fig6"]["experiment"] == "fig6"
    rows = document["scenarios"]
    assert len(rows) == 1 and rows[0]["scenario"] == "bursty-loss"
    assert rows[0]["mean_rmse_foreco_mm"] > 0.0
    # Text rendering of a scenario-only invocation.
    text = run_experiments([], scale="ci", seed=42, scenarios=["bursty-loss"])
    assert "scenario presets" in text and "bursty-loss" in text


def test_fig8_parallel_jobs_match_serial():
    serial = fig8_simulation_heatmap.run(
        "ci", robot_counts=(5,), probabilities=(0.01, 0.05), durations=(10, 100)
    )
    parallel = fig8_simulation_heatmap.run(
        "ci", robot_counts=(5,), probabilities=(0.01, 0.05), durations=(10, 100), jobs=4
    )
    assert np.array_equal(serial.no_forecast[5].matrix(), parallel.no_forecast[5].matrix())
    assert np.array_equal(serial.foreco[5].matrix(), parallel.foreco[5].matrix())
