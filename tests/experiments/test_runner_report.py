"""Runner report schema: pinned keys for the JSON document and text sections.

The JSON report is a machine-readable contract (EXPERIMENTS.md consumers,
CI comparisons); this module pins its shape — the top-level
``report_version`` field, the per-section keys — so a restructuring shows
up as a failing test and a deliberate ``REPORT_VERSION`` bump, never as a
silent consumer break.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import REPORT_VERSION, run_experiments

#: Keys every scenario row carries (sweep record schema).
SCENARIO_ROW_KEYS = {
    "scenario",
    "spec_hash",
    "channel",
    "repetitions",
    "mean_rmse_no_forecast_mm",
    "mean_rmse_foreco_mm",
    "mean_late_fraction",
    "improvement_factor",
}

#: Keys every fleet row carries.
FLEET_ROW_KEYS = {
    "fleet",
    "spec_hash",
    "operators",
    "aps",
    "admitted",
    "dropped_sessions",
    "tier",
}

#: Keys every service row carries.
SERVICE_ROW_KEYS = {
    "service",
    "spec_hash",
    "policy",
    "operators",
    "aps",
    "until_s",
    "admitted",
    "dropped_sessions",
    "migrated_sessions",
    "drop_rate",
    "migration_rate",
    "p50_recovery",
    "p99_recovery",
    "p99_completion_s",
    "ap_utilization",
    "snapshots",
}

#: Keys the search section carries.
SEARCH_KEYS = {"budget", "evaluated", "rounds", "probes", "top"}

#: Keys every capacity-plan report carries.
PLAN_KEYS = {
    "plan",
    "plan_version",
    "spec_hash",
    "method",
    "feasible",
    "capacity",
    "admitted",
    "dropped_sessions",
    "drop_rate",
    "bracket",
    "evaluated",
    "slo",
    "bounds",
    "predicted",
    "probes",
    "trace",
}


@pytest.fixture(scope="module")
def document():
    report = run_experiments(
        ["fleet", "serve", "search", "plan"],
        scale="ci",
        seed=42,
        jobs=2,
        fmt="json",
        scenarios=["bursty-loss"],
        fleet=2,
        budget=2,
        until=120.0,
    )
    return json.loads(report)


def test_json_document_is_versioned(document):
    assert document["report_version"] == REPORT_VERSION
    assert REPORT_VERSION == 2


def test_json_top_level_sections(document):
    assert {"report_version", "scale", "seed", "experiments", "search",
            "scenarios", "fleets", "fleet_tier", "services", "plans"} <= set(document)


def test_json_section_schemas(document):
    assert SCENARIO_ROW_KEYS <= set(document["scenarios"][0])
    for row in document["fleets"]:
        assert FLEET_ROW_KEYS <= set(row)
    for row in document["services"]:
        assert SERVICE_ROW_KEYS <= set(row)
        assert row["until_s"] == 120.0
    assert SEARCH_KEYS <= set(document["search"])
    for row in document["plans"]:
        assert PLAN_KEYS <= set(row)
        assert row["evaluated"] <= 2  # --budget caps plan probes too


def test_json_plan_rows_cover_every_preset(document):
    from repro.fleet import plan_names

    assert [row["plan"] for row in document["plans"]] == plan_names()


def test_json_service_rows_cover_every_preset(document):
    from repro.service import service_names

    assert [row["service"] for row in document["services"]] == service_names()


def test_plan_text_section_is_pinned():
    report = run_experiments(["plan"], scale="ci", seed=42, jobs=2, slo_drop=0.2)
    assert "# capacity plans" in report
    assert "capacity plan 'plan-shared-ap'" in report
    assert "overrides: --slo-drop 0.2" in report
    assert "INFEASIBLE" in report  # the tightened drop gate flips the verdict


def test_text_sections_are_pinned():
    report = run_experiments(
        ["serve"], scale="ci", seed=42, jobs=2,
        scenarios=["bursty-loss"], policy="static-cap",
    )
    assert "# scenario presets" in report
    assert "# service presets" in report
    assert "overrides: --policy static-cap" in report
    assert "admitted" in report
    # Policy override applies to every preset row (result lines all render
    # as "static-cap admission over ..."; catalog descriptions may still
    # mention the presets' native policies).
    assert "utilization-threshold admission over" not in report
    assert "forecast-aware admission over" not in report
    assert report.count("static-cap admission over") == 3


def test_store_section_aggregates_all_sweeps(tmp_path):
    kwargs = dict(
        scale="ci", seed=42, fmt="json", scenarios=["bursty-loss"],
        store=str(tmp_path / "store"), until=60.0,
    )
    cold = json.loads(run_experiments(["serve"], **kwargs))
    assert cold["store"]["misses"] == cold["store"]["entries"] > 0
    warm = json.loads(run_experiments(["serve"], **kwargs))
    assert warm["store"]["misses"] == 0
    assert warm["store"]["hits"] == cold["store"]["misses"]
    assert warm["services"] == cold["services"]
    assert warm["scenarios"] == cold["scenarios"]
