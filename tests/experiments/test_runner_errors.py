"""Runner CLI error paths: clean one-line exits, never tracebacks."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import build_parser, main, run_experiments
from repro.scenarios import SweepExecutor


def _exit_message(excinfo) -> str:
    return str(excinfo.value)


def test_unknown_experiment_keyword():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments(["bogus"], scale="ci", seed=1)
    assert "unknown experiment" in _exit_message(excinfo)
    assert "bogus" in _exit_message(excinfo)


def test_unknown_scenario_name():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["not-a-preset"])
    assert "unknown scenario" in _exit_message(excinfo)


def test_fleet_tier_requires_a_fleet_run():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], fleet_tier="hybrid")
    assert "--fleet-tier" in _exit_message(excinfo)
    assert "fleet" in _exit_message(excinfo)


def test_resume_requires_store():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], resume=True)
    assert "--resume requires --store" in _exit_message(excinfo)


def test_resume_refuses_empty_store(tmp_path):
    with pytest.raises(SystemExit) as excinfo:
        run_experiments(
            [], scale="ci", seed=1, scenarios=["clean"],
            store=str(tmp_path / "empty"), resume=True,
        )
    assert "no entries" in _exit_message(excinfo)


def test_promote_requires_search_keyword():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], promote=True)
    assert "--promote" in _exit_message(excinfo)


def test_malformed_search_budget():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments(["search"], scale="ci", seed=1, budget=0)
    assert "budget" in _exit_message(excinfo)


def test_nothing_to_run():
    with pytest.raises(SystemExit) as excinfo:
        run_experiments([], scale="ci", seed=1)
    assert "nothing to run" in _exit_message(excinfo)


def test_malformed_executor_values_raise_configuration_error():
    with pytest.raises(ConfigurationError) as excinfo:
        SweepExecutor(backend="quantum")
    assert "unknown sweep backend" in str(excinfo.value)


def test_main_exits_cleanly_on_bad_keyword(capsys):
    with pytest.raises(SystemExit):
        main(["bogus"])
    # argparse-level misuse (bad choice values) also exits, not raises.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--fleet-tier", "warp"])
    capsys.readouterr()
