"""Runner error paths: typed ConfigurationError from the library, clean CLI exits.

:func:`repro.experiments.runner.run_experiments` is the library entry point:
configuration misuse raises :class:`repro.errors.ConfigurationError` so
programmatic callers can handle it.  :func:`repro.experiments.runner.main`
wraps that into a one-line ``SystemExit`` — never a traceback.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import build_parser, main, run_experiments
from repro.scenarios import SweepExecutor


def _message(excinfo) -> str:
    return str(excinfo.value)


def test_unknown_experiment_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["bogus"], scale="ci", seed=1)
    assert "unknown experiment" in _message(excinfo)
    assert "bogus" in _message(excinfo)


def test_unknown_scenario_name():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["not-a-preset"])
    assert "unknown scenario" in _message(excinfo)


def test_fleet_tier_requires_a_fleet_run():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], fleet_tier="hybrid")
    assert "--fleet-tier" in _message(excinfo)
    assert "fleet" in _message(excinfo)


def test_budget_requires_search_or_plan_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], budget=8)
    assert "--budget" in _message(excinfo)
    assert "search" in _message(excinfo)
    assert "plan" in _message(excinfo)


def test_slo_flags_require_plan_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], slo_p99=0.9)
    assert "--slo-p99" in _message(excinfo)
    assert "plan" in _message(excinfo)
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["fleet"], scale="ci", seed=1, fleet=2, slo_drop=0.1)
    assert "--slo-drop" in _message(excinfo)
    assert "plan" in _message(excinfo)


def test_malformed_plan_gate_and_budget():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["plan"], scale="ci", seed=1, slo_p99=1.5)
    assert "slo_p99" in _message(excinfo)
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["plan"], scale="ci", seed=1, budget=0)
    assert "budget" in _message(excinfo)


def test_policy_requires_serve_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], policy="static-cap")
    assert "--policy" in _message(excinfo)
    assert "serve" in _message(excinfo)


def test_until_requires_serve_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["fleet"], scale="ci", seed=1, fleet=2, until=30.0)
    assert "--until" in _message(excinfo)
    assert "serve" in _message(excinfo)


def test_resume_requires_store():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], resume=True)
    assert "--resume requires --store" in _message(excinfo)


def test_resume_refuses_empty_store(tmp_path):
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(
            [], scale="ci", seed=1, scenarios=["clean"],
            store=str(tmp_path / "empty"), resume=True,
        )
    assert "no entries" in _message(excinfo)


def test_promote_requires_search_keyword():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1, scenarios=["clean"], promote=True)
    assert "--promote" in _message(excinfo)


def test_malformed_search_budget():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["search"], scale="ci", seed=1, budget=0)
    assert "budget" in _message(excinfo)


def test_unknown_service_policy():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments(["serve"], scale="ci", seed=1, policy="round-robin")
    assert "policy" in _message(excinfo)


def test_nothing_to_run():
    with pytest.raises(ConfigurationError) as excinfo:
        run_experiments([], scale="ci", seed=1)
    assert "nothing to run" in _message(excinfo)
    assert "serve" in _message(excinfo)


def test_malformed_executor_values_raise_configuration_error():
    with pytest.raises(ConfigurationError) as excinfo:
        SweepExecutor(backend="quantum")
    assert "unknown sweep backend" in str(excinfo.value)


def test_main_exits_cleanly_on_misuse(capsys):
    # main() renders ConfigurationError as a clean SystemExit, not a traceback.
    with pytest.raises(SystemExit) as excinfo:
        main(["bogus"])
    assert not isinstance(excinfo.value, ConfigurationError)
    assert "unknown experiment" in str(excinfo.value)
    with pytest.raises(SystemExit) as excinfo:
        main(["--policy", "static-cap"])
    assert "--policy" in str(excinfo.value)
    # argparse-level misuse (bad choice values) also exits, not raises.
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--fleet-tier", "warp"])
    capsys.readouterr()
