"""Integration: the committed tree, baseline and manifest satisfy replint end to end."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint import Baseline, run_lint
from repro.lint.baseline import TODO_JUSTIFICATION
from repro.lint.engine import DEFAULT_BASELINE_NAME, DEFAULT_MANIFEST_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


def replint_cli(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "replint.py"), *argv],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )


def test_src_tree_is_clean_under_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    report = run_lint(REPO_ROOT, ["src"], baseline=baseline)
    assert report.ok, "\n" + report.render_text()
    assert report.suppressed, "the committed baseline should be doing real work"
    assert report.files_checked > 50


def test_committed_baseline_entries_are_all_justified():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    assert baseline.entries, "committed baseline should document the intentional exceptions"
    for entry in baseline.entries:
        assert entry.justification.strip(), f"unjustified baseline entry: {entry.describe()}"
        assert entry.justification != TODO_JUSTIFICATION, f"TODO left in baseline: {entry.describe()}"


def test_cli_json_output_is_clean_and_machine_readable():
    result = replint_cli("src", "--format", "json")
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["ok"] is True
    assert payload["findings"] == []
    assert payload["suppressed"], "suppressed findings should surface with their justifications"
    assert all(item["justification"].strip() for item in payload["suppressed"])


def test_cli_fails_without_the_baseline(tmp_path):
    """Dropping the baseline re-activates the suppressed findings and exits 1."""
    empty = tmp_path / "empty-baseline.json"
    result = replint_cli("src", "--baseline", str(empty))
    assert result.returncode == 1
    assert "TIME001" in result.stdout


def test_cli_fails_when_manifest_entry_is_deleted(tmp_path):
    """The CI-facing half of the acceptance criterion, via the real CLI."""
    manifest = json.loads((REPO_ROOT / DEFAULT_MANIFEST_NAME).read_text(encoding="utf-8"))
    del manifest["files"]["src/repro/scenarios/engine.py"]
    doctored = tmp_path / "doctored-epoch.json"
    doctored.write_text(json.dumps(manifest), encoding="utf-8")

    result = replint_cli("src", "--epoch-manifest", str(doctored))
    assert result.returncode == 1
    assert "EPOCH001" in result.stdout and "not covered" in result.stdout


def test_cli_update_epoch_manifest_is_a_noop_on_clean_tree(tmp_path):
    regenerated = tmp_path / "regenerated.json"
    result = replint_cli("--update-epoch-manifest", "--epoch-manifest", str(regenerated))
    assert result.returncode == 0, result.stdout + result.stderr
    fresh = json.loads(regenerated.read_text(encoding="utf-8"))
    committed = json.loads((REPO_ROOT / DEFAULT_MANIFEST_NAME).read_text(encoding="utf-8"))
    assert fresh == committed
