"""Baseline behaviour: suppression, integrity findings, and the update round-trip."""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import Baseline, BaselineEntry, all_rules, run_lint, update_baseline
from repro.lint.baseline import TODO_JUSTIFICATION

FIXTURES = Path(__file__).parent / "fixtures"

#: File-scope rules only: the tmp trees below have no engine-epoch manifest,
#: so the project-scope EPOCH001 guard would (correctly) fail on them.
FILE_RULES = [rule for rule in all_rules() if rule.scope == "file"]


def write_tree(root: Path, violating: bool = True) -> None:
    pkg = root / "src" / "repro" / "scenarios"
    pkg.mkdir(parents=True)
    name = "time_bad.py" if violating else "time_clean.py"
    (pkg / "clock.py").write_text((FIXTURES / name).read_text(encoding="utf-8"), encoding="utf-8")


def test_line_entry_suppresses_matching_finding(tmp_path):
    write_tree(tmp_path)
    report = run_lint(tmp_path, ["src"], rules=FILE_RULES)
    violations = [f for f in report.findings if f.rule_id == "TIME001"]
    assert violations, "fixture tree should violate TIME001"

    baseline = Baseline(
        entries=[
            BaselineEntry(
                rule=f.rule_id, path=f.path, justification="fixture clock", line_content=f.line_content
            )
            for f in violations
        ]
    )
    report = run_lint(tmp_path, ["src"], baseline=baseline, rules=FILE_RULES)
    assert report.ok and len(report.suppressed) == len(violations)


def test_file_level_entry_suppresses_whole_file(tmp_path):
    write_tree(tmp_path)
    baseline = Baseline(
        entries=[BaselineEntry(rule="TIME001", path="src/repro/scenarios/clock.py", justification="profiling")]
    )
    report = run_lint(tmp_path, ["src"], baseline=baseline, rules=FILE_RULES)
    assert report.ok and report.suppressed


def test_empty_justification_raises_base001(tmp_path):
    write_tree(tmp_path)
    entry = BaselineEntry(rule="TIME001", path="src/repro/scenarios/clock.py", justification="")
    report = run_lint(tmp_path, ["src"], baseline=Baseline(entries=[entry]), rules=FILE_RULES)
    assert not report.ok
    assert "BASE001" in {f.rule_id for f in report.findings}


def test_stale_entry_raises_base002(tmp_path):
    write_tree(tmp_path, violating=False)
    entry = BaselineEntry(rule="TIME001", path="src/repro/scenarios/clock.py", justification="obsolete")
    report = run_lint(tmp_path, ["src"], baseline=Baseline(entries=[entry]), rules=FILE_RULES)
    assert not report.ok
    base002 = [f for f in report.findings if f.rule_id == "BASE002"]
    assert len(base002) == 1 and "clock.py" in base002[0].message


def test_non_baselinable_syntax_finding_cannot_be_suppressed(tmp_path):
    write_tree(tmp_path)
    (tmp_path / "src" / "repro" / "scenarios" / "broken.py").write_text("def f(:\n", encoding="utf-8")
    entry = BaselineEntry(rule="SYNTAX001", path="src/repro/scenarios/broken.py", justification="wip")
    report = run_lint(tmp_path, ["src"], baseline=Baseline(entries=[entry]), rules=FILE_RULES)
    assert "SYNTAX001" in {f.rule_id for f in report.findings}


def test_update_baseline_round_trip(tmp_path):
    write_tree(tmp_path)
    first = run_lint(tmp_path, ["src"], rules=FILE_RULES)
    updated = update_baseline(Baseline(entries=[]), first.findings)
    assert updated.entries and all(e.justification == TODO_JUSTIFICATION for e in updated.entries)

    path = tmp_path / "replint-baseline.json"
    updated.save(path)
    reloaded = Baseline.load(path)
    # save() sorts entries for a stable diff; compare as sets of records.
    reloaded_records = sorted((json.dumps(e.to_dict(), sort_keys=True) for e in reloaded.entries))
    updated_records = sorted((json.dumps(e.to_dict(), sort_keys=True) for e in updated.entries))
    assert reloaded_records == updated_records

    # With justifications filled in, the same tree lints clean.
    justified = Baseline(entries=[replace(e, justification="fixture clock") for e in reloaded.entries])
    report = run_lint(tmp_path, ["src"], baseline=justified, rules=FILE_RULES)
    assert report.ok and report.suppressed


def test_update_baseline_preserves_existing_justifications(tmp_path):
    write_tree(tmp_path)
    findings = run_lint(tmp_path, ["src"], rules=FILE_RULES).findings
    first = update_baseline(Baseline(entries=[]), findings)
    justified = Baseline(entries=[replace(e, justification="reviewed: LRU clock") for e in first.entries])
    second = update_baseline(justified, findings)
    assert second.entries and all(e.justification == "reviewed: LRU clock" for e in second.entries)


def test_update_baseline_keeps_matching_file_level_entries(tmp_path):
    write_tree(tmp_path)
    findings = run_lint(tmp_path, ["src"], rules=FILE_RULES).findings
    file_entry = BaselineEntry(
        rule="TIME001", path="src/repro/scenarios/clock.py", justification="whole module is a clock"
    )
    updated = update_baseline(Baseline(entries=[file_entry]), findings)
    assert updated.entries == [file_entry]


def test_load_missing_baseline_is_empty_and_malformed_raises(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == []
    bad = tmp_path / "bad.json"
    bad.write_text("[]", encoding="utf-8")
    with pytest.raises(ConfigurationError):
        Baseline.load(bad)
    versioned = tmp_path / "versioned.json"
    versioned.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    with pytest.raises(ConfigurationError):
        Baseline.load(versioned)


def test_line_entries_survive_line_shift(tmp_path):
    """Content fingerprints keep matching after unrelated edits move the code."""
    write_tree(tmp_path)
    target = tmp_path / "src" / "repro" / "scenarios" / "clock.py"
    findings = run_lint(tmp_path, ["src"], rules=FILE_RULES).findings
    baseline = update_baseline(Baseline(entries=[]), findings)
    baseline = Baseline(entries=[replace(e, justification="fixture clock") for e in baseline.entries])

    shifted = '"""Shifted module docstring."""\n\nPAD = 1\n\n' + target.read_text(encoding="utf-8")
    target.write_text(shifted, encoding="utf-8")
    report = run_lint(tmp_path, ["src"], baseline=baseline, rules=FILE_RULES)
    assert report.ok and report.suppressed
