"""Fixture: legacy module-level numpy RNG call (RNG002)."""

import numpy as np


def draw(n: int) -> np.ndarray:
    """Sample from the hidden global RandomState."""
    return np.random.normal(0.0, 1.0, size=n)
