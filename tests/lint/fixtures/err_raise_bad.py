"""Fixture: anticipated failure raised as a bare builtin (ERR001)."""


def validate(value: float) -> float:
    """Reject negative values with the wrong exception type."""
    if value < 0:
        raise ValueError("value must be >= 0")
    return value
