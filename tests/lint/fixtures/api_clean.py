"""Fixture: __all__ exports resolve and are documented (clean)."""

__all__ = ["helper"]


def helper() -> int:
    """Return a documented constant."""
    return 1
