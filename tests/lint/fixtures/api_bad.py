"""Fixture: __all__ exports an undocumented definition (API001)."""

__all__ = ["helper"]


def helper() -> int:
    return 1
