"""Fixture: distribution drawn on an explicit Generator (clean)."""

import numpy as np


def draw(rng: np.random.Generator, n: int) -> np.ndarray:
    """Sample from the caller's generator."""
    return rng.normal(0.0, 1.0, size=n)
