"""Fixture: a mutable, unfrozen spec dataclass (SPEC001)."""

from dataclasses import dataclass, field


@dataclass
class BrokenSpec:
    """Spec that is neither frozen nor hashable."""

    name: str
    values: list[float] = field(default_factory=list)
