"""Fixture: a typed failure handled explicitly (clean)."""

from repro.errors import ReproError


def load(loader) -> object:
    """Turn a typed failure into an explicit miss."""
    try:
        return loader()
    except ReproError:
        return None
