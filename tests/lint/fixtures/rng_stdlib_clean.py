"""Fixture: randomness flows from an injected numpy Generator (clean)."""

import numpy as np


def draw(rng: np.random.Generator) -> float:
    """Return a draw from the caller's generator."""
    return float(rng.uniform())
