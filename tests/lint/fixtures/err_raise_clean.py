"""Fixture: anticipated failure raised through the typed taxonomy (clean)."""

from repro.errors import ConfigurationError


def validate(value: float) -> float:
    """Reject negative values with the taxonomy type."""
    if value < 0:
        raise ConfigurationError("value must be >= 0")
    return value
