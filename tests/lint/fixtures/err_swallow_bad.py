"""Fixture: a typed failure silently swallowed (ERR002)."""

from repro.errors import ReproError


def load(loader) -> object:
    """Swallow the taxonomy with a bare pass."""
    try:
        return loader()
    except ReproError:
        pass
    return None
