"""Fixture: default_rng seeded from a derived parameter (clean)."""

import numpy as np


def make_rng(spec_seed: int, repetition: int) -> np.random.Generator:
    """Build the block-ordered generator for one repetition."""
    return np.random.default_rng(spec_seed + repetition)
