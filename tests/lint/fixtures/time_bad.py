"""Fixture: engine code reading the wall clock (TIME001)."""

import time
from datetime import datetime


def stamp() -> float:
    """Return a wall-clock timestamp."""
    return time.time()


def perf() -> float:
    """Return a timer read."""
    return time.perf_counter()


def today() -> str:
    """Return the wall-clock date."""
    return datetime.now().isoformat()
