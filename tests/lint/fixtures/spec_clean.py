"""Fixture: a frozen, hashable spec dataclass (clean)."""

from dataclasses import dataclass


@dataclass(frozen=True)
class GoodSpec:
    """Spec with immutable, hashable fields only."""

    name: str
    values: tuple[float, ...] = ()
