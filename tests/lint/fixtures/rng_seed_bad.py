"""Fixture: default_rng with a literal seed and with no seed (RNG003)."""

import numpy as np

RNG_LITERAL = np.random.default_rng(1234)
RNG_UNSEEDED = np.random.default_rng()
