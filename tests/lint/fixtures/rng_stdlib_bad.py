"""Fixture: draws randomness from the stdlib random module (RNG001)."""

import random


def draw() -> float:
    """Return a process-global random draw."""
    return random.random()
