"""Fixture: simulated time threaded through parameters (clean)."""


def advance(now_ms: float, step_ms: float) -> float:
    """Advance the simulated clock by one step."""
    return now_ms + step_ms
