"""The ENGINE_EPOCH manifest guard: semantic hashing and EPOCH001 in every direction."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.lint import (
    EngineEpochRule,
    ProjectContext,
    build_manifest,
    load_manifest,
    read_engine_epoch,
    semantic_hash,
    tracked_files,
    write_manifest,
)
from repro.lint.epoch import EPOCH_SOURCE

REPO_ROOT = Path(__file__).resolve().parents[2]
ENGINE_REL = "src/repro/scenarios/engine.py"


def copy_engine_tree(tmp_path: Path) -> Path:
    """Copy the tracked engine modules plus the committed manifest into a tmp tree."""
    for rel in tracked_files(REPO_ROOT):
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, dest)
    shutil.copyfile(REPO_ROOT / "engine-epoch.json", tmp_path / "engine-epoch.json")
    return tmp_path / "engine-epoch.json"


def epoch_findings(root: Path, manifest_path: Path) -> list:
    project = ProjectContext(root=root, files=(), manifest_path=manifest_path)
    return list(EngineEpochRule().check_project(project))


def test_semantic_hash_ignores_docstrings_and_comments():
    base = 'def f(x):\n    """Doc."""\n    return x + 1\n'
    reworded = 'def f(x):\n    """Completely different doc.\n\n    More prose.\n    """\n    # comment\n    return x + 1\n'
    assert semantic_hash(base) == semantic_hash(reworded)


def test_semantic_hash_changes_on_executable_edit():
    base = "def f(x):\n    return x + 1\n"
    edited = "def f(x):\n    return x + 2\n"
    assert semantic_hash(base) != semantic_hash(edited)


def test_committed_manifest_matches_the_tree():
    """The acceptance invariant: regeneration is a no-op on the committed tree."""
    committed = load_manifest(REPO_ROOT / "engine-epoch.json")
    assert committed is not None
    rebuilt = build_manifest(REPO_ROOT)
    assert rebuilt["epoch"] == committed["epoch"] == read_engine_epoch(REPO_ROOT)
    assert rebuilt["files"] == committed["files"]
    assert ENGINE_REL in committed["files"]
    assert EPOCH_SOURCE == ENGINE_REL


def test_clean_copied_tree_yields_no_findings(tmp_path):
    manifest_path = copy_engine_tree(tmp_path)
    assert epoch_findings(tmp_path, manifest_path) == []


def test_missing_manifest_is_a_finding(tmp_path):
    manifest_path = copy_engine_tree(tmp_path)
    manifest_path.unlink()
    findings = epoch_findings(tmp_path, manifest_path)
    assert len(findings) == 1 and "missing or unparseable" in findings[0].message


def test_deleting_the_engine_entry_is_a_finding(tmp_path):
    """Acceptance criterion: dropping engine.py from the manifest fails the guard."""
    manifest_path = copy_engine_tree(tmp_path)
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    del manifest["files"][ENGINE_REL]
    write_manifest(manifest_path, manifest)

    findings = epoch_findings(tmp_path, manifest_path)
    assert [f for f in findings if f.path == ENGINE_REL and "not covered" in f.message]


def test_editing_the_engine_without_a_bump_is_a_finding(tmp_path):
    """Acceptance criterion: an executable edit without regeneration fails the guard."""
    manifest_path = copy_engine_tree(tmp_path)
    engine = tmp_path / ENGINE_REL
    engine.write_text(engine.read_text(encoding="utf-8") + "\nX_MUTATION = 1\n", encoding="utf-8")

    findings = epoch_findings(tmp_path, manifest_path)
    assert [
        f
        for f in findings
        if f.path == ENGINE_REL and "without an ENGINE_EPOCH bump" in f.message
    ]
    assert all("ENGINE_EPOCH" in f.fix_hint for f in findings)


def test_docstring_only_edit_passes(tmp_path):
    manifest_path = copy_engine_tree(tmp_path)
    engine = tmp_path / ENGINE_REL
    source = engine.read_text(encoding="utf-8")
    assert source.startswith('"""')
    engine.write_text(source.replace('"""', '"""Reworded.\n\n', 1), encoding="utf-8")
    assert epoch_findings(tmp_path, manifest_path) == []


def test_epoch_bump_without_regeneration_is_a_mismatch(tmp_path):
    manifest_path = copy_engine_tree(tmp_path)
    engine = tmp_path / ENGINE_REL
    epoch = read_engine_epoch(tmp_path)
    source = engine.read_text(encoding="utf-8")
    engine.write_text(
        source.replace(f"ENGINE_EPOCH = {epoch}", f"ENGINE_EPOCH = {epoch + 1}"), encoding="utf-8"
    )

    messages = [f.message for f in epoch_findings(tmp_path, manifest_path)]
    assert any("!= ENGINE_EPOCH" in m for m in messages)
    # The edit also changed the engine's semantic hash, so both failures surface.
    assert any("without an ENGINE_EPOCH bump" in m for m in messages)


def test_manifest_tracking_a_deleted_file_is_a_finding(tmp_path):
    manifest_path = copy_engine_tree(tmp_path)
    (tmp_path / "src/repro/fleet/hybrid.py").unlink()
    findings = epoch_findings(tmp_path, manifest_path)
    assert any("no longer exists" in f.message for f in findings)


def test_new_wireless_module_must_enter_the_manifest(tmp_path):
    """A brand-new sampler is engine-semantic by construction: glob picks it up."""
    manifest_path = copy_engine_tree(tmp_path)
    new = tmp_path / "src/repro/wireless/new_sampler.py"
    new.write_text('"""New sampler."""\n\nRATE = 2.0\n', encoding="utf-8")
    findings = epoch_findings(tmp_path, manifest_path)
    assert any(f.path.endswith("new_sampler.py") and "not covered" in f.message for f in findings)
