"""Fixture-driven tests: one true-positive and one clean fixture per rule."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import lint_source

FIXTURES = Path(__file__).parent / "fixtures"

#: Synthetic in-tree location: fixtures are linted as if they were engine code.
ENGINE_PATH = "src/repro/scenarios/fixture_module.py"

#: (bad fixture, clean fixture, rule id) — the core catalogue contract.
RULE_FIXTURES = [
    ("rng_stdlib_bad.py", "rng_stdlib_clean.py", "RNG001"),
    ("rng_npglobal_bad.py", "rng_npglobal_clean.py", "RNG002"),
    ("rng_seed_bad.py", "rng_seed_clean.py", "RNG003"),
    ("time_bad.py", "time_clean.py", "TIME001"),
    ("err_raise_bad.py", "err_raise_clean.py", "ERR001"),
    ("err_swallow_bad.py", "err_swallow_clean.py", "ERR002"),
    ("spec_bad.py", "spec_clean.py", "SPEC001"),
    ("api_bad.py", "api_clean.py", "API001"),
]


def rule_ids(source: str) -> set[str]:
    return {finding.rule_id for finding in lint_source(source, ENGINE_PATH)}


@pytest.mark.parametrize("bad,clean,rule_id", RULE_FIXTURES)
def test_bad_fixture_trips_exactly_its_rule(bad, clean, rule_id):
    """The violating fixture fires its rule; the clean twin fires nothing."""
    bad_ids = rule_ids((FIXTURES / bad).read_text(encoding="utf-8"))
    assert rule_id in bad_ids, f"{bad} should trip {rule_id}, got {bad_ids}"
    clean_ids = rule_ids((FIXTURES / clean).read_text(encoding="utf-8"))
    assert not clean_ids, f"{clean} should be clean, got {clean_ids}"


def test_findings_carry_location_message_and_hint():
    source = (FIXTURES / "err_raise_bad.py").read_text(encoding="utf-8")
    findings = lint_source(source, ENGINE_PATH)
    (finding,) = [f for f in findings if f.rule_id == "ERR001"]
    assert finding.path == ENGINE_PATH
    assert finding.line > 0
    assert finding.line_content.startswith("raise ValueError")
    assert "ValueError" in finding.message
    assert finding.fix_hint
    payload = finding.to_dict()
    assert payload["rule"] == "ERR001" and payload["line"] == finding.line


def test_rng002_counts_every_global_draw_but_allows_constructors():
    source = "import numpy as np\nA = np.random.seed(3)\nB = np.random.rand(4)\n"
    ids = [f.rule_id for f in lint_source(source, ENGINE_PATH)]
    assert ids.count("RNG002") == 2
    clean = "import numpy as np\nGEN = np.random.SeedSequence(None)\n"
    assert not [f for f in lint_source(clean, ENGINE_PATH) if f.rule_id == "RNG002"]


def test_rng003_flags_keyword_literal_seed():
    source = "import numpy as np\nRNG = np.random.default_rng(seed=7)\n"
    assert {"RNG003"} == {f.rule_id for f in lint_source(source, ENGINE_PATH)}


def test_time001_catches_bare_name_import_and_utcnow():
    source = "from time import perf_counter\n\n\ndef f():\n    return perf_counter()\n"
    assert "TIME001" in {f.rule_id for f in lint_source(source, ENGINE_PATH)}
    source = "from datetime import datetime\nNOW = datetime.utcnow()\n"
    assert "TIME001" in {f.rule_id for f in lint_source(source, ENGINE_PATH)}


def test_err002_flags_bare_except_and_blanket_exception():
    source = "def f(x):\n    try:\n        return x()\n    except Exception:\n        pass\n    return None\n"
    assert "ERR002" in {f.rule_id for f in lint_source(source, ENGINE_PATH)}


def test_err002_allows_narrow_builtin_swallow():
    source = "def f(x):\n    try:\n        return x()\n    except OSError:\n        pass\n    return None\n"
    assert "ERR002" not in {f.rule_id for f in lint_source(source, ENGINE_PATH)}


def test_spec001_reports_each_mutable_field_and_skips_classvar():
    source = (
        "from dataclasses import dataclass\n"
        "from typing import ClassVar\n"
        "import numpy as np\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class ArraySpec:\n"
        "    trace: np.ndarray\n"
        "    registry: ClassVar[dict] = {}\n"
    )
    findings = [f for f in lint_source(source, ENGINE_PATH) if f.rule_id == "SPEC001"]
    assert len(findings) == 1 and "trace" in findings[0].message


def test_spec001_ignores_non_dataclass_and_non_spec_names():
    source = "class PlainSpec:\n    pass\n\n\nclass Config:\n    values: list = []\n"
    assert "SPEC001" not in {f.rule_id for f in lint_source(source, ENGINE_PATH)}


def test_api001_flags_unresolved_export():
    source = '__all__ = ["ghost"]\n'
    findings = [f for f in lint_source(source, ENGINE_PATH) if f.rule_id == "API001"]
    assert len(findings) == 1 and "ghost" in findings[0].message


def test_repo_tree_uses_no_stdlib_random_anywhere():
    """RNG001 over the real src tree: the discipline holds globally."""
    root = Path(__file__).resolve().parents[2]
    from repro.lint import get_rule, run_lint

    report = run_lint(root, ["src"], rules=[get_rule("RNG001")])
    assert report.ok, [f.render() for f in report.findings]
