"""Tests for the top-level public API and the validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro._validation import (
    as_command_array,
    ensure_int,
    ensure_non_negative,
    ensure_positive,
    ensure_probability,
)
from repro.errors import ConfigurationError, DimensionError, ReproError


def test_version_and_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


def test_error_hierarchy():
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(DimensionError, ReproError)


def test_quick_demo_end_to_end():
    outcome = repro.quick_demo(seed=3, n_repetitions=3)
    assert outcome.rmse_foreco_mm >= 0.0
    assert outcome.rmse_no_forecast_mm >= 0.0
    assert 0.0 <= outcome.late_fraction <= 1.0
    assert outcome.improvement_factor > 0.0


def test_validation_helpers():
    assert ensure_positive("x", 1.5) == 1.5
    with pytest.raises(ConfigurationError):
        ensure_positive("x", 0.0)
    assert ensure_non_negative("x", 0.0) == 0.0
    with pytest.raises(ConfigurationError):
        ensure_non_negative("x", -1.0)
    assert ensure_probability("p", 0.5) == 0.5
    with pytest.raises(ConfigurationError):
        ensure_probability("p", 1.5)
    assert ensure_int("n", 3, minimum=1) == 3
    with pytest.raises(ConfigurationError):
        ensure_int("n", 2.5)
    with pytest.raises(ConfigurationError):
        ensure_int("n", 0, minimum=1)


def test_as_command_array_promotion_and_validation():
    single = as_command_array("c", [1.0, 2.0, 3.0])
    assert single.shape == (1, 3)
    with pytest.raises(DimensionError):
        as_command_array("c", np.zeros((2, 2, 2)))
    with pytest.raises(DimensionError):
        as_command_array("c", [[np.nan, 1.0]])
    with pytest.raises(DimensionError):
        as_command_array("c", np.empty((0, 3)))
