"""Tests for the FoReCo configuration and the command dataset."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommandDataset, ForecoConfig
from repro.errors import ConfigurationError, DatasetError


# -------------------------------------------------------------------- config
def test_default_config_matches_paper_prototype():
    config = ForecoConfig()
    assert config.command_period_ms == 20.0
    assert config.tolerance_ms == 0.0
    assert config.train_fraction == pytest.approx(0.8)
    assert config.test_fraction == pytest.approx(0.2)
    assert config.algorithm == "var"
    assert config.deadline_ms == pytest.approx(20.0)


def test_config_validation():
    with pytest.raises(ConfigurationError):
        ForecoConfig(command_period_ms=0.0)
    with pytest.raises(ConfigurationError):
        ForecoConfig(train_fraction=1.0)
    with pytest.raises(ConfigurationError):
        ForecoConfig(train_fraction=0.0)
    with pytest.raises(ConfigurationError):
        ForecoConfig(feedback="psychic")
    with pytest.raises(ConfigurationError):
        ForecoConfig(record=0)
    with pytest.raises(ConfigurationError):
        ForecoConfig(max_step_rad=-0.1)
    with pytest.raises(ConfigurationError):
        ForecoConfig(algorithm="")


def test_config_deadline_includes_tolerance():
    config = ForecoConfig(command_period_ms=20.0, tolerance_ms=5.0)
    assert config.deadline_ms == pytest.approx(25.0)


# ------------------------------------------------------------------- dataset
def test_dataset_append_and_bounds():
    dataset = CommandDataset(n_joints=3, max_history=5)
    for value in range(8):
        dataset.append(np.full(3, float(value)))
    assert len(dataset) == 5
    assert np.allclose(dataset.to_array()[0], 3.0)  # oldest entries evicted
    assert np.allclose(dataset.recent(2)[-1], 7.0)


def test_dataset_rejects_bad_commands():
    dataset = CommandDataset(n_joints=3)
    with pytest.raises(DatasetError):
        dataset.append(np.zeros(2))
    with pytest.raises(DatasetError):
        dataset.append(np.array([1.0, np.nan, 0.0]))
    with pytest.raises(DatasetError):
        dataset.extend(np.zeros((4, 2)))


def test_dataset_downsample():
    dataset = CommandDataset(n_joints=1)
    dataset.extend(np.arange(10.0).reshape(-1, 1))
    assert np.allclose(dataset.downsample(3).ravel(), [0.0, 3.0, 6.0, 9.0])
    with pytest.raises(DatasetError):
        CommandDataset(n_joints=1).downsample(2)


def test_dataset_split_chronological():
    dataset = CommandDataset(n_joints=2)
    dataset.extend(np.arange(20.0).reshape(10, 2))
    split = dataset.split(0.8)
    assert split.train.shape[0] == 8
    assert split.test.shape[0] == 2
    assert split.train_fraction == pytest.approx(0.8)
    assert np.all(split.train[-1] < split.test[0])  # chronological order preserved


def test_dataset_split_requires_two_commands():
    dataset = CommandDataset(n_joints=2)
    dataset.append(np.zeros(2))
    with pytest.raises(DatasetError):
        dataset.split(0.5)


def test_quality_check_clean_data(experienced_stream):
    dataset = CommandDataset(n_joints=6)
    dataset.extend(experienced_stream.commands[:2000])
    report = dataset.quality_check()
    assert report.is_clean
    assert report.n_commands == 2000
    assert 0.0 <= report.frozen_fraction <= 1.0


def test_quality_check_detects_and_repairs_out_of_range():
    dataset = CommandDataset(n_joints=6)
    good = np.zeros((5, 6))
    bad = np.full((1, 6), 99.0)  # far outside the joint limits
    dataset.extend(np.vstack([good, bad, good]))
    report = dataset.quality_check(repair=True)
    assert report.n_out_of_range == 1
    assert report.n_jumps >= 1
    assert report.repaired
    repaired = dataset.to_array()
    assert np.all(repaired <= 4.0)  # clamped to the joint limits


def test_quality_check_empty_dataset_raises():
    with pytest.raises(DatasetError):
        CommandDataset(n_joints=2).quality_check()


def test_dataset_duration_and_clear():
    dataset = CommandDataset(n_joints=2, period_ms=20.0)
    dataset.extend(np.zeros((50, 2)))
    assert dataset.duration_s == pytest.approx(1.0)
    dataset.clear()
    assert len(dataset) == 0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(3, 60),
    max_history=st.integers(2, 30),
)
def test_dataset_never_exceeds_max_history(n, max_history):
    """Property: the stored history never exceeds H commands."""
    dataset = CommandDataset(n_joints=2, max_history=max_history)
    dataset.extend(np.zeros((n, 2)))
    assert len(dataset) == min(n, max_history)
