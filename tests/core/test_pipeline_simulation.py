"""Tests for the training pipeline and the end-to-end simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CommandDataset,
    ForecoConfig,
    ForecoRecovery,
    RemoteControlSimulation,
    TrainingPipeline,
    compare_baseline_and_foreco,
)
from repro.errors import ConfigurationError, DatasetError, DimensionError
from repro.wireless import ConsecutiveLossInjector, GilbertElliottJammer, InterferenceSource, WirelessChannel


# ------------------------------------------------------------------ pipeline
def test_pipeline_produces_fitted_forecaster_and_timings(experienced_stream):
    dataset = CommandDataset(6)
    dataset.extend(experienced_stream.commands)
    pipeline = TrainingPipeline(ForecoConfig())
    forecaster, report = pipeline.run(dataset)
    assert forecaster.is_fitted
    assert report.timings.total_s > 0.0
    assert report.timings.training_s > 0.0
    assert report.n_training_commands > report.n_test_commands
    assert report.test_rmse >= 0.0
    assert report.inference_time_ms < 20.0  # far below the control period
    assert report.quality.is_clean


def test_pipeline_downsampling_reduces_training_set(experienced_stream):
    dataset = CommandDataset(6)
    dataset.extend(experienced_stream.commands)
    plain = TrainingPipeline(ForecoConfig())
    halved = TrainingPipeline(ForecoConfig(), downsample_factor=2)
    _, report_plain = plain.run(dataset)
    _, report_halved = halved.run(dataset)
    assert report_halved.n_training_commands < report_plain.n_training_commands


def test_pipeline_rejects_tiny_dataset():
    dataset = CommandDataset(6)
    dataset.extend(np.zeros((5, 6)))
    with pytest.raises(DatasetError):
        TrainingPipeline(ForecoConfig(record=10)).run(dataset)


# ---------------------------------------------------------------- simulation
def test_simulation_requires_trained_recovery():
    with pytest.raises(ConfigurationError):
        RemoteControlSimulation(ForecoRecovery(ForecoConfig()))


def test_simulation_perfect_channel_gives_zero_error(trained_recovery, inexperienced_stream):
    commands = inexperienced_stream.commands[:300]
    delays = np.full(300, 1.0)
    outcome = RemoteControlSimulation(trained_recovery).run(commands, delays)
    assert outcome.rmse_foreco_mm == pytest.approx(0.0, abs=1e-9)
    assert outcome.rmse_no_forecast_mm == pytest.approx(0.0, abs=1e-6)
    assert outcome.late_fraction == 0.0


def test_simulation_foreco_beats_baseline_under_bursty_loss(trained_recovery, inexperienced_stream):
    commands = inexperienced_stream.commands[:1200]
    injector = ConsecutiveLossInjector(burst_length=10, n_bursts=6, min_gap=80, seed=3)
    delays = injector.to_trace(1200).delays()
    outcome = RemoteControlSimulation(trained_recovery).run(commands, delays)
    assert outcome.rmse_foreco_mm < outcome.rmse_no_forecast_mm
    assert outcome.improvement_factor > 1.0
    assert outcome.late_fraction > 0.0
    assert len(outcome.defined) == len(outcome.foreco) == len(outcome.baseline)


def test_simulation_foreco_beats_baseline_under_interference(trained_recovery, inexperienced_stream):
    commands = inexperienced_stream.commands[:1200]
    channel = WirelessChannel(
        n_robots=15, interference=InterferenceSource(0.025, 50), seed=9
    )
    trace = channel.sample_trace(1200)
    outcome = RemoteControlSimulation(trained_recovery).run_trace(commands, trace)
    assert outcome.rmse_foreco_mm < outcome.rmse_no_forecast_mm


def test_simulation_foreco_beats_baseline_under_jammer(trained_recovery, inexperienced_stream):
    commands = inexperienced_stream.commands[:1500]
    delays = GilbertElliottJammer(seed=4).sample_trace(1500).delays()
    outcome = RemoteControlSimulation(trained_recovery).run(commands, delays)
    assert outcome.rmse_foreco_mm < outcome.rmse_no_forecast_mm


def test_simulation_baseline_lags_behind_with_delayed_commands(trained_recovery, inexperienced_stream):
    """Delayed (not lost) commands make the stock stack lag and accrue error,
    while FoReCo bridges a short delayed stretch with forecasts."""
    commands = inexperienced_stream.commands[:600]
    delays = np.full(600, 1.0)
    delays[200:215] = 400.0  # a 15-command stretch arrives 400 ms late
    outcome = RemoteControlSimulation(trained_recovery).run(commands, delays)
    assert outcome.rmse_no_forecast_mm > 0.3
    assert outcome.rmse_foreco_mm < outcome.rmse_no_forecast_mm

    # A sustained lag (every command late by two periods for one second)
    # accrues baseline error even though nothing is lost.
    delays_lag = np.full(600, 1.0)
    delays_lag[300:350] = 45.0
    lagged = RemoteControlSimulation(trained_recovery).run(commands, delays_lag)
    assert lagged.rmse_no_forecast_mm > 0.1


def test_simulation_shape_validation(trained_recovery):
    with pytest.raises(DimensionError):
        RemoteControlSimulation(trained_recovery).run(np.zeros((10, 6)), np.zeros(9))


def test_simulation_run_trace_length_check(trained_recovery, inexperienced_stream):
    commands = inexperienced_stream.commands[:100]
    channel = WirelessChannel(n_robots=5, seed=1)
    short_trace = channel.sample_trace(50)
    with pytest.raises(DimensionError):
        RemoteControlSimulation(trained_recovery).run_trace(commands, short_trace)


def test_compare_helper_end_to_end(experienced_stream, inexperienced_stream):
    commands = inexperienced_stream.commands[:800]
    injector = ConsecutiveLossInjector(burst_length=8, n_bursts=4, min_gap=60, seed=5)
    delays = injector.to_trace(800).delays()
    outcome = compare_baseline_and_foreco(
        experienced_stream.commands, commands, delays, config=ForecoConfig(record=10)
    )
    assert outcome.improvement_factor > 1.0
    assert 0.0 < outcome.recovery_fraction <= 1.0
