"""Property-based invariants of the recovery loop and the simulation.

These tests use Hypothesis to generate arbitrary loss/delay patterns and
check structural invariants that must hold for *any* channel realisation —
the kind of guarantees a downstream user of the library relies on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CommandDataset, ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.forecasting import MovingAverageForecaster


def _ramp(n: int, d: int = 6, step: float = 0.004) -> np.ndarray:
    return np.cumsum(np.full((n, d), step), axis=0)


def _make_recovery(record: int = 4) -> ForecoRecovery:
    recovery = ForecoRecovery(
        ForecoConfig(record=record, algorithm="ma"),
        forecaster=MovingAverageForecaster(record=record),
    )
    recovery.train(_ramp(200))
    return recovery


@settings(max_examples=25, deadline=None)
@given(
    delays=st.lists(
        st.one_of(st.floats(0.0, 15.0), st.just(float("inf")), st.floats(30.0, 500.0)),
        min_size=30,
        max_size=120,
    )
)
def test_on_time_slots_execute_the_true_command(delays):
    """Invariant: whenever a command arrives within the deadline, FoReCo
    executes exactly that command (constraint eq. 3 of the paper)."""
    delays_arr = np.array(delays, dtype=float)
    commands = _ramp(delays_arr.size)
    recovery = _make_recovery()
    executed = recovery.process_stream(commands, delays_arr)
    on_time = np.isfinite(delays_arr) & (delays_arr <= recovery.config.deadline_ms)
    assert np.allclose(executed[on_time], commands[on_time])


@settings(max_examples=25, deadline=None)
@given(
    delays=st.lists(
        st.one_of(st.floats(0.0, 10.0), st.just(float("inf"))),
        min_size=30,
        max_size=100,
    )
)
def test_recovery_stats_are_consistent(delays):
    """Invariant: slot counters always add up and fractions stay in [0, 1]."""
    delays_arr = np.array(delays, dtype=float)
    commands = _ramp(delays_arr.size)
    recovery = _make_recovery()
    recovery.process_stream(commands, delays_arr)
    stats = recovery.stats
    assert stats.n_slots == delays_arr.size
    assert stats.n_on_time + stats.n_missing == stats.n_slots
    assert stats.n_forecasted <= stats.n_missing
    assert 0.0 <= stats.missing_fraction <= 1.0
    assert 0.0 <= stats.recovery_fraction <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    burst_start=st.integers(10, 60),
    burst_length=st.integers(1, 30),
)
def test_simulation_trajectories_have_consistent_lengths(
    burst_start, burst_length, trained_recovery, inexperienced_stream
):
    """Invariant: defined, baseline and FoReCo trajectories always align."""
    n = 120
    commands = inexperienced_stream.commands[:n]
    delays = np.full(n, 1.0)
    end = min(n, burst_start + burst_length)
    delays[burst_start:end] = np.inf
    outcome = RemoteControlSimulation(trained_recovery).run(commands, delays)
    assert len(outcome.defined) == len(outcome.baseline) == len(outcome.foreco) == n
    assert outcome.rmse_foreco_mm >= 0.0
    assert outcome.rmse_no_forecast_mm >= 0.0
    assert 0.0 <= outcome.late_fraction <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    n_commands=st.integers(5, 80),
    max_history=st.integers(4, 40),
)
def test_dataset_roundtrip_through_csv(tmp_path_factory, n_commands, max_history):
    """Invariant: save -> load preserves the stored commands exactly."""
    rng = np.random.default_rng(n_commands)
    dataset = CommandDataset(n_joints=6, max_history=max_history, period_ms=20.0)
    dataset.extend(rng.normal(0.0, 0.5, size=(n_commands, 6)))
    path = tmp_path_factory.mktemp("datasets") / "commands.csv"
    dataset.save(str(path))
    restored = CommandDataset.load(str(path))
    assert restored.n_joints == 6
    assert restored.period_ms == pytest.approx(20.0)
    assert np.allclose(restored.to_array(), dataset.to_array())


def test_dataset_load_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("# n_joints=6 period_ms=20.0\n")
    from repro.errors import DatasetError

    with pytest.raises((DatasetError, ValueError)):
        CommandDataset.load(str(path))
