"""Tests for the FoReCo runtime recovery engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ForecoConfig, ForecoRecovery
from repro.errors import ConfigurationError, DimensionError
from repro.forecasting import MovingAverageForecaster, VarForecaster


def _ramp(n: int = 200, d: int = 6, step: float = 0.005) -> np.ndarray:
    return np.cumsum(np.full((n, d), step), axis=0)


def test_recovery_requires_matching_record():
    with pytest.raises(ConfigurationError):
        ForecoRecovery(ForecoConfig(record=5), forecaster=VarForecaster(record=7))


def test_recovery_reset_required_before_processing(trained_recovery):
    recovery = ForecoRecovery(ForecoConfig())
    recovery.forecaster = trained_recovery.forecaster
    with pytest.raises(ConfigurationError):
        recovery.process_slot(np.zeros(6), 1.0)


def test_is_on_time_uses_deadline():
    recovery = ForecoRecovery(ForecoConfig(command_period_ms=20.0, tolerance_ms=5.0))
    assert recovery.is_on_time(24.9)
    assert not recovery.is_on_time(25.1)
    assert not recovery.is_on_time(float("inf"))


def test_on_time_commands_pass_through(trained_recovery):
    commands = _ramp(50)
    delays = np.full(50, 1.0)
    executed = trained_recovery.process_stream(commands, delays)
    assert np.allclose(executed, commands)
    assert trained_recovery.stats.n_missing == 0


def test_missing_commands_are_forecast(trained_recovery):
    commands = _ramp(100)
    delays = np.full(100, 1.0)
    delays[50:55] = np.inf
    executed = trained_recovery.process_stream(commands, delays)
    stats = trained_recovery.stats
    assert stats.n_missing == 5
    assert stats.n_forecasted == 5
    assert stats.recovery_fraction == pytest.approx(1.0)
    # The forecasts differ from the hold-last baseline: they keep moving.
    assert not np.allclose(executed[54], executed[49])


def test_forecast_better_than_hold_on_ramp():
    """On a steadily moving trajectory the forecast beats repeating the last command."""
    recovery = ForecoRecovery(ForecoConfig(record=5))
    recovery.train(_ramp(600, step=0.01))
    commands = _ramp(120, step=0.01)
    delays = np.full(120, 1.0)
    delays[60:70] = np.inf
    executed = recovery.process_stream(commands, delays)
    forecast_error = np.abs(executed[60:70] - commands[60:70]).mean()
    hold_error = np.abs(commands[59] - commands[60:70]).mean()
    assert forecast_error < hold_error


def test_untrained_recovery_falls_back_to_hold():
    recovery = ForecoRecovery(ForecoConfig(record=3))
    commands = _ramp(30)
    delays = np.full(30, 1.0)
    delays[10:12] = np.inf
    executed = recovery.process_stream(commands, delays)
    assert np.allclose(executed[10], commands[9])
    assert recovery.stats.n_forecasted == 0


def test_forecast_clamped_to_moving_offset(experienced_stream):
    config = ForecoConfig(record=5, max_step_rad=0.04)
    recovery = ForecoRecovery(config)
    recovery.train(experienced_stream.commands)
    commands = experienced_stream.commands[:200]
    delays = np.full(200, 1.0)
    delays[100:140] = np.inf
    executed = recovery.process_stream(commands, delays)
    deltas = np.abs(np.diff(executed[99:140], axis=0))
    assert np.all(deltas <= config.max_step_rad + 1e-9)


def test_oracle_feedback_reduces_drift(experienced_stream, inexperienced_stream):
    """Feeding the true (late) commands back is at least as good as forecast feedback."""
    commands = inexperienced_stream.commands[:800]
    delays = np.full(800, 1.0)
    delays[200:260] = np.inf
    delays[500:560] = np.inf

    results = {}
    for feedback in ("forecast", "oracle"):
        recovery = ForecoRecovery(ForecoConfig(record=10, feedback=feedback))
        recovery.train(experienced_stream.commands)
        executed = recovery.process_stream(commands, delays)
        results[feedback] = float(np.abs(executed - commands).mean())
    assert results["oracle"] <= results["forecast"] + 1e-9


def test_process_stream_validates_shapes(trained_recovery):
    with pytest.raises(DimensionError):
        trained_recovery.process_stream(np.zeros((10, 6)), np.zeros(8))


def test_process_slot_validates_joint_count(trained_recovery):
    trained_recovery.reset(6)
    with pytest.raises(DimensionError):
        trained_recovery.process_slot(np.zeros(4), 1.0)


def test_stats_fractions():
    recovery = ForecoRecovery(ForecoConfig(record=2, algorithm="ma"))
    recovery.train(_ramp(50))
    commands = _ramp(40)
    delays = np.full(40, 1.0)
    delays[10:20] = np.inf
    recovery.process_stream(commands, delays)
    assert recovery.stats.missing_fraction == pytest.approx(0.25)
    assert 0.0 <= recovery.stats.recovery_fraction <= 1.0


def test_ma_forecaster_can_be_plugged_in(experienced_stream):
    recovery = ForecoRecovery(
        ForecoConfig(record=5, algorithm="ma"), forecaster=MovingAverageForecaster(record=5)
    )
    recovery.train(experienced_stream.commands[:1000])
    assert recovery.is_ready
