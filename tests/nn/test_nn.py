"""Tests for the NumPy neural-network substrate (activations, layers, Adam)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DimensionError, NotFittedError
from repro.nn.activations import Identity, Relu, Sigmoid, Tanh, get_activation
from repro.nn.layers import Dense, LstmLayer
from repro.nn.losses import MeanSquaredError
from repro.nn.optimizers import Adam, Sgd
from repro.nn.seq2seq import Seq2SeqModel


# ----------------------------------------------------------------- activations
def test_activation_registry():
    assert isinstance(get_activation("relu"), Relu)
    assert isinstance(get_activation(Tanh()), Tanh)
    with pytest.raises(ConfigurationError):
        get_activation("swish")


@settings(max_examples=30, deadline=None)
@given(st.floats(-20.0, 20.0))
def test_sigmoid_bounded_and_derivative_consistent(x):
    sigmoid = Sigmoid()
    value = sigmoid.forward(np.array([x]))[0]
    assert 0.0 <= value <= 1.0
    numerical = (sigmoid.forward(np.array([x + 1e-5]))[0] - sigmoid.forward(np.array([x - 1e-5]))[0]) / 2e-5
    assert sigmoid.backward(np.array([value]))[0] == pytest.approx(numerical, abs=1e-5)


def test_relu_and_identity_shapes():
    x = np.array([-1.0, 0.0, 2.0])
    assert np.allclose(Relu().forward(x), [0.0, 0.0, 2.0])
    assert np.allclose(Identity().forward(x), x)
    assert np.allclose(Identity().backward(x), 1.0)


# ---------------------------------------------------------------------- loss
def test_mse_value_and_gradient():
    loss = MeanSquaredError()
    predictions = np.array([1.0, 2.0])
    targets = np.array([0.0, 0.0])
    assert loss.value(predictions, targets) == pytest.approx(2.5)
    grad = loss.gradient(predictions, targets)
    assert np.allclose(grad, [1.0, 2.0])
    with pytest.raises(DimensionError):
        loss.value(np.zeros(2), np.zeros(3))


# ----------------------------------------------------------------- optimisers
def test_sgd_moves_against_gradient():
    params = {"w": np.array([1.0])}
    Sgd(learning_rate=0.1).update(params, {"w": np.array([2.0])})
    assert params["w"][0] == pytest.approx(0.8)
    with pytest.raises(ConfigurationError):
        Sgd(momentum=1.5)


def test_adam_converges_on_quadratic():
    params = {"w": np.array([5.0])}
    adam = Adam(learning_rate=0.1)
    for _ in range(500):
        grad = {"w": 2.0 * params["w"]}
        adam.update(params, grad)
    assert abs(params["w"][0]) < 0.05


def test_adam_rejects_unknown_parameter():
    adam = Adam()
    with pytest.raises(ConfigurationError):
        adam.update({"w": np.zeros(1)}, {"v": np.zeros(1)})


# --------------------------------------------------------------------- layers
def test_dense_forward_backward_gradient_check():
    rng = np.random.default_rng(0)
    layer = Dense(3, 2, seed=0)
    x = rng.normal(size=(4, 3))
    out = layer.forward(x)
    d_out = np.ones_like(out)
    _, grads = layer.backward(d_out)
    # Numerical gradient check on one weight entry.
    name = "dense/W"
    epsilon = 1e-6
    layer.params[name][0, 0] += epsilon
    loss_plus = layer.forward(x).sum()
    layer.params[name][0, 0] -= 2 * epsilon
    loss_minus = layer.forward(x).sum()
    layer.params[name][0, 0] += epsilon
    numerical = (loss_plus - loss_minus) / (2 * epsilon)
    assert grads[name][0, 0] == pytest.approx(numerical, rel=1e-4, abs=1e-6)


def test_lstm_forward_shapes_and_backward_gradcheck():
    rng = np.random.default_rng(1)
    layer = LstmLayer(input_dim=3, hidden_dim=4, output_activation="tanh", seed=1)
    sequence = rng.normal(size=(6, 3))
    outputs = layer.forward(sequence)
    assert outputs.shape == (6, 4)

    d_outputs = np.ones_like(outputs)
    d_inputs, grads = layer.backward(d_outputs)
    assert d_inputs.shape == sequence.shape

    # Numerical gradient check on a single Wx entry.
    name = "lstm/Wx"
    epsilon = 1e-6
    layer.params[name][0, 0] += epsilon
    plus = layer.forward(sequence).sum()
    layer.params[name][0, 0] -= 2 * epsilon
    minus = layer.forward(sequence).sum()
    layer.params[name][0, 0] += epsilon
    numerical = (plus - minus) / (2 * epsilon)
    assert grads[name][0, 0] == pytest.approx(numerical, rel=1e-3, abs=1e-6)


def test_lstm_rejects_bad_shapes():
    layer = LstmLayer(2, 3)
    with pytest.raises(DimensionError):
        layer.forward(np.zeros((4, 5)))
    layer.forward(np.zeros((4, 2)))
    with pytest.raises(DimensionError):
        layer.backward(np.zeros((3, 3)))


# -------------------------------------------------------------------- seq2seq
def test_seq2seq_fit_reduces_loss_and_predicts_shape():
    rng = np.random.default_rng(2)
    # Simple learnable pattern: next value continues a linear ramp.
    n, window, dim = 80, 4, 2
    base = np.cumsum(rng.normal(0.0, 0.01, size=(n + window, dim)), axis=0)
    sequences = np.stack([base[i : i + window] for i in range(n)])
    targets = base[window : window + n]
    model = Seq2SeqModel(input_dim=dim, encoder_units=8, decoder_units=4, seed=0)
    result = model.fit(sequences, targets, epochs=3, batch_size=16)
    assert len(result.loss_history) == 3
    assert result.loss_history[-1] <= result.loss_history[0]
    prediction = model.predict(base[:window])
    assert prediction.shape == (dim,)
    batch = model.predict_batch(sequences[:3])
    assert batch.shape == (3, dim)


def test_seq2seq_requires_fit_before_predict():
    model = Seq2SeqModel(input_dim=2, encoder_units=4, decoder_units=3)
    with pytest.raises(NotFittedError):
        model.predict(np.zeros((3, 2)))


def test_seq2seq_parameter_count_matches_layer_sizes():
    model = Seq2SeqModel(input_dim=6, encoder_units=200, decoder_units=30, seed=0)
    # Encoder: 4*200*(6+200+1); decoder: 4*30*(200+30+1); head: 30*6+6.
    expected = 4 * 200 * (6 + 200 + 1) + 4 * 30 * (200 + 30 + 1) + 30 * 6 + 6
    assert model.n_parameters == expected


def test_seq2seq_fit_validates_shapes():
    model = Seq2SeqModel(input_dim=2, encoder_units=4, decoder_units=3)
    with pytest.raises(DimensionError):
        model.fit(np.zeros((10, 4, 3)), np.zeros((10, 2)))
    with pytest.raises(DimensionError):
        model.fit(np.zeros((10, 4, 2)), np.zeros((9, 2)))
