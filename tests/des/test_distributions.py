"""Tests for repro.des.distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.distributions import (
    Deterministic,
    EmpiricalDistribution,
    Exponential,
    GammaDistribution,
    HyperExponential,
    LogNormal,
    UniformDistribution,
)
from repro.errors import ConfigurationError


def test_deterministic_returns_constant(rng):
    dist = Deterministic(3.5)
    assert dist.sample(rng) == 3.5
    assert dist.mean() == 3.5
    assert np.all(dist.sample(rng, size=10) == 3.5)


def test_deterministic_rejects_negative():
    with pytest.raises(ConfigurationError):
        Deterministic(-1.0)


def test_exponential_mean_matches_rate(rng):
    dist = Exponential(rate=0.5)
    samples = dist.sample_many(rng, 20000)
    assert dist.mean() == pytest.approx(2.0)
    assert samples.mean() == pytest.approx(2.0, rel=0.1)


def test_exponential_rejects_non_positive_rate():
    with pytest.raises(ConfigurationError):
        Exponential(rate=0.0)


def test_uniform_mean_and_bounds(rng):
    dist = UniformDistribution(2.0, 6.0)
    samples = dist.sample_many(rng, 5000)
    assert dist.mean() == pytest.approx(4.0)
    assert samples.min() >= 2.0 and samples.max() <= 6.0


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ConfigurationError):
        UniformDistribution(5.0, 1.0)


def test_gamma_mean(rng):
    dist = GammaDistribution(shape=3.0, scale=2.0)
    assert dist.mean() == pytest.approx(6.0)
    assert dist.sample_many(rng, 20000).mean() == pytest.approx(6.0, rel=0.1)


def test_lognormal_mean(rng):
    dist = LogNormal(mu=0.0, sigma=0.5)
    assert dist.mean() == pytest.approx(np.exp(0.125))
    assert dist.sample_many(rng, 50000).mean() == pytest.approx(dist.mean(), rel=0.1)


def test_hyperexponential_mean_and_phase(rng):
    dist = HyperExponential(probs=[0.7, 0.3], rates=[1.0, 0.1])
    expected = 0.7 * 1.0 + 0.3 * 10.0
    assert dist.mean() == pytest.approx(expected)
    value, phase = dist.sample_with_phase(rng)
    assert value >= 0.0
    assert phase in (0, 1)


def test_hyperexponential_scv_at_least_one():
    dist = HyperExponential(probs=[0.5, 0.5], rates=[1.0, 0.05])
    assert dist.squared_coefficient_of_variation() >= 1.0


def test_hyperexponential_validates_inputs():
    with pytest.raises(ConfigurationError):
        HyperExponential(probs=[0.5, 0.4], rates=[1.0, 1.0])
    with pytest.raises(ConfigurationError):
        HyperExponential(probs=[0.5, 0.5], rates=[1.0, -1.0])
    with pytest.raises(ConfigurationError):
        HyperExponential(probs=[], rates=[])


def test_empirical_resamples_from_data(rng):
    dist = EmpiricalDistribution([1.0, 2.0, 3.0])
    samples = dist.sample_many(rng, 1000)
    assert set(np.unique(samples)).issubset({1.0, 2.0, 3.0})
    assert dist.mean() == pytest.approx(2.0)
    assert dist.quantile(0.5) == pytest.approx(2.0)


def test_empirical_rejects_bad_inputs():
    with pytest.raises(ConfigurationError):
        EmpiricalDistribution([])
    with pytest.raises(ConfigurationError):
        EmpiricalDistribution([-1.0, 2.0])


@settings(max_examples=30, deadline=None)
@given(
    probs=st.lists(st.floats(0.05, 1.0), min_size=1, max_size=5),
    rates=st.lists(st.floats(0.05, 10.0), min_size=5, max_size=5),
)
def test_hyperexponential_mean_is_mixture_of_phase_means(probs, rates):
    """Property: the mixture mean equals the probability-weighted phase means."""
    probs_arr = np.asarray(probs)
    probs_arr = probs_arr / probs_arr.sum()
    rates_arr = np.asarray(rates[: probs_arr.size])
    dist = HyperExponential(probs=probs_arr, rates=rates_arr)
    assert dist.mean() == pytest.approx(float(np.sum(probs_arr / rates_arr)), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.floats(0.1, 50.0))
def test_exponential_samples_non_negative(rate):
    """Property: exponential variates are never negative."""
    rng = np.random.default_rng(0)
    dist = Exponential(rate)
    assert np.all(dist.sample_many(rng, 100) >= 0.0)
