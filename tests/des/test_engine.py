"""Tests for the discrete-event simulation engine."""

from __future__ import annotations

import pytest

from repro.des.engine import Event, EventScheduler, Simulator
from repro.errors import SimulationError


def test_scheduler_orders_by_time():
    scheduler = EventScheduler()
    scheduler.push(5.0, Event("late"))
    scheduler.push(1.0, Event("early"))
    scheduler.push(3.0, Event("middle"))
    names = [scheduler.pop()[1].name for _ in range(3)]
    assert names == ["early", "middle", "late"]


def test_scheduler_breaks_ties_by_insertion_order():
    scheduler = EventScheduler()
    scheduler.push(1.0, Event("first"))
    scheduler.push(1.0, Event("second"))
    assert scheduler.pop()[1].name == "first"
    assert scheduler.pop()[1].name == "second"


def test_scheduler_rejects_negative_time():
    scheduler = EventScheduler()
    with pytest.raises(SimulationError):
        scheduler.push(-1.0, Event("bad"))


def test_scheduler_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventScheduler().pop()


def test_simulator_advances_clock_and_counts_events():
    simulator = Simulator()
    seen = []
    simulator.schedule(2.0, Event("a", callback=lambda sim, ev: seen.append(sim.now)))
    simulator.schedule(1.0, Event("b", callback=lambda sim, ev: seen.append(sim.now)))
    end = simulator.run()
    assert seen == [1.0, 2.0]
    assert end == 2.0
    assert simulator.events_processed == 2


def test_simulator_callbacks_can_schedule_more_events():
    simulator = Simulator()
    fired = []

    def chain(sim, event):
        fired.append(sim.now)
        if len(fired) < 3:
            sim.schedule(1.0, Event("chain", callback=chain))

    simulator.schedule(1.0, Event("chain", callback=chain))
    simulator.run()
    assert fired == [1.0, 2.0, 3.0]


def test_simulator_until_bound():
    simulator = Simulator()
    fired = []
    for delay in (1.0, 2.0, 10.0):
        simulator.schedule(delay, Event("e", callback=lambda sim, ev: fired.append(sim.now)))
    simulator.run(until=5.0)
    assert fired == [1.0, 2.0]
    assert simulator.now == 5.0
    assert len(simulator.scheduler) == 1


def test_simulator_max_events_bound():
    simulator = Simulator()
    for delay in (1.0, 2.0, 3.0):
        simulator.schedule(delay, Event("e", callback=lambda sim, ev: None))
    simulator.run(max_events=2)
    assert simulator.events_processed == 2


def test_simulator_stop_from_callback():
    simulator = Simulator()
    simulator.schedule(1.0, Event("stop", callback=lambda sim, ev: sim.stop()))
    simulator.schedule(2.0, Event("never", callback=lambda sim, ev: pytest.fail("should not fire")))
    simulator.run()
    assert simulator.now == 1.0


def test_cancelled_events_are_skipped():
    simulator = Simulator()
    fired = []
    event = Event("cancelled", callback=lambda sim, ev: fired.append("cancelled"))
    simulator.schedule(1.0, event)
    event.cancel()
    simulator.schedule(2.0, Event("kept", callback=lambda sim, ev: fired.append("kept")))
    simulator.run()
    assert fired == ["kept"]


def test_schedule_in_past_rejected():
    simulator = Simulator()
    simulator.schedule(1.0, Event("a", callback=lambda sim, ev: None))
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.schedule_at(0.5, Event("past"))
    with pytest.raises(SimulationError):
        simulator.schedule(-1.0, Event("negative"))
