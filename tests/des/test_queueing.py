"""Tests for the finite-capacity queue simulator (G/HEXP/1/Q)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.distributions import Deterministic, Exponential, HyperExponential
from repro.des.queueing import FiniteQueueSimulator
from repro.errors import ConfigurationError


def test_underloaded_queue_has_no_waiting():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(10.0), service=Deterministic(1.0), seed=0
    )
    records = queue.run(50)
    assert all(r.delivered for r in records)
    assert all(r.waiting_time == pytest.approx(0.0) for r in records)
    assert all(r.sojourn_time == pytest.approx(1.0) for r in records)


def test_metrics_require_run_first():
    queue = FiniteQueueSimulator(arrival=Deterministic(1.0), service=Deterministic(0.5))
    with pytest.raises(ConfigurationError):
        queue.metrics()


def test_overloaded_finite_queue_drops_customers():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(1.0), service=Deterministic(5.0), capacity=2, seed=0
    )
    queue.run(200)
    metrics = queue.metrics()
    assert metrics.n_dropped > 0
    assert metrics.n_arrivals == 200
    assert metrics.loss_probability > 0.4


def test_loss_probability_marks_customers_lost():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(10.0), service=Deterministic(1.0), loss_probability=1.0, seed=0
    )
    records = queue.run(20)
    assert all(r.lost for r in records)
    assert all(np.isinf(d) for d in queue.sojourn_times())


def test_sojourn_times_inf_for_dropped():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(1.0), service=Deterministic(10.0), capacity=0, seed=0
    )
    queue.run(30)
    sojourns = np.array(list(queue.sojourn_times()))
    assert np.isinf(sojourns).any()
    assert np.isfinite(sojourns).any()


def test_mm1_mean_sojourn_close_to_theory():
    """M/M/1 sanity check: E[T] = 1 / (mu - lambda)."""
    lam, mu = 0.5, 1.0
    queue = FiniteQueueSimulator(
        arrival=Exponential(lam), service=Exponential(mu), seed=3
    )
    queue.run(20000)
    metrics = queue.metrics()
    assert metrics.mean_sojourn_time == pytest.approx(1.0 / (mu - lam), rel=0.15)


def test_hyperexponential_service_records_phase():
    service = HyperExponential(probs=[0.5, 0.5], rates=[10.0, 1.0])
    queue = FiniteQueueSimulator(arrival=Deterministic(5.0), service=service, seed=1)
    records = queue.run(200)
    phases = {r.service_phase for r in records}
    assert phases.issubset({0, 1})
    assert len(phases) == 2


def test_departures_are_fifo_ordered():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(1.0),
        service=HyperExponential(probs=[0.8, 0.2], rates=[2.0, 0.2]),
        seed=5,
    )
    records = queue.run(300)
    departures = [r.departure_time for r in records if r.delivered]
    assert departures == sorted(departures)


def test_run_rejects_non_positive_customers():
    queue = FiniteQueueSimulator(arrival=Deterministic(1.0), service=Deterministic(0.5))
    with pytest.raises(ConfigurationError):
        queue.run(0)


@settings(max_examples=15, deadline=None)
@given(
    period=st.floats(1.0, 20.0),
    service_mean=st.floats(0.1, 5.0),
    n=st.integers(20, 120),
)
def test_sojourn_never_smaller_than_service_free_lower_bound(period, service_mean, n):
    """Property: every delivered customer's sojourn time is non-negative and
    at least as large as its waiting time."""
    queue = FiniteQueueSimulator(
        arrival=Deterministic(period), service=Exponential(1.0 / service_mean), seed=7
    )
    records = queue.run(n)
    for record in records:
        if record.delivered:
            assert record.sojourn_time >= record.waiting_time >= 0.0


def test_utilisation_between_zero_and_one():
    queue = FiniteQueueSimulator(
        arrival=Deterministic(2.0), service=Exponential(1.0), capacity=5, seed=2
    )
    queue.run(500)
    assert 0.0 <= queue.metrics().utilisation <= 1.0
