"""Tests for the Jackson transport-network model (paper Assumption 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.jackson import JacksonNetwork, JacksonStation, TransportNetworkModel
from repro.errors import ConfigurationError


def _two_hop(rate_in: float = 0.05, mu: float = 1.0) -> JacksonNetwork:
    return JacksonNetwork(
        [
            JacksonStation("switch", service_rate=mu, external_arrival_rate=rate_in),
            JacksonStation("router", service_rate=mu),
        ]
    )


def test_traffic_equations_feed_forward_chain():
    network = _two_hop(rate_in=0.2)
    assert network.arrival_rates == pytest.approx([0.2, 0.2])


def test_utilisation_and_stability():
    network = _two_hop(rate_in=0.5, mu=1.0)
    assert network.utilisations() == pytest.approx([0.5, 0.5])
    assert network.is_stable()


def test_unstable_network_detected():
    network = _two_hop(rate_in=1.5, mu=1.0)
    assert not network.is_stable()
    with pytest.raises(ConfigurationError):
        network.mean_queue_lengths()
    with pytest.raises(ConfigurationError):
        network.mean_station_delays()


def test_mm1_product_form_metrics():
    network = _two_hop(rate_in=0.5, mu=1.0)
    # Each M/M/1 with rho = 0.5: L = 1, W = 1/(mu - lambda) = 2.
    assert network.mean_queue_lengths() == pytest.approx([1.0, 1.0])
    assert network.mean_station_delays() == pytest.approx([2.0, 2.0])
    assert network.mean_path_delay() == pytest.approx(4.0)


def test_routing_matrix_validation():
    stations = [JacksonStation("a", 1.0, 0.1), JacksonStation("b", 1.0)]
    with pytest.raises(ConfigurationError):
        JacksonNetwork(stations, routing=np.array([[0.0, 1.2], [0.0, 0.0]]))
    with pytest.raises(ConfigurationError):
        JacksonNetwork(stations, routing=np.zeros((3, 3)))
    with pytest.raises(ConfigurationError):
        JacksonNetwork([])


def test_station_validation():
    with pytest.raises(ConfigurationError):
        JacksonStation("bad", service_rate=0.0)
    with pytest.raises(ConfigurationError):
        JacksonStation("bad", service_rate=1.0, external_arrival_rate=-0.1)


def test_transport_model_respects_bound():
    model = TransportNetworkModel(bound_ms=3.0, seed=0)
    delays = model.sample_delays(5000)
    assert np.all(delays <= 3.0 + 1e-12)
    assert np.all(delays >= 0.0)
    assert model.bound == 3.0


def test_transport_model_default_bound_exceeds_mean():
    model = TransportNetworkModel(seed=0)
    assert model.bound > model.network.mean_path_delay()


def test_transport_model_rejects_unstable_network():
    unstable = _two_hop(rate_in=2.0, mu=1.0)
    with pytest.raises(ConfigurationError):
        TransportNetworkModel(network=unstable)


def test_transport_model_single_sample_matches_vector_path():
    model = TransportNetworkModel(bound_ms=5.0, seed=1)
    singles = np.array([model.sample_delay() for _ in range(500)])
    assert np.all(singles <= 5.0)


@settings(max_examples=25, deadline=None)
@given(rate=st.floats(0.01, 0.9), mu=st.floats(1.0, 5.0))
def test_assumption1_bound_holds_for_any_stable_chain(rate, mu):
    """Property (Assumption 1): sampled transport delays never exceed D."""
    if rate >= mu:
        rate = 0.5 * mu
    network = JacksonNetwork(
        [
            JacksonStation("s1", service_rate=mu, external_arrival_rate=rate),
            JacksonStation("s2", service_rate=mu),
        ]
    )
    model = TransportNetworkModel(network=network, seed=3)
    delays = model.sample_delays(200)
    assert np.all(delays <= model.bound + 1e-12)
