"""Tests for the analysis helpers (heatmaps, statistics, profiling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.heatmap import HeatmapGrid
from repro.analysis.profiling import (
    HARDWARE_PROFILES,
    scale_timings_to_hardware,
    time_callable,
    timings_to_table_row,
)
from repro.analysis.statistics import mean_confidence_interval, summarize
from repro.core.pipeline import PipelineTimings
from repro.errors import ConfigurationError, DimensionError


# ------------------------------------------------------------------- heatmap
def test_heatmap_grid_accumulates_samples():
    grid = HeatmapGrid([0.01, 0.05], [10, 100], label="test")
    grid.add_sample(0.01, 10, 2.0)
    grid.add_sample(0.01, 10, 4.0)
    grid.add_sample(0.05, 100, 10.0)
    assert grid.cell(0.01, 10).mean == pytest.approx(3.0)
    assert grid.cell(0.01, 10).std > 0.0
    assert np.isnan(grid.cell(0.05, 10).mean)
    assert grid.max_mean() == pytest.approx(10.0)
    assert grid.min_mean() == pytest.approx(3.0)


def test_heatmap_matrix_orientation():
    grid = HeatmapGrid([0.01, 0.05], [10, 100])
    grid.add_sample(0.05, 100, 7.0)
    matrix = grid.matrix()
    assert matrix.shape == (2, 2)
    assert matrix[1, 1] == pytest.approx(7.0)


def test_heatmap_text_and_records():
    grid = HeatmapGrid([0.01], [10], label="demo")
    grid.add_sample(0.01, 10, 1.5)
    text = grid.to_text()
    assert "demo" in text and "1.50" in text
    records = grid.as_records()
    assert len(records) == 1
    assert records[0]["mean_rmse_mm"] == pytest.approx(1.5)
    assert records[0]["n_repetitions"] == 1


def test_heatmap_validation():
    with pytest.raises(ConfigurationError):
        HeatmapGrid([], [10])
    grid = HeatmapGrid([0.01], [10])
    with pytest.raises(ConfigurationError):
        grid.cell(0.02, 10)


# ---------------------------------------------------------------- statistics
def test_mean_confidence_interval():
    samples = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    interval = mean_confidence_interval(samples, level=0.95)
    assert interval.mean == pytest.approx(3.0)
    assert interval.low < 3.0 < interval.high
    assert interval.n_samples == 5


def test_confidence_interval_single_sample():
    interval = mean_confidence_interval(np.array([2.0]))
    assert interval.half_width == 0.0


def test_summarize_keys_and_empty_rejected():
    stats = summarize(np.array([1.0, 2.0, 3.0]))
    assert set(stats) == {"mean", "std", "min", "max", "p50", "p95"}
    with pytest.raises(DimensionError):
        summarize(np.array([]))
    with pytest.raises(DimensionError):
        mean_confidence_interval(np.array([]))


# ----------------------------------------------------------------- profiling
def test_hardware_profiles_ordering():
    """The paper's platform ordering: Pi slower than Jetson, laptop, edge."""
    pi = HARDWARE_PROFILES["raspberry-pi3"]
    jetson = HARDWARE_PROFILES["jetson-nano"]
    laptop = HARDWARE_PROFILES["laptop"]
    edge = HARDWARE_PROFILES["edge-server"]
    assert pi.training_scale > jetson.training_scale > laptop.training_scale >= edge.training_scale


def test_scale_timings_projection_preserves_ratios():
    projections = scale_timings_to_hardware(60.0, 1.0, reference="laptop")
    assert set(projections) == set(HARDWARE_PROFILES)
    pi = projections["raspberry-pi3"]
    laptop = projections["laptop"]
    assert laptop["training_min"] == pytest.approx(1.0)
    expected_ratio = (
        HARDWARE_PROFILES["raspberry-pi3"].training_scale / HARDWARE_PROFILES["laptop"].training_scale
    )
    assert pi["training_min"] / laptop["training_min"] == pytest.approx(expected_ratio)


def test_scale_timings_unknown_reference():
    with pytest.raises(KeyError):
        scale_timings_to_hardware(1.0, 1.0, reference="mainframe")


def test_time_callable_and_table_row():
    stage = time_callable(lambda: sum(range(1000)), repetitions=3)
    assert stage.n_runs == 3
    assert stage.mean_s >= 0.0
    assert stage.mean_ms == pytest.approx(stage.mean_s * 1000.0)
    row = timings_to_table_row(
        PipelineTimings(load_data_s=1.0, downsampling_s=0.5, quality_check_s=2.0, training_s=3.0)
    )
    assert row["training_model_s"] == 3.0
    assert row["check_quality_s"] == 2.0
