"""Tests for the DH forward kinematics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, RobotError
from repro.robot.kinematics import DhLink, ForwardKinematics, dh_transform


def test_dh_transform_identity_for_zero_parameters():
    assert np.allclose(dh_transform(0.0, 0.0, 0.0, 0.0), np.eye(4))


def test_dh_transform_pure_translation():
    transform = dh_transform(a=1.0, alpha=0.0, d=2.0, theta=0.0)
    assert np.allclose(transform[:3, 3], [1.0, 0.0, 2.0])
    assert np.allclose(transform[:3, :3], np.eye(3))


def test_dh_transform_rotation_about_z():
    transform = dh_transform(a=0.0, alpha=0.0, d=0.0, theta=np.pi / 2.0)
    assert np.allclose(transform[:3, :3] @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0], atol=1e-12)


def test_single_revolute_link_end_effector():
    fk = ForwardKinematics([DhLink(a=1.0, alpha=0.0, d=0.0, theta=0.0)])
    assert np.allclose(fk.end_effector_position([0.0]), [1.0, 0.0, 0.0])
    assert np.allclose(fk.end_effector_position([np.pi / 2.0]), [0.0, 1.0, 0.0], atol=1e-12)


def test_prismatic_link_extends_along_z():
    fk = ForwardKinematics([DhLink(a=0.0, alpha=0.0, d=0.5, theta=0.0, joint_type="prismatic")])
    assert np.allclose(fk.end_effector_position([0.2]), [0.0, 0.0, 0.7])


def test_two_link_planar_arm_matches_textbook():
    links = [
        DhLink(a=1.0, alpha=0.0, d=0.0, theta=0.0),
        DhLink(a=0.5, alpha=0.0, d=0.0, theta=0.0),
    ]
    fk = ForwardKinematics(links)
    q1, q2 = 0.3, 0.7
    expected = [
        np.cos(q1) + 0.5 * np.cos(q1 + q2),
        np.sin(q1) + 0.5 * np.sin(q1 + q2),
        0.0,
    ]
    assert np.allclose(fk.end_effector_position([q1, q2]), expected)


def test_invalid_joint_type_rejected():
    with pytest.raises(RobotError):
        DhLink(a=0.0, alpha=0.0, d=0.0, theta=0.0, joint_type="spherical")


def test_empty_chain_rejected():
    with pytest.raises(RobotError):
        ForwardKinematics([])


def test_wrong_joint_count_rejected():
    fk = ForwardKinematics([DhLink(1.0, 0.0, 0.0, 0.0)])
    with pytest.raises(DimensionError):
        fk.end_effector_position([0.0, 0.1])
    with pytest.raises(DimensionError):
        fk.positions(np.zeros((3, 2)))


def test_link_positions_count():
    links = [DhLink(0.3, 0.0, 0.1, 0.0) for _ in range(4)]
    fk = ForwardKinematics(links)
    points = fk.link_positions(np.zeros(4))
    assert points.shape == (5, 3)  # base + one frame per link


def test_positions_vectorised_matches_scalar():
    links = [DhLink(0.3, np.pi / 2, 0.1, 0.0), DhLink(0.2, 0.0, 0.0, 0.0)]
    fk = ForwardKinematics(links)
    trajectory = np.array([[0.1, 0.2], [0.5, -0.3], [1.0, 1.0]])
    stacked = fk.positions(trajectory)
    for row, joints in zip(stacked, trajectory):
        assert np.allclose(row, fk.end_effector_position(joints))


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(-np.pi, np.pi), min_size=2, max_size=2))
def test_reach_bounds_end_effector(joints):
    """Property: the end effector never lies farther than the chain's reach."""
    links = [DhLink(0.4, np.pi / 2, 0.2, 0.0), DhLink(0.3, 0.0, 0.0, 0.1)]
    fk = ForwardKinematics(links)
    position = fk.end_effector_position(joints)
    assert np.linalg.norm(position) <= fk.reach() + 1e-9


def test_base_transform_offsets_result():
    base = np.eye(4)
    base[:3, 3] = [0.0, 0.0, 1.0]
    fk = ForwardKinematics([DhLink(1.0, 0.0, 0.0, 0.0)], base_transform=base)
    assert np.allclose(fk.end_effector_position([0.0]), [1.0, 0.0, 1.0])
    with pytest.raises(DimensionError):
        ForwardKinematics([DhLink(1.0, 0.0, 0.0, 0.0)], base_transform=np.eye(3))
