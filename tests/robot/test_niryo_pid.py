"""Tests for the Niryo arm description and the PID joint controller."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionError, RobotError
from repro.robot.niryo import NiryoOneArm, NiryoOneLimits
from repro.robot.pid import JointPidController, PidGains


# ----------------------------------------------------------------- Niryo arm
def test_arm_has_six_joints():
    arm = NiryoOneArm()
    assert arm.n_joints == 6
    assert arm.kinematics.n_joints == 6


def test_home_pose_within_limits_and_reach():
    arm = NiryoOneArm()
    home = arm.home_pose()
    assert np.allclose(arm.clamp(home), home)
    distance = arm.distance_from_origin_mm(home)
    assert 100.0 < distance < 1000.0


def test_clamp_respects_limits():
    arm = NiryoOneArm()
    wild = np.array([10.0, -10.0, 10.0, -10.0, 10.0, -10.0])
    clamped = arm.clamp(wild)
    assert np.all(clamped <= arm.limits.position_max + 1e-12)
    assert np.all(clamped >= arm.limits.position_min - 1e-12)


def test_limits_max_step():
    limits = NiryoOneLimits()
    step = limits.max_step(0.02)
    assert step.shape == (6,)
    assert np.all(step > 0.0)


def test_distance_from_origin_mm_shapes():
    arm = NiryoOneArm()
    with pytest.raises(DimensionError):
        arm.end_effector_mm(np.zeros(5))
    with pytest.raises(DimensionError):
        arm.trajectory_distance_mm(np.zeros((3, 5)))
    series = arm.trajectory_distance_mm(np.tile(arm.home_pose(), (4, 1)))
    assert series.shape == (4,)
    assert np.allclose(series, series[0])


def test_workspace_range_matches_paper_scale(inexperienced_stream):
    """The pick-and-place sweep stays in the few-hundred-millimetre range of Fig. 6."""
    arm = NiryoOneArm()
    distances = arm.trajectory_distance_mm(inexperienced_stream.commands)
    assert distances.min() > 150.0
    assert distances.max() < 700.0
    assert distances.max() - distances.min() > 100.0


# ----------------------------------------------------------------------- PID
def test_pid_gains_validation():
    with pytest.raises(RobotError):
        PidGains(kp=-1.0)
    with pytest.raises(RobotError):
        PidGains(integral_limit=0.0)


def test_pid_constructor_validation():
    with pytest.raises(RobotError):
        JointPidController(0)
    with pytest.raises(RobotError):
        JointPidController(2, dt_s=0.0)
    with pytest.raises(DimensionError):
        JointPidController(2, velocity_limits=np.ones(3))


def test_pid_converges_to_constant_target():
    controller = JointPidController(3, dt_s=0.02)
    controller.reset(np.zeros(3))
    target = np.array([0.3, -0.2, 0.1])
    for _ in range(200):
        position = controller.step(target)
    assert np.allclose(position, target, atol=0.01)


def test_pid_settling_time_in_paper_range():
    """The step-response settling time is a few hundred milliseconds (Fig. 10)."""
    controller = JointPidController(1, dt_s=0.02)
    steps = controller.settling_steps(step_size=0.1)
    assert 5 <= steps <= 40  # 100 ms .. 800 ms


def test_pid_velocity_limits_respected():
    limits = np.array([0.5])
    controller = JointPidController(1, dt_s=0.02, velocity_limits=limits)
    controller.reset(np.zeros(1))
    controller.step(np.array([10.0]))
    assert abs(controller.velocity[0]) <= 0.5 + 1e-12


def test_pid_track_full_trajectory_shape():
    controller = JointPidController(2, dt_s=0.02)
    controller.reset(np.zeros(2))
    targets = np.cumsum(np.full((50, 2), 0.01), axis=0)
    executed = controller.track(targets)
    assert executed.shape == targets.shape
    # Tracking a slow ramp: the final error stays small.
    assert np.linalg.norm(executed[-1] - targets[-1]) < 0.05


def test_pid_track_rejects_bad_shapes():
    controller = JointPidController(2)
    with pytest.raises(DimensionError):
        controller.track(np.zeros((5, 3)))
    with pytest.raises(DimensionError):
        controller.step(np.zeros(3))
    with pytest.raises(DimensionError):
        controller.reset(np.zeros(3))


@settings(max_examples=20, deadline=None)
@given(st.floats(0.02, 0.5))
def test_pid_step_response_is_bounded(step_size):
    """Property: the PID never overshoots a step by more than 100 %."""
    controller = JointPidController(1, dt_s=0.02)
    controller.reset(np.zeros(1))
    peak = 0.0
    for _ in range(300):
        position = controller.step(np.array([step_size]))
        peak = max(peak, abs(position[0]))
    assert peak <= 2.0 * step_size + 1e-9
