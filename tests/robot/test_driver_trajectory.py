"""Tests for the robot driver loop and trajectory metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionError
from repro.robot.driver import DriverConfig, RobotDriver
from repro.robot.niryo import NiryoOneArm
from repro.robot.trajectory import (
    JointTrajectory,
    TrajectoryError,
    distance_from_origin_mm,
    trajectory_rmse_mm,
)


def _ramp_commands(n: int = 50, step: float = 0.01) -> np.ndarray:
    arm = NiryoOneArm()
    home = arm.home_pose()
    deltas = np.zeros((n, 6))
    deltas[:, 0] = step
    return home + np.cumsum(deltas, axis=0)


# -------------------------------------------------------------------- driver
def test_driver_config_validation():
    with pytest.raises(ConfigurationError):
        DriverConfig(command_period_ms=0.0)
    with pytest.raises(ConfigurationError):
        DriverConfig(tolerance_ms=-1.0)
    with pytest.raises(ConfigurationError):
        DriverConfig(fallback="panic")


def test_driver_executes_on_time_commands_exactly_in_kinematic_mode():
    commands = _ramp_commands()
    driver = RobotDriver(config=DriverConfig(use_pid=False))
    log = driver.run(commands, np.ones(len(commands), dtype=bool))
    assert np.allclose(log.executed_trajectory().joints, commands)
    assert log.n_missing == 0
    assert log.n_injected == 0


def test_driver_hold_fallback_repeats_previous_command():
    commands = _ramp_commands(20)
    mask = np.ones(20, dtype=bool)
    mask[10:13] = False
    driver = RobotDriver(config=DriverConfig(fallback="hold"))
    log = driver.run(commands, mask)
    executed = np.array(log.executed)
    assert np.allclose(executed[10], commands[9])
    assert np.allclose(executed[12], commands[9])
    assert log.n_missing == 3


def test_driver_injects_forecasts_when_provided():
    commands = _ramp_commands(20)
    mask = np.ones(20, dtype=bool)
    mask[5] = False
    forecasts = commands.copy()
    forecasts[5] = commands[5] + 0.002
    driver = RobotDriver()
    log = driver.run(commands, mask, forecasts=forecasts)
    assert np.allclose(np.array(log.executed)[5], forecasts[5])
    assert log.n_injected == 1


def test_driver_stop_fallback_freezes_position():
    commands = _ramp_commands(10)
    mask = np.ones(10, dtype=bool)
    mask[4:] = False
    driver = RobotDriver(config=DriverConfig(fallback="stop"))
    log = driver.run(commands, mask)
    executed = np.array(log.executed)
    assert np.allclose(executed[4:], executed[3])


def test_driver_clamps_to_joint_limits():
    arm = NiryoOneArm()
    crazy = np.tile(arm.limits.position_max * 3.0, (5, 1))
    driver = RobotDriver()
    log = driver.run(crazy, np.ones(5, dtype=bool))
    executed = np.array(log.executed)
    assert np.all(executed <= arm.limits.position_max + 1e-9)


def test_driver_pid_mode_lags_but_follows():
    commands = _ramp_commands(100, step=0.005)
    driver = RobotDriver(config=DriverConfig(use_pid=True))
    log = driver.run(commands, np.ones(100, dtype=bool))
    executed = np.array(log.executed)
    # The PID tracks the slow ramp within a small error by the end.
    assert np.linalg.norm(executed[-1] - commands[-1]) < 0.05
    assert not np.allclose(executed, commands)  # but not perfectly


def test_driver_shape_validation():
    driver = RobotDriver()
    with pytest.raises(DimensionError):
        driver.run(np.zeros((5, 6)), np.ones(4, dtype=bool))
    with pytest.raises(DimensionError):
        driver.run(np.zeros((5, 6)), np.ones(5, dtype=bool), forecasts=np.zeros((4, 6)))
    with pytest.raises(DimensionError):
        driver.execute_slot(np.zeros(3))


# ---------------------------------------------------------------- trajectory
def test_joint_trajectory_container():
    commands = _ramp_commands(30)
    times = np.arange(30) * 0.02
    trajectory = JointTrajectory(times, commands, label="defined")
    assert len(trajectory) == 30
    assert trajectory.n_joints == 6
    assert trajectory.duration_s == pytest.approx(29 * 0.02)
    sliced = trajectory.slice_time(0.1, 0.2)
    assert len(sliced) == 6
    assert trajectory.distance_from_origin_mm().shape == (30,)


def test_joint_trajectory_validation():
    with pytest.raises(DimensionError):
        JointTrajectory(np.arange(3), np.zeros((4, 6)))
    with pytest.raises(DimensionError):
        JointTrajectory(np.arange(3), np.zeros(3))


def test_trajectory_error_between_identical_is_zero():
    commands = _ramp_commands(20)
    times = np.arange(20) * 0.02
    a = JointTrajectory(times, commands)
    b = JointTrajectory(times, commands.copy())
    error = TrajectoryError.between(a, b)
    assert error.rmse_mm == pytest.approx(0.0, abs=1e-9)
    assert error.max_error_mm == pytest.approx(0.0, abs=1e-9)


def test_trajectory_rmse_positive_for_perturbation():
    commands = _ramp_commands(20)
    perturbed = commands + 0.01
    rmse = trajectory_rmse_mm(perturbed, commands)
    assert rmse > 0.5  # a 0.01 rad offset moves the end effector by millimetres
    with pytest.raises(DimensionError):
        trajectory_rmse_mm(commands[:10], commands)


def test_distance_from_origin_convenience():
    commands = _ramp_commands(5)
    series = distance_from_origin_mm(commands)
    assert series.shape == (5,)
    assert np.all(series > 0.0)
