"""Bit-equality and semantics tests for the vectorized channel subsystem.

``sample_channel_delays`` (serial, one repetition per seed) is the oracle:
for every channel kind, ``sample_channel_delays_batch`` must reproduce the
stacked serial realisations exactly — not approximately.  The module also
pins down the compound-channel contract (delays add, losses union, stage
order never changes the loss set) and the trace-replay phase cycling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ChannelSpec,
    clean_channel,
    compound_channel,
    compound_stage_seed,
    get_scenario,
    handover_channel,
    jammer_channel,
    loss_burst_channel,
    markov_interference_channel,
    periodic_loss_channel,
    random_loss_channel,
    sample_channel_delays,
    sample_channel_delays_batch,
    scenario_names,
    trace_channel,
    wireless_channel,
)

N = 400
SEEDS = [11, 7777, 2**31 - 3, 123456789]

#: One spec per channel kind, sized so every kind exercises losses at N=400.
KIND_SPECS = {
    "clean": clean_channel(nominal_delay_ms=2.0),
    "wireless": wireless_channel(n_robots=25, probability=0.05, duration_slots=100),
    "jammer": jammer_channel(),
    "loss-burst": loss_burst_channel(burst_length=10, n_bursts=3, min_gap=30),
    "periodic-loss": periodic_loss_channel(period=60, burst_length=6),
    "random-loss": random_loss_channel(loss_probability=0.2),
    "trace": trace_channel((2.0, 4.0, float("inf"), 3.0, 2.5)),
    "markov-interference": markov_interference_channel(),
    "handover": handover_channel(period=80, outage=6),
    "compound": compound_channel(
        wireless_channel(n_robots=15, probability=0.025, duration_slots=50),
        jammer_channel(),
        markov_interference_channel(),
    ),
}


@pytest.mark.parametrize("kind", sorted(KIND_SPECS))
def test_batched_equals_serial_for_every_kind(kind):
    channel = KIND_SPECS[kind]
    serial = np.stack([sample_channel_delays(channel, N, seed) for seed in SEEDS])
    batched = sample_channel_delays_batch(channel, N, SEEDS)
    assert batched.shape == (len(SEEDS), N)
    assert np.array_equal(serial, batched)


@pytest.mark.parametrize("name", sorted(set(scenario_names())))
def test_batched_equals_serial_for_every_preset_channel(name):
    channel = get_scenario(name).channel
    serial = np.stack([sample_channel_delays(channel, N, seed) for seed in SEEDS[:2]])
    assert np.array_equal(serial, sample_channel_delays_batch(channel, N, SEEDS[:2]))


def test_batch_sampler_rejects_empty_seed_list():
    with pytest.raises(ConfigurationError):
        sample_channel_delays_batch(clean_channel(), N, [])


# ------------------------------------------------------------------- compound
def test_compound_delays_add_and_losses_union():
    lossy = periodic_loss_channel(period=50, burst_length=5, nominal_delay_ms=1.5)
    steady = clean_channel(nominal_delay_ms=3.0)
    compound = compound_channel(lossy, steady)
    delays = sample_channel_delays(compound, N, seed=5)
    # A lost stage propagates: the periodic stage's inf survives the sum.
    lost = ~np.isfinite(delays)
    assert np.array_equal(lost, ~np.isfinite(sample_channel_delays(lossy, N, compound_stage_seed(5, lossy))))
    assert lost.sum() == N // 50 * 5
    # Delivered commands carry the summed delay of every stage.
    assert np.allclose(delays[~lost], 4.5)


def test_compound_stage_order_does_not_change_the_loss_set():
    stage_a = jammer_channel()
    stage_b = markov_interference_channel()
    stage_c = random_loss_channel(loss_probability=0.1)
    forward = sample_channel_delays(compound_channel(stage_a, stage_b, stage_c), N, seed=9)
    reversed_ = sample_channel_delays(compound_channel(stage_c, stage_b, stage_a), N, seed=9)
    # Per-stage seeds key on stage *content*, so permuting stages permutes
    # only the summation order: the loss set is identical and the delivered
    # delays agree up to float addition order.
    assert np.array_equal(np.isinf(forward), np.isinf(reversed_))
    finite = np.isfinite(forward)
    assert np.allclose(forward[finite], reversed_[finite])


def test_compound_duplicate_stages_get_distinct_seeds():
    stage = random_loss_channel(loss_probability=0.3)
    doubled = compound_channel(stage, stage)
    delays = sample_channel_delays(doubled, N, seed=4)
    single = sample_channel_delays(stage, N, compound_stage_seed(4, stage, occurrence=0))
    other = sample_channel_delays(stage, N, compound_stage_seed(4, stage, occurrence=1))
    # The two occurrences draw decorrelated realisations, not the same one.
    assert not np.array_equal(np.isinf(single), np.isinf(other))
    assert np.array_equal(np.isinf(delays), np.isinf(single) | np.isinf(other))


def test_compound_stage_seeds_are_hash_decorrelated():
    """Regression: the old additive ``seed + 9973*(k+1)`` scheme let dense
    repetition seeds collide across stages; the hash derivation must not."""
    stage = jammer_channel()
    other = markov_interference_channel()
    seeds = {compound_stage_seed(seed, stage) for seed in range(2000)}
    assert len(seeds) == 2000  # no collisions across dense base seeds
    assert compound_stage_seed(3, stage) != compound_stage_seed(3, other)
    # Stage seeds never alias the base repetition stream shifted by a constant.
    deltas = {compound_stage_seed(seed, stage) - seed for seed in range(100)}
    assert len(deltas) > 1


def test_compound_rejects_empty_stages():
    with pytest.raises(ConfigurationError):
        sample_channel_delays(ChannelSpec.make("compound", stages=()), N, seed=1)
    with pytest.raises(ConfigurationError):
        sample_channel_delays_batch(ChannelSpec.make("compound", stages=()), N, [1])


# --------------------------------------------------------------------- trace
def test_trace_channel_cycles_with_phase_offsets():
    recording = (1.0, 2.0, 3.0, float("inf"), 5.0)
    base = np.array(recording)
    cycled = np.tile(base, 4)[:12]
    channel = trace_channel(recording)
    # Every realisation is the recording cycled from some seed-derived phase,
    # and different seeds land on different phases.
    starts = set()
    for seed in range(10):
        delays = sample_channel_delays(channel, 12, seed=seed)
        matches = [
            offset
            for offset in range(len(recording))
            if np.array_equal(delays, np.tile(np.roll(base, -offset), 4)[:12])
        ]
        assert len(matches) == 1, f"seed {seed} is not a cyclic replay"
        starts.add(matches[0])
    assert len(starts) > 1  # repetitions start at different phases
    # Fixed-phase replay is available for regression-style runs.
    fixed = trace_channel(recording, cycle_offsets=False)
    assert np.array_equal(sample_channel_delays(fixed, 12, seed=1), cycled)
    assert np.array_equal(sample_channel_delays(fixed, 12, seed=99), cycled)


def test_trace_channel_validation():
    with pytest.raises(ConfigurationError):
        trace_channel(())
    with pytest.raises(ConfigurationError):
        trace_channel((1.0, -2.0))
    with pytest.raises(ConfigurationError):
        trace_channel((1.0, float("nan")))
