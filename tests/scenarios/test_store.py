"""Tests for the persistent content-addressed result store and its
integration with the engine, the sweep executor, the analysis loader and the
CLI runner: round-trips, epoch invalidation, corruption tolerance, concurrent
writers, LRU caps, and hit/miss partitioning that stays bit-identical to a
cold serial run."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.analysis import load_sweep
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments
from repro.scenarios import (
    ENGINE_EPOCH,
    ResultStore,
    ScenarioSpec,
    SessionEngine,
    SessionResult,
    SweepExecutor,
    clean_channel,
    loss_burst_channel,
    scenario_grid,
)

#: A short run so the engine-backed tests stay fast.
RUN_SECONDS = 6.0


def _spec(**fields) -> ScenarioSpec:
    fields.setdefault("channel", loss_burst_channel(burst_length=8, n_bursts=2, min_gap=40))
    fields.setdefault("run_seconds", RUN_SECONDS)
    return ScenarioSpec(name="store-test", **fields)


def _synthetic_result(spec: ScenarioSpec) -> SessionResult:
    """A hand-built result row with awkward floats and an inf-marked loss."""
    return SessionResult(
        spec=spec,
        spec_hash=spec.spec_hash(),
        n_commands=5,
        rmse_no_forecast_mm=(0.1 + 0.2, 1.0 / 3.0),
        rmse_foreco_mm=(1e-17, 2.5),
        late_fraction=(0.25, 0.0),
        recovery_fraction=(1.0, 0.75),
        outcome=None,
        delays_ms=np.array([1.0, np.inf, 2.5, np.inf, 0.0]),
    )


# ------------------------------------------------------------------ basics
def test_round_trip_is_bit_identical(tmp_path):
    spec = _spec(channel=clean_channel())
    result = _synthetic_result(spec)
    store = ResultStore(tmp_path)
    path = store.put(spec, result)
    assert path.is_file() and store.contains(spec) and spec in store
    assert len(store) == 1

    loaded = ResultStore(tmp_path).get(spec)
    assert loaded is not None
    # Metric tuples, the summary dict and the delay trace (inf = lost
    # command) all round-trip bit-for-bit through the RFC-strict JSON shard.
    assert loaded.rmse_no_forecast_mm == result.rmse_no_forecast_mm
    assert loaded.rmse_foreco_mm == result.rmse_foreco_mm
    assert loaded.late_fraction == result.late_fraction
    assert loaded.recovery_fraction == result.recovery_fraction
    assert loaded.n_commands == result.n_commands
    assert loaded.to_dict() == result.to_dict()
    assert np.array_equal(loaded.delays_ms, result.delays_ms)
    assert loaded.spec is spec  # attached to the caller's spec object
    assert loaded.outcome is None  # trajectories are in-memory only


def test_contains_evict_clear_and_stats(tmp_path):
    store = ResultStore(tmp_path)
    specs = [_spec(channel=clean_channel(), seed=seed) for seed in (1, 2, 3)]
    for spec in specs:
        store.put(spec, _synthetic_result(spec))
    assert len(store) == 3
    assert store.evict(specs[0]) and not store.contains(specs[0])
    assert not store.evict(specs[0])  # already gone
    assert store.get(specs[0]) is None
    assert store.get(specs[1]) is not None
    stats = store.stats()
    assert stats.entries == 2 and stats.total_bytes > 0
    assert stats.writes == 3 and stats.evictions == 1
    assert stats.hits == 1 and stats.misses == 1 and stats.corrupted == 0
    assert stats.hit_fraction == 0.5
    assert store.clear() == 2 and len(store) == 0


def test_put_rejects_mismatched_hash(tmp_path):
    spec = _spec(channel=clean_channel())
    other = spec.with_(seed=7)
    with pytest.raises(ConfigurationError):
        ResultStore(tmp_path).put(other, _synthetic_result(spec))


def test_store_rejects_degenerate_caps(tmp_path):
    with pytest.raises(ConfigurationError):
        ResultStore(tmp_path, max_entries=0)
    with pytest.raises(ConfigurationError):
        ResultStore(tmp_path, max_bytes=0)


# ------------------------------------------------------------------- epoch
def test_epoch_invalidation(tmp_path):
    spec = _spec(channel=clean_channel())
    old = ResultStore(tmp_path, epoch=ENGINE_EPOCH)
    old.put(spec, _synthetic_result(spec))

    bumped = ResultStore(tmp_path, epoch=ENGINE_EPOCH + 1)
    assert bumped.get(spec) is None  # same spec hash, new code semantics
    assert not bumped.contains(spec)
    assert len(bumped) == 0
    # The old epoch's shards survive untouched (a downgrade still reads them).
    assert ResultStore(tmp_path, epoch=ENGINE_EPOCH).get(spec) is not None


# -------------------------------------------------------------- corruption
def test_corrupted_shard_counts_as_miss_and_is_removed(tmp_path):
    spec = _spec(channel=clean_channel())
    store = ResultStore(tmp_path)
    path = store.put(spec, _synthetic_result(spec))

    for garbage in ('{"truncated": ', "not json at all", '{"format": 999}'):
        path.write_text(garbage, encoding="utf-8")
        fresh = ResultStore(tmp_path)
        assert fresh.get(spec) is None
        assert fresh.stats().corrupted == 1
        assert not path.exists()  # quarantined, ready for a clean rewrite
        store.put(spec, _synthetic_result(spec))

    # A shard whose content address disagrees with its location is rejected.
    record = json.loads(path.read_text(encoding="utf-8"))
    record["spec_hash"] = "0" * 16
    path.write_text(json.dumps(record), encoding="utf-8")
    assert ResultStore(tmp_path).get(spec) is None


def test_concurrent_writers_same_key(tmp_path):
    spec = _spec(channel=clean_channel())
    result = _synthetic_result(spec)
    store = ResultStore(tmp_path)
    errors: list[Exception] = []

    def write() -> None:
        try:
            for _ in range(20):
                store.put(spec, result)
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=write) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    loaded = store.get(spec)
    assert loaded is not None and loaded.to_dict() == result.to_dict()
    assert len(store) == 1


# --------------------------------------------------------------------- lru
def test_lru_cap_evicts_least_recently_used(tmp_path):
    store = ResultStore(tmp_path, max_entries=2)
    specs = [_spec(channel=clean_channel(), seed=seed) for seed in (1, 2, 3)]
    store.put(specs[0], _synthetic_result(specs[0]))
    store.put(specs[1], _synthetic_result(specs[1]))
    assert store.get(specs[0]) is not None  # refresh: seed-1 is now the MRU
    store.put(specs[2], _synthetic_result(specs[2]))
    assert len(store) == 2
    assert store.contains(specs[0])  # survived thanks to the refresh
    assert not store.contains(specs[1])  # the LRU entry went
    assert store.contains(specs[2])  # the fresh write is never evicted
    assert store.stats().evictions == 1


def test_byte_cap_bounds_the_store(tmp_path):
    store = ResultStore(tmp_path)
    spec = _spec(channel=clean_channel(), seed=1)
    shard_bytes = store.put(spec, _synthetic_result(spec)).stat().st_size
    store.clear()

    capped = ResultStore(tmp_path, max_bytes=int(shard_bytes * 2.5))
    for seed in (1, 2, 3, 4):
        s = _spec(channel=clean_channel(), seed=seed)
        capped.put(s, _synthetic_result(s))
    assert len(capped) == 2  # only ~2.5 shards fit
    assert capped.stats().total_bytes <= capped.max_bytes
    assert capped.contains(_spec(channel=clean_channel(), seed=4))


# ------------------------------------------------------- engine integration
def test_engine_consults_store_before_computing(tmp_path):
    spec = _spec(repetitions=2)
    store = ResultStore(tmp_path)
    cold = SessionEngine(store=store).run(spec)
    assert store.stats().writes == 1

    warm_store = ResultStore(tmp_path)
    warm_engine = SessionEngine(store=warm_store)
    warm = warm_engine.run(spec)
    assert warm_store.stats().hits == 1 and warm_store.stats().writes == 0
    assert warm.to_dict() == cold.to_dict()
    assert warm.rmse_foreco_mm == cold.rmse_foreco_mm
    assert np.array_equal(warm.delays_ms, cold.delays_ms)
    assert warm.outcome is None
    # The disk hit lands in the memory cache: no second disk read.
    assert warm_engine.run(spec) is warm
    assert warm_store.stats().hits == 1


# -------------------------------------------------------- sweep integration
def test_interrupted_sweep_resumes_and_matches_cold_serial(tmp_path):
    base = _spec(repetitions=2)
    specs = scenario_grid(base, {"channel.burst_length": (5, 8, 12), "seed": (1, 2)})

    # "Interrupted halfway": only the first half of the grid got persisted.
    first_half = SweepExecutor(jobs=2, store=ResultStore(tmp_path)).run(specs[:3])
    assert (first_half.store_hits, first_half.store_misses) == (0, 3)

    resumed = SweepExecutor(jobs=2, store=ResultStore(tmp_path)).run(specs)
    assert (resumed.store_hits, resumed.store_misses) == (3, 3)
    assert resumed.hit_fraction == 0.5

    cold = SweepExecutor(jobs=1).run(specs)  # cold serial run, no store
    assert [row.to_dict() for row in resumed] == [row.to_dict() for row in cold]
    for row_r, row_c in zip(resumed, cold):
        assert row_r.rmse_foreco_mm == row_c.rmse_foreco_mm
        assert row_r.rmse_no_forecast_mm == row_c.rmse_no_forecast_mm
        assert np.array_equal(row_r.delays_ms, row_c.delays_ms)

    # A fully warm rerun computes nothing.
    warm = SweepExecutor(jobs=4, store=ResultStore(tmp_path)).run(specs)
    assert (warm.store_hits, warm.store_misses) == (6, 0)
    assert warm.hit_fraction == 1.0


def test_sweep_partition_counts_each_lookup_once(tmp_path):
    """Executor partition + engine lookup must not double-count misses."""
    base = _spec(repetitions=1)
    specs = scenario_grid(base, {"seed": (1, 2, 3)})
    cold_store = ResultStore(tmp_path)
    SweepExecutor(store=cold_store).run(specs)
    stats = cold_store.stats()
    assert (stats.hits, stats.misses) == (0, 3)  # one counted miss per spec
    warm_store = ResultStore(tmp_path)
    SweepExecutor(store=warm_store).run(specs)
    warm_stats = warm_store.stats()
    assert (warm_stats.hits, warm_stats.misses) == (3, 0)
    assert warm_stats.hit_fraction == 1.0


def test_store_root_expands_user(tmp_path, monkeypatch):
    """'~/...' store paths land in the home directory, not a literal './~'."""
    monkeypatch.setenv("HOME", str(tmp_path))
    store = ResultStore("~/cache/foreco")
    assert store.root == tmp_path / "cache" / "foreco"
    spec = _spec(channel=clean_channel())
    store.put(spec, _synthetic_result(spec))
    assert (tmp_path / "cache" / "foreco").is_dir()


def test_grown_grid_reuses_the_overlap(tmp_path):
    base = _spec(repetitions=1)
    small = scenario_grid(base, {"seed": (1, 2)})
    grown = scenario_grid(base, {"seed": (1, 2, 3, 4)})
    SweepExecutor(store=ResultStore(tmp_path)).run(small)
    sweep = SweepExecutor(store=ResultStore(tmp_path)).run(grown)
    assert (sweep.store_hits, sweep.store_misses) == (2, 2)


def test_process_backend_workers_write_back(tmp_path):
    base = _spec(repetitions=1)
    specs = scenario_grid(base, {"seed": (1, 2, 3)})
    sweep = SweepExecutor(jobs=2, backend="process", store=ResultStore(tmp_path)).run(specs)
    assert sweep.store_misses == 3
    assert len(ResultStore(tmp_path)) == 3  # persisted from the worker processes
    warm = SweepExecutor(jobs=2, backend="process", store=ResultStore(tmp_path)).run(specs)
    assert (warm.store_hits, warm.store_misses) == (3, 0)
    assert [row.to_dict() for row in warm] == [row.to_dict() for row in sweep]


def test_executor_store_engine_wiring(tmp_path):
    store = ResultStore(tmp_path)
    executor = SweepExecutor(store=store)
    assert executor.engine.store is store  # private engine adopts the store
    engine = SessionEngine(store=ResultStore(tmp_path / "other"))
    with pytest.raises(ConfigurationError):
        SweepExecutor(engine=engine, store=store)
    # An engine that already carries the store is accepted as-is.
    shared = SessionEngine(store=store)
    assert SweepExecutor(engine=shared).store is store


# ------------------------------------------------------------ analysis load
def test_load_sweep_rerenders_without_recompute(tmp_path):
    base = _spec(repetitions=1)
    specs = scenario_grid(base, {"seed": (1, 2)})
    computed = SweepExecutor(store=ResultStore(tmp_path)).run(specs)

    loaded = load_sweep(ResultStore(tmp_path), specs)
    assert loaded.to_records() == computed.to_records()
    assert "FoReCo" in loaded.to_table()
    assert (loaded.store_hits, loaded.store_misses) == (2, 0)

    extra = specs + [base.with_(seed=99)]
    with pytest.raises(ConfigurationError):
        load_sweep(ResultStore(tmp_path), extra)
    partial = load_sweep(ResultStore(tmp_path), extra, strict=False)
    assert len(partial) == 2 and partial.store_misses == 1


# -------------------------------------------------------------- runner CLI
def test_runner_store_and_resume_flags(tmp_path):
    root = str(tmp_path / "store")
    first = json.loads(
        run_experiments([], "ci", 42, fmt="json", scenarios=["bursty-loss"], store=root)
    )
    assert first["store"]["misses"] == 1 and first["store"]["hits"] == 0
    second = json.loads(
        run_experiments([], "ci", 42, fmt="json", scenarios=["bursty-loss"], store=root, resume=True)
    )
    assert second["store"]["hits"] == 1 and second["store"]["misses"] == 0
    assert second["scenarios"] == first["scenarios"]

    text = run_experiments([], "ci", 42, fmt="text", scenarios=["bursty-loss"], store=root)
    assert "store: 1 hits / 0 misses (100% reused)" in text

    with pytest.raises(ConfigurationError):  # --resume without --store
        run_experiments([], "ci", 42, fmt="json", scenarios=["bursty-loss"], resume=True)
    with pytest.raises(ConfigurationError):  # --resume against an empty store
        run_experiments(
            [], "ci", 42, fmt="json", scenarios=["bursty-loss"],
            store=str(tmp_path / "typo"), resume=True,
        )
