"""Combinator-grammar contracts: bounded, deterministic, always runnable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import Knob, ScenarioGrammar, ScenarioSpec, sample_channel_delays
from repro.scenarios.grammar import COMPOUND_STAGE_KINDS, GRAMMAR_KINDS

#: Command count of the default grammar base (6 s at 50 Hz) — the run length
#: every grammar candidate must stay feasible in.
BASE_COMMANDS = 300


@pytest.fixture(scope="module")
def grammar():
    """One default grammar shared by the module."""
    return ScenarioGrammar()


@pytest.fixture(scope="module")
def frontier(grammar):
    """The full enumerated frontier."""
    return grammar.enumerate_specs()


def test_frontier_is_bounded_unique_and_deterministic(grammar, frontier):
    assert len(frontier) == 94
    hashes = [spec.spec_hash() for spec in frontier]
    assert len(set(hashes)) == len(hashes)
    assert [spec.spec_hash() for spec in grammar.enumerate_specs()] == hashes


def test_frontier_round_robins_across_kinds(grammar):
    prefix = grammar.enumerate_specs(limit=len(GRAMMAR_KINDS))
    assert sorted(spec.channel.kind for spec in prefix) == sorted(GRAMMAR_KINDS)
    with pytest.raises(ConfigurationError):
        grammar.enumerate_specs(limit=0)


def test_every_candidate_is_a_frozen_named_spec(frontier):
    for spec in frontier:
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == f"grammar-{spec.channel.kind}"
        assert hash(spec) == hash(spec)  # frozen and hashable
        with pytest.raises(AttributeError):
            spec.seed = 1  # type: ignore[misc]


def test_every_frontier_candidate_is_runnable(frontier):
    """Feasibility invariant: no grammar candidate fails injector placement.

    ``sample_channel_delays`` exercises the same loss-injector validation as
    a full session run (burst placement, period/outage bounds) at a fraction
    of the cost.
    """
    for spec in frontier:
        delays = sample_channel_delays(spec.channel, BASE_COMMANDS, seed=1)
        assert delays.shape == (BASE_COMMANDS,)


def test_mutated_neighbors_stay_feasible(grammar):
    rng = np.random.default_rng(7)
    for _ in range(150):
        spec = grammar.random_spec(rng)
        for neighbor in grammar.neighbors(spec, rng, count=3):
            sample_channel_delays(neighbor.channel, BASE_COMMANDS, seed=2)


def test_neighbors_are_deterministic_given_rng(grammar, frontier):
    spec = frontier[0]
    first = grammar.neighbors(spec, np.random.default_rng(11), count=5)
    second = grammar.neighbors(spec, np.random.default_rng(11), count=5)
    assert [s.spec_hash() for s in first] == [s.spec_hash() for s in second]


def test_knob_jitter_respects_bounds_and_integrality():
    knob = Knob("n", (5, 10), 2, 12, integer=True)
    rng = np.random.default_rng(3)
    for _ in range(200):
        value = knob.jitter(10, rng)
        assert 2 <= value <= 12
        assert float(value).is_integer()
    bounded = Knob("p", (0.1,), 0.0, 0.2)
    for _ in range(200):
        assert 0.0 <= bounded.jitter(0.19, rng) <= 0.2


def test_grammar_rejects_bad_configuration():
    with pytest.raises(ConfigurationError):
        ScenarioGrammar(kinds=("bogus",))
    with pytest.raises(ConfigurationError):
        ScenarioGrammar(kinds=())
    with pytest.raises(ConfigurationError):
        ScenarioGrammar(base="not a spec")  # type: ignore[arg-type]


def test_restricted_grammar_only_emits_requested_kinds():
    grammar = ScenarioGrammar(kinds=("jammer", "handover"))
    kinds = {spec.channel.kind for spec in grammar.enumerate_specs()}
    assert kinds == {"jammer", "handover"}
    rng = np.random.default_rng(0)
    assert all(grammar.random_spec(rng).channel.kind in kinds for _ in range(20))


def test_compound_stages_are_grammar_kinds():
    assert set(COMPOUND_STAGE_KINDS) <= set(GRAMMAR_KINDS)
