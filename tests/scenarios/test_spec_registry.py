"""Tests for scenario specs (hashing, freezing) and the preset registry."""

from __future__ import annotations

import pytest

from repro.core import ForecoConfig
from repro.errors import ConfigurationError
from repro.scenarios import (
    ChannelSpec,
    ExperimentScale,
    ForecoSpec,
    ScenarioSpec,
    clean_channel,
    compound_channel,
    freeze_params,
    get_scale,
    get_scenario,
    jammer_channel,
    loss_burst_channel,
    register_scenario,
    scenario_catalog,
    scenario_names,
    wireless_channel,
)


def test_channel_spec_roundtrip_and_validation():
    spec = wireless_channel(n_robots=25, probability=0.05, duration_slots=100)
    assert spec.kind == "wireless"
    assert spec.options() == {"n_robots": 25, "probability": 0.05, "duration_slots": 100}
    updated = spec.updated(n_robots=5)
    assert updated.options()["n_robots"] == 5
    assert spec.options()["n_robots"] == 25  # original untouched
    with pytest.raises(ConfigurationError):
        ChannelSpec(kind="quantum")
    with pytest.raises(ConfigurationError):
        compound_channel(jammer_channel())  # needs at least two stages


def test_freeze_params_rejects_unhashable():
    frozen = freeze_params({"a": [1, 2], "b": {"c": 3}})
    assert frozen == (("a", (1, 2)), ("b", (("c", 3),)))
    with pytest.raises(ConfigurationError):
        freeze_params({"f": {1, 2}})  # sets are unhashable and not frozen


def test_foreco_spec_to_config_roundtrip():
    config = ForecoConfig(record=5, tolerance_ms=10.0, algorithm_options={"ridge": 0.1})
    spec = ForecoSpec.from_config(config)
    rebuilt = spec.to_config()
    assert rebuilt.record == 5
    assert rebuilt.tolerance_ms == 10.0
    assert rebuilt.algorithm_options == {"ridge": 0.1}
    assert spec == ForecoSpec.from_config(rebuilt)  # stable fixed point


def test_spec_hash_identity_and_sensitivity():
    a = ScenarioSpec(name="a", channel=loss_burst_channel(burst_length=10))
    b = ScenarioSpec(name="b", channel=loss_burst_channel(burst_length=10))
    # The label is cosmetic: equal physics -> equal hash.
    assert a.spec_hash() == b.spec_hash()
    # Any physical change moves the hash.
    assert a.with_channel(burst_length=25).spec_hash() != a.spec_hash()
    assert a.with_(seed=7).spec_hash() != a.spec_hash()
    assert a.with_foreco(record=3).spec_hash() != a.spec_hash()
    assert a.with_(scale="standard").spec_hash() != a.spec_hash()


def test_channel_identity_ignores_recovery_knobs():
    base = ScenarioSpec(channel=wireless_channel(n_robots=5, probability=0.05, duration_slots=10))
    tolerant = base.with_foreco(tolerance_ms=40.0)
    held = base.with_(fallback="stop", use_pid=True)
    assert base.channel_identity() == tolerant.channel_identity()
    assert base.channel_identity() == held.channel_identity()
    assert base.with_channel(n_robots=25).channel_identity() != base.channel_identity()


def test_scenario_spec_validation():
    with pytest.raises(ConfigurationError):
        ScenarioSpec(operator="novice")
    with pytest.raises(ConfigurationError):
        ScenarioSpec(fallback="panic")
    with pytest.raises(ConfigurationError):
        ScenarioSpec(repetitions=0)


def test_registry_presets_and_aliases():
    names = scenario_names()
    for expected in (
        "clean",
        "bursty-loss",
        "jammer",
        "congested-ap",
        "jammer-congestion",
        "operator-mix",
        "random-loss",
    ):
        assert expected in names
    assert get_scenario("jammer").use_pid is True
    assert get_scenario("operator-mix").operator == "mix"
    # Alternate spelling of the combined preset.
    assert get_scenario("jammer+congestion") == get_scenario("jammer-congestion")
    # Overrides produce modified copies, including scale-by-name.
    spec = get_scenario("clean", seed=7, scale="standard", repetitions=3)
    assert (spec.seed, spec.scale.name, spec.repetitions) == (7, "standard", 3)
    assert get_scenario("clean").seed == 42  # registry entry untouched
    # Every preset has a catalog description.
    assert set(scenario_catalog()) == set(names)
    with pytest.raises(ConfigurationError):
        get_scenario("does-not-exist")


def test_register_scenario_guards():
    with pytest.raises(ConfigurationError):
        register_scenario(ScenarioSpec(name="custom"))
    with pytest.raises(ConfigurationError):
        register_scenario(ScenarioSpec(name="clean", channel=clean_channel()))
    register_scenario(
        ScenarioSpec(name="test-only-preset", channel=clean_channel()),
        "temporary preset for this test",
        overwrite=True,
    )
    assert "test-only-preset" in scenario_names()


def test_get_scale_passthrough_and_custom_scale_hashable():
    assert get_scale("ci").name == "ci"
    custom = ExperimentScale(
        name="ci",  # deliberately reusing the name
        train_repetitions=3,
        test_repetitions=1,
        heatmap_repetitions=1,
        run_seconds=5.0,
        forecast_windows_ms=(20,),
        forecast_evaluations=5,
        seq2seq_units=(4, 2),
        seq2seq_epochs=1,
    )
    assert get_scale(custom) is custom
    assert hash(custom) != hash(get_scale("ci"))
    with pytest.raises(ConfigurationError):
        get_scale("galactic")
