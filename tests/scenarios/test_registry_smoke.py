"""Every registered preset must run: a preset can never land unrunnable.

One tiny repetition per preset — scenario presets through the session
engine, fleet presets through the sweep executor (which routes exact and
hybrid tiers alike).  The adversarial ``adversarial-*`` presets promoted by
the scenario search are registered builtins, so they go through the same
gauntlet as the hand-named ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import fleet_names, get_fleet
from repro.scenarios import SessionEngine, SweepExecutor, get_scenario, scenario_names

#: Long enough for the harshest placement constraint among the presets
#: (bursty-loss needs 5 bursts of 10 with gap 60 => 350 commands = 7 s).
SMOKE_RUN_SECONDS = 10.0


@pytest.fixture(scope="module")
def engine():
    """One shared engine so presets on the same scale reuse datasets."""
    return SessionEngine()


def test_registry_includes_promoted_adversarial_presets():
    names = scenario_names()
    assert "adversarial-compound-3a9fdc" in names
    assert "adversarial-jammer-391374" in names


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_preset_runs(engine, name):
    spec = get_scenario(name, repetitions=1, run_seconds=SMOKE_RUN_SECONDS)
    result = engine.run(spec)
    assert len(result.recovery_fraction) == 1
    assert np.isfinite(result.mean_late_fraction)
    assert 0.0 <= float(result.mean_late_fraction) <= 1.0


@pytest.mark.parametrize("name", fleet_names())
def test_fleet_preset_runs(engine, name):
    fleet = get_fleet(name, operators=6).with_template(
        repetitions=1, run_seconds=SMOKE_RUN_SECONDS
    )
    executor = SweepExecutor(engine=engine)
    row = executor.run([fleet])[0]
    assert row.admitted >= 1
    assert np.all(np.isfinite(np.asarray(row.completion_time_s, dtype=float)))
