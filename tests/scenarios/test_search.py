"""Search-harness contracts: determinism, memoization, promotion, pins.

The acceptance bar for the coverage-guided search (see docs/validation.md):

* fixed ``(seed, budget)`` is bit-deterministic across ``jobs`` counts and
  thread vs process backends;
* a rerun against the same store recomputes nothing (100 % hits);
* discovered worst cases promote to ``adversarial-*`` presets, and the two
  presets baked into the registry stay pinned to their discovered
  worst-case recovery metrics.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ResultStore,
    ScenarioSearch,
    SearchConfig,
    SessionEngine,
    get_scenario,
    run_search,
)
from repro.scenarios.registry import _REGISTRY
from repro.scenarios.search import adversarial_score, p99_recovery

BUDGET = 8
SEED = 3


def _signature(result):
    """Order-sensitive fingerprint of a search run."""
    return [(p.spec.spec_hash(), p.score, p.round) for p in result.probes]


@pytest.fixture(scope="module")
def reference():
    """The serial-thread reference run every determinism test compares to."""
    return run_search(budget=BUDGET, seed=SEED, jobs=1, backend="thread")


def test_search_spends_exactly_its_budget(reference):
    assert len(reference) == BUDGET
    assert reference.rounds >= 1  # refinement actually happened
    hashes = [p.spec.spec_hash() for p in reference.probes]
    assert len(set(hashes)) == BUDGET  # deduplicated probes


def test_search_deterministic_across_jobs(reference):
    parallel = run_search(budget=BUDGET, seed=SEED, jobs=4, backend="thread")
    assert _signature(parallel) == _signature(reference)


def test_search_deterministic_across_backends(reference):
    process = run_search(budget=BUDGET, seed=SEED, jobs=2, backend="process")
    assert _signature(process) == _signature(reference)


def test_warm_rerun_recomputes_nothing(tmp_path, reference):
    store = ResultStore(tmp_path / "store")
    cold = run_search(budget=BUDGET, seed=SEED, store=store)
    assert cold.store_misses == BUDGET
    assert cold.store_hits == 0
    warm = run_search(budget=BUDGET, seed=SEED, store=store)
    assert warm.store_hits == BUDGET
    assert warm.store_misses == 0
    assert _signature(warm) == _signature(cold) == _signature(reference)


def test_promotion_registers_adversarial_presets(reference):
    unregistered = reference.promote(k=2, register=False)
    assert len(unregistered) == 2
    assert all(spec.name.startswith("adversarial-") for spec in unregistered)
    assert reference.promoted == []  # register=False leaves no trace

    promoted = reference.promote(k=2)
    try:
        assert reference.promoted == [spec.name for spec in promoted]
        for spec in promoted:
            assert spec.name.endswith(spec.spec_hash()[:6])
            assert get_scenario(spec.name) == spec
    finally:
        for spec in promoted:
            _REGISTRY.pop(spec.name, None)


def test_search_config_validation():
    with pytest.raises(ConfigurationError):
        SearchConfig(budget=0)
    with pytest.raises(ConfigurationError):
        SearchConfig(top_k=0)
    with pytest.raises(ConfigurationError):
        SearchConfig(explore_fraction=0.0)
    with pytest.raises(ConfigurationError):
        ScenarioSearch(grammar="not a grammar")  # type: ignore[arg-type]


def test_search_report_renderings(reference):
    payload = reference.to_dict()
    assert payload["budget"] == BUDGET
    assert payload["evaluated"] == BUDGET
    assert len(payload["top"]) == reference.config.top_k
    text = reference.to_text()
    assert f"budget {BUDGET}" in text
    assert "score" in text


# ------------------------------------------------- pinned discovered presets
#: Worst-case recovery metrics of the two search-discovered presets baked
#: into the registry (found by ``run_search(budget=48, seed=7)``).  The
#: engine is deterministic, so drift here means the simulation changed.
PINNED = {
    "adversarial-compound-3a9fdc": {
        "spec_hash": "3a9fdc2c0ee0ce0d",
        "p99_recovery": 0.9620830557406174,
        "mean_late_fraction": 0.7466666666666667,
        "score": 0.7845836109260493,
    },
    "adversarial-jammer-391374": {
        "spec_hash": "39137420bb137c5f",
        "p99_recovery": 0.9723830088495575,
        "mean_late_fraction": 0.6466666666666667,
        "score": 0.6742836578171092,
    },
}


@pytest.mark.parametrize("name", sorted(PINNED))
def test_adversarial_preset_regression(name):
    pinned = PINNED[name]
    spec = get_scenario(name)
    assert spec.spec_hash() == pinned["spec_hash"]
    result = SessionEngine().run(spec)
    assert p99_recovery(result) == pytest.approx(pinned["p99_recovery"], abs=1e-9)
    assert float(result.mean_late_fraction) == pytest.approx(
        pinned["mean_late_fraction"], abs=1e-9
    )
    assert adversarial_score(result) == pytest.approx(pinned["score"], abs=1e-9)
    # These presets exist because they are adversarial: a meaningful share
    # of commands arrives late/lost even after recovery.
    assert float(result.mean_late_fraction) > 0.5
