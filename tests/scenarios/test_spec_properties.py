"""Hypothesis property tests for spec canonicalization and hashing.

The content-addressed store, the sweep dedup and the search memoization all
rest on three invariants: ``canonical()`` is a stable JSON-safe value,
``spec_hash()`` depends on the physical configuration only (never the
name), and grammar-generated knob values either build a valid spec or
raise :class:`~repro.errors.ConfigurationError` — nothing else.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.fleet import get_fleet
from repro.scenarios import ScenarioGrammar
from repro.scenarios.grammar import _kind_knobs, _primitive_channel

SETTINGS = {"max_examples": 30, "deadline": None}

_GRAMMAR = ScenarioGrammar()

#: Kinds with scalar knobs the invalid-knob property can fuzz directly.
_PRIMITIVE_KINDS = (
    "wireless",
    "jammer",
    "loss-burst",
    "periodic-loss",
    "random-loss",
    "handover",
    "markov-interference",
)


def _random_spec(seed: int):
    """A deterministic grammar draw (the property quantifies over seeds)."""
    return _GRAMMAR.random_spec(np.random.default_rng(seed))


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_round_trips_through_json(seed):
    spec = _random_spec(seed)
    canonical = spec.canonical()
    assert json.loads(json.dumps(canonical)) == canonical
    assert spec.canonical() == canonical  # stable across calls


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_spec_hash_is_stable_and_name_free(seed):
    spec = _random_spec(seed)
    assert spec.spec_hash() == spec.spec_hash()
    renamed = spec.with_(name="renamed-twin")
    assert renamed.spec_hash() == spec.spec_hash()
    assert renamed.canonical() == spec.canonical()
    # A physical change must move the hash.
    assert spec.with_(seed=spec.seed + 1).spec_hash() != spec.spec_hash()


@settings(**SETTINGS)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    operators=st.integers(min_value=2, max_value=40),
    aps=st.integers(min_value=1, max_value=6),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_fleet_tier_twins_share_workload_identity(seed, operators, aps, capacity):
    base = get_fleet("shared-ap", operators=operators, seed=seed % 1000).with_(
        aps=aps, ap_capacity=capacity
    )
    exact = base.with_(tier="exact")
    hybrid = base.with_(tier="hybrid")
    # Same randomness domain (arrivals, channels) ...
    assert exact.workload_identity() == hybrid.workload_identity()
    identity = json.loads(json.dumps(exact.workload_identity()))
    assert identity == exact.workload_identity()
    # ... but different results, so different store addresses.
    assert exact.canonical() != hybrid.canonical()
    assert exact.spec_hash() != hybrid.spec_hash()


@settings(**SETTINGS)
@given(
    kind=st.sampled_from(_PRIMITIVE_KINDS),
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=3,
        max_size=3,
    ),
)
def test_grammar_knobs_raise_only_configuration_error(kind, values):
    """Arbitrary finite knob values either build a channel or raise cleanly."""
    knobs = _kind_knobs(kind)
    assignment = {knob.name: value for knob, value in zip(knobs, values)}
    try:
        channel = _primitive_channel(kind, assignment)
    except ConfigurationError:
        return
    assert channel.kind in (kind, "markov-interference")


@settings(**SETTINGS)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_grammar_specs_are_hashable_value_objects(seed):
    spec = _random_spec(seed)
    twin = _random_spec(seed)
    assert spec == twin
    assert hash(spec) == hash(twin)
    assert spec.spec_hash() == twin.spec_hash()


def test_invalid_grammar_kind_raises_configuration_error():
    with pytest.raises(ConfigurationError):
        _primitive_channel("bogus", {})
