"""SweepExecutor routing for mixed scenario/fleet/service sweeps.

The executor dispatches rows by ``store_kind``: plain scenario specs go to
the session engine, ``FleetSpec`` values to the (hybrid-capable) fleet
engine and ``ServiceSpec`` values to the live-service engine — all three
sharing one session engine and one store, in either backend.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetResult, get_fleet
from repro.scenarios import ResultStore, SessionResult, SweepExecutor, get_scenario
from repro.service import ServiceResult, get_service


def _service_spec():
    return get_service("service-shared-ap").with_template(scale="ci").with_(until_s=60.0)


def test_mixed_sweep_routes_by_store_kind(tmp_path):
    specs = [
        get_scenario("clean"),
        get_fleet("shared-ap", operators=2).with_template(scale="ci"),
        _service_spec(),
    ]
    store = ResultStore(tmp_path / "store")
    sweep = SweepExecutor(jobs=2, store=store).run(specs)
    assert isinstance(sweep[0], SessionResult)
    assert isinstance(sweep[1], FleetResult)
    assert isinstance(sweep[2], ServiceResult)
    assert sweep.store_misses == 3
    # A warm rerun resolves every kind from the shared store.
    warm = SweepExecutor(jobs=2, store=store).run(specs)
    assert warm.store_hits == 3 and warm.store_misses == 0
    for cold_row, warm_row in zip(sweep, warm):
        assert cold_row.to_dict() == warm_row.to_dict()


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_service_rows_match_across_backends_and_jobs(backend):
    specs = [_service_spec(), _service_spec().with_(policy="utilization-threshold")]
    serial = SweepExecutor(jobs=1).run(specs)
    fanned = SweepExecutor(jobs=2, backend=backend).run(specs)
    for row_s, row_f in zip(serial, fanned):
        assert row_s.to_dict() == row_f.to_dict()
