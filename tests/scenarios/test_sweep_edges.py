"""Edge-case coverage for :class:`SweepResult` on empty and single-element
sweeps: the selectors must fail with the library's ConfigurationError (never
a bare ``ValueError`` from ``max``/``min``), and the renderers must stay
well-formed at the degenerate sizes."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import ScenarioSpec, SessionResult, SweepResult, clean_channel


def _row(seed: int = 1, rmse: float = 2.0) -> SessionResult:
    spec = ScenarioSpec(name="edge", channel=clean_channel(), seed=seed)
    return SessionResult(
        spec=spec,
        spec_hash=spec.spec_hash(),
        n_commands=10,
        rmse_no_forecast_mm=(rmse,),
        rmse_foreco_mm=(rmse / 2.0,),
        late_fraction=(0.1,),
        recovery_fraction=(0.9,),
    )


# ------------------------------------------------------------------- empty
def test_empty_sweep_selectors_raise_configuration_error():
    sweep = SweepResult([])
    with pytest.raises(ConfigurationError):
        sweep.worst()
    with pytest.raises(ConfigurationError):
        sweep.best()
    # The library contract: anticipated failures raise ReproError subclasses,
    # never the bare ValueError that max()/min() on an empty list would give.
    with pytest.raises(Exception) as excinfo:
        sweep.worst(metric="mean_late_fraction")
    assert isinstance(excinfo.value, ConfigurationError)
    assert not isinstance(excinfo.value, ValueError)


def test_empty_sweep_renders_and_filters():
    sweep = SweepResult([])
    assert len(sweep) == 0 and list(sweep) == []
    assert sweep.to_records() == []
    assert json.loads(sweep.to_json()) == []
    assert sweep.metric("improvement_factor") == []
    filtered = sweep.filter(lambda row: True)
    assert isinstance(filtered, SweepResult) and len(filtered) == 0
    table = sweep.to_table()
    lines = table.splitlines()
    assert len(lines) == 2  # header + rule, no data rows
    assert "scenario" in lines[0]
    assert sweep.to_text() == table
    assert sweep.hit_fraction == 0.0  # no store involved


# ------------------------------------------------------------------ single
def test_single_element_sweep_selectors_agree():
    row = _row()
    sweep = SweepResult([row])
    assert sweep.worst() is row
    assert sweep.best() is row
    assert sweep.worst(metric="mean_late_fraction") is row
    assert sweep[0] is row and len(sweep) == 1


def test_single_element_sweep_filter_and_table():
    row = _row()
    sweep = SweepResult([row])
    assert len(sweep.filter(lambda r: r.spec.seed == 1)) == 1
    kept_none = sweep.filter(lambda r: False)
    assert len(kept_none) == 0
    with pytest.raises(ConfigurationError):
        kept_none.worst()  # filtering down to empty keeps the contract
    table = sweep.to_table()
    assert len(table.splitlines()) == 3  # header + rule + one data row
    assert "edge" in table
    records = sweep.to_records()
    assert len(records) == 1 and records[0]["scenario"] == "edge"
