"""Bit-equality tests for the batched session kernel.

The serial repetition loop (``batch=False``) is the oracle: for every named
preset and every forecaster, routing :meth:`SessionEngine.run` through
:class:`repro.core.BatchedRemoteControlSimulation` must reproduce its metric
tuples exactly — not approximately."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BatchedRemoteControlSimulation, ForecoConfig, ForecoRecovery
from repro.errors import ConfigurationError, DimensionError
from repro.forecasting import Forecaster, register_forecaster
from repro.scenarios import (
    SessionEngine,
    SessionResult,
    ScenarioSpec,
    get_scenario,
    loss_burst_channel,
    scenario_names,
)

#: Short but loss-rich runs keep the full preset × forecaster cross fast.
RUN_SECONDS = 8.0
REPETITIONS = 3

#: Tiny seq2seq so its NumPy BPTT fit does not dominate the suite.
SEQ2SEQ_OPTIONS = {
    "encoder_units": 4,
    "decoder_units": 2,
    "epochs": 1,
    "max_training_windows": 40,
}


def _assert_bit_identical(serial: SessionResult, batched: SessionResult) -> None:
    assert serial.rmse_no_forecast_mm == batched.rmse_no_forecast_mm
    assert serial.rmse_foreco_mm == batched.rmse_foreco_mm
    assert serial.late_fraction == batched.late_fraction
    assert serial.recovery_fraction == batched.recovery_fraction
    assert np.array_equal(serial.delays_ms, batched.delays_ms)
    assert serial.outcome is not None and batched.outcome is not None
    assert np.array_equal(serial.outcome.foreco.joints, batched.outcome.foreco.joints)
    assert np.array_equal(serial.outcome.baseline.joints, batched.outcome.baseline.joints)


def _run_both(spec) -> tuple[SessionResult, SessionResult]:
    serial = SessionEngine(cache_results=False).run(spec, batch=False)
    batched = SessionEngine(cache_results=False).run(spec, batch=True)
    return serial, batched


@pytest.mark.parametrize("name", scenario_names())
def test_batched_equals_serial_for_every_preset(name):
    """Every named preset (incl. the PID jammer and the compound channel)."""
    spec = get_scenario(name).with_(run_seconds=RUN_SECONDS, repetitions=REPETITIONS)
    _assert_bit_identical(*_run_both(spec))


@pytest.mark.parametrize("algorithm", ["ma", "var", "varma", "ses", "seq2seq"])
def test_batched_equals_serial_for_every_forecaster(algorithm):
    """Every built-in forecaster over a loss-heavy channel."""
    options = SEQ2SEQ_OPTIONS if algorithm == "seq2seq" else {}
    spec = (
        get_scenario("bursty-loss")
        .with_(run_seconds=RUN_SECONDS, repetitions=REPETITIONS)
        .with_foreco(algorithm=algorithm, algorithm_options=options)
    )
    _assert_bit_identical(*_run_both(spec))


def test_batched_respects_recovery_knobs():
    """Tolerance, oracle feedback, unclamped steps and 'stop' fallback."""
    base = get_scenario("bursty-loss").with_(run_seconds=RUN_SECONDS, repetitions=2)
    for spec in (
        base.with_foreco(tolerance_ms=40.0),
        base.with_foreco(feedback="oracle"),
        base.with_foreco(max_step_rad=None),
        base.with_(fallback="stop"),
        base.with_foreco(record=1),
    ):
        _assert_bit_identical(*_run_both(spec))


def test_engine_serial_fallback_for_custom_forecaster():
    """A registered forecaster without batch support still runs (serially)."""

    class HoldLast(Forecaster):
        name = "hold-last"

        def _fit(self, commands):
            return None

        def _predict_next(self, history):
            return history[-1]

    try:
        register_forecaster("hold-last", HoldLast)
    except ConfigurationError:
        pass  # already registered by an earlier parametrisation
    spec = ScenarioSpec(
        name="custom",
        channel=loss_burst_channel(burst_length=10),
        run_seconds=RUN_SECONDS,
        repetitions=2,
    ).with_foreco(algorithm="hold-last")
    serial, batched = _run_both(spec)
    # batch=True silently falls back to the serial path, so the results are
    # trivially identical — the point is that nothing breaks.
    _assert_bit_identical(serial, batched)


def test_batched_simulation_rejects_unbatchable_forecaster():
    class Unbatchable(Forecaster):
        name = "unbatchable"

        def _fit(self, commands):
            return None

        def _predict_next(self, history):
            return history[-1]

    config = ForecoConfig()
    recovery = ForecoRecovery(config=config, forecaster=Unbatchable(record=config.record))
    rng = np.random.default_rng(0)
    recovery.train(np.cumsum(rng.normal(size=(100, 6)), axis=0))
    with pytest.raises(ConfigurationError):
        BatchedRemoteControlSimulation(recovery)


def test_batched_simulation_validates_shapes():
    rng = np.random.default_rng(0)
    train = np.cumsum(rng.normal(scale=0.02, size=(200, 6)), axis=0)
    recovery = ForecoRecovery(config=ForecoConfig()).train(train)
    simulation = BatchedRemoteControlSimulation(recovery)
    commands = train[:50]
    with pytest.raises(DimensionError):
        simulation.run(commands, np.ones((2, 49)))
    outcomes = simulation.run(commands, np.ones(50))  # 1-D => B = 1
    assert len(outcomes) == 1


def test_improvement_factor_inf_contract():
    """A zero/near-zero FoReCo RMSE denominator yields inf, never NaN."""
    result = SessionEngine(cache_results=False).run(
        get_scenario("clean").with_(run_seconds=RUN_SECONDS)
    )
    # Documented contract: near-zero denominators (< 1e-12 mm) report inf.
    tweaked = SessionResult(
        spec=result.spec,
        spec_hash=result.spec_hash,
        n_commands=result.n_commands,
        rmse_no_forecast_mm=(1.0,),
        rmse_foreco_mm=(0.0,),
        late_fraction=(0.0,),
        recovery_fraction=(0.0,),
    )
    assert tweaked.improvement_factor == float("inf")
    assert not np.isnan(tweaked.improvement_factor)
    subnormal = SessionResult(
        spec=result.spec,
        spec_hash=result.spec_hash,
        n_commands=result.n_commands,
        rmse_no_forecast_mm=(1.0,),
        rmse_foreco_mm=(1e-13,),
        late_fraction=(0.0,),
        recovery_fraction=(0.0,),
    )
    assert subnormal.improvement_factor == float("inf")
