"""Tests for the session engine (caching, channels) and the sweep executor
(grid expansion, parallel determinism)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    ExperimentScale,
    ScenarioSpec,
    SessionEngine,
    SweepExecutor,
    build_datasets,
    clean_channel,
    compound_channel,
    get_scenario,
    jammer_channel,
    loss_burst_channel,
    periodic_loss_channel,
    random_loss_channel,
    repetition_seed,
    sample_channel_delays,
    scenario_grid,
    wireless_channel,
)

#: A short run so the engine tests stay fast.
RUN_SECONDS = 8.0


def _spec(channel, **fields) -> ScenarioSpec:
    fields.setdefault("run_seconds", RUN_SECONDS)
    return ScenarioSpec(name="test", channel=channel, **fields)


# ---------------------------------------------------------------- datasets
def test_dataset_cache_keyed_by_full_scale():
    """A custom scale reusing a registered name must not alias its cache slot."""
    ci = build_datasets("ci", seed=11)
    custom_scale = ExperimentScale(
        name="ci",  # same name, different sizing
        train_repetitions=3,
        test_repetitions=1,
        heatmap_repetitions=1,
        run_seconds=5.0,
        forecast_windows_ms=(20,),
        forecast_evaluations=5,
        seq2seq_units=(4, 2),
        seq2seq_epochs=1,
    )
    custom = build_datasets(custom_scale, seed=11)
    assert len(custom.experienced) < len(ci.experienced)
    assert build_datasets("ci", seed=11) is ci  # caching still effective


# ---------------------------------------------------------------- channels
def test_sample_channel_delays_kinds():
    n = 400
    clean = sample_channel_delays(clean_channel(nominal_delay_ms=2.5), n, seed=1)
    assert clean.shape == (n,)
    assert np.all(clean == 2.5)

    bursts = sample_channel_delays(loss_burst_channel(burst_length=10, n_bursts=3), n, seed=1)
    assert np.sum(~np.isfinite(bursts)) == 30

    periodic = sample_channel_delays(periodic_loss_channel(period=100, burst_length=5), n, seed=1)
    assert np.sum(~np.isfinite(periodic)) == 20

    random_loss = sample_channel_delays(random_loss_channel(loss_probability=0.5), n, seed=1)
    lost_share = np.mean(~np.isfinite(random_loss))
    assert 0.3 < lost_share < 0.7

    jammed = sample_channel_delays(jammer_channel(), n, seed=1)
    assert np.any(~np.isfinite(jammed))

    wireless = sample_channel_delays(
        wireless_channel(n_robots=15, probability=0.05, duration_slots=100), n, seed=1
    )
    assert np.all(wireless[np.isfinite(wireless)] >= 0.0)


def test_compound_channel_superposes_stages():
    n = 400
    stage_a = loss_burst_channel(burst_length=10, n_bursts=2, nominal_delay_ms=1.0)
    stage_b = clean_channel(nominal_delay_ms=3.0)
    compound = compound_channel(stage_a, stage_b)
    delays = sample_channel_delays(compound, n, seed=5)
    finite = delays[np.isfinite(delays)]
    # Delays add up: surviving commands carry both stages' delay.
    assert np.allclose(finite, 4.0)
    # Losses union: the bursty stage's losses survive the superposition.
    assert np.sum(~np.isfinite(delays)) == 20


def test_repetition_seed_decorrelates_and_is_stable():
    spec = _spec(jammer_channel())
    assert repetition_seed(spec, 0) == repetition_seed(spec, 0)
    assert repetition_seed(spec, 0) != repetition_seed(spec, 1)
    assert repetition_seed(spec, 0) != repetition_seed(spec.with_(seed=7), 0)
    # Recovery-side knobs leave the channel realisation untouched.
    assert repetition_seed(spec, 0) == repetition_seed(spec.with_foreco(tolerance_ms=40.0), 0)


# ------------------------------------------------------------------ engine
def test_engine_caches_by_spec_hash():
    engine = SessionEngine()
    spec = _spec(loss_burst_channel(burst_length=5))
    first = engine.run(spec)
    # Identical physics under a different label hits the cache.
    second = engine.run(spec.with_(name="relabelled"))
    assert second is first
    assert engine.cached_result(spec) is first
    engine.clear()
    assert engine.cached_result(spec) is None
    # With caching disabled every run is fresh but still deterministic.
    uncached = SessionEngine(cache_results=False)
    a = uncached.run(spec)
    b = uncached.run(spec)
    assert a is not b
    assert a.rmse_foreco_mm == b.rmse_foreco_mm


def test_engine_shares_trained_forecaster():
    engine = SessionEngine()
    spec = _spec(loss_burst_channel(burst_length=5))
    forecaster = engine.trained_forecaster(spec)
    # Channel and recovery-only variations reuse the master; training-relevant
    # FoReCo variations retrain.
    assert engine.trained_forecaster(spec.with_channel(burst_length=25)) is forecaster
    assert engine.trained_forecaster(spec.with_foreco(tolerance_ms=40.0)) is forecaster
    assert engine.trained_forecaster(spec.with_foreco(record=3)) is not forecaster
    # Sessions never predict on the master: they get private fitted copies.
    private = engine.session_forecaster(spec)
    assert private is not forecaster and private.is_fitted


def test_engine_stateful_forecaster_stays_deterministic():
    """VARMA carries predict-time state; per-session copies must isolate it."""
    engine = SessionEngine(cache_results=False)
    # The periodic channel is identical in every repetition, so any RMSE
    # difference between reps could only come from leaked forecaster state.
    spec = _spec(periodic_loss_channel(period=100, burst_length=10), repetitions=2).with_foreco(
        algorithm="varma", record=5
    )
    first = engine.run(spec)
    second = engine.run(spec)
    assert first.rmse_foreco_mm == second.rmse_foreco_mm
    assert first.rmse_foreco_mm[0] == first.rmse_foreco_mm[1]


def test_engine_session_result_shape():
    engine = SessionEngine()
    result = engine.run(_spec(loss_burst_channel(burst_length=10), repetitions=2))
    assert result.repetitions == 2
    assert len(result.rmse_no_forecast_mm) == 2
    assert result.n_commands == int(RUN_SECONDS * 50)  # 50 Hz command rate
    assert result.mean_rmse_foreco_mm > 0.0
    assert result.improvement_factor > 0.0
    assert result.outcome is not None
    assert result.delays_ms is not None and result.delays_ms.shape == (result.n_commands,)
    row = result.to_dict()
    assert row["repetitions"] == 2
    assert row["mean_rmse_foreco_mm"] == result.mean_rmse_foreco_mm


def test_engine_operator_mix():
    engine = SessionEngine()
    result = engine.run(_spec(clean_channel(), operator="mix", run_seconds=10.0))
    # The handover run still has the full command budget and executes cleanly.
    assert result.n_commands == 500
    assert result.mean_late_fraction == 0.0


# ------------------------------------------------------------------- sweep
def test_scenario_grid_order_and_axes():
    base = _spec(wireless_channel())
    specs = scenario_grid(
        base, {"channel.n_robots": (5, 25), "seed": (1, 2), "foreco.record": (2, 10)}
    )
    assert len(specs) == 8
    # Insertion order with the last axis fastest.
    assert [s.foreco.record for s in specs[:2]] == [2, 10]
    assert specs[0].spec_hash() != specs[1].spec_hash()
    assert scenario_grid(base, {}) == [base]
    with pytest.raises(ConfigurationError):
        scenario_grid(base, {"seed": ()})


def test_sweep_executor_parallel_matches_serial():
    """Same specs + seeds -> bit-identical SweepResult with 1 and 4 workers."""
    base = _spec(wireless_channel(), repetitions=2)
    axes = {"channel.n_robots": (5, 15), "channel.probability": (0.01, 0.05)}
    serial = SweepExecutor(jobs=1).run_grid(base, axes)
    parallel = SweepExecutor(jobs=4).run_grid(base, axes)
    assert len(serial) == len(parallel) == 4
    for row_s, row_p in zip(serial, parallel):
        assert row_s.spec_hash == row_p.spec_hash
        assert row_s.rmse_no_forecast_mm == row_p.rmse_no_forecast_mm
        assert row_s.rmse_foreco_mm == row_p.rmse_foreco_mm
        assert row_s.late_fraction == row_p.late_fraction
        assert row_s.recovery_fraction == row_p.recovery_fraction


def test_sweep_process_backend_matches_serial():
    """backend="process" returns the same rows as a serial run, in order."""
    base = _spec(loss_burst_channel(burst_length=10), repetitions=2)
    axes = {"channel.burst_length": (5, 15), "seed": (1, 2)}
    serial = SweepExecutor(jobs=1).run_grid(base, axes)
    process = SweepExecutor(jobs=2, backend="process").run_grid(base, axes)
    assert len(serial) == len(process) == 4
    for row_s, row_p in zip(serial, process):
        assert row_s.spec_hash == row_p.spec_hash
        assert row_s.rmse_no_forecast_mm == row_p.rmse_no_forecast_mm
        assert row_s.rmse_foreco_mm == row_p.rmse_foreco_mm
        assert row_s.late_fraction == row_p.late_fraction
        assert row_s.recovery_fraction == row_p.recovery_fraction


def test_sweep_rejects_unknown_backend():
    with pytest.raises(ConfigurationError):
        SweepExecutor(jobs=2, backend="bogus")


def test_sweep_result_table_json_and_selectors():
    sweep = SweepExecutor(jobs=2).run(
        [
            _spec(clean_channel()),
            _spec(loss_burst_channel(burst_length=25, n_bursts=2)),
        ]
    )
    table = sweep.to_table()
    assert "scenario" in table and "FoReCo" in table
    records = sweep.to_records()
    assert len(records) == 2 and records[0]["scenario"] == "test"
    assert "rmse_foreco_mm" in sweep.to_json()
    worst = sweep.worst(metric="mean_rmse_no_forecast_mm")
    assert worst.spec.channel.kind == "loss-burst"
    assert sweep.best(metric="mean_rmse_no_forecast_mm").spec.channel.kind == "clean"
    only_clean = sweep.filter(lambda row: row.spec.channel.kind == "clean")
    assert len(only_clean) == 1
    assert sweep.metric("improvement_factor") == [
        row.improvement_factor for row in sweep
    ]


def test_registry_presets_run_end_to_end():
    engine = SessionEngine()
    for name in ("jammer-congestion", "random-loss"):
        spec = get_scenario(name).with_(run_seconds=RUN_SECONDS)
        result = engine.run(spec)
        assert result.mean_rmse_foreco_mm > 0.0
        assert 0.0 <= result.mean_late_fraction <= 1.0
