"""Shared fixtures for the test suite.

The expensive artefacts (operator command streams, a trained VAR recovery
engine) are built once per session and reused by many tests, keeping the full
suite fast while still exercising realistic data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ForecoConfig, ForecoRecovery
from repro.teleop import (
    OperatorModel,
    RemoteController,
    experienced_operator,
    inexperienced_operator,
)


@pytest.fixture(scope="session")
def experienced_stream():
    """Small experienced-operator command stream (training data)."""
    controller = RemoteController()
    operator = OperatorModel(profile=experienced_operator(), seed=11)
    return controller.stream_from_operator(operator, n_repetitions=4)


@pytest.fixture(scope="session")
def inexperienced_stream():
    """Small inexperienced-operator command stream (test data)."""
    controller = RemoteController()
    operator = OperatorModel(profile=inexperienced_operator(), seed=12)
    return controller.stream_from_operator(operator, n_repetitions=2)


@pytest.fixture(scope="session")
def trained_recovery(experienced_stream):
    """A FoReCo recovery engine trained on the experienced stream."""
    recovery = ForecoRecovery(ForecoConfig())
    recovery.train(experienced_stream.commands)
    return recovery


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
