"""Tests for the batched forecaster API: ``predict_next_batch`` must agree
bit-for-bit with looped ``predict_next`` calls on independent copies."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.errors import DimensionError, NotFittedError
from repro.forecasting import Forecaster, make_forecaster

RECORD = 5
N_JOINTS = 6

#: Built-in forecasters exercised by the equivalence tests; seq2seq gets tiny
#: layer sizes so the NumPy BPTT fit stays fast.
FORECASTERS: dict[str, dict] = {
    "ma": {},
    "var": {},
    "varma": {},
    "ses": {},
    "seq2seq": {
        "encoder_units": 4,
        "decoder_units": 2,
        "epochs": 1,
        "max_training_windows": 40,
    },
}


def _training_stream(n: int = 220, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    steps = rng.normal(scale=0.02, size=(n, N_JOINTS))
    return np.cumsum(steps, axis=0)


def _histories(n_batch: int, length: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(scale=0.02, size=(n_batch, length, N_JOINTS)), axis=1)


@pytest.mark.parametrize("name", sorted(FORECASTERS))
def test_batch_matches_looped_predict_next(name):
    """Batched rows == predict_next on fresh per-row copies, bit for bit."""
    forecaster = make_forecaster(name, record=RECORD, **FORECASTERS[name])
    forecaster.fit(_training_stream())
    histories = _histories(n_batch=7, length=RECORD)
    batch = forecaster.predict_next_batch(histories)
    assert batch.shape == (7, N_JOINTS)
    for row, history in zip(batch, histories):
        # A deep copy per row mirrors how the serial engine isolates
        # repetitions; the supports_batch_predict contract promises the
        # shared-instance batch reproduces exactly that.
        serial = copy.deepcopy(forecaster).predict_next(history)
        assert np.array_equal(row, serial)


@pytest.mark.parametrize("name", sorted(FORECASTERS))
def test_batch_truncates_long_histories(name):
    forecaster = make_forecaster(name, record=RECORD, **FORECASTERS[name])
    forecaster.fit(_training_stream())
    long_histories = _histories(n_batch=3, length=RECORD + 4)
    batch = forecaster.predict_next_batch(long_histories)
    truncated = forecaster.predict_next_batch(long_histories[:, -RECORD:, :])
    assert np.array_equal(batch, truncated)


def test_builtins_declare_batch_support():
    for name in FORECASTERS:
        assert make_forecaster(name, record=RECORD, **FORECASTERS[name]).supports_batch_predict


def test_base_class_defaults_to_no_batch_support():
    class Stateful(Forecaster):
        name = "stateful-test"

        def _fit(self, commands):
            return None

        def _predict_next(self, history):
            return history[-1]

    forecaster = Stateful(record=RECORD)
    # Conservative default: unknown (possibly stateful) forecasters must opt
    # in before the batched session kernel may share one instance.
    assert not forecaster.supports_batch_predict
    # ...but the looped default implementation still works when called.
    forecaster.fit(_training_stream())
    histories = _histories(n_batch=4, length=RECORD)
    batch = forecaster.predict_next_batch(histories)
    assert np.array_equal(batch, histories[:, -1, :])


def test_batch_validation_errors():
    forecaster = make_forecaster("var", record=RECORD)
    with pytest.raises(NotFittedError):
        forecaster.predict_next_batch(_histories(2, RECORD))
    forecaster.fit(_training_stream())
    with pytest.raises(DimensionError):
        forecaster.predict_next_batch(np.zeros((RECORD, N_JOINTS)))  # 2-D
    with pytest.raises(DimensionError):
        forecaster.predict_next_batch(np.zeros((2, RECORD - 1, N_JOINTS)))  # short
    with pytest.raises(DimensionError):
        forecaster.predict_next_batch(np.zeros((2, RECORD, N_JOINTS + 1)))  # joints


def test_empty_batch_returns_empty():
    forecaster = make_forecaster("ma", record=RECORD)
    forecaster.fit(_training_stream())
    batch = forecaster.predict_next_batch(np.empty((0, RECORD, N_JOINTS)))
    assert batch.shape == (0, N_JOINTS)
