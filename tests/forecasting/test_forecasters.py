"""Tests for the forecasting algorithms and their shared interface."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DimensionError, NotFittedError
from repro.forecasting import (
    ExponentialSmoothingForecaster,
    MovingAverageForecaster,
    Seq2SeqForecaster,
    VarForecaster,
    VarmaForecaster,
    forecast_rmse,
    make_forecaster,
    multi_step_rmse,
    rolling_forecast_errors,
    sliding_windows,
)


def _linear_stream(n: int = 300, d: int = 3, slope: float = 0.01) -> np.ndarray:
    t = np.arange(n).reshape(-1, 1)
    slopes = slope * (1.0 + np.arange(d))
    return t * slopes


# ------------------------------------------------------------------ utilities
def test_sliding_windows_shapes():
    commands = _linear_stream(50, 2)
    windows, targets = sliding_windows(commands, record=5)
    assert windows.shape == (45, 5, 2)
    assert targets.shape == (45, 2)
    assert np.allclose(windows[0, -1], commands[4])
    assert np.allclose(targets[0], commands[5])
    with pytest.raises(DimensionError):
        sliding_windows(commands[:3], record=5)


def test_forecast_rmse():
    a = np.zeros((4, 2))
    b = np.ones((4, 2))
    assert forecast_rmse(a, b) == pytest.approx(1.0)
    with pytest.raises(DimensionError):
        forecast_rmse(a, np.ones((3, 2)))


def test_make_forecaster_registry():
    assert isinstance(make_forecaster("var"), VarForecaster)
    assert isinstance(make_forecaster("ma"), MovingAverageForecaster)
    assert isinstance(make_forecaster("varma"), VarmaForecaster)
    assert isinstance(make_forecaster("ses"), ExponentialSmoothingForecaster)
    assert isinstance(make_forecaster("seq2seq"), Seq2SeqForecaster)
    with pytest.raises(ConfigurationError):
        make_forecaster("arima")


# ------------------------------------------------------------------ interface
def test_predict_requires_fit():
    forecaster = VarForecaster(record=3)
    with pytest.raises(NotFittedError):
        forecaster.predict_next(np.zeros((3, 2)))


def test_history_shorter_than_record_rejected():
    forecaster = MovingAverageForecaster(record=5).fit(_linear_stream(50))
    with pytest.raises(DimensionError):
        forecaster.predict_next(np.zeros((3, 3)))


def test_joint_dimension_mismatch_rejected():
    forecaster = VarForecaster(record=3).fit(_linear_stream(100, 3))
    with pytest.raises(DimensionError):
        forecaster.predict_next(np.zeros((3, 4)))


def test_forecast_horizon_returns_requested_steps():
    forecaster = VarForecaster(record=4).fit(_linear_stream(200, 2))
    result = forecaster.forecast_horizon(_linear_stream(200, 2)[:10], steps=7)
    assert result.forecasts.shape == (7, 2)
    assert result.algorithm == "var"


# ------------------------------------------------------------------------ MA
def test_moving_average_predicts_window_mean():
    forecaster = MovingAverageForecaster(record=4).fit(_linear_stream(50, 2))
    history = np.array([[0.0, 0.0], [1.0, 2.0], [2.0, 4.0], [3.0, 6.0]])
    prediction = forecaster.predict_next(history)
    assert np.allclose(prediction, [1.5, 3.0])


# ----------------------------------------------------------------------- VAR
def test_var_learns_linear_trend_exactly():
    stream = _linear_stream(400, 3)
    forecaster = VarForecaster(record=3, ridge=0.0).fit(stream)
    history = stream[100:103]
    prediction = forecaster.predict_next(history)
    assert np.allclose(prediction, stream[103], atol=1e-6)
    assert forecaster.n_parameters == 3 * 3 * 3 + 3
    assert forecaster.training_residual_rmse(stream) < 1e-6


def test_var_beats_moving_average_on_operator_data(experienced_stream, inexperienced_stream):
    """Fig. 7 headline: VAR is more accurate than the MA benchmark."""
    train = experienced_stream.commands
    test = inexperienced_stream.commands
    var = VarForecaster(record=10).fit(train)
    ma = MovingAverageForecaster(record=10).fit(train)
    var_rmse = multi_step_rmse(var, test, horizon=5, stride=200)
    ma_rmse = multi_step_rmse(ma, test, horizon=5, stride=200)
    assert var_rmse < ma_rmse


def test_var_multi_step_error_grows_with_window(experienced_stream, inexperienced_stream):
    """Fig. 7 shape: forecast error grows as the forecasting window lengthens."""
    var = VarForecaster(record=10).fit(experienced_stream.commands)
    test = inexperienced_stream.commands
    short = multi_step_rmse(var, test, horizon=1, stride=200)
    long = multi_step_rmse(var, test, horizon=25, stride=200)
    assert long > short


def test_var_ridge_must_be_non_negative():
    with pytest.raises(ConfigurationError):
        VarForecaster(ridge=-1.0)


# --------------------------------------------------------------------- VARMA
def test_varma_falls_back_to_var_without_residuals():
    stream = _linear_stream(300, 2)
    varma = VarmaForecaster(record=3, ma_order=2, ridge=0.0).fit(stream)
    var = VarForecaster(record=3, ridge=0.0).fit(stream)
    history = stream[50:53]
    assert np.allclose(varma.predict_next(history), var.predict_next(history), atol=1e-8)


def test_varma_observe_residual_changes_prediction():
    # A moving-average noise component gives the VAR structured residuals, so
    # the VARMA correction stage learns non-zero coefficients.
    rng = np.random.default_rng(0)
    noise = rng.normal(0.0, 0.05, size=(402, 2))
    stream = _linear_stream(400, 2) + noise[1:401] + 0.9 * noise[0:400]
    varma = VarmaForecaster(record=3, ma_order=2, ridge=0.0).fit(stream)
    assert np.any(np.abs(varma.ma_coefficients) > 1e-6)
    history = stream[50:53]
    baseline = varma.predict_next(history)
    varma.observe_residual(np.array([1.0, -1.0]))
    varma.observe_residual(np.array([1.0, -1.0]))
    shifted = varma.predict_next(history)
    assert not np.allclose(baseline, shifted)


# ------------------------------------------------------------------------ SES
def test_ses_tracks_linear_trend_approximately():
    stream = _linear_stream(300, 2, slope=0.02)
    ses = ExponentialSmoothingForecaster(record=10, tune_on_fit=False, damping=1.0).fit(stream)
    history = stream[100:110]
    prediction = ses.predict_next(history)
    assert np.allclose(prediction, stream[110], atol=0.02)


def test_ses_grid_search_selects_parameters(experienced_stream):
    ses = ExponentialSmoothingForecaster(record=5, tune_on_fit=True)
    ses.fit(experienced_stream.commands[:2000])
    assert 0.0 <= ses.alpha <= 1.0
    assert 0.0 <= ses.beta <= 1.0


# -------------------------------------------------------------------- seq2seq
def test_seq2seq_forecaster_end_to_end_small():
    stream = _linear_stream(150, 2)
    forecaster = Seq2SeqForecaster(
        record=4, encoder_units=8, decoder_units=4, epochs=2, max_training_windows=100, seed=0
    ).fit(stream)
    prediction = forecaster.predict_next(stream[20:24])
    assert prediction.shape == (2,)
    assert forecaster.n_parameters > 0
    assert len(forecaster.training_history) == 2


# -------------------------------------------------------------------- metrics
def test_rolling_forecast_errors_properties(experienced_stream, inexperienced_stream):
    var = VarForecaster(record=5).fit(experienced_stream.commands)
    errors = rolling_forecast_errors(var, inexperienced_stream.commands, horizon=3, stride=300)
    assert errors.ndim == 1
    assert np.all(errors >= 0.0)
    with pytest.raises(DimensionError):
        rolling_forecast_errors(var, inexperienced_stream.commands[:6], horizon=10)


@settings(max_examples=10, deadline=None)
@given(record=st.integers(1, 8))
def test_ma_prediction_within_history_envelope(record):
    """Property: an MA forecast always lies within the per-joint min/max of its window."""
    rng = np.random.default_rng(record)
    stream = rng.normal(size=(100, 3))
    forecaster = MovingAverageForecaster(record=record).fit(stream)
    history = stream[-record:]
    prediction = forecaster.predict_next(history)
    assert np.all(prediction <= history.max(axis=0) + 1e-12)
    assert np.all(prediction >= history.min(axis=0) - 1e-12)
