"""The top-level facade: run_scenario / run_fleet / sweep / serve / plan.

One consistent surface over the layered engines: presets or specs in,
result rows out, with the same keyword vocabulary everywhere (``seed=``,
``store=``, ``jobs=``).  Facade runs must be byte-equivalent to driving
the engines directly — the facade adds convenience, never semantics.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import ConfigurationError
from repro.fleet import FleetEngine, get_fleet
from repro.scenarios import ResultStore, get_scenario


def test_run_scenario_accepts_preset_and_spec():
    by_name = repro.run_scenario("clean")
    by_spec = repro.run_scenario(get_scenario("clean"))
    assert by_name.to_dict() == by_spec.to_dict()
    assert by_name.spec.name == "clean"


def test_run_scenario_seed_override():
    base = repro.run_scenario("clean")
    reseeded = repro.run_scenario("clean", seed=7)
    assert reseeded.spec.seed == 7
    assert reseeded.spec_hash != base.spec_hash


def test_run_fleet_matches_the_engine():
    fleet = get_fleet("shared-ap", operators=2).with_template(scale="ci")
    facade = repro.run_fleet(fleet)
    direct = FleetEngine().run(fleet)
    assert facade.to_dict() == direct.to_dict()
    assert repro.run_fleet("shared-ap", seed=3).spec.template.seed == 3


def test_sweep_mixes_kinds_and_hits_the_store(tmp_path):
    specs = [
        get_scenario("clean"),
        get_fleet("shared-ap", operators=2).with_template(scale="ci"),
        repro.get_service("service-shared-ap").with_template(scale="ci").with_(until_s=60.0),
    ]
    cold = repro.sweep(specs, jobs=2, store=tmp_path / "store")
    warm = repro.sweep(specs, jobs=2, store=tmp_path / "store")
    assert cold.store_misses == 3
    assert warm.store_hits == 3
    for a, b in zip(cold, warm):
        assert a.to_dict() == b.to_dict()


def test_facade_rejects_wrong_spec_types():
    with pytest.raises(ConfigurationError):
        repro.run_scenario(get_fleet("shared-ap"))
    with pytest.raises(ConfigurationError):
        repro.run_fleet(get_scenario("clean"))
    with pytest.raises(ConfigurationError):
        repro.serve(get_scenario("clean"))
    with pytest.raises(ConfigurationError):
        repro.run_scenario("no-such-preset")
    with pytest.raises(ConfigurationError):
        repro.run_fleet("no-such-preset")
    with pytest.raises(ConfigurationError):
        repro.serve("no-such-preset")
    with pytest.raises(ConfigurationError):
        repro.plan(get_scenario("clean"))
    with pytest.raises(ConfigurationError):
        repro.plan("no-such-preset")


def test_store_keyword_accepts_paths_and_stores(tmp_path):
    path_store = tmp_path / "by-path"
    repro.run_scenario("clean", store=path_store)
    assert len(ResultStore(path_store)) == 1
    handle = ResultStore(tmp_path / "by-handle")
    repro.run_scenario("clean", store=handle)
    assert len(handle) == 1


def test_facade_exports_are_documented():
    for name in ("run_scenario", "run_fleet", "sweep", "serve", "plan"):
        assert name in repro.__all__
        assert getattr(repro, name).__doc__
