"""Fleet engine contracts: bit-equality, coupling, admission, determinism.

The load-bearing guarantee is the **single-operator bit-equality contract**:
a 1-operator fleet must reproduce :meth:`SessionEngine.run` on its template
exactly — same metric tuples, same delay trace — for every named preset and
every channel kind.  Contention is then pinned from the other side: a
shared-AP fleet must *differ* from the same operators run independently, in
a way the deterministic backlog model predicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FleetEngine,
    FleetSpec,
    get_fleet,
    operator_channel_spec,
)
from repro.scenarios import (
    SessionEngine,
    SweepExecutor,
    get_scenario,
    periodic_loss_channel,
    scenario_names,
)

#: Short but loss-rich runs keep the preset cross fast (matches the batched
#: engine equality suite).
RUN_SECONDS = 8.0
REPETITIONS = 2


@pytest.fixture(scope="module")
def engines():
    """One shared SessionEngine + FleetEngine pair for the whole module."""
    sessions = SessionEngine()
    return sessions, FleetEngine(sessions=sessions)


def _solo(template) -> FleetSpec:
    """A single-operator fleet around ``template`` (contract: == session run)."""
    return FleetSpec(name="solo", template=template, operators=1, aps=1, ap_capacity=4)


def _assert_fleet_equals_session(fleet_result, session_result):
    assert fleet_result.rmse_no_forecast_mm == session_result.rmse_no_forecast_mm
    assert fleet_result.rmse_foreco_mm == session_result.rmse_foreco_mm
    assert fleet_result.late_fraction == session_result.late_fraction
    assert fleet_result.recovery_fraction == session_result.recovery_fraction
    assert np.array_equal(fleet_result.delays_ms, session_result.delays_ms)


@pytest.mark.parametrize("name", scenario_names())
def test_single_operator_fleet_equals_session_engine(engines, name):
    """1-operator fleets are bit-identical to SessionEngine for every preset."""
    sessions, fleets = engines
    template = get_scenario(name).with_(run_seconds=RUN_SECONDS, repetitions=REPETITIONS)
    _assert_fleet_equals_session(fleets.run(_solo(template)), sessions.run(template))


def test_single_operator_fleet_equals_session_engine_periodic_loss(engines):
    """The one channel kind no preset covers (periodic-loss) holds too."""
    sessions, fleets = engines
    template = get_scenario("clean").with_(
        run_seconds=RUN_SECONDS,
        repetitions=REPETITIONS,
        channel=periodic_loss_channel(period=40, burst_length=6),
    )
    _assert_fleet_equals_session(fleets.run(_solo(template)), sessions.run(template))


def test_single_operator_fleet_matches_serial_fallback(engines):
    """Forecasters without batched prediction route serially, equally."""
    sessions, fleets = engines
    template = (
        get_scenario("bursty-loss")
        .with_(run_seconds=RUN_SECONDS, repetitions=2)
        .with_foreco(
            algorithm="seq2seq",
            algorithm_options={
                "encoder_units": 4,
                "decoder_units": 2,
                "epochs": 1,
                "max_training_windows": 40,
            },
        )
    )
    _assert_fleet_equals_session(fleets.run(_solo(template)), sessions.run(template))


def test_batched_equals_serial_fleet_execution(engines):
    """FleetEngine(batch=False) is the oracle for the batched kernel pass."""
    _, fleets = engines
    fleet = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
    batched = FleetEngine(sessions=fleets.sessions, cache_results=False).run(fleet, batch=True)
    serial = FleetEngine(sessions=fleets.sessions, cache_results=False).run(fleet, batch=False)
    assert batched.rmse_foreco_mm == serial.rmse_foreco_mm
    assert batched.rmse_no_forecast_mm == serial.rmse_no_forecast_mm
    assert batched.recovery_fraction == serial.recovery_fraction
    assert batched.completion_time_s == serial.completion_time_s
    assert np.array_equal(batched.delays_ms, serial.delays_ms)


class TestOperatorDecorrelation:
    def test_operator_zero_is_the_template(self):
        fleet = get_fleet("shared-ap")
        assert operator_channel_spec(fleet, 0) is fleet.template

    def test_other_operators_get_derived_seeds(self):
        fleet = get_fleet("shared-ap")
        seeds = {operator_channel_spec(fleet, i).seed for i in range(4)}
        assert len(seeds) == 4  # template seed + 3 distinct derivations


class TestCoupling:
    def test_rank_serialisation_on_a_shared_ap(self, engines):
        """Two always-delivering operators: op 1 waits exactly one service."""
        _, fleets = engines
        template = get_scenario("clean").with_(run_seconds=RUN_SECONDS, repetitions=1)
        fleet = FleetSpec(
            name="pair",
            template=template,
            operators=2,
            aps=1,
            ap_capacity=2,
            ap_service_ms=5.0,
        )
        result = FleetEngine(sessions=fleets.sessions, cache_results=False).run(fleet)
        solo = fleets.run(_solo(template))
        # operator-major order: row 0 = operator 0, row 1 = operator 1; with
        # demand under budget (2 x 5 < 20 ms) the backlog is zero, so op 0
        # sees base delays and op 1 waits exactly rank * service = 5 ms.
        assert result.admitted == 2
        last = result.delays_ms  # last admitted session = operator 1
        assert np.allclose(last, np.asarray(solo.delays_ms) + 5.0)

    def test_saturated_ap_accumulates_backlog(self):
        """Demand over budget grows delays linearly (Lindley drift)."""
        template = get_scenario("clean").with_(run_seconds=2.0, repetitions=1)
        fleet = FleetSpec(
            name="saturated",
            template=template,
            operators=2,
            aps=1,
            ap_capacity=2,
            ap_service_ms=15.0,  # 2 x 15 = 30 ms demand vs 20 ms budget
        )
        result = FleetEngine(cache_results=False).run(fleet)
        delays = result.delays_ms  # operator 1's coupled delays
        # slot k starts with backlog 10k ms; op 1 additionally waits one
        # service behind op 0, so delay = base(1) + 10k + 15.
        n = result.n_commands
        expected = 1.0 + 10.0 * np.arange(n) + 15.0
        assert np.allclose(delays, expected)
        assert result.ap_utilization == (1.0,)

    def test_shared_ap_fleet_differs_from_independent_sessions(self, engines):
        """The acceptance contract: coupling changes what operators see."""
        sessions, _ = engines
        fleet = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
        result = FleetEngine(sessions=sessions, cache_results=False).run(fleet)
        independent = []
        for operator in range(fleet.operators):
            spec = operator_channel_spec(fleet, operator)
            independent.extend(sessions.run(spec).rmse_foreco_mm)
        assert result.admitted == fleet.operators
        assert result.rmse_foreco_mm != tuple(independent)
        assert result.mean_late_fraction > sessions.run(fleet.template).mean_late_fraction

    def test_coupling_never_shortens_delays(self, engines):
        """Contention only adds wait: coupled >= base wherever delivered."""
        _, fleets = engines
        fleet = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
        engine = FleetEngine(sessions=fleets.sessions, cache_results=False)
        result = engine.run(fleet)
        solo = fleets.sessions.run(operator_channel_spec(fleet, 3))
        base = np.asarray(solo.delays_ms)
        coupled = np.asarray(result.delays_ms)
        delivered = np.isfinite(base)
        assert np.array_equal(delivered, np.isfinite(coupled))
        assert np.all(coupled[delivered] >= base[delivered])


class TestAdmission:
    def test_capacity_drops_excess_simultaneous_sessions(self):
        template = get_scenario("clean").with_(run_seconds=2.0, repetitions=1)
        fleet = FleetSpec(
            name="overfull", template=template, operators=5, aps=1, ap_capacity=2
        )
        result = FleetEngine(cache_results=False).run(fleet)
        assert result.admitted == 2
        assert result.dropped_sessions == 3
        assert len(result.rmse_foreco_mm) == 2

    def test_disjoint_sessions_reuse_capacity(self):
        """Sessions that never overlap in time are all admitted."""
        template = get_scenario("clean").with_(run_seconds=2.0, repetitions=1)
        fleet = FleetSpec(
            name="spread",
            template=template,
            operators=6,
            aps=1,
            ap_capacity=1,
            arrival="poisson",
            arrival_rate_hz=0.05,  # ~20 s mean gap vs 2 s sessions
        )
        result = FleetEngine(cache_results=False).run(fleet)
        assert result.admitted + result.dropped_sessions == 6
        assert result.admitted >= 4  # overlap is rare at this rate


class TestMetricsAndDeterminism:
    def test_result_shapes_and_percentiles(self):
        fleet = get_fleet("peak-hour").with_template(run_seconds=RUN_SECONDS)
        result = FleetEngine(cache_results=False).run(fleet)
        count = result.admitted
        for metric in (
            result.rmse_no_forecast_mm,
            result.rmse_foreco_mm,
            result.late_fraction,
            result.recovery_fraction,
            result.completion_time_s,
        ):
            assert len(metric) == count
        assert len(result.ap_utilization) == fleet.aps
        assert all(0.0 <= u <= 1.0 for u in result.ap_utilization)
        assert result.p99_recovery <= result.p50_recovery
        assert result.p50_completion_s <= result.p99_completion_s
        assert result.repetitions == count
        row = result.to_dict()
        assert row["fleet"] == fleet.name
        assert row["admitted"] == count
        import json

        json.dumps(row, allow_nan=False)

    def test_completion_time_of_a_clean_solo_session(self):
        template = get_scenario("clean").with_(run_seconds=2.0, repetitions=1)
        result = FleetEngine(cache_results=False).run(_solo(template))
        n = result.n_commands
        period_ms = template.foreco.command_period_ms
        expected = ((n - 1) * period_ms + 1.0) / 1000.0  # last slot + 1 ms delay
        assert result.completion_time_s == (pytest.approx(expected),)

    def test_sweep_jobs_do_not_change_results(self):
        specs = [
            get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS),
            get_fleet("peak-hour", operators=4).with_template(run_seconds=RUN_SECONDS),
            get_scenario("random-loss").with_(run_seconds=RUN_SECONDS),
        ]
        serial = SweepExecutor(jobs=1).run(specs)
        threaded = SweepExecutor(jobs=4).run(specs)
        assert [row.to_dict() for row in serial] == [row.to_dict() for row in threaded]

    def test_engine_caches_by_spec_hash(self):
        engine = FleetEngine()
        fleet = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
        first = engine.run(fleet)
        assert engine.run(fleet.with_(name="renamed")) is first
        assert engine.cached_result(fleet) is first
        engine.clear()
        assert engine.cached_result(fleet) is None
