"""FleetSpec value semantics, arrival processes and the preset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    ARRIVAL_KINDS,
    FleetSpec,
    arrival_seed,
    fleet_catalog,
    fleet_names,
    get_fleet,
    register_fleet,
    sample_arrival_times,
)
from repro.scenarios import ScenarioSpec, get_scenario


class TestValidation:
    def test_defaults_are_valid(self):
        fleet = FleetSpec()
        assert fleet.operators == 4
        assert fleet.arrival == "simultaneous"

    @pytest.mark.parametrize(
        "changes",
        [
            {"operators": 0},
            {"aps": 0},
            {"ap_capacity": 0},
            {"ap_service_ms": 0.0},
            {"ap_service_ms": -1.0},
            {"arrival": "bursty"},
            {"arrival": "poisson", "arrival_rate_hz": 0.0},
            {"diurnal_period_s": 0.0},
            {"diurnal_amplitude": 1.5},
            {"diurnal_amplitude": -0.1},
        ],
    )
    def test_invalid_fields_raise(self, changes):
        with pytest.raises(ConfigurationError):
            FleetSpec(**changes)

    def test_template_must_be_scenario_spec(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(template="clean")


class TestIdentity:
    def test_name_excluded_from_hash(self):
        a = FleetSpec(name="a", operators=3)
        b = FleetSpec(name="b", operators=3)
        assert a.spec_hash() == b.spec_hash()

    def test_physical_fields_change_hash(self):
        base = FleetSpec()
        assert base.spec_hash() != base.with_(operators=5).spec_hash()
        assert base.spec_hash() != base.with_(aps=2).spec_hash()
        assert base.spec_hash() != base.with_(ap_capacity=3).spec_hash()
        assert base.spec_hash() != base.with_(arrival="poisson").spec_hash()
        assert base.spec_hash() != base.with_template(seed=7).spec_hash()

    def test_hash_disjoint_from_template_session_hash(self):
        template = get_scenario("random-loss")
        fleet = FleetSpec(template=template, operators=1)
        assert fleet.spec_hash() != template.spec_hash()

    def test_canonical_is_json_safe(self):
        import json

        fleet = FleetSpec(template=get_scenario("jammer-congestion"), arrival="diurnal")
        json.dumps(fleet.canonical(), sort_keys=True, allow_nan=False)

    def test_builders(self):
        fleet = FleetSpec().with_(operators=9).with_template(scale="standard", seed=3)
        assert fleet.operators == 9
        assert fleet.template.scale.name == "standard"
        assert fleet.template.seed == 3
        assert fleet.channel == fleet.template.channel
        assert fleet.repetitions == fleet.template.repetitions

    def test_describe_mentions_population_and_template(self):
        text = FleetSpec(name="x", operators=6, arrival="poisson").describe()
        assert "6 operators" in text
        assert "poisson" in text


class TestArrivals:
    def test_simultaneous_is_all_zero(self):
        fleet = FleetSpec(operators=5)
        assert np.array_equal(sample_arrival_times(fleet, 0), np.zeros(5))

    @pytest.mark.parametrize("kind", [k for k in ARRIVAL_KINDS if k != "simultaneous"])
    def test_timed_arrivals_are_sorted_positive_and_deterministic(self, kind):
        fleet = FleetSpec(operators=8, arrival=kind, arrival_rate_hz=0.5)
        first = sample_arrival_times(fleet, 0)
        again = sample_arrival_times(fleet, 0)
        assert first.shape == (8,)
        assert np.array_equal(first, again)
        assert np.all(first > 0.0)
        assert np.all(np.diff(first) >= 0.0)

    def test_repetitions_decorrelate(self):
        fleet = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        assert not np.array_equal(sample_arrival_times(fleet, 0), sample_arrival_times(fleet, 1))
        assert arrival_seed(fleet, 0) != arrival_seed(fleet, 1)

    def test_spec_content_decorrelates_arrivals(self):
        a = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        b = a.with_(aps=2)
        assert not np.array_equal(sample_arrival_times(a, 0), sample_arrival_times(b, 0))


class TestRegistry:
    def test_builtin_presets_exist(self):
        names = fleet_names()
        assert {"shared-ap", "peak-hour", "diurnal-campus"} <= set(names)
        catalog = fleet_catalog()
        assert all(catalog[name] for name in names)

    def test_get_fleet_overrides(self):
        fleet = get_fleet("shared-ap", operators=9, scale="standard", seed=5)
        assert fleet.operators == 9
        assert fleet.template.scale.name == "standard"
        assert fleet.template.seed == 5
        # fleet-level keyword overrides pass through with_()
        assert get_fleet("shared-ap", aps=2).aps == 2

    def test_unknown_fleet_raises(self):
        with pytest.raises(ConfigurationError):
            get_fleet("nope")

    def test_register_requires_distinct_name(self):
        with pytest.raises(ConfigurationError):
            register_fleet(FleetSpec(name="fleet"))
        with pytest.raises(ConfigurationError):
            register_fleet(get_fleet("shared-ap"))  # already taken

    def test_register_and_overwrite(self):
        spec = FleetSpec(name="test-register-fleet", template=ScenarioSpec(), operators=2)
        register_fleet(spec, "temporary", overwrite=True)
        assert get_fleet("test-register-fleet").operators == 2
        register_fleet(spec.with_(operators=3), "temporary", overwrite=True)
        assert get_fleet("test-register-fleet").operators == 3


class TestTierKnobs:
    """Hybrid-tier spec knobs: validation, identity, workload sharing."""

    @pytest.mark.parametrize(
        "changes",
        [
            {"tier": "warm"},
            {"hot_threshold": 0.0},
            {"hot_threshold": -0.2},
            {"hot_threshold": 1.5},
            {"hot_threshold": float("nan")},
            {"cold_tail": "bimodal"},
            {"cold_tail_index": 1.0},
            {"cold_tail_index": "fat"},
        ],
    )
    def test_invalid_tier_knobs_raise(self, changes):
        with pytest.raises(ConfigurationError):
            FleetSpec(**changes)

    @pytest.mark.parametrize(
        "changes",
        [
            {"operators": "x"},
            {"operators": None},
            {"ap_capacity": "zero"},
            {"aps": 2.5},
            {"ap_service_ms": "slow"},
        ],
    )
    def test_type_confusion_raises_configuration_error(self, changes):
        """Bad types surface as ConfigurationError, never bare ValueError."""
        with pytest.raises(ConfigurationError):
            FleetSpec(**changes)

    def test_boundary_threshold_is_accepted(self):
        assert FleetSpec(tier="hybrid", hot_threshold=1.0).hot_threshold == 1.0
        assert FleetSpec(hot_threshold=1e-9).hot_threshold == 1e-9

    def test_tier_knobs_change_the_spec_hash(self):
        base = FleetSpec()
        assert base.spec_hash() != base.with_(tier="hybrid").spec_hash()
        hybrid = base.with_(tier="hybrid")
        assert hybrid.spec_hash() != hybrid.with_(hot_threshold=0.9).spec_hash()
        assert hybrid.spec_hash() != hybrid.with_(cold_tail="heavy").spec_hash()
        assert hybrid.spec_hash() != hybrid.with_(cold_tail_index=2.0).spec_hash()

    def test_workload_identity_excludes_the_tier(self):
        base = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        hybrid = base.with_(tier="hybrid", hot_threshold=0.9, cold_tail="heavy")
        assert base.workload_identity() == hybrid.workload_identity()
        assert base.workload_identity() != base.with_(operators=9).workload_identity()

    def test_tier_twins_share_arrival_times(self):
        """Hybrid and exact twins see the same operators arriving."""
        base = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        hybrid = base.with_(tier="hybrid")
        assert arrival_seed(base, 0) == arrival_seed(hybrid, 0)
        assert np.array_equal(sample_arrival_times(base, 1), sample_arrival_times(hybrid, 1))

    def test_describe_mentions_the_hybrid_tier(self):
        text = FleetSpec(tier="hybrid", hot_threshold=0.6, cold_tail="heavy").describe()
        assert "hybrid" in text
        assert "heavy" in text
        assert "hybrid" not in FleetSpec().describe()

    def test_city_scale_preset_is_hybrid(self):
        fleet = get_fleet("city-scale")
        assert fleet.tier == "hybrid"
        assert fleet.operators >= 1000
        assert fleet.cold_tail == "heavy"
        assert "city-scale" in fleet_names()
