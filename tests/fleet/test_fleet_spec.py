"""FleetSpec value semantics, arrival processes and the preset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fleet import (
    ARRIVAL_KINDS,
    FleetSpec,
    arrival_seed,
    fleet_catalog,
    fleet_names,
    get_fleet,
    register_fleet,
    sample_arrival_times,
)
from repro.scenarios import ScenarioSpec, get_scenario


class TestValidation:
    def test_defaults_are_valid(self):
        fleet = FleetSpec()
        assert fleet.operators == 4
        assert fleet.arrival == "simultaneous"

    @pytest.mark.parametrize(
        "changes",
        [
            {"operators": 0},
            {"aps": 0},
            {"ap_capacity": 0},
            {"ap_service_ms": 0.0},
            {"ap_service_ms": -1.0},
            {"arrival": "bursty"},
            {"arrival": "poisson", "arrival_rate_hz": 0.0},
            {"diurnal_period_s": 0.0},
            {"diurnal_amplitude": 1.5},
            {"diurnal_amplitude": -0.1},
        ],
    )
    def test_invalid_fields_raise(self, changes):
        with pytest.raises(ConfigurationError):
            FleetSpec(**changes)

    def test_template_must_be_scenario_spec(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(template="clean")


class TestIdentity:
    def test_name_excluded_from_hash(self):
        a = FleetSpec(name="a", operators=3)
        b = FleetSpec(name="b", operators=3)
        assert a.spec_hash() == b.spec_hash()

    def test_physical_fields_change_hash(self):
        base = FleetSpec()
        assert base.spec_hash() != base.with_(operators=5).spec_hash()
        assert base.spec_hash() != base.with_(aps=2).spec_hash()
        assert base.spec_hash() != base.with_(ap_capacity=3).spec_hash()
        assert base.spec_hash() != base.with_(arrival="poisson").spec_hash()
        assert base.spec_hash() != base.with_template(seed=7).spec_hash()

    def test_hash_disjoint_from_template_session_hash(self):
        template = get_scenario("random-loss")
        fleet = FleetSpec(template=template, operators=1)
        assert fleet.spec_hash() != template.spec_hash()

    def test_canonical_is_json_safe(self):
        import json

        fleet = FleetSpec(template=get_scenario("jammer-congestion"), arrival="diurnal")
        json.dumps(fleet.canonical(), sort_keys=True, allow_nan=False)

    def test_builders(self):
        fleet = FleetSpec().with_(operators=9).with_template(scale="standard", seed=3)
        assert fleet.operators == 9
        assert fleet.template.scale.name == "standard"
        assert fleet.template.seed == 3
        assert fleet.channel == fleet.template.channel
        assert fleet.repetitions == fleet.template.repetitions

    def test_describe_mentions_population_and_template(self):
        text = FleetSpec(name="x", operators=6, arrival="poisson").describe()
        assert "6 operators" in text
        assert "poisson" in text


class TestArrivals:
    def test_simultaneous_is_all_zero(self):
        fleet = FleetSpec(operators=5)
        assert np.array_equal(sample_arrival_times(fleet, 0), np.zeros(5))

    @pytest.mark.parametrize("kind", [k for k in ARRIVAL_KINDS if k != "simultaneous"])
    def test_timed_arrivals_are_sorted_positive_and_deterministic(self, kind):
        fleet = FleetSpec(operators=8, arrival=kind, arrival_rate_hz=0.5)
        first = sample_arrival_times(fleet, 0)
        again = sample_arrival_times(fleet, 0)
        assert first.shape == (8,)
        assert np.array_equal(first, again)
        assert np.all(first > 0.0)
        assert np.all(np.diff(first) >= 0.0)

    def test_repetitions_decorrelate(self):
        fleet = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        assert not np.array_equal(sample_arrival_times(fleet, 0), sample_arrival_times(fleet, 1))
        assert arrival_seed(fleet, 0) != arrival_seed(fleet, 1)

    def test_spec_content_decorrelates_arrivals(self):
        a = FleetSpec(operators=8, arrival="poisson", arrival_rate_hz=0.5)
        b = a.with_(aps=2)
        assert not np.array_equal(sample_arrival_times(a, 0), sample_arrival_times(b, 0))


class TestRegistry:
    def test_builtin_presets_exist(self):
        names = fleet_names()
        assert {"shared-ap", "peak-hour", "diurnal-campus"} <= set(names)
        catalog = fleet_catalog()
        assert all(catalog[name] for name in names)

    def test_get_fleet_overrides(self):
        fleet = get_fleet("shared-ap", operators=9, scale="standard", seed=5)
        assert fleet.operators == 9
        assert fleet.template.scale.name == "standard"
        assert fleet.template.seed == 5
        # fleet-level keyword overrides pass through with_()
        assert get_fleet("shared-ap", aps=2).aps == 2

    def test_unknown_fleet_raises(self):
        with pytest.raises(ConfigurationError):
            get_fleet("nope")

    def test_register_requires_distinct_name(self):
        with pytest.raises(ConfigurationError):
            register_fleet(FleetSpec(name="fleet"))
        with pytest.raises(ConfigurationError):
            register_fleet(get_fleet("shared-ap"))  # already taken

    def test_register_and_overwrite(self):
        spec = FleetSpec(name="test-register-fleet", template=ScenarioSpec(), operators=2)
        register_fleet(spec, "temporary", overwrite=True)
        assert get_fleet("test-register-fleet").operators == 2
        register_fleet(spec.with_(operators=3), "temporary", overwrite=True)
        assert get_fleet("test-register-fleet").operators == 3
