"""Fleet results in the persistent store, sweeps and the CLI runner."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.runner import run_experiments
from repro.fleet import FleetEngine, FleetSpec, get_fleet
from repro.scenarios import ResultStore, SweepExecutor, get_scenario

RUN_SECONDS = 8.0


@pytest.fixture()
def fleet():
    """A small deterministic fleet (short sessions keep the tests fast)."""
    return get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)


def _assert_round_trips(computed, loaded):
    assert loaded is not None
    assert loaded.spec_hash == computed.spec_hash
    assert loaded.rmse_no_forecast_mm == computed.rmse_no_forecast_mm
    assert loaded.rmse_foreco_mm == computed.rmse_foreco_mm
    assert loaded.late_fraction == computed.late_fraction
    assert loaded.recovery_fraction == computed.recovery_fraction
    assert loaded.completion_time_s == computed.completion_time_s
    assert loaded.ap_utilization == computed.ap_utilization
    assert loaded.admitted == computed.admitted
    assert loaded.dropped_sessions == computed.dropped_sessions
    assert np.array_equal(loaded.delays_ms, computed.delays_ms)
    assert loaded.outcome is None  # trajectories are in-memory only
    assert loaded.to_dict() == computed.to_dict()


def test_fleet_result_round_trips_bit_for_bit(tmp_path, fleet):
    store = ResultStore(tmp_path / "store")
    computed = FleetEngine(cache_results=False, store=store).run(fleet)
    _assert_round_trips(computed, ResultStore(tmp_path / "store").get(fleet))


def test_fleet_shards_are_tagged_and_epoch_scoped(tmp_path, fleet):
    store = ResultStore(tmp_path / "store")
    FleetEngine(cache_results=False, store=store).run(fleet)
    path = store.shard_path(fleet.spec_hash())
    record = json.loads(path.read_text(encoding="utf-8"))
    assert record["kind"] == "fleet"
    assert record["spec"]["kind"] == "fleet"
    assert f"epoch-{store.epoch}" in str(path)
    # a store opened at another epoch cannot see (or trust) the shard
    assert ResultStore(tmp_path / "store", epoch=store.epoch + 1).get(fleet) is None


def test_corrupted_fleet_shard_is_a_miss(tmp_path, fleet):
    store = ResultStore(tmp_path / "store")
    engine = FleetEngine(cache_results=False, store=store)
    engine.run(fleet)
    path = store.shard_path(fleet.spec_hash())
    path.write_text('{"format": 1, "kind": "fleet"', encoding="utf-8")  # truncated
    fresh = ResultStore(tmp_path / "store")
    assert fresh.get(fleet) is None
    assert not path.exists()  # quarantined


def test_second_sweep_run_is_all_hits(tmp_path, fleet):
    specs = [fleet, get_fleet("peak-hour", operators=4).with_template(run_seconds=RUN_SECONDS)]
    first = SweepExecutor(jobs=2, store=ResultStore(tmp_path / "store")).run(specs)
    assert (first.store_hits, first.store_misses) == (0, 2)
    second = SweepExecutor(jobs=2, store=ResultStore(tmp_path / "store")).run(specs)
    assert (second.store_hits, second.store_misses) == (2, 0)
    for cold, warm in zip(first, second):
        _assert_round_trips(cold, warm)


def test_mixed_scenario_and_fleet_sweep(tmp_path, fleet):
    """One store, one sweep, both record kinds."""
    specs = [get_scenario("random-loss").with_(run_seconds=RUN_SECONDS), fleet]
    store = ResultStore(tmp_path / "store")
    sweep = SweepExecutor(jobs=2, store=store).run(specs)
    assert len(sweep) == 2
    assert len(store) == 2
    warm = SweepExecutor(store=ResultStore(tmp_path / "store")).run(specs)
    assert (warm.store_hits, warm.store_misses) == (2, 0)
    assert [row.to_dict() for row in warm] == [row.to_dict() for row in sweep]
    # the mixed table renders (fleet rows duck-type the session columns)
    assert fleet.name in sweep.to_table()


def test_process_backend_matches_serial(fleet):
    specs = [fleet, get_fleet("peak-hour", operators=4).with_template(run_seconds=RUN_SECONDS)]
    serial = SweepExecutor(jobs=1).run(specs)
    process = SweepExecutor(jobs=2, backend="process").run(specs)
    assert [row.to_dict() for row in process] == [row.to_dict() for row in serial]


class TestRunner:
    def test_fleet_keyword_and_override_produce_reports(self):
        report = run_experiments(["fleet"], scale="ci", seed=42, jobs=2, fmt="text", fleet=2)
        assert "# fleet presets" in report
        assert "operators over" in report

    def test_fleet_json_document(self, tmp_path):
        document = json.loads(
            run_experiments(
                [], scale="ci", seed=42, jobs=2, fmt="json", fleet=2,
                store=str(tmp_path / "store"),
            )
        )
        fleets = document["fleets"]
        assert fleets and all(row["operators"] == 2 for row in fleets)
        assert document["store"]["misses"] == len(fleets)
        again = json.loads(
            run_experiments(
                [], scale="ci", seed=42, jobs=2, fmt="json", fleet=2,
                store=str(tmp_path / "store"), resume=True,
            )
        )
        assert again["store"]["hits"] == len(fleets)
        assert again["fleets"] == fleets

    def test_jobs_do_not_change_the_fleet_report(self):
        one = run_experiments(["fleet"], scale="ci", seed=7, jobs=1, fmt="json", fleet=3)
        four = run_experiments(["fleet"], scale="ci", seed=7, jobs=4, fmt="json", fleet=3)
        assert json.loads(one)["fleets"] == json.loads(four)["fleets"]
