"""Hypothesis property tests for PlanSpec and the planner's monotonicity.

Two invariant families:

* **Spec contract** — :class:`~repro.fleet.PlanSpec` obeys the same
  canonicalization/hash/frozen rules as every other spec (stable JSON-safe
  ``canonical()``, name-free ``spec_hash()``, immutability), plus the
  plan-specific rule that the target fleet's initial ``ap_capacity`` never
  enters the identity (the capacity is the search variable).
* **Planner monotonicity** — against *synthetic monotone response
  surfaces* (quality degrades with capacity past a drawn knee; exactly the
  regime the dual method's descent rule assumes), exercised through the
  planner's evaluator seam with an exhaustive-equivalent budget:
  tightening the SLO never increases the planned capacity, and enlarging
  the search bounds never worsens the plan objective.
"""

from __future__ import annotations

import dataclasses
import json
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import CapacityPlanner, PlanSpec, get_fleet

SETTINGS = {"max_examples": 30, "deadline": None}

_FLEET = get_fleet("shared-ap")

_gates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_bounds = st.tuples(st.integers(1, 10), st.integers(1, 10)).map(sorted)


def _spec(slo_p99, slo_late, slo_drop, bounds, method="dual-gradient", **kwargs):
    low, high = bounds
    return PlanSpec(
        fleet=_FLEET,
        slo_p99=slo_p99,
        slo_late=slo_late,
        slo_drop=slo_drop,
        min_capacity=low,
        max_capacity=high,
        budget=high - low + 2,  # exhaustive-equivalent (bracket + full range)
        method=method,
        **kwargs,
    )


# ------------------------------------------------------------- spec contract
@settings(**SETTINGS)
@given(slo_p99=_gates, slo_late=_gates, slo_drop=_gates, bounds=_bounds)
def test_canonical_round_trips_through_json(slo_p99, slo_late, slo_drop, bounds):
    spec = _spec(slo_p99, slo_late, slo_drop, bounds)
    canonical = spec.canonical()
    assert json.loads(json.dumps(canonical)) == canonical
    assert spec.canonical() == canonical  # stable across calls


@settings(**SETTINGS)
@given(slo_p99=_gates, slo_late=_gates, slo_drop=_gates, bounds=_bounds)
def test_spec_hash_is_stable_and_name_free(slo_p99, slo_late, slo_drop, bounds):
    spec = _spec(slo_p99, slo_late, slo_drop, bounds)
    assert spec.spec_hash() == spec.spec_hash()
    assert spec.with_(name="renamed-twin").spec_hash() == spec.spec_hash()


@settings(**SETTINGS)
@given(slo_p99=_gates, capacity=st.integers(1, 32))
def test_fleet_initial_capacity_never_enters_the_identity(slo_p99, capacity):
    # The capacity is the search variable: two plans over the same fleet
    # with different starting ap_capacity are the same problem.
    base = _spec(slo_p99, 0.2, 0.3, (1, 8))
    retargeted = base.with_(fleet=base.fleet.with_(ap_capacity=capacity))
    assert retargeted.spec_hash() == base.spec_hash()


@settings(**SETTINGS)
@given(slo_p99=_gates, bounds=_bounds)
def test_spec_is_frozen(slo_p99, bounds):
    spec = _spec(slo_p99, 0.2, 0.3, bounds)
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.slo_p99 = 0.5  # type: ignore[misc]
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.budget = 99  # type: ignore[misc]


@settings(**SETTINGS)
@given(slo_p99=_gates, slo_late=_gates, bounds=_bounds)
def test_every_knob_moves_the_hash(slo_p99, slo_late, bounds):
    spec = _spec(slo_p99, slo_late, 0.3, bounds)
    assert spec.with_(max_capacity=spec.max_capacity + 1).spec_hash() != spec.spec_hash()
    assert spec.with_(budget=spec.budget + 1).spec_hash() != spec.spec_hash()
    assert spec.with_(method="golden-section").spec_hash() != spec.spec_hash()
    assert spec.with_(slo_drop=0.55).spec_hash() != spec.spec_hash()


# ---------------------------------------------------- synthetic knee surfaces
def _surface(knee: int, p99_slope: float, late_slope: float):
    """A monotone response surface with a quality knee at ``knee``.

    Below the knee every capacity is clean; past it p99 recovery decays and
    the late fraction grows, both monotonically in capacity — the regime
    the planner's descent rule assumes (more admitted load never improves
    quality).  Admission follows the real arithmetic (min of population and
    capacity x APs).
    """

    def evaluate(spec):
        capacity = spec.ap_capacity
        admitted = min(spec.operators, capacity * spec.aps)
        excess = max(0, capacity - knee)
        return SimpleNamespace(
            spec_hash=spec.spec_hash(),
            admitted=admitted,
            dropped_sessions=spec.operators - admitted,
            p99_recovery=max(0.0, 1.0 - p99_slope * excess),
            mean_late_fraction=min(1.0, late_slope * excess),
            mean_ap_utilization=min(1.0, admitted / max(1, spec.aps * knee)),
        )

    return evaluate


_knees = st.integers(min_value=1, max_value=10)
_slopes = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)


def _chosen_key(plan):
    """Lexicographic objective value of a plan (bigger is better).

    Quality-feasibility first, then admitted utility, then (for infeasible
    plans) how small the best achievable violation is.
    """
    chosen = next(probe for probe in plan.probes if probe.capacity == plan.capacity)
    return (chosen.feasible, chosen.admitted if chosen.feasible else 0, -chosen.violation)


@settings(**SETTINGS)
@given(
    knee=_knees,
    p99_slope=_slopes,
    late_slope=_slopes,
    bounds=_bounds,
    slo_p99=_gates,
    slo_late=_gates,
    tighten_p99=_gates,
    tighten_late=_gates,
)
def test_tightening_the_slo_never_increases_planned_capacity(
    knee, p99_slope, late_slope, bounds, slo_p99, slo_late, tighten_p99, tighten_late
):
    evaluate = _surface(knee, p99_slope, late_slope)
    base = _spec(slo_p99, slo_late, 1.0, bounds)
    # Tightened gates: p99 floor moves up, the late ceiling moves down.
    tighter = base.with_(
        slo_p99=slo_p99 + (1.0 - slo_p99) * tighten_p99,
        slo_late=slo_late * (1.0 - tighten_late),
    )
    loose_plan = CapacityPlanner(evaluator=evaluate).run(base)
    tight_plan = CapacityPlanner(evaluator=evaluate).run(tighter)
    assert tight_plan.capacity <= loose_plan.capacity


@settings(**SETTINGS)
@given(
    knee=_knees,
    p99_slope=_slopes,
    late_slope=_slopes,
    bounds=_bounds,
    widen_low=st.integers(0, 5),
    widen_high=st.integers(0, 5),
    slo_p99=_gates,
    slo_late=_gates,
)
def test_enlarging_bounds_never_worsens_the_objective(
    knee, p99_slope, late_slope, bounds, widen_low, widen_high, slo_p99, slo_late
):
    evaluate = _surface(knee, p99_slope, late_slope)
    narrow = _spec(slo_p99, slo_late, 1.0, bounds)
    low = max(1, narrow.min_capacity - widen_low)
    high = narrow.max_capacity + widen_high
    wide = narrow.with_(min_capacity=low, max_capacity=high, budget=high - low + 2)
    narrow_plan = CapacityPlanner(evaluator=evaluate).run(narrow)
    wide_plan = CapacityPlanner(evaluator=evaluate).run(wide)
    assert _chosen_key(wide_plan) >= _chosen_key(narrow_plan)


@settings(**SETTINGS)
@given(knee=_knees, p99_slope=_slopes, late_slope=_slopes, bounds=_bounds, slo_p99=_gates,
       slo_late=_gates)
def test_planner_matches_the_exhaustive_oracle(
    knee, p99_slope, late_slope, bounds, slo_p99, slo_late
):
    # Exhaustive-equivalence: with budget >= the bound range, the planner's
    # choice must equal a brute-force scan of every capacity in bounds
    # (max admitted among quality-feasible, ties to the smallest capacity;
    # least violation when nothing is feasible).
    evaluate = _surface(knee, p99_slope, late_slope)
    spec = _spec(slo_p99, slo_late, 1.0, bounds)
    plan = CapacityPlanner(evaluator=evaluate).run(spec)

    rows = []
    for capacity in range(spec.min_capacity, spec.max_capacity + 1):
        result = evaluate(spec.probe_spec(capacity))
        p99_short = max(0.0, slo_p99 - result.p99_recovery)
        late_excess = max(0.0, result.mean_late_fraction - slo_late)
        rows.append((capacity, result.admitted, p99_short + late_excess))
    feasible = [(c, admitted) for c, admitted, violation in rows if violation == 0.0]
    if feasible:
        expected = min(feasible, key=lambda row: (-row[1], row[0]))[0]
    else:
        expected = min(rows, key=lambda row: (row[2], row[0]))[0]
    assert plan.capacity == expected
