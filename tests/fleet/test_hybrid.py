"""Hybrid tier contracts: classification, degeneracy, accuracy, determinism.

Three guarantees anchor the tier (see docs/fleet.md, "City scale"):

* **degeneracy** — a hybrid fleet whose every occupied AP classifies hot is
  bit-identical to the plain exact :class:`FleetEngine` on the same
  workload;
* **accuracy** — at the hot/cold crossover, the hybrid service-level
  metrics stay within the documented tolerance of the pure-exact twin
  (recovery percentiles within ``RECOVERY_TOL`` absolute, completion
  percentiles within ``COMPLETION_REL`` relative, late fraction within
  ``LATE_TOL`` absolute);
* **determinism** — results are bit-identical across worker counts and
  thread/process backends, and round-trip through the persistent store.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments
from repro.fleet import (
    FleetEngine,
    FleetSpec,
    HybridFleetEngine,
    classify_aps,
    cold_draw_seed,
    get_fleet,
)
from repro.fleet.hybrid import _peak_overlap
from repro.scenarios import ResultStore, SessionEngine, SweepExecutor

RUN_SECONDS = 8.0

#: Documented hybrid-vs-exact tolerance at the crossover scale.
RECOVERY_TOL = 0.05  # p50/p99 recovery, absolute
COMPLETION_REL = 0.10  # p50/p99 completion time, relative
LATE_TOL = 0.05  # mean late fraction, absolute


@pytest.fixture(scope="module")
def engines():
    """One shared SessionEngine + HybridFleetEngine pair for the module."""
    sessions = SessionEngine()
    return sessions, HybridFleetEngine(sessions=sessions)


def _crossover_fleet() -> FleetSpec:
    """A genuinely mixed fleet: 5 hot / 7 cold APs at threshold 0.75."""
    return (
        get_fleet("shared-ap", operators=48)
        .with_(
            aps=12,
            ap_capacity=6,
            ap_service_ms=5.0,
            arrival="poisson",
            arrival_rate_hz=3.0,
            tier="hybrid",
            hot_threshold=0.75,
        )
        .with_template(run_seconds=RUN_SECONDS)
    )


class TestClassification:
    def test_peak_overlap_counts_concurrent_windows(self):
        assert _peak_overlap([], 10) == 0
        assert _peak_overlap([0, 0, 0], 10) == 3
        assert _peak_overlap([0, 10, 20], 10) == 1  # back-to-back, no overlap
        assert _peak_overlap([0, 5, 25], 10) == 2

    def test_saturated_ap_is_hot_idle_ap_is_cold(self, engines):
        _, fleets = engines
        fleet = get_fleet("shared-ap").with_(
            aps=2, tier="hybrid", hot_threshold=0.5
        ).with_template(run_seconds=RUN_SECONDS)
        # 4 simultaneous operators over 2 APs -> 2 per AP at 6 ms service
        verdicts = fleets.classify(fleet)
        assert len(verdicts) == 2
        assert all(v.peak_sessions == 2 for v in verdicts)
        sparse = fleets.classify(fleet.with_(operators=1, hot_threshold=1.0))
        assert sparse[0].peak_sessions == 1 and not sparse[0].hot
        assert sparse[1].peak_sessions == 0 and sparse[1].score == 0.0

    def test_scores_monotone_in_threshold_only_flip_hot(self, engines):
        _, fleets = engines
        fleet = _crossover_fleet()
        low = fleets.classify(fleet.with_(hot_threshold=0.1))
        high = fleets.classify(fleet.with_(hot_threshold=0.9))
        assert [v.score for v in low] == [v.score for v in high]
        assert sum(v.hot for v in low) >= sum(v.hot for v in high)

    def test_crossover_fleet_is_genuinely_mixed(self, engines):
        _, fleets = engines
        verdicts = fleets.classify(_crossover_fleet())
        hot = sum(v.hot for v in verdicts)
        assert 0 < hot < len(verdicts)

    def test_cold_draw_seed_ignores_tier_knobs(self):
        fleet = _crossover_fleet()
        assert cold_draw_seed(fleet, 0) == cold_draw_seed(fleet.with_(tier="exact"), 0)
        assert cold_draw_seed(fleet, 0) == cold_draw_seed(fleet.with_(hot_threshold=0.2), 0)
        assert cold_draw_seed(fleet, 0) != cold_draw_seed(fleet, 1)
        assert cold_draw_seed(fleet, 0) != cold_draw_seed(fleet.with_(operators=47), 0)


class TestDegeneracy:
    def test_all_hot_fleet_is_bit_identical_to_exact(self, engines):
        """Every AP hot => the hybrid tier IS the exact computation."""
        sessions, _ = engines
        base = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
        hybrid = HybridFleetEngine(sessions=sessions, cache_results=False).run(
            base.with_(tier="hybrid", hot_threshold=1e-9)
        )
        exact = FleetEngine(sessions=sessions, cache_results=False).run(base)
        assert hybrid.tier == "hybrid"
        assert (hybrid.hot_aps, hybrid.cold_aps) == (1, 0)
        assert hybrid.exact_sessions == exact.admitted
        assert hybrid.analytic_sessions == 0
        assert hybrid.rmse_no_forecast_mm == exact.rmse_no_forecast_mm
        assert hybrid.rmse_foreco_mm == exact.rmse_foreco_mm
        assert hybrid.late_fraction == exact.late_fraction
        assert hybrid.recovery_fraction == exact.recovery_fraction
        assert hybrid.completion_time_s == exact.completion_time_s
        assert hybrid.ap_utilization == exact.ap_utilization
        assert np.array_equal(hybrid.delays_ms, exact.delays_ms)

    def test_exact_tier_spec_takes_the_plain_path(self, engines):
        sessions, _ = engines
        base = get_fleet("shared-ap").with_template(run_seconds=RUN_SECONDS)
        via_hybrid = HybridFleetEngine(sessions=sessions, cache_results=False).run(base)
        via_plain = FleetEngine(sessions=sessions, cache_results=False).run(base)
        assert via_hybrid.to_dict() == via_plain.to_dict()
        assert via_hybrid.tier == "exact"

    def test_plain_engine_refuses_hybrid_specs(self, engines):
        sessions, _ = engines
        fleet = _crossover_fleet()
        with pytest.raises(ConfigurationError):
            FleetEngine(sessions=sessions, cache_results=False).run(fleet)


class TestAccuracy:
    """The error-vs-exact gate at the crossover scale (ISSUE acceptance)."""

    @pytest.fixture(scope="class")
    def pair(self, engines):
        sessions, _ = engines
        fleet = _crossover_fleet()
        hybrid = HybridFleetEngine(sessions=sessions, cache_results=False).run(fleet)
        exact = FleetEngine(sessions=sessions, cache_results=False).run(
            fleet.with_(tier="exact")
        )
        return hybrid, exact

    def test_same_admission_plan(self, pair):
        hybrid, exact = pair
        assert hybrid.admitted == exact.admitted
        assert hybrid.dropped_sessions == exact.dropped_sessions
        assert hybrid.exact_sessions + hybrid.analytic_sessions == hybrid.admitted
        assert hybrid.hot_aps > 0 and hybrid.cold_aps > 0

    def test_recovery_percentiles_within_tolerance(self, pair):
        hybrid, exact = pair
        assert hybrid.p50_recovery == pytest.approx(exact.p50_recovery, abs=RECOVERY_TOL)
        assert hybrid.p99_recovery == pytest.approx(exact.p99_recovery, abs=RECOVERY_TOL)

    def test_completion_percentiles_within_tolerance(self, pair):
        hybrid, exact = pair
        assert hybrid.p50_completion_s == pytest.approx(
            exact.p50_completion_s, rel=COMPLETION_REL
        )
        assert hybrid.p99_completion_s == pytest.approx(
            exact.p99_completion_s, rel=COMPLETION_REL
        )

    def test_late_fraction_within_tolerance(self, pair):
        hybrid, exact = pair
        assert hybrid.mean_late_fraction == pytest.approx(
            exact.mean_late_fraction, abs=LATE_TOL
        )

    def test_rmse_distributions_share_support(self, pair):
        """Cold rows bootstrap the solo statistics, so the RMS error stays
        in the exact run's range (cold APs barely change tracking error)."""
        hybrid, exact = pair
        lo, hi = min(exact.rmse_foreco_mm), max(exact.rmse_foreco_mm)
        margin = 0.1 * (hi - lo)
        assert all(lo - margin <= v <= hi + margin for v in hybrid.rmse_foreco_mm)


class TestDeterminism:
    def test_fresh_engine_reproduces_bit_for_bit(self, engines):
        sessions, _ = engines
        fleet = _crossover_fleet()
        a = HybridFleetEngine(sessions=sessions, cache_results=False).run(fleet)
        b = HybridFleetEngine(sessions=SessionEngine(), cache_results=False).run(fleet)
        assert a.to_dict() == b.to_dict()

    def test_sweep_jobs_do_not_change_hybrid_results(self):
        specs = [
            _crossover_fleet(),
            get_fleet("shared-ap").with_(tier="hybrid", hot_threshold=1e-9).with_template(
                run_seconds=RUN_SECONDS
            ),
        ]
        serial = SweepExecutor(jobs=1).run(specs)
        threaded = SweepExecutor(jobs=4).run(specs)
        assert [row.to_dict() for row in serial] == [row.to_dict() for row in threaded]

    def test_process_backend_matches_serial(self):
        specs = [_crossover_fleet()]
        serial = SweepExecutor(jobs=1).run(specs)
        process = SweepExecutor(jobs=2, backend="process").run(specs)
        assert [row.to_dict() for row in process] == [row.to_dict() for row in serial]


class TestStore:
    def test_hybrid_result_round_trips_with_tier_metadata(self, tmp_path, engines):
        sessions, _ = engines
        fleet = _crossover_fleet()
        store = ResultStore(tmp_path / "store")
        computed = HybridFleetEngine(
            sessions=sessions, cache_results=False, store=store
        ).run(fleet)
        loaded = ResultStore(tmp_path / "store").get(fleet)
        assert loaded is not None
        assert loaded.tier == "hybrid"
        assert (loaded.hot_aps, loaded.cold_aps) == (computed.hot_aps, computed.cold_aps)
        assert loaded.exact_sessions == computed.exact_sessions
        assert loaded.analytic_sessions == computed.analytic_sessions
        assert loaded.to_dict() == computed.to_dict()

    def test_tier_twins_occupy_distinct_addresses(self, tmp_path, engines):
        sessions, _ = engines
        fleet = _crossover_fleet()
        store = ResultStore(tmp_path / "store")
        HybridFleetEngine(sessions=sessions, cache_results=False, store=store).run(fleet)
        assert ResultStore(tmp_path / "store").get(fleet.with_(tier="exact")) is None

    def test_tier_mismatched_shard_is_a_miss(self, tmp_path, engines):
        """A shard whose stored tier contradicts the spec is quarantined."""
        sessions, _ = engines
        fleet = _crossover_fleet()
        store = ResultStore(tmp_path / "store")
        HybridFleetEngine(sessions=sessions, cache_results=False, store=store).run(fleet)
        path = store.shard_path(fleet.spec_hash())
        record = json.loads(path.read_text(encoding="utf-8"))
        record["tier"] = "exact"
        path.write_text(json.dumps(record), encoding="utf-8")
        assert ResultStore(tmp_path / "store").get(fleet) is None

    def test_warm_hybrid_sweep_is_all_hits(self, tmp_path):
        specs = [_crossover_fleet()]
        first = SweepExecutor(store=ResultStore(tmp_path / "store")).run(specs)
        assert (first.store_hits, first.store_misses) == (0, 1)
        second = SweepExecutor(store=ResultStore(tmp_path / "store")).run(specs)
        assert (second.store_hits, second.store_misses) == (1, 0)
        assert [row.to_dict() for row in second] == [row.to_dict() for row in first]


class TestRunner:
    def test_fleet_tier_override_lands_in_the_json_report(self, tmp_path):
        document = json.loads(
            run_experiments(
                [], scale="ci", seed=42, jobs=2, fmt="json", fleet=2,
                store=str(tmp_path / "store"), fleet_tier="hybrid",
            )
        )
        block = document["fleet_tier"]
        assert block["override"] == "hybrid"
        assert set(block["tiers"].values()) == {"hybrid"}
        for row in document["fleets"]:
            assert row["tier"] == "hybrid"
            assert row["exact_sessions"] + row["analytic_sessions"] == row["admitted"]

    def test_fleet_tier_exact_override_forces_the_exact_path(self):
        document = json.loads(
            run_experiments(
                ["fleet"], scale="ci", seed=42, jobs=1, fmt="json", fleet=2,
                fleet_tier="exact",
            )
        )
        assert set(document["fleet_tier"]["tiers"].values()) == {"exact"}

    def test_text_report_carries_the_tier_line(self):
        report = run_experiments(
            ["fleet"], scale="ci", seed=42, jobs=1, fmt="text", fleet=2,
            fleet_tier="hybrid",
        )
        assert "tier:" in report
        assert "--fleet-tier hybrid override" in report
