"""Capacity planner: knee recovery, determinism, warm store, SLO mutation."""

from __future__ import annotations

import json

import pytest

import repro
from repro.errors import ConfigurationError
from repro.experiments.runner import run_experiments
from repro.fleet import (
    CapacityPlanner,
    PlanSpec,
    analytic_bracket,
    get_fleet,
    get_plan,
    plan_catalog,
    plan_names,
    register_plan,
)
from repro.scenarios import ResultStore

#: The documented knee of the shared-ap preset (examples/fleet_capacity.py):
#: 3 operators per AP fit the command period; the 4th overloads the backlog.
SHARED_AP_KNEE = 3


@pytest.fixture(scope="module")
def probe_store(tmp_path_factory):
    """One store shared by the whole module, so probes compute only once."""
    return ResultStore(tmp_path_factory.mktemp("plans") / "store")


def _plan(spec, store, **planner_kwargs):
    return CapacityPlanner(store=store, **planner_kwargs).run(spec)


# ------------------------------------------------------------------ the knee
def test_dual_gradient_recovers_the_shared_ap_knee(probe_store):
    plan = _plan(get_plan("plan-shared-ap"), probe_store)
    assert abs(plan.capacity - SHARED_AP_KNEE) <= 1
    assert plan.capacity == SHARED_AP_KNEE  # exactly, not just within the gate
    assert plan.feasible
    assert plan.method == "dual-gradient"
    assert plan.evaluated <= plan.spec.budget


def test_golden_section_recovers_the_shared_ap_knee(probe_store):
    plan = _plan(get_plan("plan-shared-ap-golden"), probe_store)
    assert abs(plan.capacity - SHARED_AP_KNEE) <= 1
    assert plan.capacity == SHARED_AP_KNEE
    assert plan.feasible
    assert plan.method == "golden-section"
    assert plan.evaluated <= plan.spec.budget


def test_analytic_bracket_lands_on_the_knee():
    # floor(command period / AP service time) = floor(20 / 6) = 3: the
    # warm start alone already names the knee, before any probe runs.
    assert analytic_bracket(get_plan("plan-shared-ap")) == SHARED_AP_KNEE


def test_probes_are_real_fleet_evaluations(probe_store):
    plan = _plan(get_plan("plan-shared-ap"), probe_store)
    for probe in plan.probes:
        spec = plan.spec.probe_spec(probe.capacity)
        assert probe.spec_hash == spec.spec_hash()
        assert probe_store.contains(spec)  # the probe shard is reusable


# -------------------------------------------------------------- determinism
def test_plan_is_bit_identical_across_jobs_and_backends(probe_store):
    spec = get_plan("plan-shared-ap")
    serial = _plan(spec, probe_store, jobs=1).to_dict()
    threaded = _plan(spec, probe_store, jobs=4).to_dict()
    process = _plan(spec, probe_store, jobs=4, backend="process").to_dict()
    assert serial == threaded == process


def test_golden_plan_is_bit_identical_across_jobs(probe_store):
    spec = get_plan("plan-shared-ap-golden")
    assert _plan(spec, probe_store, jobs=1).to_dict() == _plan(spec, probe_store, jobs=4).to_dict()


# --------------------------------------------------------------- warm store
def test_rerun_against_same_store_is_warm_and_bit_identical(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = get_plan("plan-shared-ap")
    cold = CapacityPlanner(store=store).run(spec)
    assert not cold.from_store
    assert cold.store_hits == 0 and cold.store_misses == cold.evaluated
    before = store.stats()
    warm = CapacityPlanner(store=store).run(spec)
    after = store.stats()
    assert warm.from_store  # the plan record itself was reused...
    assert after.misses == before.misses  # ...and nothing was recomputed
    assert after.writes == before.writes
    assert warm.to_dict() == cold.to_dict()  # persisted partition included
    assert warm.to_json() == cold.to_json()


def test_plans_share_probe_shards_across_methods(tmp_path):
    store = ResultStore(tmp_path / "store")
    dual = CapacityPlanner(store=store).run(get_plan("plan-shared-ap"))
    golden = CapacityPlanner(store=store).run(get_plan("plan-shared-ap-golden"))
    shared = {p.capacity for p in dual.probes} & {p.capacity for p in golden.probes}
    assert shared  # both ledgers visit the knee region
    assert golden.store_hits == len(shared)  # probe shards reused verbatim


def test_budget_caps_distinct_probes(probe_store):
    spec = get_plan("plan-shared-ap-golden", budget=2)
    plan = _plan(spec, probe_store)
    assert plan.evaluated <= 2


# --------------------------------------------------- mutation: gates must bite
def test_late_gate_bites(probe_store):
    baseline = _plan(get_plan("plan-shared-ap"), probe_store)
    assert baseline.feasible
    mutated = _plan(get_plan("plan-shared-ap", slo_late=0.01), probe_store)
    assert not mutated.feasible  # every capacity is late beyond the gate
    assert mutated.capacity <= baseline.capacity


def test_drop_gate_bites(probe_store):
    baseline = _plan(get_plan("plan-shared-ap"), probe_store)
    assert baseline.feasible and baseline.drop_rate > 0.2
    mutated = _plan(get_plan("plan-shared-ap", slo_drop=0.2), probe_store)
    assert not mutated.feasible  # verdict flips on the drop the knee leaves
    assert mutated.capacity == baseline.capacity  # the drop gate never moves it


def test_p99_gate_bites(probe_store):
    # Disable the other gates so the p99 gate alone decides feasibility.
    loose = _plan(
        get_plan("plan-shared-ap", slo_late=1.0, slo_drop=0.0, slo_p99=0.99), probe_store
    )
    assert loose.feasible  # capacity 4 drops nobody and clears p99 >= 0.99
    tight = _plan(
        get_plan("plan-shared-ap", slo_late=1.0, slo_drop=0.0, slo_p99=0.999), probe_store
    )
    assert not tight.feasible  # p99 gate pushes the knee down, drops appear
    assert tight.capacity < loose.capacity


# -------------------------------------------------------------------- codec
def test_plan_record_round_trips_bit_for_bit(tmp_path):
    store = ResultStore(tmp_path / "store")
    spec = get_plan("plan-shared-ap")
    computed = CapacityPlanner(store=store).run(spec)
    loaded = store.get(spec)
    assert loaded is not None and loaded.from_store
    assert loaded.spec_hash == computed.spec_hash
    assert loaded.to_dict() == computed.to_dict()
    assert [p.feasible for p in loaded.probes] == [p.feasible for p in computed.probes]


def test_plan_text_and_json_renderings(probe_store):
    plan = _plan(get_plan("plan-shared-ap"), probe_store)
    text = plan.to_text()
    assert "FEASIBLE at capacity 3" in text
    assert "analytic bracket 3" in text
    document = json.loads(plan.to_json())
    assert document["plan_version"] == 1
    assert document["capacity"] == SHARED_AP_KNEE
    assert document["bracket"] == SHARED_AP_KNEE
    assert len(document["probes"]) == plan.evaluated
    assert document["trace"]  # convergence trace is part of the report
    assert "from_store" not in document  # transient, never persisted


# ------------------------------------------------------------ facade + runner
def test_facade_plan_matches_planner(probe_store):
    via_facade = repro.plan("plan-shared-ap", store=probe_store)
    direct = _plan(get_plan("plan-shared-ap"), probe_store)
    assert via_facade.to_dict() == direct.to_dict()


def test_facade_plan_accepts_overrides_and_rejects_wrong_types(probe_store):
    mutated = repro.plan("plan-shared-ap", store=probe_store, slo_drop=0.2)
    assert not mutated.feasible
    with pytest.raises(ConfigurationError):
        repro.plan(get_fleet("shared-ap"))  # a FleetSpec is not a plan


def test_runner_plan_keyword_reports_both_presets(probe_store):
    kwargs = dict(scale="ci", seed=42, fmt="json", store=str(probe_store.root))
    cold = json.loads(run_experiments(["plan"], **kwargs))
    plans = {row["plan"]: row for row in cold["plans"]}
    assert set(plans) == set(plan_names())
    assert all(row["capacity"] == SHARED_AP_KNEE for row in plans.values())
    warm = json.loads(run_experiments(["plan"], **kwargs))
    assert warm["plans"] == cold["plans"]  # bit-identical rerun
    assert warm["store"]["misses"] == 0  # plan records reused, zero recompute
    assert warm["store"]["hits"] == len(plan_names())


# ------------------------------------------------------------------ registry
def test_plan_registry_surface():
    names = plan_names()
    assert "plan-shared-ap" in names and "plan-shared-ap-golden" in names
    catalog = plan_catalog()
    assert set(catalog) == set(names)
    assert all(catalog.values())
    with pytest.raises(ConfigurationError):
        get_plan("no-such-plan")
    with pytest.raises(ConfigurationError):
        register_plan(PlanSpec(name="plan-shared-ap", fleet=get_fleet("shared-ap")))


def test_get_plan_forwards_fleet_scale_and_seed():
    spec = get_plan("plan-shared-ap", scale="standard", seed=7)
    assert spec.fleet.template.scale.name == "standard"
    assert spec.fleet.template.seed == 7


# -------------------------------------------------------------------- errors
def test_planner_rejects_misuse():
    with pytest.raises(ConfigurationError):
        CapacityPlanner().run(get_fleet("shared-ap"))
    with pytest.raises(ConfigurationError):
        PlanSpec(method="newton")
    with pytest.raises(ConfigurationError):
        PlanSpec(min_capacity=0)
    with pytest.raises(ConfigurationError):
        PlanSpec(min_capacity=5, max_capacity=2)
    with pytest.raises(ConfigurationError):
        PlanSpec(slo_p99=1.5)
    with pytest.raises(ConfigurationError):
        PlanSpec(budget=0)
    with pytest.raises(ConfigurationError):
        get_plan("plan-shared-ap").probe_spec(99)
    with pytest.raises(ConfigurationError):
        CapacityPlanner(executor=object(), evaluator=lambda spec: None)  # type: ignore[arg-type]
