"""Tests for the teleoperation substrate: task, operators, remote controller."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DimensionError
from repro.robot.niryo import NiryoOneArm
from repro.teleop import (
    OperatorModel,
    RemoteController,
    experienced_operator,
    inexperienced_operator,
)
from repro.teleop.operator import OperatorProfile, _minimum_jerk, _trapezoidal
from repro.teleop.pick_place import PickPlaceTask, Waypoint, default_pick_place_task


# ----------------------------------------------------------------------- task
def test_default_task_structure():
    task = default_pick_place_task()
    assert task.n_joints == 6
    assert len(task.waypoints) >= 5
    assert task.cycle_duration_s() > 5.0


def test_task_cartesian_extent_in_paper_range():
    task = default_pick_place_task()
    low, high = task.cartesian_extent_mm()
    assert low < high
    assert 150.0 < low < 450.0
    assert 400.0 < high < 700.0


def test_task_validation():
    with pytest.raises(ConfigurationError):
        PickPlaceTask(waypoints=[])
    with pytest.raises(ConfigurationError):
        Waypoint(np.zeros(6), move_duration_s=0.0)
    with pytest.raises(ConfigurationError):
        PickPlaceTask(
            waypoints=[
                Waypoint(np.zeros(6), move_duration_s=1.0),
                Waypoint(np.zeros(5), move_duration_s=1.0),
            ]
        )


# ------------------------------------------------------------------ profiles
def test_motion_profiles_start_and_end_at_bounds():
    fractions = np.linspace(0.0, 1.0, 101)
    for profile in (_minimum_jerk, _trapezoidal):
        values = profile(fractions)
        assert values[0] == pytest.approx(0.0, abs=1e-9)
        assert values[-1] == pytest.approx(1.0, abs=1e-9)
        assert np.all(np.diff(values) >= -1e-12)  # monotone non-decreasing


def test_operator_profile_validation():
    with pytest.raises(ConfigurationError):
        OperatorProfile(name="bad", jitter_smoothing=1.5)
    with pytest.raises(ConfigurationError):
        OperatorProfile(name="bad", jitter_rad=-1.0)
    with pytest.raises(ConfigurationError):
        OperatorProfile(name="bad", pause_probability=2.0)


def test_builtin_profiles_differ():
    experienced = experienced_operator()
    inexperienced = inexperienced_operator()
    assert inexperienced.jitter_rad > experienced.jitter_rad
    assert inexperienced.speed_variability > experienced.speed_variability


# ------------------------------------------------------------------ operator
def test_operator_generates_expected_command_rate():
    operator = OperatorModel(profile=experienced_operator(), seed=0)
    commands = operator.generate_cycle()
    expected = operator.task.cycle_duration_s() / 0.02
    assert commands.shape[1] == 6
    assert 0.5 * expected <= commands.shape[0] <= 2.0 * expected


def test_operator_dataset_repetitions_concatenate():
    operator = OperatorModel(profile=experienced_operator(), seed=0)
    single = operator.generate_dataset(1)
    operator = OperatorModel(profile=experienced_operator(), seed=0)
    double = operator.generate_dataset(2)
    assert double.shape[0] > single.shape[0]


def test_operator_reproducible_with_seed():
    a = OperatorModel(profile=inexperienced_operator(), seed=5).generate_dataset(2)
    b = OperatorModel(profile=inexperienced_operator(), seed=5).generate_dataset(2)
    assert np.array_equal(a, b)


def test_operator_timed_dataset_grid():
    times, commands = OperatorModel(seed=1).generate_timed_dataset(1)
    assert times.shape[0] == commands.shape[0]
    assert np.allclose(np.diff(times), 0.02)


def test_operator_rejects_unknown_motion_profile():
    with pytest.raises(ConfigurationError):
        OperatorModel(motion_profile="teleport")


# --------------------------------------------------------------- controller
def test_controller_quantises_step_size():
    controller = RemoteController()
    arm = NiryoOneArm()
    raw = np.vstack([arm.home_pose(), arm.home_pose() + 1.0])  # a huge jump
    stream = controller.quantise(raw)
    delta = np.abs(np.diff(stream.commands, axis=0))
    assert np.all(delta <= controller.moving_offset_rad + 1e-12)


def test_controller_output_within_limits(experienced_stream):
    arm = NiryoOneArm()
    commands = experienced_stream.commands
    assert np.all(commands <= arm.limits.position_max + 1e-9)
    assert np.all(commands >= arm.limits.position_min - 1e-9)


def test_stream_properties(experienced_stream):
    assert experienced_stream.n_joints == 6
    assert experienced_stream.period_ms == 20.0
    assert experienced_stream.duration_s == pytest.approx(len(experienced_stream) * 0.02)
    times = experienced_stream.generation_times_s()
    assert np.allclose(np.diff(times), 0.02)
    head = experienced_stream.head_seconds(1.0)
    assert len(head) == 50


def test_controller_rejects_wrong_joint_count():
    controller = RemoteController()
    with pytest.raises(DimensionError):
        controller.quantise(np.zeros((10, 4)))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_command_stream_respects_moving_offset(seed):
    """Property: any generated stream moves each joint at most 0.04 rad/step."""
    controller = RemoteController()
    operator = OperatorModel(profile=inexperienced_operator(), seed=seed)
    stream = controller.quantise(operator.generate_cycle())
    deltas = np.abs(np.diff(stream.commands, axis=0))
    assert np.all(deltas <= controller.moving_offset_rad + 1e-12)
