"""ServiceEngine: live replay determinism, fleet anchoring, store round-trips."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.fleet import FleetEngine, get_fleet
from repro.scenarios import ResultStore, SweepExecutor
from repro.service import ServiceEngine, ServiceResult, ServiceSpec, get_service, pace_snapshots


@pytest.fixture(scope="module")
def spec() -> ServiceSpec:
    return get_service("service-shared-ap").with_template(scale="ci")


@pytest.fixture(scope="module")
def result(spec) -> ServiceResult:
    return ServiceEngine().run(spec)


class TestDeterminism:
    def test_two_invocations_are_bit_identical(self, spec, result):
        again = ServiceEngine().run(spec)
        assert again.to_dict() == result.to_dict()
        assert again.snapshots == result.snapshots

    def test_jobs_do_not_change_results(self, spec):
        """Serving through 1 or 4 sweep workers is bit-identical."""
        specs = [spec.with_(policy=p) for p in ("static-cap", "utilization-threshold")]
        serial = SweepExecutor(jobs=1).run(specs)
        fanned = SweepExecutor(jobs=4).run(specs)
        for a, b in zip(serial, fanned):
            assert a.to_dict() == b.to_dict()

    def test_engine_memory_cache(self, spec):
        engine = ServiceEngine()
        assert engine.run(spec) is engine.run(spec)
        engine.clear()
        assert engine.cached_result(spec) is None


class TestFleetAnchor:
    def test_static_cap_reproduces_fleet_admissions(self):
        """The static-cap service is the fleet engine's run, bit for bit."""
        fleet = get_fleet("shared-ap", operators=6, arrival="poisson",
                          arrival_rate_hz=0.3).with_template(scale="ci")
        service = ServiceEngine().run(ServiceSpec(fleet=fleet, policy="static-cap"))
        baseline = FleetEngine().run(fleet)
        assert service.admitted == baseline.admitted
        assert service.dropped_sessions == baseline.dropped_sessions
        assert service.migrated_sessions == 0
        assert service.rmse_foreco_mm == baseline.rmse_foreco_mm
        assert service.completion_time_s == baseline.completion_time_s
        assert service.recovery_fraction == baseline.recovery_fraction
        assert np.allclose(service.ap_utilization, baseline.ap_utilization)


class TestAccounting:
    def test_session_conservation(self, result):
        assert result.offered == result.spec.fleet.operators * result.spec.repetitions
        assert result.admitted + result.dropped_sessions == result.offered
        assert 0 <= result.migrated_sessions <= result.admitted
        assert result.drop_rate == pytest.approx(result.dropped_sessions / result.offered)
        assert len(result.recovery_fraction) == result.admitted
        assert len(result.completion_time_s) == result.admitted
        assert len(result.ap_utilization) == result.spec.fleet.aps

    def test_balancing_policy_migrates_on_the_anchor_preset(self, spec):
        """The anchor workload actually exercises migration (not a no-op knob)."""
        crowded = spec.with_template(repetitions=4)
        threshold = ServiceEngine().run(crowded.with_(policy="utilization-threshold"))
        static = ServiceEngine().run(crowded.with_(policy="static-cap"))
        assert threshold.migrated_sessions > 0
        assert static.migrated_sessions == 0
        assert threshold.dropped_sessions < static.dropped_sessions

    def test_until_truncates_the_admission_horizon(self, spec, result):
        truncated = ServiceEngine().run(spec.with_(until_s=1e-6))
        # Arrivals past the horizon never enter the service: they are
        # neither admitted nor dropped, so nothing was offered at all.
        assert truncated.admitted == 0
        assert truncated.dropped_sessions == 0
        assert truncated.offered == 0
        assert truncated.drop_rate == 0.0
        assert truncated.p99_recovery == 0.0
        assert all(u == 0.0 for u in truncated.ap_utilization)
        # A horizon past every arrival changes nothing but the spec hash.
        unbounded = ServiceEngine().run(spec.with_(until_s=1e6))
        assert unbounded.admitted == result.admitted
        assert unbounded.recovery_fraction == result.recovery_fraction


class TestSnapshots:
    def test_stream_is_monotone_and_consistent(self, spec, result):
        snaps = result.snapshots
        assert len(snaps) >= 2
        times = [s.time_s for s in snaps]
        assert times == sorted(times)
        for s in snaps:
            assert s.admitted + s.dropped <= result.offered
            assert s.migrated <= s.admitted
            assert 0 <= s.completed <= s.admitted
            assert len(s.ap_utilization) == spec.fleet.aps
        final = snaps[-1]
        assert final.admitted == result.admitted
        assert final.dropped == result.dropped_sessions
        assert final.migrated == result.migrated_sessions
        assert final.completed == result.admitted
        assert final.active_sessions == 0
        assert final.rolling_p99_recovery == pytest.approx(result.p99_recovery)

    def test_cadence_follows_snapshot_every_slots(self, spec):
        coarse = ServiceEngine().run(spec.with_(snapshot_every_slots=200))
        fine = ServiceEngine().run(spec.with_(snapshot_every_slots=25))
        assert len(fine.snapshots) > len(coarse.snapshots)

    def test_pacing_is_a_pure_display_shim(self, result):
        sleeps: list[float] = []
        clock = iter(float(i) for i in range(10_000))
        paced = list(
            pace_snapshots(
                result.snapshots[:4],
                speedup=1000.0,
                sleep=sleeps.append,
                clock=lambda: next(clock),
            )
        )
        assert paced == list(result.snapshots[:4])
        assert all(s >= 0.0 for s in sleeps)


class TestStore:
    def test_round_trip_is_bit_identical(self, spec, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = ServiceEngine(store=store).run(spec)
        fresh = ServiceEngine(store=store)
        again = fresh.run(spec)
        assert again.to_dict() == first.to_dict()
        assert again.snapshots == first.snapshots
        assert again.spec == spec

    def test_empty_service_round_trips(self, spec, tmp_path):
        store = ResultStore(tmp_path / "store")
        empty_spec = spec.with_(until_s=1e-6)
        first = ServiceEngine(store=store).run(empty_spec)
        again = ServiceEngine(store=store).run(empty_spec)
        assert first.admitted == 0
        assert again.to_dict() == first.to_dict()

    def test_sweep_executor_routes_service_specs(self, spec, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = [spec, spec.with_(policy="utilization-threshold")]
        cold = SweepExecutor(jobs=2, store=store).run(specs)
        assert cold.store_misses == 2
        warm = SweepExecutor(jobs=2, store=store).run(specs)
        assert warm.store_hits == 2 and warm.store_misses == 0
        for a, b in zip(cold, warm):
            assert a.to_dict() == b.to_dict()


class TestFacade:
    def test_serve_accepts_spec_and_preset(self, spec, result):
        by_spec = repro.serve(spec)
        assert by_spec.to_dict() == result.to_dict()
        by_name = repro.serve("service-shared-ap")
        assert by_name.spec.policy == "static-cap"

    def test_serve_until_and_store(self, spec, tmp_path):
        first = repro.serve(spec, until=1e-6, store=tmp_path / "store")
        assert first.admitted == 0
        again = repro.serve(spec, until=1e-6, store=tmp_path / "store")
        assert again.to_dict() == first.to_dict()

    def test_text_rendering_mentions_the_essentials(self, result):
        text = result.to_text()
        assert "admitted" in text
        assert "drop rate" in text
        assert "snapshots" in text
