"""ServiceSpec value semantics, validation and the service preset registry."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.fleet import FleetSpec, get_fleet
from repro.service import (
    POLICY_KINDS,
    ServiceSpec,
    get_service,
    register_service,
    service_catalog,
    service_names,
)


class TestValidation:
    def test_defaults_are_valid(self):
        spec = ServiceSpec()
        assert spec.policy == "static-cap"
        assert spec.fleet.tier == "exact"
        assert spec.until_s is None

    @pytest.mark.parametrize(
        "changes",
        [
            {"fleet": "shared-ap"},
            {"policy": "round-robin"},
            {"utilization_limit": 0.0},
            {"utilization_limit": 1.5},
            {"utilization_limit": float("nan")},
            {"forecast_record": 0},
            {"forecast_record": 2.5},
            {"forecast_algorithm": "oracle"},
            {"snapshot_every_slots": 0},
            {"until_s": 0.0},
            {"until_s": -10.0},
            {"until_s": float("inf")},
        ],
    )
    def test_invalid_fields_raise_configuration_error(self, changes):
        """Misconfiguration is always a typed ConfigurationError, never ValueError."""
        with pytest.raises(ConfigurationError):
            ServiceSpec(**changes)

    def test_hybrid_fleet_rejected(self):
        # Online admission needs per-session outcomes; the analytic cold
        # tier has none, so a service fleet must be exact.
        with pytest.raises(ConfigurationError):
            ServiceSpec(fleet=get_fleet("city-scale"))


class TestIdentity:
    def test_name_excluded_from_hash(self):
        a = ServiceSpec(name="a", policy="static-cap")
        b = ServiceSpec(name="b", policy="static-cap")
        assert a.spec_hash() == b.spec_hash()

    def test_policy_knobs_change_hash(self):
        base = ServiceSpec()
        assert base.spec_hash() != base.with_(policy="utilization-threshold").spec_hash()
        assert base.spec_hash() != base.with_(utilization_limit=0.5).spec_hash()
        assert base.spec_hash() != base.with_(snapshot_every_slots=10).spec_hash()
        assert base.spec_hash() != base.with_(until_s=30.0).spec_hash()
        assert base.spec_hash() != base.with_fleet(operators=9).spec_hash()

    def test_hash_disjoint_from_fleet_hash(self):
        fleet = FleetSpec(operators=3)
        assert ServiceSpec(fleet=fleet).spec_hash() != fleet.spec_hash()

    def test_workload_identity_excludes_policy(self):
        """All three policies of one workload see identical arrivals/channels."""
        base = ServiceSpec()
        for policy in POLICY_KINDS[1:]:
            other = base.with_(policy=policy, utilization_limit=0.5)
            assert base.workload_identity() == other.workload_identity()
        assert base.workload_identity() != base.with_fleet(aps=2).workload_identity()
        assert base.workload_identity() != base.with_(until_s=5.0).workload_identity()

    def test_canonical_is_json_safe(self):
        spec = ServiceSpec(policy="forecast-aware", until_s=60.0)
        json.dumps(spec.canonical(), sort_keys=True, allow_nan=False)

    def test_builders(self):
        spec = ServiceSpec().with_(policy="forecast-aware").with_fleet(operators=9)
        spec = spec.with_template(seed=7)
        assert spec.policy == "forecast-aware"
        assert spec.fleet.operators == 9
        assert spec.template.seed == 7
        assert spec.channel == spec.template.channel
        assert spec.repetitions == spec.template.repetitions

    def test_describe_mentions_policy_and_fleet(self):
        text = ServiceSpec(policy="utilization-threshold").describe()
        assert "utilization-threshold" in text
        assert "operators" in text


class TestRegistry:
    def test_builtin_presets_exist(self):
        names = service_names()
        assert {"service-shared-ap", "service-peak-hour", "service-diurnal"} <= set(names)
        catalog = service_catalog()
        assert all(catalog[name] for name in names)
        # One preset per policy kind, so `serve` exercises all three.
        assert {get_service(name).policy for name in names} == set(POLICY_KINDS)

    def test_get_service_overrides(self):
        spec = get_service("service-shared-ap", policy="forecast-aware",
                           scale="standard", seed=5)
        assert spec.policy == "forecast-aware"
        assert spec.template.scale.name == "standard"
        assert spec.template.seed == 5
        assert get_service("service-shared-ap", until_s=30.0).until_s == 30.0

    def test_unknown_service_raises(self):
        with pytest.raises(ConfigurationError):
            get_service("nope")

    def test_register_requires_distinct_name(self):
        with pytest.raises(ConfigurationError):
            register_service(ServiceSpec(name="service"))
        with pytest.raises(ConfigurationError):
            register_service(get_service("service-shared-ap"))  # already taken

    def test_register_and_overwrite(self):
        spec = ServiceSpec(name="test-register-service", policy="static-cap")
        register_service(spec, "temporary", overwrite=True)
        assert get_service("test-register-service").policy == "static-cap"
        register_service(spec.with_(policy="forecast-aware"), "temporary", overwrite=True)
        assert get_service("test-register-service").policy == "forecast-aware"
