"""Policy-comparison experiment: shared workload, deterministic pinned ranking."""

from __future__ import annotations

import json

import pytest

from repro.service import (
    DEFAULT_RECOVERY_SLO,
    POLICY_KINDS,
    compare_policies,
    get_service,
    policy_score,
)


@pytest.fixture(scope="module")
def comparison():
    # The policy-comparison anchor: the shared-ap-derived preset at CI
    # scale, densified to four repetitions so arrival clusters overload a
    # home AP while another still has slack (the regime where migration
    # pays off).
    spec = get_service("service-shared-ap").with_template(scale="ci", repetitions=4)
    return compare_policies(spec)


def test_every_policy_runs_on_the_identical_workload(comparison):
    assert set(comparison.results) == set(POLICY_KINDS)
    identities = {p: r.spec.workload_identity() for p, r in comparison.results.items()}
    assert len({json.dumps(i, sort_keys=True) for i in identities.values()}) == 1
    offered = {r.offered for r in comparison.results.values()}
    assert len(offered) == 1


def test_pinned_ranking_on_the_anchor_preset(comparison):
    """The balancing policies beat static-cap by migrating off crowded APs.

    This ranking is pinned: a change here means the admission semantics,
    the arrival coupling or the preset itself moved.
    """
    assert comparison.ranking == ("utilization-threshold", "forecast-aware", "static-cap")
    assert comparison.best == "utilization-threshold"
    static = comparison.results["static-cap"]
    threshold = comparison.results["utilization-threshold"]
    assert threshold.dropped_sessions < static.dropped_sessions
    assert threshold.migrated_sessions > 0
    assert static.migrated_sessions == 0


def test_scores_are_ascending_and_reproducible(comparison):
    scores = [comparison.scores[p] for p in comparison.ranking]
    assert scores == sorted(scores)
    for policy, result in comparison.results.items():
        assert comparison.scores[policy] == pytest.approx(
            policy_score(result, DEFAULT_RECOVERY_SLO)
        )


def test_comparison_is_deterministic(comparison):
    spec = get_service("service-shared-ap").with_template(scale="ci", repetitions=4)
    again = compare_policies(spec)
    assert again.ranking == comparison.ranking
    assert again.to_dict() == comparison.to_dict()


def test_tie_breaks_follow_canonical_policy_order():
    # A horizon before any arrival empties every run: all scores tie and
    # the ranking must fall back to canonical policy order.
    spec = get_service("service-shared-ap").with_template(scale="ci").with_(until_s=1e-6)
    comparison = compare_policies(spec)
    assert comparison.ranking == POLICY_KINDS
    assert len(set(comparison.scores.values())) == 1


def test_renderings(comparison):
    text = comparison.to_text()
    assert "policy ranking" in text
    for policy in POLICY_KINDS:
        assert policy in text
    doc = comparison.to_dict()
    assert doc["ranking"] == list(comparison.ranking)
    json.dumps(doc, sort_keys=True, allow_nan=False)
    assert set(doc["policies"]) == set(POLICY_KINDS)


def test_accepts_preset_name_and_store(tmp_path):
    from repro.scenarios import ResultStore

    spec_name = "service-shared-ap"
    store = ResultStore(tmp_path / "store")
    spec = get_service(spec_name).with_template(scale="ci").with_(until_s=1e-6)
    first = compare_policies(spec, store=store)
    warm = compare_policies(spec, store=store)
    assert warm.to_dict() == first.to_dict()
    assert len(store) == len(POLICY_KINDS)
