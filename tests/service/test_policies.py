"""Admission policies: state arithmetic, placement rules, typed errors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service import (
    POLICY_KINDS,
    AdmissionPolicy,
    ServiceSpec,
    ServiceState,
    make_policy,
    policy_names,
)


def _state(n_commands: int = 10, **spec_changes) -> ServiceState:
    spec_changes.setdefault("fleet", ServiceSpec().fleet.with_(aps=2, ap_capacity=2))
    return ServiceState(ServiceSpec(**spec_changes), n_commands=n_commands)


class TestServiceState:
    def test_window_counting(self):
        # Queries happen in nondecreasing-offset order (the engine's online
        # contract): each session stays active for exactly n_commands slots.
        state = _state(n_commands=10)
        state.admit(0, 0)
        assert state.active(0, 0) == 1
        state.admit(0, 5)
        assert state.active(0, 5) == 2
        assert state.active(0, 9) == 2
        assert state.active(0, 10) == 1  # the offset-0 session just ended
        assert state.active(0, 15) == 0
        assert state.active(1, 5) == 0

    def test_session_load_is_service_over_period(self):
        state = _state()
        fleet = ServiceSpec().fleet
        expected = fleet.ap_service_ms / fleet.template.foreco.command_period_ms
        assert state.session_load == pytest.approx(expected)

    def test_utilization_caps_at_one(self):
        state = _state(n_commands=10)
        for _ in range(4):
            state.admit(0, 0)
        assert state.utilization(0, 0) == 1.0
        assert 0.0 < state.utilization(1, 0, extra=1) < 1.0

    def test_utilization_history_matches_pointwise(self):
        starts = (0, 1, 5)
        state = _state(n_commands=4)
        for offset in starts:
            state.admit(0, offset)
        history = state.utilization_history(0, 8)
        assert history.shape == (8,)
        for slot in range(8):
            active = sum(1 for s in starts if slot - 4 < s <= slot)
            assert history[slot] == pytest.approx(min(1.0, active * state.session_load))
        assert state.utilization_history(0, 0).shape == (0,)
        assert np.all(state.utilization_history(1, 8) == 0.0)


class TestPolicies:
    def test_registry_matches_spec_kinds(self):
        assert policy_names() == POLICY_KINDS
        for kind in POLICY_KINDS:
            policy = make_policy(ServiceSpec(policy=kind))
            assert isinstance(policy, AdmissionPolicy)
            assert policy.kind == kind

    def test_static_cap_never_migrates(self):
        policy = make_policy(ServiceSpec(policy="static-cap"))
        state = _state(n_commands=10)
        assert policy.admit(state, home_ap=0, offset=0) == 0
        state.admit(0, 0)
        assert policy.admit(state, home_ap=0, offset=0) == 0
        state.admit(0, 0)
        # Home AP full: static-cap drops even though AP 1 is empty.
        assert policy.admit(state, home_ap=0, offset=0) is None
        assert state.active(1, 0) == 0

    def test_threshold_migrates_off_a_full_home_ap(self):
        spec = ServiceSpec(
            policy="utilization-threshold",
            utilization_limit=1.0,
            fleet=ServiceSpec().fleet.with_(aps=2, ap_capacity=2),
        )
        policy = make_policy(spec)
        state = ServiceState(spec, n_commands=10)
        state.admit(0, 0)
        state.admit(0, 0)
        assert policy.admit(state, home_ap=0, offset=0) == 1  # migrated
        state.admit(1, 0)
        # Prefers the home AP while it has room and headroom.
        assert policy.admit(state, home_ap=1, offset=0) == 1

    def test_threshold_drops_when_everything_is_over_the_limit(self):
        spec = ServiceSpec(
            policy="utilization-threshold",
            utilization_limit=0.3,
            fleet=ServiceSpec().fleet.with_(aps=2, ap_capacity=2),
        )
        policy = make_policy(spec)
        state = ServiceState(spec, n_commands=10)
        # One session per AP puts every AP at the 0.3 limit already.
        state.admit(0, 0)
        state.admit(1, 0)
        assert policy.admit(state, home_ap=0, offset=0) is None

    def test_forecast_policy_falls_back_until_history_accumulates(self):
        spec = ServiceSpec(policy="forecast-aware", forecast_record=8)
        policy = make_policy(spec)
        state = ServiceState(spec, n_commands=10)
        # No history yet -> instantaneous fallback -> behaves like threshold.
        assert policy.admit(state, home_ap=0, offset=0) == 0

    def test_forecast_policy_uses_forecaster_with_history(self):
        spec = ServiceSpec(
            policy="forecast-aware",
            forecast_record=4,
            utilization_limit=0.95,
            fleet=ServiceSpec().fleet.with_(aps=2, ap_capacity=2),
        )
        policy = make_policy(spec)
        state = ServiceState(spec, n_commands=50)
        state.admit(0, 0)
        state.admit(0, 2)
        prediction = policy._predicted_utilization(state, 0, 20)
        assert 0.0 <= prediction <= 1.0
        # AP 0 carries steady load, AP 1 is idle: the forecast must notice.
        assert prediction > policy._predicted_utilization(state, 1, 20)
        assert policy.admit(state, home_ap=0, offset=20) in (0, 1)

    def test_policy_misconfiguration_is_typed(self):
        """Policy/spec misuse raises ConfigurationError, never bare ValueError."""
        with pytest.raises(ConfigurationError):
            ServiceSpec(policy="fifo")
        with pytest.raises(ConfigurationError):
            ServiceSpec(policy="forecast-aware", forecast_algorithm="crystal-ball")
        with pytest.raises(ConfigurationError):
            ServiceSpec(utilization_limit=-0.5)
