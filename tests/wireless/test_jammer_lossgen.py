"""Tests for the jammer model and the controlled loss injectors."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChannelError, ConfigurationError
from repro.wireless.jammer import GilbertElliottJammer, JammerConfig
from repro.wireless.lossgen import (
    ConsecutiveLossInjector,
    PeriodicLossInjector,
    RandomLossInjector,
)


# --------------------------------------------------------------------- jammer
def test_jammer_config_validation():
    with pytest.raises(ConfigurationError):
        JammerConfig(p_good_to_jammed=1.5)
    with pytest.raises(ConfigurationError):
        JammerConfig(delay_good_ms=-1.0)


def test_jammer_stationary_fraction_and_burst_length():
    config = JammerConfig(p_good_to_jammed=0.05, p_jammed_to_good=0.20)
    assert config.stationary_jammed_fraction() == pytest.approx(0.2)
    assert config.mean_burst_length() == pytest.approx(5.0)
    with pytest.raises(ChannelError):
        JammerConfig(p_jammed_to_good=0.0).mean_burst_length()


def test_jammer_produces_bursty_losses():
    jammer = GilbertElliottJammer(seed=0)
    trace = jammer.sample_trace(3000)
    assert 0.0 < trace.loss_rate() < 1.0
    # Losses must be bursty: the longest outage exceeds what i.i.d. losses of
    # the same rate would plausibly produce.
    assert trace.longest_outage(20.0) >= 5


def test_jammer_jammed_share_close_to_stationary():
    config = JammerConfig(p_good_to_jammed=0.05, p_jammed_to_good=0.10)
    jammer = GilbertElliottJammer(config, seed=1)
    mask = jammer.jammed_mask(20000)
    assert mask.mean() == pytest.approx(config.stationary_jammed_fraction(), abs=0.05)


def test_jammer_reset_returns_to_good_state():
    jammer = GilbertElliottJammer(seed=2)
    jammer.sample_trace(200)
    jammer.reset()
    assert jammer.state == GilbertElliottJammer.GOOD


def test_jammer_rejects_empty_trace():
    with pytest.raises(ChannelError):
        GilbertElliottJammer(seed=0).sample_trace(0)


def test_jammer_more_jamming_means_more_loss():
    light = GilbertElliottJammer(JammerConfig(p_good_to_jammed=0.01), seed=3).sample_trace(4000)
    heavy = GilbertElliottJammer(JammerConfig(p_good_to_jammed=0.10), seed=3).sample_trace(4000)
    assert heavy.loss_rate() > light.loss_rate()


# ------------------------------------------------------------- loss injectors
def test_consecutive_injector_burst_lengths():
    injector = ConsecutiveLossInjector(burst_length=10, n_bursts=3, min_gap=20, seed=0)
    mask = injector.lost_mask(600)
    runs = _run_lengths(mask)
    assert len(runs) == 3
    assert all(r == 10 for r in runs)


def test_consecutive_injector_rejects_impossible_fit():
    injector = ConsecutiveLossInjector(burst_length=50, n_bursts=5, min_gap=50, seed=0)
    with pytest.raises(ConfigurationError):
        injector.lost_mask(100)


def test_consecutive_injector_trace_has_inf_for_losses():
    injector = ConsecutiveLossInjector(burst_length=5, n_bursts=2, min_gap=10, seed=1)
    trace = injector.to_trace(200, nominal_delay_ms=2.0)
    delays = trace.delays()
    assert np.isinf(delays).sum() == 10
    finite = delays[np.isfinite(delays)]
    assert np.all(finite == 2.0)


def test_periodic_injector_pattern():
    injector = PeriodicLossInjector(burst_length=2, period=10, offset=3)
    mask = injector.lost_mask(30)
    assert list(np.where(mask)[0]) == [3, 4, 13, 14, 23, 24]
    with pytest.raises(ConfigurationError):
        PeriodicLossInjector(burst_length=10, period=10)


def test_random_injector_rate():
    injector = RandomLossInjector(0.2, seed=0)
    mask = injector.lost_mask(20000)
    assert mask.mean() == pytest.approx(0.2, abs=0.02)


@settings(max_examples=20, deadline=None)
@given(
    burst=st.integers(1, 25),
    n_bursts=st.integers(1, 4),
    n_commands=st.integers(500, 1500),
)
def test_consecutive_injector_total_losses_match(burst, n_bursts, n_commands):
    """Property: the injector drops exactly burst_length * n_bursts commands."""
    injector = ConsecutiveLossInjector(burst_length=burst, n_bursts=n_bursts, min_gap=30, seed=5)
    mask = injector.lost_mask(n_commands)
    assert mask.sum() == burst * n_bursts


def _run_lengths(mask: np.ndarray) -> list[int]:
    runs, current = [], 0
    for value in mask:
        if value:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs
