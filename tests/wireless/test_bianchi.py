"""Tests for the Bianchi DCF model with interference."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.wireless.bianchi import (
    DcfModel,
    DcfParameters,
    InterferenceSource,
    saturation_score,
)


def test_interference_source_occupancy():
    quiet = InterferenceSource()
    assert quiet.occupancy == 0.0
    assert not quiet.is_active
    active = InterferenceSource(probability=0.05, duration_slots=100)
    assert active.is_active
    assert active.occupancy == pytest.approx(5.0 / 6.0)


def test_interference_source_validation():
    with pytest.raises(ConfigurationError):
        InterferenceSource(probability=1.5, duration_slots=10)
    with pytest.raises(ConfigurationError):
        InterferenceSource(probability=0.1, duration_slots=-1)


def test_dcf_parameters_validation():
    with pytest.raises(ConfigurationError):
        DcfParameters(n_stations=0)
    with pytest.raises(ConfigurationError):
        DcfParameters(cw_min=1)
    with pytest.raises(ConfigurationError):
        DcfParameters(slot_time_us=-1.0)


def test_contention_window_doubles_then_caps():
    params = DcfParameters(cw_min=16, max_backoff_stage=3)
    assert params.contention_window(0) == 16
    assert params.contention_window(1) == 32
    assert params.contention_window(3) == 128
    assert params.contention_window(10) == 128  # capped at the max stage


def test_transmission_longer_than_collision_time():
    params = DcfParameters()
    assert params.transmission_time_us() > params.collision_time_us() > 0.0


def test_single_station_has_low_failure_probability():
    solution = DcfModel(DcfParameters(n_stations=1)).solve()
    assert solution.failure_probability == pytest.approx(0.0, abs=1e-6)
    assert 0.0 < solution.tau <= 1.0


def test_failure_probability_increases_with_stations():
    previous = 0.0
    for n in (2, 5, 15, 25):
        solution = DcfModel(DcfParameters(n_stations=n)).solve()
        assert solution.failure_probability > previous
        previous = solution.failure_probability


def test_interference_increases_failure_probability():
    clean = DcfModel(DcfParameters(n_stations=5)).solve()
    jammed = DcfModel(
        DcfParameters(n_stations=5, interference=InterferenceSource(0.05, 100))
    ).solve()
    assert jammed.failure_probability > clean.failure_probability
    assert jammed.interference_occupancy > 0.0


def test_mean_slot_time_positive_and_grows_with_interference():
    clean = DcfModel(DcfParameters(n_stations=5)).solve()
    jammed = DcfModel(
        DcfParameters(n_stations=5, interference=InterferenceSource(0.05, 100))
    ).solve()
    assert clean.mean_slot_time_us > 0.0
    assert jammed.mean_slot_time_us > clean.mean_slot_time_us


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 40),
    prob=st.floats(0.0, 0.2),
    duration=st.integers(0, 200),
)
def test_fixed_point_solution_always_valid(n, prob, duration):
    """Property: the fixed point exists and yields probabilities in [0, 1]."""
    params = DcfParameters(n_stations=n, interference=InterferenceSource(prob, duration))
    solution = DcfModel(params).solve()
    assert 0.0 <= solution.failure_probability <= 1.0
    assert 0.0 < solution.tau <= 1.0
    assert solution.mean_slot_time_us > 0.0
    assert 0.0 <= solution.success_probability <= 1.0


class TestSaturationScore:
    """The hybrid tier's hot/cold classifier (see repro.fleet.hybrid)."""

    #: Known DCF parameter sets for the scipy oracle: (n_stations, cw_min, m).
    ORACLE_SETS = [(2, 16, 3), (5, 16, 5), (10, 32, 5), (25, 16, 6)]

    @pytest.mark.parametrize("n,cw_min,stage", ORACLE_SETS)
    def test_pins_the_fsolve_fixed_point(self, n, cw_min, stage):
        """Bare score == p from scipy.fsolve on Bianchi's two-equation system.

        The oracle solves the classic (interference-free) system directly,

            p   = 1 - (1 - tau)^(n-1)
            tau = 2 / (1 + W0 + p W0 sum_{i<m} (2p)^i)

        independently of the bisection solver in DcfModel.
        """
        fsolve = pytest.importorskip("scipy.optimize").fsolve

        def equations(variables):
            p, tau = variables
            window = 1 + cw_min + p * cw_min * sum((2 * p) ** i for i in range(stage))
            return (p - (1 - (1 - tau) ** (n - 1)), tau - 2 / window)

        p_oracle, tau_oracle = fsolve(equations, (0.5, 0.5), full_output=False)
        params = DcfParameters(n_stations=n, cw_min=cw_min, max_backoff_stage=stage)
        assert saturation_score(params) == pytest.approx(p_oracle, abs=1e-6)
        assert DcfModel(params).solve().tau == pytest.approx(tau_oracle, abs=1e-6)

    def test_bare_score_is_the_fixed_point_p(self):
        params = DcfParameters(n_stations=8)
        assert saturation_score(params) == DcfModel(params).solve().failure_probability

    def test_station_count_shorthand(self):
        assert saturation_score(8) == saturation_score(DcfParameters(n_stations=8))

    def test_monotone_in_stations_and_load(self):
        scores = [saturation_score(n, offered_load=0.3) for n in (1, 2, 5, 15, 30)]
        assert scores == sorted(scores)
        loads = [saturation_score(5, offered_load=rho) for rho in (0.0, 0.25, 0.5, 0.9, 1.0)]
        assert loads == sorted(loads)

    def test_zero_load_equals_bare_score(self):
        assert saturation_score(5, offered_load=0.0) == saturation_score(5)

    def test_oversubscribed_cell_saturates_at_one(self):
        assert saturation_score(5, offered_load=1.0) == 1.0
        assert saturation_score(5, offered_load=2.5) == 1.0

    def test_single_idle_station_is_cold(self):
        assert saturation_score(1, offered_load=0.0) == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 40), rho=st.floats(0.0, 3.0))
    def test_score_stays_in_unit_interval(self, n, rho):
        assert 0.0 <= saturation_score(n, offered_load=rho) <= 1.0

    @pytest.mark.parametrize("bad", ["high", float("nan"), float("inf"), -0.1])
    def test_invalid_offered_load_raises(self, bad):
        with pytest.raises(ConfigurationError):
            saturation_score(5, offered_load=bad)

    def test_invalid_station_count_raises(self):
        with pytest.raises(ConfigurationError):
            saturation_score(0)
