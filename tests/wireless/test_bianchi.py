"""Tests for the Bianchi DCF model with interference."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.wireless.bianchi import DcfModel, DcfParameters, InterferenceSource


def test_interference_source_occupancy():
    quiet = InterferenceSource()
    assert quiet.occupancy == 0.0
    assert not quiet.is_active
    active = InterferenceSource(probability=0.05, duration_slots=100)
    assert active.is_active
    assert active.occupancy == pytest.approx(5.0 / 6.0)


def test_interference_source_validation():
    with pytest.raises(ConfigurationError):
        InterferenceSource(probability=1.5, duration_slots=10)
    with pytest.raises(ConfigurationError):
        InterferenceSource(probability=0.1, duration_slots=-1)


def test_dcf_parameters_validation():
    with pytest.raises(ConfigurationError):
        DcfParameters(n_stations=0)
    with pytest.raises(ConfigurationError):
        DcfParameters(cw_min=1)
    with pytest.raises(ConfigurationError):
        DcfParameters(slot_time_us=-1.0)


def test_contention_window_doubles_then_caps():
    params = DcfParameters(cw_min=16, max_backoff_stage=3)
    assert params.contention_window(0) == 16
    assert params.contention_window(1) == 32
    assert params.contention_window(3) == 128
    assert params.contention_window(10) == 128  # capped at the max stage


def test_transmission_longer_than_collision_time():
    params = DcfParameters()
    assert params.transmission_time_us() > params.collision_time_us() > 0.0


def test_single_station_has_low_failure_probability():
    solution = DcfModel(DcfParameters(n_stations=1)).solve()
    assert solution.failure_probability == pytest.approx(0.0, abs=1e-6)
    assert 0.0 < solution.tau <= 1.0


def test_failure_probability_increases_with_stations():
    previous = 0.0
    for n in (2, 5, 15, 25):
        solution = DcfModel(DcfParameters(n_stations=n)).solve()
        assert solution.failure_probability > previous
        previous = solution.failure_probability


def test_interference_increases_failure_probability():
    clean = DcfModel(DcfParameters(n_stations=5)).solve()
    jammed = DcfModel(
        DcfParameters(n_stations=5, interference=InterferenceSource(0.05, 100))
    ).solve()
    assert jammed.failure_probability > clean.failure_probability
    assert jammed.interference_occupancy > 0.0


def test_mean_slot_time_positive_and_grows_with_interference():
    clean = DcfModel(DcfParameters(n_stations=5)).solve()
    jammed = DcfModel(
        DcfParameters(n_stations=5, interference=InterferenceSource(0.05, 100))
    ).solve()
    assert clean.mean_slot_time_us > 0.0
    assert jammed.mean_slot_time_us > clean.mean_slot_time_us


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 40),
    prob=st.floats(0.0, 0.2),
    duration=st.integers(0, 200),
)
def test_fixed_point_solution_always_valid(n, prob, duration):
    """Property: the fixed point exists and yields probabilities in [0, 1]."""
    params = DcfParameters(n_stations=n, interference=InterferenceSource(prob, duration))
    solution = DcfModel(params).solve()
    assert 0.0 <= solution.failure_probability <= 1.0
    assert 0.0 < solution.tau <= 1.0
    assert solution.mean_slot_time_us > 0.0
    assert 0.0 <= solution.success_probability <= 1.0
