"""Tests for the time-varying channel models (Markov regimes, AP handover)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ChannelError, ConfigurationError
from repro.wireless import (
    HandoverChannel,
    HandoverConfig,
    MarkovChannelConfig,
    MarkovModulatedChannel,
    sample_handover_delays_batch,
    sample_markov_delays_batch,
)

#: Two-regime chain with a sticky bad state, for burstiness checks.
BURSTY = MarkovChannelConfig(
    transition=((0.95, 0.05), (0.15, 0.85)),
    delay_means_ms=(2.0, 40.0),
    loss_probabilities=(0.0, 0.7),
)


# --------------------------------------------------------------------- markov
def test_markov_config_validation():
    with pytest.raises(ConfigurationError):
        MarkovChannelConfig(transition=((0.5, 0.5), (1.0,)))  # not square
    with pytest.raises(ConfigurationError):
        MarkovChannelConfig(transition=((0.7, 0.2), (0.5, 0.5)))  # row sum != 1
    with pytest.raises(ConfigurationError):
        MarkovChannelConfig(delay_means_ms=(1.0,))  # wrong length
    with pytest.raises(ConfigurationError):
        MarkovChannelConfig(start_state=9)
    with pytest.raises(ChannelError):
        MarkovModulatedChannel(seed=0).sample_delays(0)


def test_markov_stationary_distribution_and_loss_rate():
    pi = BURSTY.stationary_distribution()
    assert pi == pytest.approx([0.75, 0.25])
    assert BURSTY.mean_loss_rate() == pytest.approx(0.25 * 0.7)
    # The empirical loss rate converges to the stationary prediction.
    delays = MarkovModulatedChannel(BURSTY, seed=0).sample_delays(30000)
    assert np.isinf(delays).mean() == pytest.approx(BURSTY.mean_loss_rate(), abs=0.02)


def test_markov_losses_are_bursty():
    from repro.wireless import trace_from_delays

    trace = trace_from_delays(MarkovModulatedChannel(BURSTY, seed=1).sample_delays(4000))
    # Regime persistence produces outage runs far beyond i.i.d. losses.
    assert trace.longest_outage(20.0) >= 5


def test_markov_chain_state_persists_across_calls():
    channel = MarkovModulatedChannel(BURSTY, seed=2)
    channel.sample_delays(500)
    resumed_state = channel.state
    assert resumed_state in (0, 1)
    channel.reset()
    assert channel.state == BURSTY.start_state


def test_markov_batched_matches_serial_oracle():
    seeds = [5, 99, 2**31 - 1]
    batched = sample_markov_delays_batch(BURSTY, 600, seeds)
    assert batched.shape == (3, 600)
    for row, seed in enumerate(seeds):
        serial = MarkovModulatedChannel(BURSTY, seed=seed).sample_delays(600)
        assert np.array_equal(batched[row], serial)
    with pytest.raises(ChannelError):
        sample_markov_delays_batch(BURSTY, 600, [])


# ------------------------------------------------------------------- handover
def test_handover_config_validation():
    with pytest.raises(ConfigurationError):
        HandoverConfig(period=10, outage=10)  # outage must fit inside the period
    with pytest.raises(ConfigurationError):
        HandoverConfig(spike_delay_ms=0.0)


def test_handover_profile_shape():
    config = HandoverConfig(
        period=50, outage=5, spike_delay_ms=20.0, spike_decay_commands=5.0, nominal_delay_ms=2.0
    )
    delays = HandoverChannel(config, seed=3).sample_delays(500)
    lost = np.isinf(delays)
    # One outage of `outage` commands per period.
    assert lost.sum() == 500 // 50 * 5
    # The first delivered command after an outage carries the spike, which
    # then decays back towards the nominal delay.
    post = np.where(~lost[1:] & lost[:-1])[0] + 1
    finite = delays[np.isfinite(delays)]
    assert delays[post[0]] == pytest.approx(22.0)
    assert finite.min() >= 2.0


def test_handover_offsets_vary_per_seed():
    config = HandoverConfig(period=200, outage=10)
    batched = sample_handover_delays_batch(config, 400, list(range(12)))
    first_loss = np.argmax(np.isinf(batched), axis=1)
    assert len(set(first_loss.tolist())) > 1  # phases differ across seeds


def test_handover_batched_matches_serial_oracle():
    config = HandoverConfig()
    seeds = [0, 7, 123]
    batched = sample_handover_delays_batch(config, 700, seeds)
    for row, seed in enumerate(seeds):
        serial = HandoverChannel(config, seed=seed).sample_delays(700)
        assert np.array_equal(batched[row], serial)
