"""Tests for the analytic cold-AP superposition delay model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wireless import TAIL_KIND_SUMMARIES, TAIL_KINDS, SuperpositionModel


def _model(**changes) -> SuperpositionModel:
    base = dict(
        sessions=6,
        delivery_probability=0.8,
        service_ms=2.0,
        period_ms=20.0,
    )
    base.update(changes)
    return SuperpositionModel(**base)


class TestMoments:
    def test_mean_and_std_follow_the_binomial(self):
        model = _model()
        assert model.mean_work_ms == pytest.approx(6 * 0.8 * 2.0)
        assert model.work_std_ms == pytest.approx(2.0 * np.sqrt(6 * 0.8 * 0.2))

    def test_rank_wait_is_half_the_expected_peers(self):
        assert _model().mean_rank_wait_ms() == pytest.approx(0.5 * 0.8 * 5 * 2.0)
        assert _model(sessions=1).mean_rank_wait_ms() == 0.0

    def test_backlog_is_the_diffusion_limit(self):
        model = _model()
        expected = model.work_std_ms**2 / (2 * (20.0 - model.mean_work_ms))
        assert model.mean_backlog_ms() == pytest.approx(expected)
        assert model.mean_extra_delay_ms() == pytest.approx(
            model.mean_backlog_ms() + model.mean_rank_wait_ms()
        )

    def test_deterministic_delivery_has_zero_variance(self):
        model = _model(delivery_probability=1.0)
        assert model.work_std_ms == 0.0
        assert model.mean_backlog_ms() == 0.0

    def test_zero_delivery_is_idle(self):
        model = _model(delivery_probability=0.0)
        assert model.mean_work_ms == 0.0
        assert model.utilization == 0.0
        assert model.mean_extra_delay_ms() == 0.0


class TestStability:
    def test_under_budget_is_stable(self):
        model = _model()  # 9.6 ms demand vs 20 ms budget
        assert model.is_stable
        assert model.utilization == pytest.approx(9.6 / 20.0)
        assert np.isfinite(model.mean_backlog_ms())

    def test_oversubscribed_backlog_diverges(self):
        model = _model(sessions=16)  # 25.6 ms demand vs 20 ms budget
        assert not model.is_stable
        assert model.utilization == 1.0
        assert model.mean_backlog_ms() == np.inf
        draws = model.sample_extra_delays(np.random.default_rng(0), 5)
        assert np.all(np.isinf(draws))


class TestSampling:
    def test_same_seed_same_block(self):
        model = _model(tail="heavy")
        a = model.sample_extra_delays(np.random.default_rng(7), 100)
        b = model.sample_extra_delays(np.random.default_rng(7), 100)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("tail", TAIL_KINDS)
    def test_draws_are_nonnegative_with_the_model_mean(self, tail):
        model = _model(tail=tail)
        draws = model.sample_extra_delays(np.random.default_rng(3), 40_000)
        assert np.all(draws >= 0.0)
        assert np.mean(draws) == pytest.approx(model.mean_extra_delay_ms(), rel=0.05)

    def test_heavy_tail_is_fatter_than_gaussian(self):
        rng = np.random.default_rng(11)
        gauss = _model(tail="gaussian").sample_extra_delays(rng, 40_000)
        heavy = _model(tail="heavy", tail_index=2.0).sample_extra_delays(
            np.random.default_rng(11), 40_000
        )
        assert np.percentile(heavy, 99.9) > np.percentile(gauss, 99.9)

    def test_zero_count_is_an_empty_block(self):
        draws = _model().sample_extra_delays(np.random.default_rng(0), 0)
        assert draws.shape == (0,)

    def test_negative_count_raises(self):
        with pytest.raises(ConfigurationError):
            _model().sample_extra_delays(np.random.default_rng(0), -1)


class TestValidation:
    @pytest.mark.parametrize(
        "changes",
        [
            {"sessions": 0},
            {"sessions": "many"},
            {"delivery_probability": -0.1},
            {"delivery_probability": 1.5},
            {"delivery_probability": float("nan")},
            {"service_ms": 0.0},
            {"period_ms": 0.0},
            {"tail": "bimodal"},
            {"tail_index": 1.0},
        ],
    )
    def test_invalid_fields_raise(self, changes):
        with pytest.raises(ConfigurationError):
            _model(**changes)

    def test_tail_kinds_are_documented(self):
        assert set(TAIL_KIND_SUMMARIES) == set(TAIL_KINDS)
