"""Tests for the 802.11 delay model and the paper's Appendix results."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wireless.bianchi import DcfParameters, InterferenceSource
from repro.wireless.delay_model import (
    Ieee80211DelayModel,
    causality_violation_probability,
    expected_delay_bound,
)


@pytest.fixture(scope="module")
def clean_model():
    return Ieee80211DelayModel(DcfParameters(n_stations=5))


@pytest.fixture(scope="module")
def jammed_model():
    return Ieee80211DelayModel(
        DcfParameters(n_stations=25, interference=InterferenceSource(0.05, 100))
    )


def test_retransmission_probabilities_sum_to_one(clean_model):
    retx = clean_model.retransmission_distribution
    total = retx.probabilities.sum() + retx.loss_probability
    assert total == pytest.approx(1.0)
    assert retx.max_retransmissions == clean_model.params.retry_limit


def test_conditional_probabilities_normalised(clean_model):
    cond = clean_model.retransmission_distribution.conditional_probabilities()
    assert cond.sum() == pytest.approx(1.0)
    assert np.all(cond >= 0.0)


def test_delays_increase_with_retransmissions(clean_model):
    delays = clean_model.per_retransmission_delays_ms
    assert np.all(np.diff(delays) > 0.0)
    assert delays[0] > 0.0


def test_mean_delay_within_delay_range(clean_model):
    delays = clean_model.per_retransmission_delays_ms
    mean = clean_model.mean_delay_ms()
    assert delays[0] <= mean <= delays[-1]


def test_service_distribution_matches_mean(clean_model):
    service = clean_model.service_distribution()
    assert service.mean() == pytest.approx(clean_model.mean_delay_ms(), rel=1e-9)
    assert service.n_phases == clean_model.params.retry_limit + 1


def test_interference_raises_loss_and_delay(clean_model, jammed_model):
    assert jammed_model.loss_probability > clean_model.loss_probability
    assert jammed_model.mean_delay_ms() > clean_model.mean_delay_ms()


def test_lemma1_bound_exceeds_mean_delay(jammed_model):
    """Lemma 1: the conditional average delay bound is >= the mean delay of
    delivered commands and grows with the transport bound D."""
    bound_zero = expected_delay_bound(jammed_model, transport_bound_ms=0.0)
    bound_five = expected_delay_bound(jammed_model, transport_bound_ms=5.0)
    assert bound_zero >= jammed_model.mean_delay_ms() - 1e-9
    assert bound_five == pytest.approx(bound_zero + 5.0)


def test_corollary1_divergence_probability_positive_under_interference(jammed_model, clean_model):
    """Corollary 1: with interference the delay diverges with probability a_{m+2} > 0."""
    assert jammed_model.divergence_probability() > 0.0
    assert jammed_model.divergence_probability() > clean_model.divergence_probability()


def test_lemma2_causality_violation(jammed_model):
    """Lemma 2 / Corollary 2: the causality assumption holds only with
    probability sum_j a_j^2 < 1, i.e. it is violated with positive probability."""
    holds = jammed_model.causality_holds_probability()
    assert 0.0 < holds < 1.0
    assert causality_violation_probability(jammed_model) == pytest.approx(1.0 - holds)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 30), prob=st.floats(0.0, 0.1), duration=st.integers(0, 150))
def test_delay_model_invariants(n, prob, duration):
    """Property: probabilities normalised, delays positive, bound finite."""
    model = Ieee80211DelayModel(
        DcfParameters(n_stations=n, interference=InterferenceSource(prob, duration))
    )
    retx = model.retransmission_distribution
    assert retx.probabilities.sum() + retx.loss_probability == pytest.approx(1.0, abs=1e-9)
    assert np.all(model.per_retransmission_delays_ms > 0.0)
    assert np.isfinite(model.expected_delay_bound_ms())
    assert 0.0 <= model.causality_holds_probability() <= 1.0
