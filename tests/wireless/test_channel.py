"""Tests for the wireless channel trace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.des.distributions import Deterministic
from repro.des.jackson import TransportNetworkModel
from repro.errors import ConfigurationError
from repro.wireless import DcfParameters, InterferenceSource, WirelessChannel
from repro.wireless.channel import ChannelSample, CommandDelayTrace


def test_trace_container_metrics():
    trace = CommandDelayTrace(
        samples=[
            ChannelSample(0, 1.0, False),
            ChannelSample(1, 30.0, False),
            ChannelSample(2, float("inf"), True),
        ]
    )
    assert len(trace) == 3
    assert trace.loss_rate() == pytest.approx(1 / 3)
    assert trace.late_rate(20.0) == pytest.approx(2 / 3)
    assert trace.mean_delivered_delay() == pytest.approx(15.5)
    assert trace.longest_outage(20.0) == 2


def test_clean_channel_mostly_on_time():
    channel = WirelessChannel(n_robots=5, seed=0)
    trace = channel.sample_trace(500)
    assert trace.late_rate(20.0) < 0.05
    assert trace.loss_rate() < 0.02
    assert trace.mean_delivered_delay() < 5.0


def test_interference_increases_late_and_outages():
    clean = WirelessChannel(n_robots=5, seed=1).sample_trace(800)
    jammed = WirelessChannel(
        n_robots=5, interference=InterferenceSource(0.05, 100), seed=1
    ).sample_trace(800)
    assert jammed.late_rate(20.0) > clean.late_rate(20.0)
    assert jammed.longest_outage(20.0) > clean.longest_outage(20.0)


def test_late_rate_grows_with_interference_probability():
    rates = []
    for probability in (0.01, 0.025, 0.05):
        channel = WirelessChannel(
            n_robots=5, interference=InterferenceSource(probability, 50), seed=3
        )
        rates.append(channel.sample_trace(1500).late_rate(20.0))
    assert rates[0] < rates[1] < rates[2]


def test_late_rate_grows_with_robots_under_interference():
    rates = []
    for robots in (5, 25):
        channel = WirelessChannel(
            n_robots=robots, interference=InterferenceSource(0.025, 50), seed=4
        )
        rates.append(channel.sample_trace(1500).late_rate(20.0))
    assert rates[0] <= rates[1] + 0.02  # more robots never makes the channel better


def test_duty_cycle_and_burst_duration():
    channel = WirelessChannel(n_robots=5, interference=InterferenceSource(0.05, 100))
    assert channel.burst_duration_ms() == pytest.approx(150.0)
    assert 0.0 < channel.interference_duty_cycle() < 1.0
    quiet = WirelessChannel(n_robots=5)
    assert quiet.interference_duty_cycle() == 0.0
    assert quiet.mean_gap_ms() == float("inf")


def test_transport_delay_added():
    transport = TransportNetworkModel(bound_ms=2.0, seed=0)
    with_transport = WirelessChannel(n_robots=5, transport=transport, seed=5).sample_trace(300)
    without = WirelessChannel(n_robots=5, transport=None, seed=5).sample_trace(300)
    assert with_transport.mean_delivered_delay() > without.mean_delivered_delay()


def test_direct_sampling_path():
    channel = WirelessChannel(n_robots=15, seed=6)
    trace = channel.sample_trace(400, use_queue=False)
    delays = trace.delays()
    delivered = delays[np.isfinite(delays)]
    assert delivered.size > 0
    assert np.all(delivered >= 0.0)


def test_expected_late_probability_monotone_in_interference():
    mild = WirelessChannel(n_robots=5, interference=InterferenceSource(0.01, 10))
    heavy = WirelessChannel(n_robots=5, interference=InterferenceSource(0.05, 100))
    assert heavy.expected_late_probability(20.0) > mild.expected_late_probability(20.0)


def test_invalid_parameters_rejected():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        WirelessChannel(command_period_ms=0.0)
    with pytest.raises(ReproError):
        WirelessChannel(n_robots=0)


def test_trace_reproducible_with_seed():
    a = WirelessChannel(n_robots=5, interference=InterferenceSource(0.025, 50), seed=42)
    b = WirelessChannel(n_robots=5, interference=InterferenceSource(0.025, 50), seed=42)
    assert np.array_equal(a.sample_trace(300).delays(), b.sample_trace(300).delays())


def test_dcf_params_not_mutated_by_channel():
    """Regression: one DcfParameters instance can configure several channels.

    The constructor used to override ``n_stations`` and ``interference`` on
    the caller's object in place, so the second channel silently inherited
    the first one's station count."""
    shared = DcfParameters(n_stations=7)
    original_interference = shared.interference
    first = WirelessChannel(n_robots=5, dcf_params=shared)
    second = WirelessChannel(
        n_robots=25, dcf_params=shared, interference=InterferenceSource(0.05, 100)
    )
    assert shared.n_stations == 7
    assert shared.interference is original_interference
    assert first.params.n_stations == 5
    assert second.params.n_stations == 25


class _UnitContention:
    """Stub contention model: deterministic service, no air loss."""

    def __init__(self, service_ms: float) -> None:
        self._service = Deterministic(service_ms)
        self.loss_probability = 0.0

    def service_distribution(self) -> Deterministic:
        return self._service


def test_queue_capacity_one_admits_one_command():
    """Regression: a buffer of capacity ``Q`` holds ``Q`` commands, not ``Q+1``.

    With a 30 ms deterministic service, 20 ms arrivals and ``Q = 1``, every
    other command must find the single buffer slot occupied and be dropped;
    the old ``backlog > Q`` admission admitted the whole stream and let the
    sojourn time grow without bound."""
    channel = WirelessChannel(n_robots=5, queue_capacity=1, seed=0)
    channel.contention_model = _UnitContention(30.0)
    delays = channel._medium_delays(12)
    assert np.array_equal(np.isfinite(delays), np.arange(12) % 2 == 0)
    # Admitted commands wait only for their own service: the backlog that the
    # unbounded-admission bug accumulated can no longer build up.
    assert np.all(delays[np.isfinite(delays)] == 30.0)
    # The batched path applies the same admission rule.
    batched = channel.sample_delays_batch(12, [0, 1, 2])
    assert np.array_equal(np.isfinite(batched), np.tile(np.arange(12) % 2 == 0, (3, 1)))


def test_batched_sampling_matches_serial_oracle():
    """(B, n) batched rows are bit-identical to per-seed serial sampling."""
    channel = WirelessChannel(n_robots=25, interference=InterferenceSource(0.05, 100))
    seeds = [3, 17, 123456789]
    batched = channel.sample_delays_batch(400, seeds)
    assert batched.shape == (3, 400)
    for row, seed in enumerate(seeds):
        serial = WirelessChannel(
            n_robots=25, interference=InterferenceSource(0.05, 100), seed=seed
        ).sample_trace(400).delays()
        assert np.array_equal(batched[row], serial)


def test_batched_sampling_rejects_transport_and_empty_seeds():
    channel = WirelessChannel(n_robots=5, transport=TransportNetworkModel(bound_ms=2.0, seed=0))
    with pytest.raises(ConfigurationError):
        channel.sample_delays_batch(100, [1, 2])
    with pytest.raises(ConfigurationError):
        WirelessChannel(n_robots=5).sample_delays_batch(100, [])
