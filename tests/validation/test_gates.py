"""Unit contracts of the tolerance-gate layer (no simulation involved)."""

from __future__ import annotations

import json
import math

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.validation import OracleReport, ToleranceGate


def test_gate_passes_within_margin():
    gate = ToleranceGate(name="mean", observed=10.4, expected=10.0, rel_tol=0.05)
    assert gate.margin == pytest.approx(0.5)
    assert gate.deviation == pytest.approx(0.4)
    assert gate.passed


def test_gate_fails_outside_margin():
    gate = ToleranceGate(name="mean", observed=11.0, expected=10.0, rel_tol=0.05)
    assert not gate.passed


def test_margin_is_max_of_relative_and_absolute():
    gate = ToleranceGate(name="g", observed=0.0, expected=10.0, rel_tol=0.01, abs_tol=2.0)
    assert gate.margin == pytest.approx(2.0)  # abs wins
    gate = ToleranceGate(name="g", observed=0.0, expected=1000.0, rel_tol=0.01, abs_tol=2.0)
    assert gate.margin == pytest.approx(10.0)  # rel wins


def test_non_finite_observed_always_fails():
    for bad in (math.nan, math.inf, -math.inf):
        gate = ToleranceGate(name="g", observed=bad, expected=1.0, rel_tol=10.0)
        assert gate.deviation == math.inf
        assert not gate.passed


def test_gate_rejects_missing_or_invalid_tolerances():
    with pytest.raises(ConfigurationError):
        ToleranceGate(name="g", observed=1.0, expected=1.0)
    with pytest.raises(ConfigurationError):
        ToleranceGate(name="g", observed=1.0, expected=1.0, rel_tol=-0.1)
    with pytest.raises(ConfigurationError):
        ToleranceGate(name="g", observed=1.0, expected=1.0, abs_tol=math.nan)


def test_gate_to_dict_and_describe():
    gate = ToleranceGate(name="loss rate", observed=0.2, expected=0.25, abs_tol=0.1)
    payload = gate.to_dict()
    assert payload["name"] == "loss rate"
    assert payload["passed"] is True
    assert payload["deviation"] == pytest.approx(0.05)
    assert payload["margin"] == pytest.approx(0.1)
    assert "ok" in gate.describe()
    failing = ToleranceGate(name="loss rate", observed=0.9, expected=0.25, abs_tol=0.1)
    assert "FAIL" in failing.describe()
    assert failing.to_dict()["passed"] is False


def _report(passing: bool) -> OracleReport:
    gates = [
        ToleranceGate(name="a", observed=1.0, expected=1.0, abs_tol=0.1),
        ToleranceGate(name="b", observed=5.0 if passing else 50.0, expected=5.0, rel_tol=0.1),
    ]
    return OracleReport(oracle="demo", params={"seed": 1}, gates=gates)


def test_report_passed_and_failures():
    good = _report(passing=True)
    assert good.passed
    assert good.failures == []
    bad = _report(passing=False)
    assert not bad.passed
    assert [gate.name for gate in bad.failures] == ["b"]


def test_report_check_raises_with_full_text():
    assert _report(passing=True).check().oracle == "demo"
    with pytest.raises(ValidationError) as excinfo:
        _report(passing=False).check()
    message = str(excinfo.value)
    assert "FAIL" in message and "b" in message and "demo" in message


def test_report_renderings_round_trip():
    report = _report(passing=False)
    payload = json.loads(report.to_json())
    assert payload["oracle"] == "demo"
    assert payload["params"] == {"seed": 1}
    assert payload["passed"] is False
    assert len(payload["gates"]) == 2
    text = report.to_text()
    assert text.splitlines()[0].startswith("oracle demo")
    assert text.splitlines()[-1].startswith("demo: FAILED")
    assert _report(passing=True).to_text().splitlines()[-1] == "demo: PASSED"
