"""Standing analytic-oracle suite: simulators vs closed-form theory.

Each oracle runs the simulated side at parameters matching its analytic
model and gates moments/quantiles/rates with the documented tolerances.
The mutation-style tests at the bottom prove the gates bite: perturbing
the simulated side through each oracle's perturbation knob must flip the
report to failing.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ValidationError
from repro.validation import (
    bianchi_oracle,
    cold_fleet_oracle,
    run_validation,
    superposition_oracle,
)


@pytest.fixture(scope="module")
def bianchi_report():
    """One default Bianchi-oracle run shared by the module."""
    return bianchi_oracle()


@pytest.fixture(scope="module")
def superposition_report():
    """One default superposition-oracle run shared by the module."""
    return superposition_oracle()


@pytest.fixture(scope="module")
def cold_fleet_report():
    """One default cold-fleet-oracle run shared by the module."""
    return cold_fleet_oracle()


def test_bianchi_oracle_passes(bianchi_report):
    assert bianchi_report.oracle == "bianchi"
    assert bianchi_report.passed, bianchi_report.to_text()


def test_bianchi_oracle_gate_coverage(bianchi_report):
    names = [gate.name for gate in bianchi_report.gates]
    assert "mean delivered delay (ms)" in names
    assert "delay std (ms)" in names
    assert "delay p99 (ms)" in names  # tail-quantile comparison
    assert "air-loss rate" in names
    assert "queue late rate vs analytic" in names
    assert bianchi_report.params["n_robots"] == 25  # matches congested-ap


def test_superposition_oracle_passes(superposition_report):
    assert superposition_report.oracle == "superposition"
    assert superposition_report.passed, superposition_report.to_text()
    names = [gate.name for gate in superposition_report.gates]
    assert "gaussian mean extra delay (ms)" in names
    assert "heavy p99 extra delay (ms)" in names  # Lomax tail quantile


def test_cold_fleet_oracle_passes(cold_fleet_report):
    assert cold_fleet_report.oracle == "cold-fleet"
    assert cold_fleet_report.passed, cold_fleet_report.to_text()
    # The validation fleet must actually exercise the analytic cold path.
    hot = next(gate for gate in cold_fleet_report.gates if gate.name == "hot APs")
    assert hot.observed == 0.0
    analytic = next(
        gate for gate in cold_fleet_report.gates if gate.name == "analytic sessions == admitted"
    )
    assert analytic.observed == analytic.expected > 0


def test_run_validation_covers_all_oracles():
    reports = run_validation()
    assert [report.oracle for report in reports] == ["bianchi", "superposition", "cold-fleet"]
    for report in reports:
        assert report.passed, report.to_text()
        report.check()  # does not raise


# ------------------------------------------------------ mutation-style tests
def test_bianchi_gates_bite_when_delays_scaled():
    report = bianchi_oracle(delay_scale=1.5)
    assert not report.passed
    failed = {gate.name for gate in report.failures}
    assert "mean delivered delay (ms)" in failed
    with pytest.raises(ValidationError):
        report.check()


def test_superposition_gates_bite_when_extra_delay_scaled():
    report = superposition_oracle(extra_delay_scale=1.5)
    assert not report.passed
    with pytest.raises(ValidationError):
        report.check()


def test_cold_fleet_gates_bite_when_completion_biased():
    report = cold_fleet_oracle(completion_bias_ms=500.0)
    assert not report.passed
    failed = {gate.name for gate in report.failures}
    assert "mean completion (s)" in failed
    with pytest.raises(ValidationError):
        report.check()


def test_oracle_parameter_validation():
    with pytest.raises(ConfigurationError):
        bianchi_oracle(delay_scale=0.0)
    with pytest.raises(ConfigurationError):
        superposition_oracle(extra_delay_scale=-1.0)
    with pytest.raises(ConfigurationError):
        superposition_oracle(draws=10)
