"""Benchmark: regenerate Fig. 6 (pick-and-place dataset trace)."""

from __future__ import annotations

from repro.experiments import fig6_dataset

from conftest import emit


def test_bench_fig6_dataset(benchmark, bench_scale, bench_seed):
    """Time the dataset generation and print the Fig. 6 summary."""
    result = benchmark(fig6_dataset.run, bench_scale, bench_seed)
    emit("Fig. 6 — dataset trace", result.to_text())
    assert result.max_distance_mm > result.min_distance_mm
