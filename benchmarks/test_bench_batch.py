"""Benchmark: batched session kernel vs the serial repetition loop.

Runs the same loss-heavy scenario three ways — the serial per-repetition
loop (``batch=False``), the batched kernel (``batch=True``) and a
process-parallel sweep of single-repetition shards — and reports repetition
throughput for the paper's two fast forecasters (MA and VAR).  The batched
kernel must deliver at least a 3x repetition-throughput improvement over the
serial loop at CI scale; all three paths must agree bit-for-bit (the
engine's equality guarantee).

The Fig. 9 controlled-loss channel is used because its delay sampling is a
cheap exact computation, so the measurement isolates the session kernel
itself rather than the DES channel sampler (whose cost is identical on every
path).
"""

from __future__ import annotations

import time

from repro.scenarios import SessionEngine, SweepExecutor, get_scenario

from conftest import emit, record_metric

#: Repetitions per measured session (the Fig. 8 heatmap uses 40 at paper scale).
REPETITIONS = 12

#: The batched kernel must beat the serial loop by at least this factor.
MIN_SPEEDUP = 3.0


def _spec(bench_scale, bench_seed, algorithm):
    return (
        get_scenario("bursty-loss", scale=bench_scale, seed=bench_seed)
        .with_(repetitions=REPETITIONS)
        .with_foreco(algorithm=algorithm)
    )


def _best_of(callable_, rounds: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_batched_kernel_throughput(benchmark, bench_scale, bench_seed):
    """Serial vs batched vs process-parallel repetition throughput (MA, VAR)."""
    lines = [
        f"{'forecaster':<12s} {'serial':>10s} {'batched':>10s} {'process':>10s} "
        f"{'batch speedup':>14s}"
    ]
    speedups = {}
    results = {}
    for algorithm in ("ma", "var"):
        spec = _spec(bench_scale, bench_seed, algorithm)
        engine = SessionEngine(cache_results=False)
        engine.run(spec.with_(repetitions=1))  # warm dataset/forecaster caches

        t_serial, serial = _best_of(lambda: engine.run(spec, batch=False))
        t_batched, batched = _best_of(lambda: engine.run(spec, batch=True))
        # Process backend: one single-repetition shard per worker, the
        # multi-core route for grids whose sessions cannot share a cache.
        shards = [spec.with_(repetitions=1, seed=bench_seed + i) for i in range(4)]
        t_process, _ = _best_of(
            lambda: SweepExecutor(jobs=4, backend="process").run(shards), rounds=1
        )

        assert serial.rmse_foreco_mm == batched.rmse_foreco_mm
        assert serial.rmse_no_forecast_mm == batched.rmse_no_forecast_mm
        speedups[algorithm] = t_serial / t_batched
        results[algorithm] = batched
        lines.append(
            f"{algorithm:<12s} {REPETITIONS / t_serial:>8.1f}/s {REPETITIONS / t_batched:>8.1f}/s "
            f"{len(shards) / t_process:>8.1f}/s x{speedups[algorithm]:>13.1f}"
        )

    def run():
        return SessionEngine(cache_results=False).run(
            _spec(bench_scale, bench_seed, "var"), batch=True
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_metric(
        "test_bench_batched_kernel_throughput",
        **{f"speedup_{name}": value for name, value in speedups.items()},
    )
    emit(
        f"Batched session kernel — {REPETITIONS} repetitions, bursty-loss, scale={bench_scale}",
        "\n".join(lines),
    )

    for algorithm, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"batched kernel only {speedup:.1f}x faster than the serial loop "
            f"for {algorithm!r} (required: {MIN_SPEEDUP}x)"
        )
