"""Benchmark: regenerate Table II (training/inference times per hardware tier)."""

from __future__ import annotations

from repro.experiments import table2_hardware_timing

from conftest import emit


def test_bench_table2_hardware_timing(benchmark, bench_scale, bench_seed):
    """Measured host timings projected onto the paper's four platforms."""
    result = benchmark.pedantic(
        table2_hardware_timing.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    emit("Table II — hardware timing", result.to_text())
    assert result.training_minutes("raspberry-pi3") > result.training_minutes("edge-server")
