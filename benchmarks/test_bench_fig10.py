"""Benchmark: regenerate Fig. 10 (jammed channel with PID recovery transient)."""

from __future__ import annotations

from repro.experiments import fig10_jammer

from conftest import emit


def test_bench_fig10_jammer(benchmark, bench_scale, bench_seed):
    """30-second jammed run with the PID joint controller in the loop."""
    result = benchmark.pedantic(
        fig10_jammer.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 10 — jammer", result.to_text())
    assert result.improvement_factor > 1.0
