"""Benchmark: warm (store-backed) sweep vs the same sweep computed cold.

Runs one grid twice through the :class:`SweepExecutor` against a fresh
:class:`ResultStore` — the first pass computes every session and persists it,
the second pass must resolve every spec from disk without running a single
simulation.  The warm pass has to be at least 10x faster than the cold one
(in practice it is orders of magnitude faster: a handful of JSON shard reads
versus forecaster training plus thousands of simulated commands), and its
rows must agree with the cold rows on every summary field — the store's
round-trip guarantee.
"""

from __future__ import annotations

import tempfile
import time

import numpy as np

from repro.scenarios import ResultStore, SweepExecutor, get_scenario, scenario_grid

from conftest import emit, record_metric

#: The warm (all-hits) sweep must beat the cold computation by this factor.
MIN_SPEEDUP = 10.0

#: Repetitions per grid cell (each is one channel realisation).
REPETITIONS = 2


def _grid(bench_scale, bench_seed):
    base = get_scenario("bursty-loss", scale=bench_scale, seed=bench_seed).with_(
        repetitions=REPETITIONS
    )
    return scenario_grid(base, {"channel.burst_length": (5, 10, 15), "seed": (bench_seed, bench_seed + 1)})


def test_bench_warm_sweep_speedup(benchmark, bench_scale, bench_seed):
    """Cold compute-and-persist vs warm all-hits replay of one sweep."""
    specs = _grid(bench_scale, bench_seed)
    with tempfile.TemporaryDirectory(prefix="foreco-bench-store-") as root:
        start = time.perf_counter()
        cold = SweepExecutor(store=ResultStore(root)).run(specs)
        t_cold = time.perf_counter() - start
        assert (cold.store_hits, cold.store_misses) == (0, len(specs))

        start = time.perf_counter()
        warm = SweepExecutor(store=ResultStore(root)).run(specs)
        t_warm = time.perf_counter() - start
        assert (warm.store_hits, warm.store_misses) == (len(specs), 0)

        # The replay is indistinguishable from the computation, row by row.
        assert warm.to_records() == cold.to_records()
        for row_w, row_c in zip(warm, cold):
            assert row_w.rmse_foreco_mm == row_c.rmse_foreco_mm
            assert np.array_equal(row_w.delays_ms, row_c.delays_ms)

        benchmark.pedantic(
            lambda: SweepExecutor(store=ResultStore(root)).run(specs), rounds=1, iterations=1
        )

    speedup = t_cold / t_warm
    record_metric(
        "test_bench_warm_sweep_speedup",
        speedup_warm_store=speedup,
        cold_s=t_cold,
        warm_s=t_warm,
    )
    emit(
        f"Persistent result store — {len(specs)} specs x {REPETITIONS} repetitions, "
        f"scale={bench_scale}",
        f"{'pass':<8s} {'wall':>10s} {'specs/s':>10s}\n"
        f"{'cold':<8s} {t_cold:>9.2f}s {len(specs) / t_cold:>10.1f}\n"
        f"{'warm':<8s} {t_warm:>9.2f}s {len(specs) / t_warm:>10.1f}\n"
        f"speedup x{speedup:.0f}",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm store-backed sweep only {speedup:.1f}x faster than the cold "
        f"computation (required: {MIN_SPEEDUP}x)"
    )
