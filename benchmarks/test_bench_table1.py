"""Benchmark: regenerate Table I (training pipeline stage profiling)."""

from __future__ import annotations

from repro.experiments import table1_training_profile

from conftest import emit


def test_bench_table1_training_profile(benchmark, bench_scale, bench_seed):
    """Load / down-sample / quality-check / train stage timings."""
    result = benchmark.pedantic(
        table1_training_profile.run,
        kwargs={"scale": bench_scale, "seed": bench_seed, "repetitions": 3},
        rounds=1,
        iterations=1,
    )
    emit("Table I — training profile", result.to_text())
    assert result.total_mean_s > 0.0
    assert result.inference_ms < 20.0
