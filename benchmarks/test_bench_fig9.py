"""Benchmark: regenerate Fig. 9 (controlled consecutive-loss experiments)."""

from __future__ import annotations

from repro.experiments import fig9_controlled_losses

from conftest import emit


def test_bench_fig9_controlled_losses(benchmark, bench_scale, bench_seed):
    """5 / 10 / 25 consecutive losses, no-forecast vs FoReCo."""
    result = benchmark.pedantic(
        fig9_controlled_losses.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 9 — controlled losses", result.to_text())
    for burst in result.burst_lengths:
        assert result.improvement_factor(burst) > 1.0
