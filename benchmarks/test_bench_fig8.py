"""Benchmark: regenerate Fig. 8 (simulation heatmaps, no-forecast vs FoReCo)."""

from __future__ import annotations

from repro.experiments import fig8_simulation_heatmap

from conftest import emit


def test_bench_fig8_heatmaps(benchmark, bench_scale, bench_seed):
    """Full interference-probability x duration x robot-count sweep."""
    result = benchmark.pedantic(
        fig8_simulation_heatmap.run,
        kwargs={"scale": bench_scale, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 8 — heatmaps", result.to_text())
    for robots in result.robot_counts:
        assert result.improvement_factor(robots) > 1.0
        assert result.foreco[robots].max_mean() < 20.0
