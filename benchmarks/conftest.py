"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures/tables through the
same ``repro.experiments`` code path as the CLI runner, times it with
pytest-benchmark, and prints the resulting table/series so the paper-vs-
measured comparison can be read straight from the benchmark log (these are
the numbers recorded in EXPERIMENTS.md).

Set ``FORECO_BENCH_SCALE=standard`` (or ``full``) to run the larger sweeps;
the default ``ci`` scale keeps the whole suite in the minutes range.

Benchmark trajectory
--------------------

When ``FORECO_BENCH_JSON=path.json`` is set, the session writes a
machine-readable summary on exit: per-benchmark wall time (the ``call``
phase of every test in this directory) plus whatever named metrics the
benchmarks registered through :func:`record_metric` (speedup factors,
throughputs).  CI runs the suite with ``FORECO_BENCH_JSON=BENCH_6.json``,
uploads the file as an artifact and diffs it against the committed
``benchmarks/baseline.json`` with ``scripts/compare_bench.py`` (warn-only),
so the repository accumulates a benchmark trajectory instead of discarding
every run's numbers.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

#: Per-test payload for the trajectory file: ``{test_name: {metric: value}}``.
#: ``wall_s`` is filled by the harness; everything else by record_metric().
_RECORDS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return os.environ.get("FORECO_BENCH_SCALE", "ci")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed shared by every benchmark for reproducible reports."""
    return int(os.environ.get("FORECO_BENCH_SEED", "42"))


def emit(title: str, text: str) -> None:
    """Print an experiment report block inside the benchmark output."""
    print(f"\n================ {title} ================")
    print(text)
    print("=" * (34 + len(title)))


def record_metric(test: str, **metrics: float) -> None:
    """Attach named metrics (speedup factors, throughputs) to a benchmark.

    The values land next to the test's wall time in the
    ``FORECO_BENCH_JSON`` trajectory file and are compared against the
    committed baseline by ``scripts/compare_bench.py``.
    """
    entry = _RECORDS.setdefault(test, {})
    for name, value in metrics.items():
        entry[name] = float(value)


def pytest_runtest_logreport(report) -> None:
    """Record each benchmark's measured (call-phase) wall time."""
    if report.when == "call" and report.passed:
        test = report.nodeid.rsplit("::", 1)[-1]
        _RECORDS.setdefault(test, {})["wall_s"] = float(report.duration)


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write the machine-readable trajectory when FORECO_BENCH_JSON is set."""
    path = os.environ.get("FORECO_BENCH_JSON")
    if not path or not _RECORDS:
        return
    payload = {
        "format": 1,
        "scale": os.environ.get("FORECO_BENCH_SCALE", "ci"),
        "seed": int(os.environ.get("FORECO_BENCH_SEED", "42")),
        "python": platform.python_version(),
        "benchmarks": {name: dict(sorted(metrics.items())) for name, metrics in sorted(_RECORDS.items())},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
