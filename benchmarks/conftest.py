"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's figures/tables through the
same ``repro.experiments`` code path as the CLI runner, times it with
pytest-benchmark, and prints the resulting table/series so the paper-vs-
measured comparison can be read straight from the benchmark log (these are
the numbers recorded in EXPERIMENTS.md).

Set ``FORECO_BENCH_SCALE=standard`` (or ``full``) to run the larger sweeps;
the default ``ci`` scale keeps the whole suite in the minutes range.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """Experiment scale used by the benchmark suite."""
    return os.environ.get("FORECO_BENCH_SCALE", "ci")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    """Seed shared by every benchmark for reproducible reports."""
    return int(os.environ.get("FORECO_BENCH_SEED", "42"))


def emit(title: str, text: str) -> None:
    """Print an experiment report block inside the benchmark output."""
    print(f"\n================ {title} ================")
    print(text)
    print("=" * (34 + len(title)))
