"""Benchmark: batched fleet execution vs the serial per-session loop.

Runs the same 12-operator shared-AP fleet two ways — every admitted
operator-session through one batched session-kernel pass
(``FleetEngine(batch=True)``, the default) and through the serial
per-session reference loop (``batch=False``) — and reports session
throughput.  The batched path must deliver at least a 3x improvement at CI
scale; both paths must agree bit-for-bit (the fleet engine's equality
guarantee).

The bursty-loss template is used because its delay sampling is a cheap
exact computation, so the measurement isolates the session kernel the fleet
batches over (sampling and coupling cost the same on both paths).
"""

from __future__ import annotations

import time

from repro.fleet import FleetEngine, FleetSpec
from repro.scenarios import SessionEngine, get_scenario

from conftest import emit, record_metric

#: Operator population of the measured fleet.
OPERATORS = 12

#: The batched fleet pass must beat the serial loop by at least this factor.
MIN_SPEEDUP = 3.0


def _fleet(bench_scale, bench_seed, algorithm) -> FleetSpec:
    template = (
        get_scenario("bursty-loss", scale=bench_scale, seed=bench_seed)
        .with_foreco(algorithm=algorithm)
    )
    return FleetSpec(
        name="bench-fleet",
        template=template,
        operators=OPERATORS,
        aps=3,
        ap_capacity=OPERATORS,
        ap_service_ms=4.0,
        arrival="simultaneous",
    )


def _best_of(callable_, rounds: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_fleet_throughput(benchmark, bench_scale, bench_seed):
    """Serial vs batched operator-session throughput (MA, VAR)."""
    lines = [f"{'forecaster':<12s} {'serial':>10s} {'batched':>10s} {'speedup':>8s}"]
    speedups = {}
    for algorithm in ("ma", "var"):
        fleet = _fleet(bench_scale, bench_seed, algorithm)
        sessions = SessionEngine(cache_results=False)
        sessions.run(fleet.template)  # warm dataset/forecaster caches
        engine = FleetEngine(sessions=sessions, cache_results=False)

        t_serial, serial = _best_of(lambda: engine.run(fleet, batch=False))
        t_batched, batched = _best_of(lambda: engine.run(fleet, batch=True))

        assert serial.rmse_foreco_mm == batched.rmse_foreco_mm
        assert serial.rmse_no_forecast_mm == batched.rmse_no_forecast_mm
        assert serial.completion_time_s == batched.completion_time_s
        assert serial.admitted == batched.admitted == OPERATORS
        speedups[algorithm] = t_serial / t_batched
        lines.append(
            f"{algorithm:<12s} {OPERATORS / t_serial:>8.1f}/s {OPERATORS / t_batched:>8.1f}/s "
            f"x{speedups[algorithm]:>7.1f}"
        )

    def run():
        sessions = SessionEngine(cache_results=False)
        return FleetEngine(sessions=sessions, cache_results=False).run(
            _fleet(bench_scale, bench_seed, "var"), batch=True
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_metric(
        "test_bench_fleet_throughput",
        **{f"speedup_{name}": value for name, value in speedups.items()},
    )
    emit(
        f"Fleet engine — {OPERATORS} operators, shared APs, bursty-loss, scale={bench_scale}",
        "\n".join(lines),
    )

    for algorithm, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"batched fleet only {speedup:.1f}x faster than the serial loop "
            f"for {algorithm!r} (required: {MIN_SPEEDUP}x)"
        )
