"""Benchmark: vectorized channel sampling vs the serial per-repetition loop.

Samples the same set of repetition seeds two ways — one serial
``sample_channel_delays`` call per repetition (the engine's pre-vectorization
path, which rebuilds the channel model and walks a Python loop per command)
and one ``sample_channel_delays_batch`` call (Bianchi fixed point solved
once, all repetitions advanced in lockstep ``(B, n)`` arrays) — and reports
repetition-sampling throughput per channel kind.

The ``congested-ap`` preset (the worst Fig. 8 cell: 25 robots, heavy
interference, the full AP queue simulation) must show at least a 3x batched
throughput gain; the other kinds are reported for context.  All rows must
agree bit-for-bit with the serial oracle.
"""

from __future__ import annotations

import time

import numpy as np

from repro.scenarios import get_scenario, sample_channel_delays, sample_channel_delays_batch

from conftest import emit, record_metric

#: Channel realisations per measurement (the Fig. 8 heatmap uses 40 at paper scale).
REPETITIONS = 40

#: Commands per realisation (a 30 s session at the paper's 50 Hz rate).
N_COMMANDS = 1500

#: The batched sampler must beat the serial loop by at least this factor
#: on the congested-ap preset.
MIN_SPEEDUP = 3.0

#: Kinds reported alongside the gated preset.
REPORTED = ("congested-ap", "jammer", "markov-interference", "handover", "trace-replay")


def _best_of(callable_, rounds: int = 3):
    """Minimum wall-clock over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_channel_sampling_throughput(benchmark, bench_seed):
    """Serial vs batched repetition-sampling throughput per channel kind."""
    seeds = [bench_seed + repetition for repetition in range(REPETITIONS)]
    lines = [f"{'channel':<22s} {'serial':>10s} {'batched':>10s} {'speedup':>9s}"]
    speedups = {}
    for name in REPORTED:
        channel = get_scenario(name).channel

        def run_serial():
            return np.stack(
                [sample_channel_delays(channel, N_COMMANDS, seed) for seed in seeds]
            )

        def run_batched():
            return sample_channel_delays_batch(channel, N_COMMANDS, seeds)

        t_serial, serial = _best_of(run_serial, rounds=1)
        t_batched, batched = _best_of(run_batched)
        assert np.array_equal(serial, batched), f"{name}: batched != serial oracle"
        speedups[name] = t_serial / t_batched
        lines.append(
            f"{name:<22s} {REPETITIONS / t_serial:>8.0f}/s {REPETITIONS / t_batched:>8.0f}/s "
            f"x{speedups[name]:>8.1f}"
        )

    gated = get_scenario("congested-ap").channel
    benchmark.pedantic(
        lambda: sample_channel_delays_batch(gated, N_COMMANDS, seeds), rounds=1, iterations=1
    )
    record_metric(
        "test_bench_channel_sampling_throughput",
        **{f"speedup_{name}": value for name, value in speedups.items()},
    )
    emit(
        f"Vectorized channel sampling — {REPETITIONS} repetitions x {N_COMMANDS} commands",
        "\n".join(lines),
    )

    assert speedups["congested-ap"] >= MIN_SPEEDUP, (
        f"batched channel sampling only {speedups['congested-ap']:.1f}x faster than the "
        f"serial loop on congested-ap (required: {MIN_SPEEDUP}x)"
    )
