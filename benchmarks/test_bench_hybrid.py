"""Benchmark: hybrid city-scale tier vs the pure-exact fleet engine.

Runs the ``city-scale`` preset (2048 operators Poisson over 256 APs)
through the hybrid exact/analytic tier and measures operators per second,
then measures the pure-exact engine's per-operator rate on a trimmed
exact fleet of the same shape (timing 2048 operators exactly would take
minutes — the point of the tier).  The hybrid tier must deliver at least
**100x more operators per second** than the exact path (the ISSUE
acceptance gate); the measured ratio lands in the trajectory file as
``speedup_city``.

The exact baseline is deliberately small (32 operators over 4 APs): the
exact engine's cost is linear-plus in the population, so its small-fleet
per-operator rate *overestimates* what it would sustain at city scale,
making the asserted ratio conservative.
"""

from __future__ import annotations

import time

from repro.fleet import FleetEngine, HybridFleetEngine, get_fleet
from repro.scenarios import SessionEngine

from conftest import emit, record_metric

#: The hybrid tier must beat exact per-operator throughput by this factor.
MIN_SPEEDUP = 100.0

#: Exact-baseline population (kept small; see module docstring).
EXACT_OPERATORS = 32


def _best_of(callable_, rounds: int = 3) -> tuple[float, object]:
    """Minimum wall-clock over ``rounds`` runs (robust to scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_hybrid_city_scale(benchmark, bench_scale, bench_seed):
    """Operators/second: hybrid city-scale vs pure-exact (same workload shape)."""
    city = get_fleet("city-scale", scale=bench_scale, seed=bench_seed)
    exact_small = get_fleet(
        "city-scale", operators=EXACT_OPERATORS, scale=bench_scale, seed=bench_seed
    ).with_(aps=4, tier="exact")

    sessions = SessionEngine()
    sessions.run(city.template)  # warm dataset/forecaster/solo caches

    hybrid_engine = HybridFleetEngine(sessions=sessions, cache_results=False)
    exact_engine = FleetEngine(sessions=sessions, cache_results=False)

    t_hybrid, hybrid = _best_of(lambda: hybrid_engine.run(city))
    t_exact, exact = _best_of(lambda: exact_engine.run(exact_small))

    assert hybrid.admitted + hybrid.dropped_sessions >= city.operators
    assert hybrid.tier == "hybrid"
    assert hybrid.exact_sessions + hybrid.analytic_sessions == hybrid.admitted
    assert exact.tier == "exact"

    hybrid_rate = city.operators / t_hybrid
    exact_rate = EXACT_OPERATORS / t_exact
    speedup = hybrid_rate / exact_rate

    def run():
        return HybridFleetEngine(sessions=sessions, cache_results=False).run(city)

    benchmark.pedantic(run, rounds=1, iterations=1)
    record_metric(
        "test_bench_hybrid_city_scale",
        ops_per_s_hybrid=hybrid_rate,
        ops_per_s_exact=exact_rate,
        speedup_city=speedup,
    )
    emit(
        f"Hybrid tier — city-scale ({city.operators} operators / {city.aps} APs), "
        f"scale={bench_scale}",
        "\n".join(
            [
                f"{'engine':<16s} {'operators':>10s} {'wall':>9s} {'ops/s':>11s}",
                f"{'hybrid':<16s} {city.operators:>10d} {t_hybrid:>8.3f}s {hybrid_rate:>11.0f}",
                f"{'exact':<16s} {EXACT_OPERATORS:>10d} {t_exact:>8.3f}s {exact_rate:>11.1f}",
                f"speedup x{speedup:.0f} "
                f"({hybrid.hot_aps} hot / {hybrid.cold_aps} cold APs, "
                f"{hybrid.exact_sessions} exact + {hybrid.analytic_sessions} analytic sessions)",
            ]
        ),
    )

    assert speedup >= MIN_SPEEDUP, (
        f"hybrid tier only {speedup:.0f}x more operators/s than pure-exact "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
