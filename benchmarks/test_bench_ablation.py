"""Ablation benches for the design choices called out in DESIGN.md.

These do not correspond to a figure in the paper; they quantify the impact of
the reproduction's own design decisions so a reader can see which choices the
headline results depend on:

* forecast feedback vs oracle feedback during loss bursts (§VII-C),
* the VAR record length R,
* the ridge shrinkage that stabilises iterated forecasting,
* the robot driver's fallback policy (hold vs stop),
* the tolerance τ.
"""

from __future__ import annotations

import numpy as np

from repro.core import ForecoConfig, ForecoRecovery, RemoteControlSimulation
from repro.experiments import build_datasets
from repro.wireless import ConsecutiveLossInjector, InterferenceSource, WirelessChannel

from conftest import emit


def _setup(bench_scale, bench_seed, config: ForecoConfig):
    datasets = build_datasets(bench_scale, seed=bench_seed)
    recovery = ForecoRecovery(config)
    recovery.train(datasets.experienced.commands)
    commands = datasets.inexperienced.head_seconds(40.0).commands
    return datasets, recovery, commands


def _interference_delays(n_commands: int, seed: int) -> np.ndarray:
    channel = WirelessChannel(
        n_robots=15, interference=InterferenceSource(0.05, 100), seed=seed
    )
    return channel.sample_trace(n_commands).delays()


def test_feedback_ablation(benchmark, bench_scale, bench_seed):
    """Forecast feedback (the paper's prototype) vs oracle feedback."""

    def run() -> dict[str, float]:
        results = {}
        for feedback in ("forecast", "oracle"):
            _, recovery, commands = _setup(
                bench_scale, bench_seed, ForecoConfig(feedback=feedback)
            )
            delays = _interference_delays(commands.shape[0], bench_seed)
            outcome = RemoteControlSimulation(recovery).run(commands, delays)
            results[feedback] = outcome.rmse_foreco_mm
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — feedback mode",
        "\n".join(f"{mode:10s}: FoReCo RMSE {value:.2f} mm" for mode, value in results.items()),
    )
    assert results["oracle"] <= results["forecast"] * 1.5


def test_var_record_sweep(benchmark, bench_scale, bench_seed):
    """Sensitivity of the recovery error to the VAR record length R."""

    def run() -> dict[int, float]:
        results = {}
        for record in (2, 5, 10, 20):
            _, recovery, commands = _setup(bench_scale, bench_seed, ForecoConfig(record=record))
            injector = ConsecutiveLossInjector(burst_length=15, n_bursts=5, min_gap=80, seed=bench_seed)
            delays = injector.to_trace(commands.shape[0]).delays()
            outcome = RemoteControlSimulation(recovery).run(commands, delays)
            results[record] = outcome.rmse_foreco_mm
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — VAR record length",
        "\n".join(f"R={record:<3d}: FoReCo RMSE {value:.2f} mm" for record, value in results.items()),
    )
    assert min(results.values()) > 0.0


def test_ridge_sweep(benchmark, bench_scale, bench_seed):
    """The ridge shrinkage that keeps iterated VAR forecasts stable."""

    def run() -> dict[float, float]:
        results = {}
        for ridge in (0.0, 1e-3, 3e-2, 1e-1):
            config = ForecoConfig(algorithm_options={"ridge": ridge})
            _, recovery, commands = _setup(bench_scale, bench_seed, config)
            delays = _interference_delays(commands.shape[0], bench_seed)
            outcome = RemoteControlSimulation(recovery).run(commands, delays)
            results[ridge] = outcome.rmse_foreco_mm
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — VAR ridge",
        "\n".join(f"ridge={ridge:<7g}: FoReCo RMSE {value:.2f} mm" for ridge, value in results.items()),
    )
    assert results[3e-2] <= results[0.0] * 1.5


def test_driver_fallback(benchmark, bench_scale, bench_seed):
    """Hold-last-command (Niryo behaviour) vs stop-in-place baseline fallback."""

    def run() -> dict[str, float]:
        results = {}
        for fallback in ("hold", "stop"):
            _, recovery, commands = _setup(bench_scale, bench_seed, ForecoConfig())
            injector = ConsecutiveLossInjector(burst_length=15, n_bursts=5, min_gap=80, seed=bench_seed)
            delays = injector.to_trace(commands.shape[0]).delays()
            outcome = RemoteControlSimulation(recovery, fallback=fallback).run(commands, delays)
            results[fallback] = outcome.rmse_no_forecast_mm
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — driver fallback",
        "\n".join(f"{mode:5s}: baseline RMSE {value:.2f} mm" for mode, value in results.items()),
    )
    assert all(value >= 0.0 for value in results.values())


def test_tolerance_sweep(benchmark, bench_scale, bench_seed):
    """Sensitivity to the tolerance τ: a larger τ accepts more late commands."""

    def run() -> dict[float, float]:
        results = {}
        for tolerance in (0.0, 10.0, 40.0):
            _, recovery, commands = _setup(bench_scale, bench_seed, ForecoConfig(tolerance_ms=tolerance))
            delays = _interference_delays(commands.shape[0], bench_seed)
            outcome = RemoteControlSimulation(recovery).run(commands, delays)
            results[tolerance] = outcome.late_fraction
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — tolerance τ",
        "\n".join(f"tau={tolerance:>4.0f} ms: late fraction {value:.3f}" for tolerance, value in results.items()),
    )
    values = list(results.values())
    assert values[0] >= values[1] >= values[2]
