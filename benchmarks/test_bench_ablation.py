"""Ablation benches for the design choices called out in DESIGN.md.

These do not correspond to a figure in the paper; they quantify the impact of
the reproduction's own design decisions so a reader can see which choices the
headline results depend on:

* forecast feedback vs oracle feedback during loss bursts (§VII-C),
* the VAR record length R,
* the ridge shrinkage that stabilises iterated forecasting,
* the robot driver's fallback policy (hold vs stop),
* the tolerance τ.

Every ablation is a one-axis scenario grid executed through the shared
:class:`repro.scenarios.SweepExecutor`, so the benches exercise exactly the
code path the experiments and the CLI use.
"""

from __future__ import annotations

from repro.scenarios import (
    ScenarioSpec,
    SweepExecutor,
    SweepResult,
    get_scale,
    loss_burst_channel,
    scenario_grid,
    wireless_channel,
)

from conftest import emit

#: The interference channel shared by the delay-sensitive ablations.
_INTERFERENCE = wireless_channel(n_robots=15, probability=0.05, duration_slots=100)

#: The controlled-loss channel shared by the burst-sensitive ablations.
_BURSTS = loss_burst_channel(burst_length=15, n_bursts=5, min_gap=80)


def _base(bench_scale, bench_seed, channel, **fields) -> ScenarioSpec:
    scale = get_scale(bench_scale)
    return ScenarioSpec(
        name="ablation",
        scale=scale,
        seed=bench_seed,
        channel=channel,
        run_seconds=40.0,
        **fields,
    )


def _sweep(base: ScenarioSpec, axis: str, values) -> SweepResult:
    return SweepExecutor(jobs=2).run(scenario_grid(base, {axis: tuple(values)}))


def test_feedback_ablation(benchmark, bench_scale, bench_seed):
    """Forecast feedback (the paper's prototype) vs oracle feedback."""

    def run() -> dict[str, float]:
        base = _base(bench_scale, bench_seed, _INTERFERENCE)
        sweep = _sweep(base, "foreco.feedback", ("forecast", "oracle"))
        return {row.spec.foreco.feedback: row.mean_rmse_foreco_mm for row in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — feedback mode",
        "\n".join(f"{mode:10s}: FoReCo RMSE {value:.2f} mm" for mode, value in results.items()),
    )
    assert results["oracle"] <= results["forecast"] * 1.5


def test_var_record_sweep(benchmark, bench_scale, bench_seed):
    """Sensitivity of the recovery error to the VAR record length R."""

    def run() -> dict[int, float]:
        base = _base(bench_scale, bench_seed, _BURSTS)
        sweep = _sweep(base, "foreco.record", (2, 5, 10, 20))
        return {row.spec.foreco.record: row.mean_rmse_foreco_mm for row in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — VAR record length",
        "\n".join(f"R={record:<3d}: FoReCo RMSE {value:.2f} mm" for record, value in results.items()),
    )
    assert min(results.values()) > 0.0


def test_ridge_sweep(benchmark, bench_scale, bench_seed):
    """The ridge shrinkage that keeps iterated VAR forecasts stable."""

    def run() -> dict[float, float]:
        base = _base(bench_scale, bench_seed, _INTERFERENCE)
        results = {}
        for ridge in (0.0, 1e-3, 3e-2, 1e-1):
            spec = base.with_foreco(algorithm_options={"ridge": ridge})
            row = SweepExecutor(jobs=1).run([spec])[0]
            results[ridge] = row.mean_rmse_foreco_mm
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — VAR ridge",
        "\n".join(f"ridge={ridge:<7g}: FoReCo RMSE {value:.2f} mm" for ridge, value in results.items()),
    )
    assert results[3e-2] <= results[0.0] * 1.5


def test_driver_fallback(benchmark, bench_scale, bench_seed):
    """Hold-last-command (Niryo behaviour) vs stop-in-place baseline fallback."""

    def run() -> dict[str, float]:
        base = _base(bench_scale, bench_seed, _BURSTS)
        sweep = _sweep(base, "fallback", ("hold", "stop"))
        return {row.spec.fallback: row.mean_rmse_no_forecast_mm for row in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — driver fallback",
        "\n".join(f"{mode:5s}: baseline RMSE {value:.2f} mm" for mode, value in results.items()),
    )
    assert all(value >= 0.0 for value in results.values())


def test_tolerance_sweep(benchmark, bench_scale, bench_seed):
    """Sensitivity to the tolerance τ: a larger τ accepts more late commands."""

    def run() -> dict[float, float]:
        base = _base(bench_scale, bench_seed, _INTERFERENCE)
        sweep = _sweep(base, "foreco.tolerance_ms", (0.0, 10.0, 40.0))
        return {row.spec.foreco.tolerance_ms: row.mean_late_fraction for row in sweep}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Ablation — tolerance τ",
        "\n".join(
            f"tau={tolerance:>4.0f} ms: late fraction {value:.3f}"
            for tolerance, value in results.items()
        ),
    )
    values = list(results.values())
    assert values[0] >= values[1] >= values[2]
