"""Benchmark: regenerate Fig. 7 (forecast accuracy vs forecasting window)."""

from __future__ import annotations

from repro.experiments import fig7_forecast_accuracy

from conftest import emit


def test_bench_fig7_var_vs_ma(benchmark, bench_scale, bench_seed):
    """The headline Fig. 7 comparison between VAR and the MA benchmark."""
    result = benchmark.pedantic(
        fig7_forecast_accuracy.run,
        kwargs={"scale": bench_scale, "seed": bench_seed, "algorithms": ("var", "ma")},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 7 — VAR vs MA", result.to_text())
    assert result.final_rmse("var") <= result.final_rmse("ma")


def test_bench_fig7_seq2seq(benchmark, bench_scale, bench_seed):
    """The seq2seq forecaster (NumPy LSTM encoder–decoder) on the same sweep."""
    result = benchmark.pedantic(
        fig7_forecast_accuracy.run,
        kwargs={"scale": bench_scale, "seed": bench_seed, "algorithms": ("seq2seq",)},
        rounds=1,
        iterations=1,
    )
    emit("Fig. 7 — seq2seq", result.to_text())
    assert "seq2seq" in result.rmse_mm
