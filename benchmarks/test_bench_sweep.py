"""Benchmark: the scenario sweep engine itself (serial vs parallel).

Measures a miniature Fig. 8-style grid through the
:class:`repro.scenarios.SweepExecutor` with 1 and 4 workers, verifies the
two runs produce identical tables (the engine's determinism guarantee), and
prints the resulting sweep table.
"""

from __future__ import annotations

from repro.scenarios import (
    ScenarioSpec,
    SessionEngine,
    SweepExecutor,
    get_scale,
    scenario_grid,
    wireless_channel,
)

from conftest import emit


def _specs(bench_scale, bench_seed):
    base = ScenarioSpec(
        name="bench-sweep",
        scale=get_scale(bench_scale),
        seed=bench_seed,
        channel=wireless_channel(),
        repetitions=2,
    )
    return scenario_grid(
        base,
        {
            "channel.n_robots": (5, 25),
            "channel.probability": (0.01, 0.05),
            "channel.duration_slots": (10, 100),
        },
    )


def test_bench_sweep_parallel(benchmark, bench_scale, bench_seed):
    """8-cell grid x 2 repetitions on 4 worker threads."""
    specs = _specs(bench_scale, bench_seed)
    # Warm the dataset/forecaster caches so the benchmark isolates the sweep.
    serial_engine = SessionEngine()
    serial = SweepExecutor(jobs=1, engine=serial_engine).run(specs)

    def run():
        return SweepExecutor(jobs=4).run(specs)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Sweep engine — 8 scenarios x 2 repetitions, 4 workers", parallel.to_table())

    assert len(parallel) == len(serial) == 8
    for row_a, row_b in zip(parallel, serial):
        assert row_a.spec_hash == row_b.spec_hash
        assert row_a.rmse_foreco_mm == row_b.rmse_foreco_mm
        assert row_a.rmse_no_forecast_mm == row_b.rmse_no_forecast_mm
