"""Heatmap grids for the Fig. 8 simulation sweep.

Fig. 8 of the paper is a grid of six heatmaps: for 5 / 15 / 25 robots sharing
the wireless medium, the averaged trajectory RMSE over a sweep of
interference probability (1%, 2.5%, 5%) × interference duration
(10, 50, 100 slots), once without forecasting and once with FoReCo.

:class:`HeatmapGrid` stores the cells of one such heatmap, knows how to
aggregate repeated simulation runs into per-cell means, and renders itself as
the text table the benchmark harness prints (matching the numbers layout of
the paper's figure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass
class HeatmapCell:
    """One (interference probability, interference duration) cell."""

    interference_probability: float
    interference_duration_slots: int
    samples: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        """Record the RMSE of one simulation repetition."""
        self.samples.append(float(value))

    @property
    def mean(self) -> float:
        """Average RMSE over the recorded repetitions (nan when empty)."""
        return float(np.mean(self.samples)) if self.samples else float("nan")

    @property
    def std(self) -> float:
        """Standard deviation over the recorded repetitions."""
        return float(np.std(self.samples)) if len(self.samples) > 1 else 0.0


class HeatmapGrid:
    """A probability × duration grid of :class:`HeatmapCell` objects."""

    def __init__(
        self,
        probabilities: list[float],
        durations: list[int],
        label: str = "",
    ) -> None:
        if not probabilities or not durations:
            raise ConfigurationError("heatmap axes must be non-empty")
        self.probabilities = sorted(float(p) for p in probabilities)
        self.durations = sorted(int(d) for d in durations)
        self.label = label
        self._cells: dict[tuple[float, int], HeatmapCell] = {
            (p, d): HeatmapCell(p, d) for p in self.probabilities for d in self.durations
        }

    def cell(self, probability: float, duration: int) -> HeatmapCell:
        """Access the cell for one (probability, duration) pair."""
        key = (float(probability), int(duration))
        try:
            return self._cells[key]
        except KeyError as exc:
            raise ConfigurationError(f"no heatmap cell for {key}") from exc

    def add_sample(self, probability: float, duration: int, value: float) -> None:
        """Record one repetition's RMSE in the matching cell."""
        self.cell(probability, duration).add(value)

    def matrix(self) -> np.ndarray:
        """Means as a matrix with probabilities on rows and durations on columns."""
        return np.array(
            [[self.cell(p, d).mean for d in self.durations] for p in self.probabilities]
        )

    def max_mean(self) -> float:
        """Largest per-cell mean (the worst-case RMSE the paper quotes)."""
        matrix = self.matrix()
        return float(np.nanmax(matrix))

    def min_mean(self) -> float:
        """Smallest per-cell mean."""
        matrix = self.matrix()
        return float(np.nanmin(matrix))

    def to_text(self, value_format: str = "{:8.2f}") -> str:
        """Human-readable rendering used by the benchmark harness."""
        lines = [f"# {self.label}" if self.label else "# heatmap"]
        header = "prob\\dur | " + " ".join(f"{d:>8d}" for d in self.durations)
        lines.append(header)
        lines.append("-" * len(header))
        for probability in self.probabilities:
            row = " ".join(value_format.format(self.cell(probability, d).mean) for d in self.durations)
            lines.append(f"{100.0 * probability:7.1f}% | {row}")
        return "\n".join(lines)

    def as_records(self) -> list[dict[str, float]]:
        """Flat record list (one dict per cell) for tabular post-processing."""
        records = []
        for probability in self.probabilities:
            for duration in self.durations:
                cell = self.cell(probability, duration)
                records.append(
                    {
                        "interference_probability": probability,
                        "interference_duration_slots": duration,
                        "mean_rmse_mm": cell.mean,
                        "std_rmse_mm": cell.std,
                        "n_repetitions": len(cell.samples),
                    }
                )
        return records
