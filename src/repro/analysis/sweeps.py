"""Render scenario sweep results into analysis artefacts.

The scenario layer returns a uniform :class:`~repro.scenarios.SweepResult`
table; this module turns such tables into the analysis-side structures the
figures are built from — currently :class:`HeatmapGrid` objects keyed by two
channel parameters (the Fig. 8 layout), plus a compact summary table.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError
from .heatmap import HeatmapGrid


def heatmap_from_sweep(
    rows: Iterable,
    x_param: str = "probability",
    y_param: str = "duration_slots",
    metric: str = "rmse_foreco_mm",
    label: str = "",
) -> HeatmapGrid:
    """Aggregate session results into one parameter-grid heatmap.

    ``x_param``/``y_param`` name channel parameters of each row's spec
    (axis values are collected from the rows); ``metric`` names a
    per-repetition tuple attribute on the rows (``"rmse_foreco_mm"`` or
    ``"rmse_no_forecast_mm"``), every repetition contributing one sample to
    its cell.
    """
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot build a heatmap from an empty sweep")
    points = []
    for row in rows:
        options = row.spec.channel.options()
        if x_param not in options or y_param not in options:
            raise ConfigurationError(
                f"row channel {row.spec.channel.describe()} lacks "
                f"parameter {x_param!r} or {y_param!r}"
            )
        points.append((float(options[x_param]), int(options[y_param]), getattr(row, metric)))
    xs = sorted({x for x, _, _ in points})
    ys = sorted({y for _, y, _ in points})
    grid = HeatmapGrid(xs, ys, label=label)
    for x, y, samples in points:
        for value in samples:
            grid.add_sample(x, y, float(value))
    return grid


def sweep_summary(rows: Iterable) -> str:
    """One-line-per-row summary of a sweep (scenario, RMSE pair, gain)."""
    lines = []
    for row in rows:
        lines.append(
            f"{row.spec.name}: no-forecast {row.mean_rmse_no_forecast_mm:.2f} mm, "
            f"FoReCo {row.mean_rmse_foreco_mm:.2f} mm "
            f"(x{row.improvement_factor:.1f}, late {row.mean_late_fraction:.2f})"
        )
    return "\n".join(lines)
