"""Render scenario sweep results into analysis artefacts.

The scenario layer returns a uniform :class:`~repro.scenarios.SweepResult`
table; this module turns such tables into the analysis-side structures the
figures are built from — currently :class:`HeatmapGrid` objects keyed by two
channel parameters (the Fig. 8 layout), plus a compact summary table.

:func:`load_sweep` closes the loop with the persistent
:class:`~repro.scenarios.ResultStore`: it materialises a
:class:`~repro.scenarios.SweepResult` purely from stored rows, so figures
and tables re-render without recomputing a single session.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from ..errors import ConfigurationError
from .heatmap import HeatmapGrid

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps import light
    from ..scenarios import ResultStore, ScenarioSpec, SweepResult


def heatmap_from_sweep(
    rows: Iterable,
    x_param: str = "probability",
    y_param: str = "duration_slots",
    metric: str = "rmse_foreco_mm",
    label: str = "",
) -> HeatmapGrid:
    """Aggregate session results into one parameter-grid heatmap.

    ``x_param``/``y_param`` name channel parameters of each row's spec
    (axis values are collected from the rows); ``metric`` names a
    per-repetition tuple attribute on the rows (``"rmse_foreco_mm"`` or
    ``"rmse_no_forecast_mm"``), every repetition contributing one sample to
    its cell.
    """
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot build a heatmap from an empty sweep")
    points = []
    for row in rows:
        options = row.spec.channel.options()
        if x_param not in options or y_param not in options:
            raise ConfigurationError(
                f"row channel {row.spec.channel.describe()} lacks "
                f"parameter {x_param!r} or {y_param!r}"
            )
        points.append((float(options[x_param]), int(options[y_param]), getattr(row, metric)))
    xs = sorted({x for x, _, _ in points})
    ys = sorted({y for _, y, _ in points})
    grid = HeatmapGrid(xs, ys, label=label)
    for x, y, samples in points:
        for value in samples:
            grid.add_sample(x, y, float(value))
    return grid


def load_sweep(
    store: "ResultStore",
    specs: "Sequence[ScenarioSpec]",
    strict: bool = True,
) -> "SweepResult":
    """Materialise a sweep table purely from a persistent result store.

    Loads the stored row for every spec, in input order, without computing
    anything — the re-rendering path for figures and tables over sweeps that
    already ran (``SweepExecutor(store=...)`` or ``runner --store``).  With
    ``strict=True`` (default) a missing spec raises
    :class:`~repro.errors.ConfigurationError`; with ``strict=False`` missing
    specs are skipped and counted in the result's ``store_misses``.
    """
    from ..scenarios import SweepResult  # local import: analysis must stay light

    rows = []
    missing = []
    for spec in specs:
        row = store.get(spec)
        if row is None:
            missing.append(spec)
        else:
            rows.append(row)
    if missing and strict:
        raise ConfigurationError(
            f"{len(missing)} of {len(specs)} specs are not in the result store "
            f"(first missing: {missing[0].describe()}); run the sweep with this store "
            "first, or pass strict=False to render the stored subset"
        )
    return SweepResult(rows, store_hits=len(rows), store_misses=len(missing))


def sweep_summary(rows: Iterable) -> str:
    """One-line-per-row summary of a sweep (scenario, RMSE pair, gain)."""
    lines = []
    for row in rows:
        lines.append(
            f"{row.spec.name}: no-forecast {row.mean_rmse_no_forecast_mm:.2f} mm, "
            f"FoReCo {row.mean_rmse_foreco_mm:.2f} mm "
            f"(x{row.improvement_factor:.1f}, late {row.mean_late_fraction:.2f})"
        )
    return "\n".join(lines)
