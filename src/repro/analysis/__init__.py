"""Analysis utilities: result aggregation, profiling and hardware scaling.

* :mod:`repro.analysis.heatmap` — the interference-probability × duration
  result grids of Fig. 8 (per robot count, with and without FoReCo).
* :mod:`repro.analysis.profiling` — wall-clock profiling of the training
  pipeline plus the calibrated hardware scale factors used to reproduce
  Tables I and II (the paper measures Raspberry Pi 3, Jetson Nano, a laptop
  and an edge server; we measure on the current host and report the paper's
  relative platform ordering).
* :mod:`repro.analysis.statistics` — small summary-statistics helpers
  (mean ± confidence intervals over repeated simulations).
* :mod:`repro.analysis.sweeps` — renderers turning scenario
  :class:`~repro.scenarios.SweepResult` tables into heatmaps and summaries.
"""

from .heatmap import HeatmapCell, HeatmapGrid
from .sweeps import heatmap_from_sweep, load_sweep, sweep_summary
from .profiling import (
    HARDWARE_PROFILES,
    HardwareProfile,
    ProfiledStage,
    scale_timings_to_hardware,
)
from .statistics import ConfidenceInterval, mean_confidence_interval, summarize

__all__ = [
    "HeatmapCell",
    "HeatmapGrid",
    "heatmap_from_sweep",
    "load_sweep",
    "sweep_summary",
    "HARDWARE_PROFILES",
    "HardwareProfile",
    "ProfiledStage",
    "scale_timings_to_hardware",
    "ConfidenceInterval",
    "mean_confidence_interval",
    "summarize",
]
