"""Timing profiles and hardware scaling for Tables I and II.

The paper profiles FoReCo's training pipeline on the robot's Raspberry Pi 3
(Table I) and compares training / inference times across four hardware tiers
(Table II): Raspberry Pi 3, NVIDIA Jetson Nano, a laptop and an edge server.

We obviously cannot run on that silicon, so the reproduction measures the
real pipeline on the current host and reports the other platforms through
**calibrated scale factors** derived from the paper's own numbers (training
times of 5.99 / 1.31 / 0.36 / 0.23 minutes respectively, i.e. roughly
26x / 5.7x / 1.6x / 1.0x relative to the edge server).  This keeps the
*relative ordering and ratios* of the paper while the absolute magnitude is
host-dependent — EXPERIMENTS.md records both.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .._validation import ensure_int, ensure_positive
from ..core.pipeline import PipelineTimings


@dataclass(frozen=True)
class HardwareProfile:
    """Relative speed of one hardware tier used in Table II.

    ``training_scale`` / ``inference_scale`` are multipliers applied to a
    timing measured on the reference platform (the paper's local edge server):
    a scale of 26 means "about 26 times slower than the edge server".
    """

    name: str
    description: str
    training_scale: float
    inference_scale: float

    def __post_init__(self) -> None:
        ensure_positive("training_scale", self.training_scale)
        ensure_positive("inference_scale", self.inference_scale)


#: Hardware tiers of Table II with scale factors calibrated from the paper's
#: own measurements (training: 5.99, 1.31, 0.36, 0.23 minutes; inference:
#: 1.60, 0.61, 0.22, 0.0001 ms).
HARDWARE_PROFILES: dict[str, HardwareProfile] = {
    "raspberry-pi3": HardwareProfile(
        name="Raspberry Pi3 (Robot)",
        description="1.2 GHz 64-bit quad core, 1 GB RAM — the Niryo One's on-board computer",
        training_scale=5.99 / 0.23,
        inference_scale=1.60 / 0.22,
    ),
    "jetson-nano": HardwareProfile(
        name="NVIDIA Jetson Nano (Robot)",
        description="quad-core A57 + 128-core Maxwell GPU, co-located with the robot",
        training_scale=1.31 / 0.23,
        inference_scale=0.61 / 0.22,
    ),
    "laptop": HardwareProfile(
        name="Laptop (UE)",
        description="2nd gen Intel Core i7, 6 GB RAM — the user equipment",
        training_scale=0.36 / 0.23,
        inference_scale=1.0,
    ),
    "edge-server": HardwareProfile(
        name="Local Server (Edge)",
        description="2x Intel Xeon E5-2620 v4, 64 GB RAM — the edge offload target",
        training_scale=1.0,
        inference_scale=0.0001 / 0.22,
    ),
}


@dataclass
class ProfiledStage:
    """Mean and standard deviation of one repeatedly-timed stage."""

    name: str
    mean_s: float
    std_s: float
    n_runs: int

    @property
    def mean_ms(self) -> float:
        """Mean duration in milliseconds."""
        return self.mean_s * 1000.0

    @property
    def mean_minutes(self) -> float:
        """Mean duration in minutes (the unit Table II uses for training)."""
        return self.mean_s / 60.0


def time_callable(func: Callable[[], object], repetitions: int = 3) -> ProfiledStage:
    """Run ``func`` ``repetitions`` times and summarise its wall-clock time."""
    repetitions = ensure_int("repetitions", repetitions, minimum=1)
    durations = []
    for _ in range(repetitions):
        start = time.perf_counter()
        func()
        durations.append(time.perf_counter() - start)
    mean = sum(durations) / len(durations)
    variance = sum((d - mean) ** 2 for d in durations) / max(1, len(durations) - 1)
    return ProfiledStage(
        name=getattr(func, "__name__", "stage"),
        mean_s=mean,
        std_s=variance ** 0.5,
        n_runs=repetitions,
    )


def scale_timings_to_hardware(
    measured_training_s: float,
    measured_inference_ms: float,
    reference: str = "laptop",
) -> dict[str, dict[str, float]]:
    """Project host measurements onto the Table II hardware tiers.

    Parameters
    ----------
    measured_training_s:
        Training time measured on the current host (seconds).
    measured_inference_ms:
        Single-forecast inference time measured on the current host (ms).
    reference:
        Which tier the current host is assumed to correspond to (the paper's
        laptop is the closest match for a typical CI container).

    Returns
    -------
    dict
        ``{tier_key: {"training_min": ..., "inference_ms": ...}}`` for every
        tier in :data:`HARDWARE_PROFILES`.
    """
    if reference not in HARDWARE_PROFILES:
        raise KeyError(f"unknown reference tier {reference!r}; available: {sorted(HARDWARE_PROFILES)}")
    ref = HARDWARE_PROFILES[reference]
    # Normalise the host measurement back to the edge-server baseline, then
    # re-scale to every tier.
    base_training_s = measured_training_s / ref.training_scale
    base_inference_ms = measured_inference_ms / ref.inference_scale
    projected: dict[str, dict[str, float]] = {}
    for key, profile in HARDWARE_PROFILES.items():
        projected[key] = {
            "training_min": base_training_s * profile.training_scale / 60.0,
            "inference_ms": base_inference_ms * profile.inference_scale,
        }
    return projected


def timings_to_table_row(timings: PipelineTimings) -> dict[str, float]:
    """Convert pipeline timings to the Table I column layout (seconds)."""
    return {
        "load_data_s": timings.load_data_s,
        "downsampling_s": timings.downsampling_s,
        "check_quality_s": timings.quality_check_s,
        "training_model_s": timings.training_s,
    }
