"""Summary statistics over repeated simulation runs.

Fig. 8 averages 40 repetitions per heatmap cell; the tables report mean ±
standard deviation over repeated timing runs.  These helpers centralise the
mean / confidence-interval computations so every experiment reports them the
same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..errors import DimensionError


@dataclass
class ConfidenceInterval:
    """Mean with a symmetric confidence interval."""

    mean: float
    half_width: float
    level: float
    n_samples: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.mean:.3f} ± {self.half_width:.3f} ({int(self.level * 100)}% CI, n={self.n_samples})"


def mean_confidence_interval(samples: np.ndarray, level: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval of the sample mean."""
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size == 0:
        raise DimensionError("cannot summarise an empty sample set")
    mean = float(samples.mean())
    if samples.size == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, level=level, n_samples=1)
    sem = float(samples.std(ddof=1) / np.sqrt(samples.size))
    t_value = float(scipy_stats.t.ppf(0.5 + level / 2.0, df=samples.size - 1))
    return ConfidenceInterval(mean=mean, half_width=t_value * sem, level=level, n_samples=samples.size)


def summarize(samples: np.ndarray) -> dict[str, float]:
    """Mean, standard deviation, min, max and selected percentiles."""
    samples = np.asarray(samples, dtype=float).ravel()
    if samples.size == 0:
        raise DimensionError("cannot summarise an empty sample set")
    return {
        "mean": float(samples.mean()),
        "std": float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
        "min": float(samples.min()),
        "max": float(samples.max()),
        "p50": float(np.percentile(samples, 50)),
        "p95": float(np.percentile(samples, 95)),
    }
