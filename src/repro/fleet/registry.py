"""Named fleet presets.

The registry maps human-friendly names to :class:`FleetSpec` values so the
capacity-planning examples, the CLI (``foreco-experiments fleet``) and the
benchmarks share one vocabulary of service workloads:

``shared-ap``
    Four operators saturating one access point, all starting at once — the
    canonical coupled-contention workload (the AP is oversubscribed, so the
    shared backlog stretches everyone's delays).
``peak-hour``
    Eight operators arriving as a Poisson process over two APs with a tight
    admission cap — sessions overlap at the peak and some are dropped.
``diurnal-campus``
    Twelve operators following a diurnal load curve over three APs — the
    arrival-rate swing concentrates sessions near the peak of the curve.
``city-scale``
    Two thousand operators arriving Poisson over 256 APs, run through the
    **hybrid** exact/analytic tier (see :mod:`repro.fleet.hybrid`): the few
    saturated APs simulate exactly, the long cold tail is serviced by the
    analytic heavy-tail superposition model — the workload shape of the
    "fleets of millions" north star, at a cost a laptop can pay.

Use :func:`register_fleet` to add project-specific presets.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..scenarios.registry import get_scenario
from .spec import FleetSpec

_REGISTRY: dict[str, tuple[FleetSpec, str]] = {}


def register_fleet(spec: FleetSpec, description: str = "", overwrite: bool = False) -> None:
    """Register a fleet preset under ``spec.name``.

    Raises :class:`~repro.errors.ConfigurationError` when the name is taken
    and ``overwrite`` is false.
    """
    name = spec.name
    if not name or name == "fleet":
        raise ConfigurationError("a registered fleet needs a distinctive name")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"fleet {name!r} is already registered")
    _REGISTRY[name] = (spec, description)


def get_fleet(
    name: str,
    operators: int | None = None,
    scale: str | None = None,
    seed: int | None = None,
    **overrides,
) -> FleetSpec:
    """Fetch a fleet preset by name, optionally overriding common knobs.

    ``operators`` (and any other keyword accepted by
    :meth:`FleetSpec.with_`) replaces a fleet-level field; ``scale`` and
    ``seed`` are forwarded to the per-operator template, mirroring
    :func:`repro.scenarios.get_scenario`.
    """
    try:
        spec, _ = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown fleet {name!r}; available: {fleet_names()}"
        ) from exc
    if operators is not None:
        overrides["operators"] = int(operators)
    if overrides:
        spec = spec.with_(**overrides)
    template_overrides = {}
    if scale is not None:
        template_overrides["scale"] = scale
    if seed is not None:
        template_overrides["seed"] = seed
    if template_overrides:
        spec = spec.with_template(**template_overrides)
    return spec


def fleet_names() -> list[str]:
    """Sorted names of the registered fleet presets."""
    return sorted(_REGISTRY)


def fleet_catalog() -> dict[str, str]:
    """Mapping of fleet preset name to its one-line description."""
    return {name: description for name, (_, description) in sorted(_REGISTRY.items())}


def _register_builtins() -> None:
    """Register the built-in fleet presets."""
    register_fleet(
        FleetSpec(
            name="shared-ap",
            template=get_scenario("bursty-loss"),
            operators=4,
            aps=1,
            ap_capacity=4,
            ap_service_ms=6.0,
            arrival="simultaneous",
        ),
        "4 operators saturating one AP (oversubscribed shared backlog)",
    )
    register_fleet(
        FleetSpec(
            name="peak-hour",
            template=get_scenario("random-loss"),
            operators=8,
            aps=2,
            ap_capacity=3,
            ap_service_ms=5.0,
            arrival="poisson",
            arrival_rate_hz=0.4,
        ),
        "8 operators arriving Poisson over 2 capacity-limited APs (drops expected)",
    )
    register_fleet(
        FleetSpec(
            name="diurnal-campus",
            template=get_scenario("markov-interference"),
            operators=12,
            aps=3,
            ap_capacity=3,
            ap_service_ms=4.0,
            arrival="diurnal",
            arrival_rate_hz=0.3,
            diurnal_period_s=120.0,
            diurnal_amplitude=0.9,
        ),
        "12 operators on a diurnal load curve over 3 APs (peak-hour clustering)",
    )
    register_fleet(
        FleetSpec(
            name="city-scale",
            template=get_scenario("bursty-loss"),
            operators=2048,
            aps=256,
            ap_capacity=8,
            ap_service_ms=4.0,
            arrival="poisson",
            arrival_rate_hz=8.0,
            tier="hybrid",
            hot_threshold=0.6,
            cold_tail="heavy",
        ),
        "2048 operators Poisson over 256 APs via the hybrid exact/analytic tier",
    )


_register_builtins()
