"""Fleet-scale multi-operator service simulator.

This package scales the scenario runtime from one teleoperation session to
an operated service: ``N`` concurrent operators, arriving over time,
contending for shared access points — the workload shape a deployment
serving heavy traffic actually sees.

* :mod:`repro.fleet.spec` — frozen, hashable :class:`FleetSpec` (operator
  population, arrival process, AP topology/capacity, per-operator
  :class:`~repro.scenarios.ScenarioSpec` template) and the arrival-process
  samplers built on :mod:`repro.des.distributions`;
* :mod:`repro.fleet.engine` — the :class:`FleetEngine`: admission control,
  the shared per-AP Lindley backlog that couples co-scheduled sessions, and
  one batched session-kernel pass over every admitted operator-session;
  :class:`FleetResult` carries the service-level metrics (p50/p99 recovery,
  completion-time distribution, AP utilisation, dropped sessions);
* :mod:`repro.fleet.hybrid` — the :class:`HybridFleetEngine` city-scale
  tier: Bianchi-classified hot APs run the exact path, the cold long tail
  is serviced by the analytic Gaussian/heavy-tail superposition model
  (:mod:`repro.wireless.superposition`) — deterministic and
  store-cacheable like everything else;
* :mod:`repro.fleet.registry` — named fleet presets (``shared-ap``,
  ``peak-hour``, ``diurnal-campus``, ``city-scale``);
* :mod:`repro.fleet.plan` / :mod:`repro.fleet.objective` — SLO-driven
  capacity planning: :class:`PlanSpec` + :class:`CapacityPlanner` search
  per-AP admission capacities directly against p99-recovery/late/drop
  gates (dual-gradient ascent warm-started by the analytic superposition
  bracket, golden-section fallback), every probe memoized through the
  store; results are versioned :class:`CapacityPlan` reports persisted
  under the ``"plan"`` record kind.

Fleet results persist in the same content-addressed
:class:`~repro.scenarios.ResultStore` (and engine-epoch scheme) as session
results — importing this package registers the ``"fleet"`` record codec —
and :class:`~repro.scenarios.SweepExecutor` accepts fleet specs alongside
scenario specs, so capacity sweeps are resumable like any other sweep.
"""

from __future__ import annotations

from ..errors import StoreError
from ..scenarios.store import (
    _metric_tuples,
    decode_delays,
    encode_delays,
    register_store_codec,
)
from .engine import FleetEngine, FleetResult, operator_channel_spec
from .hybrid import ApClassification, HybridFleetEngine, classify_aps, cold_draw_seed
from .objective import PlanProbe, admitted_estimate, assess_probe, quality_violations, select_probe
from .plan import (
    METHOD_KIND_SUMMARIES,
    METHOD_KINDS,
    PLAN_VERSION,
    CapacityPlan,
    CapacityPlanner,
    PlanSpec,
    analytic_bracket,
    get_plan,
    plan_catalog,
    plan_names,
    register_plan,
    run_plan,
)
from .registry import fleet_catalog, fleet_names, get_fleet, register_fleet
from .spec import (
    ARRIVAL_KIND_SUMMARIES,
    ARRIVAL_KINDS,
    TIER_KIND_SUMMARIES,
    TIER_KINDS,
    FleetSpec,
    arrival_seed,
    sample_arrival_times,
)

_FLEET_METRICS = (
    "rmse_no_forecast_mm",
    "rmse_foreco_mm",
    "late_fraction",
    "recovery_fraction",
    "completion_time_s",
)


def _encode_fleet(result: FleetResult) -> dict:
    """Kind-specific payload fields for a fleet record (tier metadata included)."""
    payload = {
        "n_commands": int(result.n_commands),
        "admitted": int(result.admitted),
        "dropped_sessions": int(result.dropped_sessions),
        "ap_utilization": [float(u) for u in result.ap_utilization],
        "tier": str(result.tier),
        "hot_aps": int(result.hot_aps),
        "cold_aps": int(result.cold_aps),
        "exact_sessions": int(result.exact_sessions),
        "analytic_sessions": int(result.analytic_sessions),
        "delays_ms": encode_delays(result.delays_ms),
    }
    for metric in _FLEET_METRICS:
        payload[metric] = [float(v) for v in getattr(result, metric)]
    return payload


def _decode_fleet(spec: FleetSpec, key: str, payload: dict) -> FleetResult:
    """Rebuild a :class:`FleetResult` from a fleet record's payload."""
    metrics = _metric_tuples(payload, _FLEET_METRICS)
    utilization = payload["ap_utilization"]
    if not isinstance(utilization, list) or len(utilization) != spec.aps:
        raise StoreError("ap_utilization does not match the spec's AP count")
    tier = str(payload["tier"])
    if tier != spec.tier:
        raise StoreError(f"stored tier {tier!r} does not match the spec's {spec.tier!r}")
    return FleetResult(
        spec=spec,
        spec_hash=key,
        n_commands=int(payload["n_commands"]),
        admitted=int(payload["admitted"]),
        dropped_sessions=int(payload["dropped_sessions"]),
        ap_utilization=tuple(float(u) for u in utilization),
        tier=tier,
        hot_aps=int(payload["hot_aps"]),
        cold_aps=int(payload["cold_aps"]),
        exact_sessions=int(payload["exact_sessions"]),
        analytic_sessions=int(payload["analytic_sessions"]),
        outcome=None,  # trajectories are in-memory only (store module docs)
        delays_ms=decode_delays(payload.get("delays_ms")),
        **metrics,
    )


register_store_codec("fleet", _encode_fleet, _decode_fleet)

__all__ = [
    "ARRIVAL_KIND_SUMMARIES",
    "ARRIVAL_KINDS",
    "ApClassification",
    "CapacityPlan",
    "CapacityPlanner",
    "FleetEngine",
    "FleetResult",
    "FleetSpec",
    "HybridFleetEngine",
    "METHOD_KIND_SUMMARIES",
    "METHOD_KINDS",
    "PLAN_VERSION",
    "PlanProbe",
    "PlanSpec",
    "TIER_KIND_SUMMARIES",
    "TIER_KINDS",
    "admitted_estimate",
    "analytic_bracket",
    "arrival_seed",
    "assess_probe",
    "classify_aps",
    "cold_draw_seed",
    "fleet_catalog",
    "fleet_names",
    "get_fleet",
    "get_plan",
    "operator_channel_spec",
    "plan_catalog",
    "plan_names",
    "quality_violations",
    "register_fleet",
    "register_plan",
    "run_plan",
    "select_probe",
]
