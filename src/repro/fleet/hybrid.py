"""Hybrid exact/analytic fleet tier for city-scale operator populations.

At city scale the overwhelming majority of access points are lightly
loaded: simulating every one through the exact per-command Lindley backlog
is wasted work.  This module adds a hierarchical tier above
:class:`~repro.fleet.engine.FleetEngine` that

1. **classifies** every AP as *hot* or *cold* with the Bianchi-derived
   saturation score (:func:`repro.wireless.bianchi.saturation_score`)
   computed from the AP's peak admitted concurrency and its air-time load
   ``m * ap_service_ms / command_period_ms`` — admission capacity bounds
   the concurrency, so the classifier sees the *admitted* load, not the
   offered one;
2. runs hot APs through the **existing exact vectorized Lindley backlog**
   in :mod:`repro.fleet.engine`, unchanged — because the exact coupling is
   per-AP, the hot sessions' results are bit-identical to what a pure-exact
   run would produce for them;
3. services cold APs with the **analytic Gaussian/heavy-tail superposition
   delay model** (:class:`repro.wireless.superposition.SuperpositionModel`):
   per-session metrics bootstrap the template's own repetition statistics
   and shift them by an analytic extra-queueing-delay draw, sampled with a
   spec-derived block-ordered RNG so runs stay deterministic and
   store-cacheable.

This turns fleet cost from ``O(operators x commands)`` into
``O(hot-operators x commands + APs)`` — the single biggest lever for the
"fleets of millions" north star.  The error-vs-exact gate and the
crossover guidance live in ``docs/fleet.md`` ("City scale"); the
``>=100x`` operators-per-second claim is asserted by
``benchmarks/test_bench_hybrid.py``.

Determinism
-----------

Everything the tier does is a pure function of the spec: the admission
plan and classification derive from spec content, hot sessions reuse the
exact engine's per-``(operator, repetition)`` seeds, and the cold-AP draws
consume one generator per repetition (seeded from
:meth:`~repro.fleet.spec.FleetSpec.workload_identity`) in a fixed
repetition-major, AP-ascending, operator-ascending block order.  Hybrid
runs are therefore bit-identical across worker counts and thread/process
backends, and a fleet whose every AP classifies hot degenerates to the
plain exact computation bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..scenarios.engine import repetition_seed, sample_channel_delays_batch
from ..scenarios.spec import ScenarioSpec
from ..wireless.bianchi import saturation_score
from ..wireless.superposition import SuperpositionModel
from .engine import FleetEngine, FleetResult, _plan_repetition, _Session, operator_channel_spec
from .spec import FleetSpec, _hash_seed


# ------------------------------------------------------------- classification
@dataclass(frozen=True)
class ApClassification:
    """Hot/cold verdict for one access point.

    Attributes
    ----------
    ap:
        Access-point index.
    peak_sessions:
        Peak concurrent admitted sessions across all repetitions.
    score:
        Bianchi saturation score in ``[0, 1]`` (0.0 for an empty AP).
    hot:
        True when ``score >= fleet.hot_threshold`` — the AP is simulated
        exactly.
    """

    ap: int
    peak_sessions: int
    score: float
    hot: bool


def _peak_overlap(offsets: list[int], n_commands: int) -> int:
    """Peak number of concurrently active equal-length session windows."""
    if not offsets:
        return 0
    ordered = sorted(offsets)
    peak = 0
    start = 0
    for index, offset in enumerate(ordered):
        # windows [o, o + n) — the one starting at ordered[start] has ended
        # by `offset` iff ordered[start] + n <= offset
        while ordered[start] + n_commands <= offset:
            start += 1
        peak = max(peak, index - start + 1)
    return peak


def classify_aps(
    fleet: FleetSpec, plans: list[list[_Session]], n_commands: int
) -> tuple[ApClassification, ...]:
    """Classify every AP hot or cold from the admission plans.

    The score for an AP with peak admitted concurrency ``m`` is
    ``saturation_score(m, offered_load=m * ap_service_ms / period_ms)`` —
    the Bianchi fixed point's failure probability for an ``m``-station DCF
    cell composed with the cell's air-time load.  Empty APs score 0.0 and
    are always cold (they carry no sessions either way).
    """
    period = float(fleet.template.foreco.command_period_ms)
    service = float(fleet.ap_service_ms)
    per_ap_offsets: dict[int, list[list[int]]] = {}
    for plan in plans:
        for session in plan:
            per_ap_offsets.setdefault(session.ap, [[] for _ in plans])
    for repetition, plan in enumerate(plans):
        for session in plan:
            per_ap_offsets[session.ap][repetition].append(session.offset_slots)

    score_cache: dict[int, float] = {}
    classifications = []
    for ap in range(fleet.aps):
        reps = per_ap_offsets.get(ap)
        peak = 0
        if reps is not None:
            peak = max(_peak_overlap(offsets, n_commands) for offsets in reps)
        if peak == 0:
            score = 0.0
        else:
            score = score_cache.get(peak)
            if score is None:
                score = saturation_score(peak, offered_load=peak * service / period)
                score_cache[peak] = score
        classifications.append(
            ApClassification(
                ap=ap,
                peak_sessions=peak,
                score=score,
                hot=score >= float(fleet.hot_threshold),
            )
        )
    return tuple(classifications)


def cold_draw_seed(fleet: FleetSpec, repetition: int) -> int:
    """Deterministic RNG seed for one repetition's cold-AP delay draws.

    Derived from the fleet's :meth:`~repro.fleet.spec.FleetSpec.
    workload_identity` (like :func:`~repro.fleet.spec.arrival_seed`, with a
    distinct domain tag) — independent of worker scheduling and of the tier
    knobs themselves, so sweeping ``hot_threshold`` keeps the cold draws of
    still-cold APs aligned.
    """
    identity = json.dumps(fleet.workload_identity(), sort_keys=True, separators=(",", ":"))
    return _hash_seed(f"{identity}::cold::{int(repetition)}")


# --------------------------------------------------------------------- engine
class HybridFleetEngine(FleetEngine):
    """Fleet engine with the hybrid exact/analytic city-scale tier.

    Runs ``tier="exact"`` specs exactly like the base
    :class:`~repro.fleet.engine.FleetEngine` and routes ``tier="hybrid"``
    specs through the classifier + exact-hot / analytic-cold pipeline (see
    the module docstring).  Caching, store integration and the constructor
    signature are inherited unchanged — the tier lives in the spec, so one
    engine instance serves mixed-tier sweeps.
    """

    def _compute(self, fleet: FleetSpec, batch: bool | None = None) -> FleetResult:
        if fleet.tier == "exact":
            return self._compute_exact(fleet, batch=batch)
        return self._compute_hybrid(fleet, batch=batch)

    # -------------------------------------------------------------- classify
    def classify(self, fleet: FleetSpec) -> tuple[ApClassification, ...]:
        """Classification the hybrid tier would use for this fleet."""
        commands = self.sessions.test_commands(fleet.template)
        n_commands = int(commands.shape[0])
        plans = [
            _plan_repetition(fleet, repetition, n_commands)[0]
            for repetition in range(fleet.template.repetitions)
        ]
        return classify_aps(fleet, plans, n_commands)

    # ---------------------------------------------------------------- hybrid
    def _compute_hybrid(self, fleet: FleetSpec, batch: bool | None = None) -> FleetResult:
        """Classify, simulate hot APs exactly, service cold APs analytically."""
        template = fleet.template
        commands = self.sessions.test_commands(template)
        n_commands = int(commands.shape[0])
        period = float(template.foreco.command_period_ms)

        plans: list[list[_Session]] = []
        dropped = 0
        for repetition in range(template.repetitions):
            admitted, dropped_here = _plan_repetition(fleet, repetition, n_commands)
            plans.append(admitted)
            dropped += dropped_here

        classifications = classify_aps(fleet, plans, n_commands)
        hot_set = {c.ap for c in classifications if c.hot}
        hot_count = len(hot_set)
        cold_count = fleet.aps - hot_count
        cold_session_count = sum(
            1 for plan in plans for session in plan if session.ap not in hot_set
        )

        if cold_session_count == 0:
            # Every occupied AP is hot: the hybrid tier degenerates to the
            # exact computation, bit for bit (only the tier metadata and the
            # spec hash differ from the exact twin).
            result = self._compute_exact(fleet, batch=batch)
            result.hot_aps = hot_count
            result.cold_aps = cold_count
            return result

        # ---- hot APs: the exact path, restricted to the hot sub-fleet ----
        hot_plans = [[s for s in plan if s.ap in hot_set] for plan in plans]
        hot_sessions: list[_Session] = sorted(
            (session for plan in hot_plans for session in plan),
            key=lambda session: (session.operator, session.repetition),
        )
        for flat, session in enumerate(hot_sessions):
            session.flat = flat
        if hot_sessions:
            operator_specs: dict[int, ScenarioSpec] = {}
            seeds = []
            for session in hot_sessions:
                spec = operator_specs.get(session.operator)
                if spec is None:
                    spec = operator_channel_spec(fleet, session.operator)
                    operator_specs[session.operator] = spec
                seeds.append(repetition_seed(spec, session.repetition))
            base = sample_channel_delays_batch(
                template.channel, n_commands, seeds, command_period_ms=period
            )
            coupled, utilization = self._couple(fleet, hot_plans, base, n_commands, period)
            outcomes = self._simulate(template, commands, coupled, batch=batch)
        else:
            coupled = np.zeros((0, n_commands))
            utilization = tuple(0.0 for _ in range(fleet.aps))
            outcomes = []
        hot_completion = self._completion_times(hot_sessions, coupled, n_commands, period)

        # ---- cold APs: analytic superposition around the solo statistics ----
        solo = self.sessions.run(template)
        repetitions = template.repetitions
        solo_base = sample_channel_delays_batch(
            template.channel,
            n_commands,
            [repetition_seed(template, r) for r in range(repetitions)],
            command_period_ms=period,
        )
        deadline = float(template.foreco.to_config().deadline_ms)
        slot_ms = np.arange(n_commands) * period
        delivered = np.isfinite(solo_base)
        q_per_rep = delivered.mean(axis=1)
        base_last_ms = np.empty(repetitions)
        base_late = np.empty(repetitions)
        for r in range(repetitions):
            mask = delivered[r]
            base_last_ms[r] = (
                float(np.max(slot_ms[mask] + solo_base[r][mask]))
                if mask.any()
                else n_commands * period
            )
            base_late[r] = float(1.0 - (mask & (solo_base[r] <= deadline)).mean())

        cold_values: dict[tuple[int, int], tuple[float, float, float, float, float]] = {}
        cold_util = np.zeros((repetitions, fleet.aps))
        for repetition, plan in enumerate(plans):
            rng = np.random.default_rng(cold_draw_seed(fleet, repetition))
            members_by_ap: dict[int, list[_Session]] = {}
            for session in plan:
                if session.ap not in hot_set:
                    members_by_ap.setdefault(session.ap, []).append(session)
            for ap in sorted(members_by_ap):
                members = members_by_ap[ap]
                peak = _peak_overlap([s.offset_slots for s in members], n_commands)
                q = float(q_per_rep[repetition])
                model = SuperpositionModel(
                    sessions=max(peak, 1),
                    delivery_probability=q,
                    service_ms=float(fleet.ap_service_ms),
                    period_ms=period,
                    tail=fleet.cold_tail,
                    tail_index=float(fleet.cold_tail_index),
                )
                extras = model.sample_extra_delays(rng, len(members))
                boot = rng.integers(0, repetitions, size=len(members))
                total_slots = max(s.offset_slots for s in members) + n_commands
                concurrency = len(members) * n_commands / total_slots
                cold_util[repetition, ap] = min(
                    1.0, concurrency * q * float(fleet.ap_service_ms) / period
                )
                for session, extra, j in zip(members, extras, boot):
                    j = int(j)
                    extra = float(extra)
                    shift = float(
                        (
                            delivered[j]
                            & (solo_base[j] <= deadline)
                            & (solo_base[j] + extra > deadline)
                        ).mean()
                    )
                    late = min(1.0, max(0.0, base_late[j] + shift))
                    completion_s = (
                        session.offset_slots * period + base_last_ms[j] + extra
                    ) / 1000.0
                    cold_values[(session.operator, session.repetition)] = (
                        float(solo.rmse_no_forecast_mm[j]),
                        float(solo.rmse_foreco_mm[j]),
                        late,
                        float(solo.recovery_fraction[j]),
                        completion_s,
                    )

        # ---- merge hot and cold sessions in the canonical flat order ----
        all_sessions: list[_Session] = sorted(
            (session for plan in plans for session in plan),
            key=lambda session: (session.operator, session.repetition),
        )
        rmse_nf, rmse_f, late_f, recovery, completion = [], [], [], [], []
        for session in all_sessions:
            if session.ap in hot_set:
                outcome = outcomes[session.flat]
                rmse_nf.append(outcome.rmse_no_forecast_mm)
                rmse_f.append(outcome.rmse_foreco_mm)
                late_f.append(outcome.late_fraction)
                recovery.append(outcome.recovery_fraction)
                completion.append(hot_completion[session.flat])
            else:
                values = cold_values[(session.operator, session.repetition)]
                rmse_nf.append(values[0])
                rmse_f.append(values[1])
                late_f.append(values[2])
                recovery.append(values[3])
                completion.append(values[4])

        merged_util = list(utilization)
        cold_util_mean = cold_util.mean(axis=0)
        for classification in classifications:
            if not classification.hot:
                merged_util[classification.ap] = float(cold_util_mean[classification.ap])

        last = all_sessions[-1] if all_sessions else None
        last_is_hot = last is not None and last.ap in hot_set
        return FleetResult(
            spec=fleet,
            spec_hash=fleet.spec_hash(),
            n_commands=n_commands,
            admitted=len(all_sessions),
            dropped_sessions=dropped,
            rmse_no_forecast_mm=tuple(rmse_nf),
            rmse_foreco_mm=tuple(rmse_f),
            late_fraction=tuple(late_f),
            recovery_fraction=tuple(recovery),
            completion_time_s=tuple(completion),
            ap_utilization=tuple(float(u) for u in merged_util),
            tier="hybrid",
            hot_aps=hot_count,
            cold_aps=cold_count,
            exact_sessions=len(hot_sessions),
            analytic_sessions=cold_session_count,
            outcome=outcomes[last.flat] if last_is_hot else None,
            delays_ms=coupled[last.flat] if last_is_hot else None,
        )
