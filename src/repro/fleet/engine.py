"""Fleet engine: resolve a :class:`FleetSpec` into coupled session runs.

One fleet realisation couples ``N`` operator sessions through the access
points they share.  The engine reuses the scenario runtime wholesale —
datasets, trained forecasters and the batched session kernel all come from a
:class:`~repro.scenarios.SessionEngine` — and adds the one thing a list of
independent sessions cannot express: **contention**.

The contention model
--------------------

Each operator's own channel realisation is sampled exactly as a
single-session run would sample it, through
:func:`~repro.scenarios.engine.sample_channel_delays_batch` with the same
block-ordered RNG streams.  On top of those *base* delays, operators
assigned to the same AP contend for its air time:

* every delivered command occupies the AP for ``ap_service_ms`` of work;
* per command slot, the AP has one command period of budget; demand beyond
  the budget accumulates as **backlog** — a vectorized Lindley recursion
  ``backlog[k+1] = max(0, backlog[k] + work[k] - period)`` computed with one
  ``cumsum`` / ``minimum.accumulate`` pass per AP;
* a command arriving at slot ``k`` with in-slot service rank ``r`` (ranks
  follow operator index) waits ``backlog[k] + r * ap_service_ms`` on top of
  its base delay.  Commands the operator's own channel lost never reach the
  AP and contribute no work.

**Single-operator bit-equality contract:** with one operator per AP and
``ap_service_ms <= command_period_ms`` the per-slot demand never exceeds the
budget, so the backlog is identically zero, every rank is zero, and the
coupled delays equal the base delays *bit for bit* — a 1-operator fleet
reproduces :meth:`SessionEngine.run` on the template exactly, for every
channel kind.  The tests pin this contract.

Sessions and admission
----------------------

Operators start at the spec's arrival-process times (slot-quantised) and are
statically assigned to AP ``i % aps``.  A session whose AP already serves
``ap_capacity`` concurrent sessions at its arrival is **dropped**: it is
counted, never simulated.  All admitted operator-sessions across all
repetitions then advance through ONE batched session kernel call (the
``(B, n)`` stack of coupled delays), which is what makes fleet execution
several times faster than running the sessions one by one.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenarios.store import ResultStore

from ..core.recovery import ForecoRecovery
from ..core.simulation import (
    BatchedRemoteControlSimulation,
    RemoteControlSimulation,
    SimulationOutcome,
)
from ..errors import ConfigurationError
from ..scenarios.engine import SessionEngine, repetition_seed, sample_channel_delays_batch
from ..scenarios.spec import ScenarioSpec
from .spec import FleetSpec, _hash_seed, sample_arrival_times


def operator_channel_spec(fleet: FleetSpec, operator: int) -> ScenarioSpec:
    """The scenario spec whose channel identity seeds one operator's delays.

    Operator 0 is the template itself — its channel realisations (and
    therefore a single-operator fleet) are bit-identical to a plain
    :meth:`SessionEngine.run` of the template.  Operators ``i > 0`` get a
    hash-decorrelated seed derived from the template seed and the operator
    index, so their channels are independent realisations of the same model.
    """
    operator = int(operator)
    if operator < 0:
        raise ConfigurationError("operator index must be >= 0")
    if operator == 0:
        return fleet.template
    derived = _hash_seed(f"fleet-operator::{int(fleet.template.seed)}::{operator}")
    return fleet.template.with_(seed=derived)


# -------------------------------------------------------------------- results
@dataclass
class FleetResult:
    """Uniform per-fleet result row produced by the engine.

    The per-session metric tuples hold one entry per **admitted**
    operator-session, ordered operator-major (operator 0's repetitions
    first) — so for a single-operator fleet they coincide entry-for-entry
    with the :class:`~repro.scenarios.SessionResult` tuples of the template.
    ``outcome`` and ``delays_ms`` keep the last admitted session's full
    detail for transient analyses and are in-memory only (the store persists
    everything else).
    """

    spec: FleetSpec
    spec_hash: str
    n_commands: int
    admitted: int
    dropped_sessions: int
    rmse_no_forecast_mm: tuple[float, ...]
    rmse_foreco_mm: tuple[float, ...]
    late_fraction: tuple[float, ...]
    recovery_fraction: tuple[float, ...]
    completion_time_s: tuple[float, ...]
    ap_utilization: tuple[float, ...]
    #: Simulation tier that produced this result ("exact" or "hybrid").
    tier: str = "exact"
    #: APs classified hot (all of them for an exact run).
    hot_aps: int = 0
    #: APs classified cold (0 for an exact run).
    cold_aps: int = 0
    #: Admitted sessions that went through the exact Lindley path.
    exact_sessions: int = 0
    #: Admitted sessions serviced by the analytic superposition model.
    analytic_sessions: int = 0
    outcome: SimulationOutcome | None = field(repr=False, default=None)
    delays_ms: np.ndarray | None = field(repr=False, default=None)

    #: Record kind this result stores under in a ResultStore.
    store_kind = "fleet"

    @property
    def repetitions(self) -> int:
        """Number of admitted operator-sessions (entries per metric tuple)."""
        return len(self.rmse_foreco_mm)

    @property
    def operators(self) -> int:
        """Operator population the fleet was specified with."""
        return self.spec.operators

    @property
    def mean_rmse_no_forecast_mm(self) -> float:
        """Baseline trajectory RMSE averaged over admitted sessions."""
        return float(np.mean(self.rmse_no_forecast_mm))

    @property
    def mean_rmse_foreco_mm(self) -> float:
        """FoReCo trajectory RMSE averaged over admitted sessions."""
        return float(np.mean(self.rmse_foreco_mm))

    @property
    def mean_late_fraction(self) -> float:
        """Late/lost command share averaged over admitted sessions."""
        return float(np.mean(self.late_fraction))

    @property
    def mean_recovery_fraction(self) -> float:
        """Share of missing slots FoReCo filled, averaged over sessions."""
        return float(np.mean(self.recovery_fraction))

    @property
    def improvement_factor(self) -> float:
        """Mean baseline RMSE over mean FoReCo RMSE (``inf`` on a ~zero denominator)."""
        denominator = self.mean_rmse_foreco_mm
        if denominator < 1e-12:
            return float("inf")
        return self.mean_rmse_no_forecast_mm / denominator

    @property
    def p50_recovery(self) -> float:
        """Median per-session recovery rate."""
        return float(np.percentile(self.recovery_fraction, 50))

    @property
    def p99_recovery(self) -> float:
        """Recovery rate at least 99% of operator-sessions achieve.

        Service-level semantics: this is the **1st percentile** of the
        per-session recovery distribution — the tail that capacity planning
        cares about ("99% of sessions recover at least this share of their
        missing commands").
        """
        return float(np.percentile(self.recovery_fraction, 1))

    @property
    def p50_completion_s(self) -> float:
        """Median session completion time (fleet start to last delivery, s)."""
        return float(np.percentile(self.completion_time_s, 50))

    @property
    def p99_completion_s(self) -> float:
        """99th-percentile session completion time in seconds (the slow tail)."""
        return float(np.percentile(self.completion_time_s, 99))

    @property
    def mean_ap_utilization(self) -> float:
        """AP air-time utilisation averaged over access points."""
        return float(np.mean(self.ap_utilization))

    def to_dict(self) -> dict:
        """JSON-safe summary row (trajectories and raw delays excluded)."""
        factor = self.improvement_factor
        return {
            "fleet": self.spec.name,
            "spec_hash": self.spec_hash,
            "template": self.spec.template.name,
            "channel": self.spec.template.channel.describe(),
            "operators": self.spec.operators,
            "aps": self.spec.aps,
            "ap_capacity": self.spec.ap_capacity,
            "arrival": self.spec.arrival,
            "repetitions": self.spec.repetitions,
            "n_commands": self.n_commands,
            "admitted": self.admitted,
            "dropped_sessions": self.dropped_sessions,
            "tier": self.tier,
            "hot_aps": self.hot_aps,
            "cold_aps": self.cold_aps,
            "exact_sessions": self.exact_sessions,
            "analytic_sessions": self.analytic_sessions,
            "mean_rmse_no_forecast_mm": self.mean_rmse_no_forecast_mm,
            "mean_rmse_foreco_mm": self.mean_rmse_foreco_mm,
            "improvement_factor": factor if np.isfinite(factor) else None,
            "mean_late_fraction": self.mean_late_fraction,
            "p50_recovery": self.p50_recovery,
            "p99_recovery": self.p99_recovery,
            "p50_completion_s": self.p50_completion_s,
            "p99_completion_s": self.p99_completion_s,
            "ap_utilization": [float(u) for u in self.ap_utilization],
        }

    def to_text(self) -> str:
        """Compact multi-line service report for one fleet."""
        if len(self.ap_utilization) > 8:
            busiest = sorted(
                range(len(self.ap_utilization)),
                key=lambda i: self.ap_utilization[i],
                reverse=True,
            )[:8]
            ap_cells = "  ".join(f"ap{i} {self.ap_utilization[i]:.2f}" for i in sorted(busiest))
            ap_cells += f"  ... ({len(self.ap_utilization)} APs, busiest 8 shown)"
        else:
            ap_cells = "  ".join(f"ap{i} {u:.2f}" for i, u in enumerate(self.ap_utilization))
        lines = [
                self.spec.describe(),
                (
                    f"  sessions: {self.admitted} admitted, "
                    f"{self.dropped_sessions} dropped | "
                    f"{self.n_commands} commands/session"
                ),
        ]
        if self.tier != "exact":
            lines.append(
                f"  tier: {self.tier} | {self.hot_aps} hot / {self.cold_aps} cold APs | "
                f"{self.exact_sessions} exact + {self.analytic_sessions} analytic sessions"
            )
        lines.extend(
            [
                (
                    f"  RMSE: baseline {self.mean_rmse_no_forecast_mm:.2f} mm -> "
                    f"FoReCo {self.mean_rmse_foreco_mm:.2f} mm "
                    f"(x{self.improvement_factor:.1f}, late {self.mean_late_fraction:.2f})"
                ),
                (
                    f"  recovery: p50 {self.p50_recovery:.2f}, p99 {self.p99_recovery:.2f} | "
                    f"completion: p50 {self.p50_completion_s:.1f} s, "
                    f"p99 {self.p99_completion_s:.1f} s"
                ),
                f"  AP utilization: {ap_cells}",
            ]
        )
        return "\n".join(lines)


# ------------------------------------------------------------------ schedule
@dataclass
class _Session:
    """One admitted operator-session inside a fleet realisation."""

    operator: int
    repetition: int
    offset_slots: int
    ap: int
    flat: int = -1  # row index in the stacked delay batch (set after admission)


def _plan_repetition(fleet: FleetSpec, repetition: int, n_commands: int) -> tuple[list[_Session], int]:
    """Admission plan for one fleet realisation: (admitted sessions, dropped).

    Operators arrive at the arrival-process times (quantised to command
    slots) and are processed in arrival order (ties broken by operator
    index).  An arrival whose AP already serves ``ap_capacity`` overlapping
    sessions is dropped.  Operator 0 always arrives first among ties, so at
    least one session per repetition is admitted.
    """
    period_s = fleet.template.foreco.command_period_ms / 1000.0
    arrivals = sample_arrival_times(fleet, repetition)
    offsets = np.floor(arrivals / period_s).astype(int)
    order = np.argsort(offsets, kind="stable")
    admitted: list[_Session] = []
    # Per-AP admitted arrival offsets, in admission (nondecreasing) order —
    # the sessions still active at a new arrival are a suffix, found by
    # bisection.  O(N log N) overall, which is what keeps admission planning
    # negligible at city scale (thousands of operators).
    per_ap_offsets: dict[int, list[int]] = {}
    dropped = 0
    for operator in order:
        operator = int(operator)
        offset = int(offsets[operator])
        ap = operator % fleet.aps
        active_offsets = per_ap_offsets.setdefault(ap, [])
        # active iff offset_slots + n_commands > offset
        active = len(active_offsets) - bisect_right(active_offsets, offset - n_commands)
        if active >= fleet.ap_capacity:
            dropped += 1
            continue
        active_offsets.append(offset)
        admitted.append(
            _Session(operator=operator, repetition=repetition, offset_slots=offset, ap=ap)
        )
    admitted.sort(key=lambda session: session.operator)
    return admitted, dropped


def _lindley_backlog(work_ms: np.ndarray, period_ms: float) -> np.ndarray:
    """Backlog (ms of unfinished AP work) at the *start* of each slot.

    Vectorized Lindley recursion ``backlog[k+1] = max(0, backlog[k] +
    work[k] - period)`` via the reflection identity ``W_k = S_k - min(0,
    min_{j<=k} S_j)`` over the running sum ``S`` of ``work - period``.
    """
    increments = work_ms - period_ms
    running = np.cumsum(increments)
    backlog_after = running - np.minimum.accumulate(np.minimum(running, 0.0))
    backlog_start = np.empty_like(backlog_after)
    backlog_start[0] = 0.0
    backlog_start[1:] = backlog_after[:-1]
    return backlog_start


# --------------------------------------------------------------------- engine
class FleetEngine:
    """Resolves fleet specs into coupled multi-session runs, with caching.

    Parameters
    ----------
    sessions:
        The :class:`~repro.scenarios.SessionEngine` supplying datasets,
        trained forecasters and the template command stream (a private one
        is created when omitted).  The fleet engine never calls
        ``sessions.run`` — session results of fleet members are not
        individually cached or stored; the fleet result is the unit.
    cache_results:
        Keep finished :class:`FleetResult` objects keyed by spec hash.
    batch:
        Advance all admitted operator-sessions through the batched session
        kernel as one stacked computation (the default, several times faster
        at bit-identical results).  ``batch=False`` forces the serial
        per-session loop — the equality oracle the benchmark gate measures
        against.
    store:
        Optional persistent :class:`~repro.scenarios.ResultStore`.  Fleet
        results share the store (and its engine-epoch scheme) with session
        results: lookups go memory -> disk -> compute, computed fleets are
        written back immediately.
    """

    def __init__(
        self,
        sessions: SessionEngine | None = None,
        cache_results: bool = True,
        batch: bool = True,
        store: "ResultStore | None" = None,
    ) -> None:
        self.sessions = sessions if sessions is not None else SessionEngine()
        self.cache_results = bool(cache_results)
        self.batch = bool(batch)
        self.store = store
        self._results: dict[str, FleetResult] = {}
        self._results_lock = threading.Lock()

    # ------------------------------------------------------------------- run
    def run(self, fleet: FleetSpec, batch: bool | None = None) -> FleetResult:
        """Run one fleet (all repetitions, all admitted operators).

        ``batch`` overrides the engine's :attr:`batch` setting per call;
        both paths produce bit-identical results.
        """
        key = fleet.spec_hash()
        if self.cache_results:
            with self._results_lock:
                cached = self._results.get(key)
            if cached is not None:
                return cached
        if self.store is not None:
            stored = self.store.get(fleet)
            if stored is not None:
                if self.cache_results:
                    with self._results_lock:
                        stored = self._results.setdefault(key, stored)
                return stored

        result = self._compute(fleet, batch=batch)
        if self.cache_results:
            with self._results_lock:
                result = self._results.setdefault(key, result)
        if self.store is not None:
            self.store.put(fleet, result)
        return result

    # --------------------------------------------------------------- compute
    def _compute(self, fleet: FleetSpec, batch: bool | None = None) -> FleetResult:
        """Plan, sample, couple and simulate one fleet from scratch.

        The base engine handles the ``"exact"`` tier only; hybrid-tier
        specs need the :class:`~repro.fleet.hybrid.HybridFleetEngine`
        (which subclasses this engine and reuses the exact path for hot
        APs).  The guard keeps tier selection explicit — an exact engine
        silently approximating would break the content-address contract.
        """
        if fleet.tier != "exact":
            raise ConfigurationError(
                f"FleetEngine runs tier='exact' fleets only, got tier={fleet.tier!r}; "
                "use repro.fleet.HybridFleetEngine (it handles both tiers)"
            )
        return self._compute_exact(fleet, batch=batch)

    def _compute_exact(self, fleet: FleetSpec, batch: bool | None = None) -> FleetResult:
        """The exact path: every admitted session through the Lindley backlog."""
        template = fleet.template
        commands = self.sessions.test_commands(template)
        n_commands = int(commands.shape[0])
        period = float(template.foreco.command_period_ms)

        # 1. Admission plan per repetition (arrival process + AP capacity).
        plans: list[list[_Session]] = []
        dropped = 0
        for repetition in range(template.repetitions):
            admitted, dropped_here = _plan_repetition(fleet, repetition, n_commands)
            plans.append(admitted)
            dropped += dropped_here

        # Flat batch order is operator-major: operator 0's repetitions first,
        # so a single-operator fleet's tuples align with SessionResult's.
        sessions_flat: list[_Session] = sorted(
            (session for admitted in plans for session in admitted),
            key=lambda session: (session.operator, session.repetition),
        )
        for flat, session in enumerate(sessions_flat):
            session.flat = flat

        # 2. Base channel realisations: the template channel sampled with the
        # same block-ordered per-repetition RNG streams a single-session run
        # would use (operator 0 consumes the template's own seeds).
        operator_specs: dict[int, ScenarioSpec] = {}
        seeds = []
        for session in sessions_flat:
            spec = operator_specs.get(session.operator)
            if spec is None:
                spec = operator_channel_spec(fleet, session.operator)
                operator_specs[session.operator] = spec
            seeds.append(repetition_seed(spec, session.repetition))
        base = sample_channel_delays_batch(
            template.channel, n_commands, seeds, command_period_ms=period
        )

        # 3. Couple the sessions through their shared per-AP backlog.
        coupled, utilization = self._couple(fleet, plans, base, n_commands, period)

        # 4. One batched kernel pass over every admitted operator-session.
        outcomes = self._simulate(template, commands, coupled, batch=batch)

        completion = self._completion_times(sessions_flat, coupled, n_commands, period)
        return FleetResult(
            spec=fleet,
            spec_hash=fleet.spec_hash(),
            n_commands=n_commands,
            admitted=len(sessions_flat),
            dropped_sessions=dropped,
            rmse_no_forecast_mm=tuple(o.rmse_no_forecast_mm for o in outcomes),
            rmse_foreco_mm=tuple(o.rmse_foreco_mm for o in outcomes),
            late_fraction=tuple(o.late_fraction for o in outcomes),
            recovery_fraction=tuple(o.recovery_fraction for o in outcomes),
            completion_time_s=completion,
            ap_utilization=utilization,
            tier=fleet.tier,
            hot_aps=fleet.aps,
            cold_aps=0,
            exact_sessions=len(sessions_flat),
            analytic_sessions=0,
            outcome=outcomes[-1],
            delays_ms=coupled[-1],
        )

    def _couple(
        self,
        fleet: FleetSpec,
        plans: list[list[_Session]],
        base: np.ndarray,
        n_commands: int,
        period: float,
    ) -> tuple[np.ndarray, tuple[float, ...]]:
        """Add shared-AP queueing delay to the base realisations.

        Returns the coupled ``(B, n)`` delay stack plus per-AP utilisation
        (mean over repetitions of the per-slot air-time demand, capped at
        1).  Lost commands stay lost; delivered commands gain
        ``backlog[slot] + rank_in_slot * ap_service_ms`` milliseconds.
        """
        service = float(fleet.ap_service_ms)
        coupled = base.copy()
        utilization = np.zeros((len(plans), fleet.aps))
        for repetition, admitted in enumerate(plans):
            for ap in range(fleet.aps):
                members = [session for session in admitted if session.ap == ap]
                if not members:
                    continue
                total_slots = max(session.offset_slots for session in members) + n_commands
                active = np.zeros((len(members), total_slots), dtype=bool)
                for row, session in enumerate(members):
                    offset = session.offset_slots
                    active[row, offset : offset + n_commands] = np.isfinite(base[session.flat])
                work = service * active.sum(axis=0)
                backlog = _lindley_backlog(work, period)
                ranks = np.cumsum(active, axis=0) - active
                for row, session in enumerate(members):
                    window = slice(session.offset_slots, session.offset_slots + n_commands)
                    extra = backlog[window] + ranks[row, window] * service
                    coupled[session.flat] = np.where(
                        active[row, window], base[session.flat] + extra, np.inf
                    )
                utilization[repetition, ap] = float(np.minimum(work / period, 1.0).mean())
        return coupled, tuple(float(u) for u in utilization.mean(axis=0))

    def _simulate(
        self,
        template: ScenarioSpec,
        commands: np.ndarray,
        delays: np.ndarray,
        batch: bool | None = None,
    ) -> list[SimulationOutcome]:
        """Execute the coupled delay stack through the session kernel.

        Mirrors :class:`SessionEngine`'s routing: the batched kernel when
        the forecaster supports stacked prediction and there is more than
        one row, the serial reference loop otherwise — bit-identical either
        way.
        """
        master = self.sessions.trained_forecaster(template)
        use_batch = self.batch if batch is None else bool(batch)
        if use_batch and delays.shape[0] > 1 and getattr(master, "supports_batch_predict", False):
            recovery = ForecoRecovery(
                config=template.foreco.to_config(),
                forecaster=self.sessions.session_forecaster(template),
            )
            simulation = BatchedRemoteControlSimulation(
                recovery, use_pid=template.use_pid, fallback=template.fallback
            )
            return simulation.run(commands, delays)
        outcomes: list[SimulationOutcome] = []
        for row in range(delays.shape[0]):
            recovery = ForecoRecovery(
                config=template.foreco.to_config(),
                forecaster=self.sessions.session_forecaster(template),
            )
            simulation = RemoteControlSimulation(
                recovery, use_pid=template.use_pid, fallback=template.fallback
            )
            outcomes.append(simulation.run(commands, delays[row]))
        return outcomes

    @staticmethod
    def _completion_times(
        sessions_flat: list[_Session],
        coupled: np.ndarray,
        n_commands: int,
        period: float,
    ) -> tuple[float, ...]:
        """Per-session completion times in seconds, fleet start to last delivery.

        A session's completion is the delivery time of its last delivered
        command on the global clock (arrival offset included); a session
        whose commands were all lost completes when its slot window ends.
        """
        slot_ms = np.arange(n_commands) * period
        times = []
        for session in sessions_flat:
            delays = coupled[session.flat]
            start_ms = session.offset_slots * period
            delivered = np.isfinite(delays)
            if delivered.any():
                last_ms = float(np.max(slot_ms[delivered] + delays[delivered]))
            else:
                last_ms = n_commands * period
            times.append((start_ms + last_ms) / 1000.0)
        return tuple(times)

    # --------------------------------------------------------------- caching
    def cached_result(self, fleet: FleetSpec) -> FleetResult | None:
        """The cached result for this fleet, if any."""
        with self._results_lock:
            return self._results.get(fleet.spec_hash())

    def clear(self) -> None:
        """Drop the fleet-result cache (the session engine keeps its own)."""
        with self._results_lock:
            self._results.clear()
