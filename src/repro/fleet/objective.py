"""SLO gates and the admitted-utility objective of capacity planning.

Capacity planning (:mod:`repro.fleet.plan`) searches per-AP admission
capacities directly against a service-level objective.  This module holds
the *objective side* of that search, kept deliberately free of any engine
or executor dependency so the planner's decision logic is testable against
synthetic response surfaces:

* **Quality gates** — a probed capacity is *quality-feasible* when its p99
  recovery meets ``slo_p99`` and its mean late/lost fraction stays within
  ``slo_late``.  Violations are measured as nonnegative slacks (shortfall
  and excess), the vector the planner's dual variables ascend on.
* **Admitted utility** — among quality-feasible capacities the plan
  maximises the number of admitted operator sessions (nondecreasing in
  capacity, saturating at the operator population), tie-broken toward the
  *smallest* capacity: "minimise total capacity subject to the SLO" in its
  utility-maximising form, which keeps the planned capacity monotone under
  SLO tightening.
* **Drop gate** — ``slo_drop`` bounds the drop rate the *chosen* capacity
  may leave behind; it decides the plan's final feasibility verdict rather
  than which capacities are searchable (dropping fewer sessions always
  requires *more* capacity, so folding it into the per-probe gates would
  break the monotonicity contract above).

:class:`PlanProbe` is the probe-ledger row every evaluated capacity
produces; :func:`assess_probe` builds one from any fleet-result-like object
(anything exposing ``admitted``, ``dropped_sessions``, ``p99_recovery``,
``mean_late_fraction`` and ``spec_hash`` — a real
:class:`~repro.fleet.engine.FleetResult` or a synthetic stand-in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigurationError


def admitted_estimate(capacity: int, operators: int, aps: int) -> int:
    """Upper bound on admitted sessions at a capacity (admission arithmetic).

    Each of ``aps`` access points admits at most ``capacity`` concurrent
    sessions, and no more than the ``operators`` population can ever be
    admitted.  The planner uses this as the optimistic utility estimate for
    capacities it has not probed yet.
    """
    return min(int(operators), int(capacity) * int(aps))


def quality_violations(
    p99_recovery: float, late_fraction: float, slo_p99: float, slo_late: float
) -> tuple[float, float]:
    """Nonnegative slack of each quality gate at one probed capacity.

    Returns ``(p99 shortfall, late excess)`` — zero when the gate holds.
    This is the violation vector the dual-gradient method ascends its
    Lagrange multipliers along.
    """
    return (
        max(0.0, float(slo_p99) - float(p99_recovery)),
        max(0.0, float(late_fraction) - float(slo_late)),
    )


@dataclass(frozen=True)
class PlanProbe:
    """One evaluated capacity in a plan's probe ledger.

    Attributes
    ----------
    capacity:
        The per-AP admission capacity this probe evaluated.
    spec_hash:
        Content address of the probed :class:`~repro.fleet.FleetSpec` (the
        store shard any rerun reuses).
    admitted / dropped_sessions:
        Admission outcome at this capacity.
    drop_rate:
        ``dropped / (admitted + dropped)`` (0.0 for an empty population).
    p99_recovery / mean_late_fraction / mean_ap_utilization:
        Service-level metrics at this capacity.
    p99_violation / late_violation:
        Quality-gate slacks from :func:`quality_violations`.
    source:
        Which planner phase probed it (``"bracket"``, ``"dual"``,
        ``"golden"`` or ``"refine"``).
    order:
        0-based probe order (the ledger is also the evaluation sequence).
    """

    capacity: int
    spec_hash: str
    admitted: int
    dropped_sessions: int
    drop_rate: float
    p99_recovery: float
    mean_late_fraction: float
    mean_ap_utilization: float
    p99_violation: float
    late_violation: float
    source: str
    order: int

    @property
    def feasible(self) -> bool:
        """Whether both quality gates hold at this capacity."""
        return self.p99_violation == 0.0 and self.late_violation == 0.0

    @property
    def violation(self) -> float:
        """Total quality-gate slack (0.0 exactly when feasible)."""
        return self.p99_violation + self.late_violation

    def to_dict(self) -> dict:
        """JSON-safe ledger row (field-for-field, plus the derived verdict)."""
        return {
            "capacity": int(self.capacity),
            "spec_hash": str(self.spec_hash),
            "admitted": int(self.admitted),
            "dropped_sessions": int(self.dropped_sessions),
            "drop_rate": float(self.drop_rate),
            "p99_recovery": float(self.p99_recovery),
            "mean_late_fraction": float(self.mean_late_fraction),
            "mean_ap_utilization": float(self.mean_ap_utilization),
            "p99_violation": float(self.p99_violation),
            "late_violation": float(self.late_violation),
            "source": str(self.source),
            "order": int(self.order),
            "feasible": self.feasible,
        }

    @classmethod
    def from_dict(cls, row: dict) -> "PlanProbe":
        """Rebuild a ledger row from its :meth:`to_dict` rendering."""
        return cls(
            capacity=int(row["capacity"]),
            spec_hash=str(row["spec_hash"]),
            admitted=int(row["admitted"]),
            dropped_sessions=int(row["dropped_sessions"]),
            drop_rate=float(row["drop_rate"]),
            p99_recovery=float(row["p99_recovery"]),
            mean_late_fraction=float(row["mean_late_fraction"]),
            mean_ap_utilization=float(row["mean_ap_utilization"]),
            p99_violation=float(row["p99_violation"]),
            late_violation=float(row["late_violation"]),
            source=str(row["source"]),
            order=int(row["order"]),
        )


def assess_probe(
    capacity: int,
    result,
    slo_p99: float,
    slo_late: float,
    source: str,
    order: int,
) -> PlanProbe:
    """Score one fleet evaluation against the quality gates.

    ``result`` is any fleet-result-like object: it must expose
    ``admitted``, ``dropped_sessions``, ``p99_recovery``,
    ``mean_late_fraction`` and ``spec_hash`` (``mean_ap_utilization`` is
    optional and defaults to 0.0), which makes the planner's decision logic
    exercisable against synthetic monotone response surfaces in tests.
    """
    admitted = int(result.admitted)
    dropped = int(result.dropped_sessions)
    sessions = admitted + dropped
    p99 = float(result.p99_recovery)
    late = float(result.mean_late_fraction)
    if not math.isfinite(p99) or not math.isfinite(late):
        raise ConfigurationError(
            f"probe at capacity {capacity} produced non-finite quality metrics"
        )
    p99_violation, late_violation = quality_violations(p99, late, slo_p99, slo_late)
    return PlanProbe(
        capacity=int(capacity),
        spec_hash=str(result.spec_hash),
        admitted=admitted,
        dropped_sessions=dropped,
        drop_rate=dropped / sessions if sessions else 0.0,
        p99_recovery=p99,
        mean_late_fraction=late,
        mean_ap_utilization=float(getattr(result, "mean_ap_utilization", 0.0)),
        p99_violation=p99_violation,
        late_violation=late_violation,
        source=str(source),
        order=int(order),
    )


def penalized_score(probe: PlanProbe, operators: int, max_capacity: int) -> float:
    """Single-number objective for the golden-section refinement.

    ``admitted - P * [infeasible] - violation`` with the constant penalty
    ``P = operators + max_capacity + 1`` chosen to dominate any achievable
    utility: every quality-infeasible capacity scores strictly below every
    feasible one, regardless of how small its violation slack is, and the
    residual ``-violation`` term orders the infeasible region so the
    refinement still walks toward the least-violating capacity when the SLO
    is unattainable everywhere.
    """
    penalty = float(int(operators) + int(max_capacity) + 1)
    score = float(probe.admitted)
    if not probe.feasible:
        score -= penalty + probe.violation
    return score


def select_probe(probes: Iterable[PlanProbe]) -> PlanProbe:
    """The chosen capacity of a finished search, from its probe ledger.

    Among quality-feasible probes: maximum admitted utility, tie-broken to
    the smallest capacity (minimum capacity among the utility maximisers).
    When no probe is quality-feasible: the least-violating probe, smallest
    capacity first — reported as the best available operating point even
    though the plan's verdict will be infeasible.
    """
    ledger = list(probes)
    if not ledger:
        raise ConfigurationError("cannot select a capacity from an empty probe ledger")
    feasible = [probe for probe in ledger if probe.feasible]
    if feasible:
        return min(feasible, key=lambda probe: (-probe.admitted, probe.capacity))
    return min(ledger, key=lambda probe: (probe.violation, probe.capacity))
