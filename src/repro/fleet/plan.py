"""SLO-driven capacity planning: search admission capacities, not grids.

Capacity planning used to mean sweeping ``--fleet N`` and eyeballing the
knee in ``examples/fleet_capacity.py``.  :class:`CapacityPlanner` replaces
the grid with a direct search: given a :class:`PlanSpec` — a target fleet,
SLO gates, capacity bounds and a probe budget — it searches the per-AP
admission capacity against the SLO and emits a versioned
:class:`CapacityPlan` (chosen capacity, predicted metrics, the full probe
ledger and a convergence trace).

The optimisation problem
------------------------

Minimise total capacity subject to the SLO, in its utility-maximising form:
among capacities whose **quality gates** hold (p99 recovery ``>= slo_p99``,
mean late fraction ``<= slo_late``), choose the one admitting the most
operator sessions, tie-broken to the smallest capacity.  The **drop gate**
(``drop_rate <= slo_drop``) then decides the plan's feasibility verdict at
the chosen capacity.  See :mod:`repro.fleet.objective` for why the gates
are split this way (it is what keeps the planned capacity monotone under
SLO tightening).

Methods
-------

``"dual-gradient"``
    Dual-gradient ascent on the Lagrangian ``L(c, lam) = admitted(c) -
    lam . v(c)`` of the gated problem (the resource-allocation idiom from
    PAPERS.md): the Lagrange multipliers ``lam`` ascend along the violation
    slacks ``v`` of each probed capacity, and the primal iterate moves to
    the neighbouring capacity maximising the estimated Lagrangian —
    optimistic utility estimates (:func:`~repro.fleet.objective.
    admitted_estimate`) for unprobed capacities, nearest-probed violation
    estimates otherwise.  From a violating iterate the primal step always
    *descends* (with load-monotone quality gates everything above an
    infeasible capacity is at least as infeasible), and when a probed
    infeasible neighbour still dominates the Lagrangian the multipliers
    take one Polyak-sized jump along its violation vector instead of
    oscillating — so the iterate settles on the feasibility knee within a
    bounded number of iterations.
``"golden-section"``
    Deterministic golden-section refinement of the penalized objective
    (:func:`~repro.fleet.objective.penalized_score`) over the integer
    capacity interval, finished by an exhaustive sweep of the surviving
    bracket — the derivative-free fallback when the dual method's
    monotonicity assumptions are in doubt.

Both methods are **warm-started** by :func:`analytic_bracket`: the largest
capacity the analytic superposition model
(:mod:`repro.wireless.superposition`) calls stable at delivery probability
1 — pure air-time arithmetic (``floor`` of command period over AP service
time) that usually lands on the knee before the first probe runs.

Determinism and memoization
---------------------------

Every probe is a real :class:`~repro.fleet.FleetSpec` evaluation routed
through a :class:`~repro.scenarios.SweepExecutor`, so probes parallelise
over threads or processes and memoize through the content-addressed
:class:`~repro.scenarios.ResultStore`.  The planner consumes **no
randomness at all** — probe sequences are pure functions of the spec — so
a plan is bit-identical across ``--jobs 1`` vs ``--jobs N`` and thread vs
process backends.  Finished plans persist under the ``"plan"`` record kind
of the same epoch scheme as every other result: a rerun against the same
store loads the plan shard directly and recomputes nothing.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import Callable

from ..errors import ConfigurationError, StoreError
from ..scenarios.store import ResultStore, register_store_codec
from ..scenarios.sweep import SweepExecutor
from ..wireless.superposition import SuperpositionModel
from .objective import PlanProbe, admitted_estimate, assess_probe, penalized_score, select_probe
from .registry import get_fleet
from .spec import FleetSpec, _coerce_float, _coerce_int

#: Version of the :class:`CapacityPlan` report/record schema.
PLAN_VERSION = 1

#: Search methods understood by the planner.
METHOD_KINDS: tuple[str, ...] = ("dual-gradient", "golden-section")

#: One-line summary per search method (rendered into the docs reference).
METHOD_KIND_SUMMARIES: dict[str, str] = {
    "dual-gradient": "dual ascent on the Lagrangian of (max admitted s.t. quality gates)",
    "golden-section": "derivative-free golden-section refinement of the penalized objective",
}

#: Inverse golden ratio (interior-point placement of the golden method).
_INV_PHI = (math.sqrt(5.0) - 1.0) / 2.0


@dataclass(frozen=True)
class PlanSpec:
    """One fully-specified capacity-planning problem.

    Attributes
    ----------
    name:
        Human-readable label (preset name); not part of the problem
        identity and excluded from :meth:`spec_hash`.
    fleet:
        The target :class:`~repro.fleet.FleetSpec` whose per-AP admission
        capacity is being planned.  Its own ``ap_capacity`` is the search
        variable, not an input: :meth:`canonical` pins it to 1, so two
        plans differing only in the fleet's initial capacity share a spec
        hash (and a store shard).
    slo_p99:
        Quality gate: 99 % of admitted operator-sessions must recover at
        least this fraction of their missing command slots
        (:attr:`~repro.fleet.engine.FleetResult.p99_recovery`).
    slo_late:
        Quality gate: the mean late/lost command fraction over admitted
        sessions must not exceed this value.
    slo_drop:
        Verdict gate: the drop rate left at the *chosen* capacity must not
        exceed this value for the plan to be declared feasible.
    min_capacity / max_capacity:
        Inclusive integer bounds of the capacity search.
    budget:
        Maximum number of distinct capacities evaluated (memoized repeats
        and store hits are free).  Budgets at least the size of the bound
        range make the search exhaustive-equivalent.
    method:
        Search method (see :data:`METHOD_KINDS`).
    dual_step:
        Dual-ascent step size of the ``"dual-gradient"`` method (the
        multipliers move ``dual_step * violation`` per iteration).
    max_iterations:
        Iteration cap of either method (a safety bound; the methods
        normally converge long before it).
    """

    name: str = "plan"
    fleet: FleetSpec = field(default_factory=FleetSpec)
    slo_p99: float = 0.8
    slo_late: float = 0.2
    slo_drop: float = 0.3
    min_capacity: int = 1
    max_capacity: int = 8
    budget: int = 12
    method: str = "dual-gradient"
    dual_step: float = 2.0
    max_iterations: int = 64

    def __post_init__(self) -> None:
        """Validate every knob, raising :class:`ConfigurationError` on misuse."""
        if not isinstance(self.fleet, FleetSpec):
            raise ConfigurationError("PlanSpec.fleet must be a FleetSpec")
        for int_field in ("min_capacity", "max_capacity", "budget", "max_iterations"):
            object.__setattr__(self, int_field, _coerce_int(int_field, getattr(self, int_field)))
        for float_field in ("slo_p99", "slo_late", "slo_drop", "dual_step"):
            object.__setattr__(self, float_field, _coerce_float(float_field, getattr(self, float_field)))
        for gate in ("slo_p99", "slo_late", "slo_drop"):
            if not 0.0 <= getattr(self, gate) <= 1.0:
                raise ConfigurationError(f"{gate} must be in [0, 1]")
        if self.min_capacity < 1:
            raise ConfigurationError("min_capacity must be >= 1 (zero-capacity APs admit nobody)")
        if self.max_capacity < self.min_capacity:
            raise ConfigurationError("max_capacity must be >= min_capacity")
        if self.budget < 1:
            raise ConfigurationError("plan budget must be >= 1")
        if self.method not in METHOD_KINDS:
            raise ConfigurationError(
                f"unknown plan method {self.method!r}; available: {sorted(METHOD_KINDS)}"
            )
        if self.dual_step <= 0.0:
            raise ConfigurationError("dual_step must be > 0")
        if self.max_iterations < 1:
            raise ConfigurationError("max_iterations must be >= 1")

    # --------------------------------------------------------------- identity
    #: Record kind this spec stores/loads under in a ResultStore.
    store_kind = "plan"

    def canonical(self) -> dict:
        """JSON-safe canonical representation (the hashing domain).

        The target fleet enters with its ``ap_capacity`` pinned to 1: the
        capacity is the search variable, so plans over the same fleet that
        differ only in the fleet's initial capacity are the *same problem*
        and must share a store address.
        """
        return {
            "kind": "plan",
            "fleet": self.fleet.with_(ap_capacity=1).canonical(),
            "slo": {
                "p99_recovery": float(self.slo_p99),
                "late_fraction": float(self.slo_late),
                "drop_rate": float(self.slo_drop),
            },
            "bounds": {
                "min_capacity": int(self.min_capacity),
                "max_capacity": int(self.max_capacity),
            },
            "budget": int(self.budget),
            "method": {
                "kind": self.method,
                "dual_step": float(self.dual_step),
                "max_iterations": int(self.max_iterations),
            },
        }

    def spec_hash(self) -> str:
        """Stable short hash of the planning problem (``name`` excluded)."""
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # --------------------------------------------------------------- builders
    def with_(self, **changes) -> "PlanSpec":
        """A copy with top-level plan fields replaced."""
        return replace(self, **changes)

    def with_fleet(self, **changes) -> "PlanSpec":
        """A copy whose target fleet has top-level fields replaced."""
        return replace(self, fleet=self.fleet.with_(**changes))

    def probe_spec(self, capacity: int) -> FleetSpec:
        """The fleet spec one capacity probe evaluates.

        The probe is the target fleet with ``ap_capacity`` set to the
        candidate (name-tagged for readable ledgers; names never enter the
        hash, so probe shards are shared with any other sweep that
        evaluates the same physical fleet).
        """
        capacity = _coerce_int("capacity", capacity)
        if not self.min_capacity <= capacity <= self.max_capacity:
            raise ConfigurationError(
                f"probe capacity {capacity} outside bounds "
                f"[{self.min_capacity}, {self.max_capacity}]"
            )
        return self.fleet.with_(ap_capacity=capacity, name=f"{self.fleet.name}-cap{capacity}")

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        return (
            f"{self.name}: {self.method} over capacities "
            f"[{self.min_capacity}, {self.max_capacity}] of fleet {self.fleet.name} "
            f"(SLO: p99 recovery >= {self.slo_p99:g}, late <= {self.slo_late:g}, "
            f"drop <= {self.slo_drop:g}; budget {self.budget})"
        )


# ------------------------------------------------------------------- results
@dataclass
class CapacityPlan:
    """The versioned outcome of one capacity-planning run.

    Attributes
    ----------
    spec / spec_hash:
        The planning problem and its content address.
    feasible:
        The verdict: a quality-feasible capacity exists within bounds *and*
        the drop rate it leaves satisfies ``slo_drop``.
    capacity:
        The chosen per-AP admission capacity (the least-violating probe
        when the verdict is infeasible).
    admitted / dropped_sessions / drop_rate:
        Admission outcome at the chosen capacity.
    predicted:
        Service-level metrics predicted at the chosen capacity (p99
        recovery, mean late fraction, mean AP utilisation, drop rate).
    bracket:
        The analytic warm-start capacity (:func:`analytic_bracket`).
    method:
        Search method that produced the plan.
    probes:
        The full probe ledger in evaluation order.
    trace:
        Per-iteration convergence trace (method-specific rows: multiplier
        values for the dual method, interval bounds for golden-section).
    evaluated:
        Number of distinct capacities probed (``<= spec.budget``).
    store_hits / store_misses:
        Store partition of the probes *when this plan was computed* (the
        numbers persist with the record, so a warm-loaded plan renders
        bit-identically to the run that computed it).
    from_store:
        Whether this object was loaded from a plan shard instead of being
        computed (in-memory only, never persisted).
    """

    spec: PlanSpec
    spec_hash: str
    feasible: bool
    capacity: int
    admitted: int
    dropped_sessions: int
    drop_rate: float
    predicted: dict
    bracket: int
    method: str
    probes: tuple[PlanProbe, ...]
    trace: tuple[dict, ...]
    evaluated: int
    store_hits: int = 0
    store_misses: int = 0
    from_store: bool = field(default=False, compare=False)

    #: Record kind this result stores under in a ResultStore.
    store_kind = "plan"

    def to_dict(self) -> dict:
        """JSON-safe rendering of the plan (verdict, ledger, trace, store)."""
        return {
            "plan": self.spec.name,
            "plan_version": PLAN_VERSION,
            "spec_hash": self.spec_hash,
            "method": self.method,
            "feasible": bool(self.feasible),
            "capacity": int(self.capacity),
            "admitted": int(self.admitted),
            "dropped_sessions": int(self.dropped_sessions),
            "drop_rate": float(self.drop_rate),
            "bracket": int(self.bracket),
            "evaluated": int(self.evaluated),
            "store_hits": int(self.store_hits),
            "store_misses": int(self.store_misses),
            "slo": {
                "p99_recovery": float(self.spec.slo_p99),
                "late_fraction": float(self.spec.slo_late),
                "drop_rate": float(self.spec.slo_drop),
            },
            "bounds": {
                "min_capacity": int(self.spec.min_capacity),
                "max_capacity": int(self.spec.max_capacity),
            },
            "predicted": {key: float(value) for key, value in self.predicted.items()},
            "probes": [probe.to_dict() for probe in self.probes],
            "trace": [dict(row) for row in self.trace],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text rendering of :meth:`to_dict` (sorted keys: byte-stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self) -> str:
        """Fixed-width text report: verdict, SLO, ledger table, store line."""
        verdict = "FEASIBLE" if self.feasible else "INFEASIBLE"
        lines = [
            f"capacity plan {self.spec.name!r} ({self.method}): {verdict} "
            f"at capacity {self.capacity}",
            f"  SLO: p99 recovery >= {self.spec.slo_p99:g}, "
            f"late fraction <= {self.spec.slo_late:g}, drop rate <= {self.spec.slo_drop:g}",
            f"  bounds [{self.spec.min_capacity}, {self.spec.max_capacity}], "
            f"budget {self.spec.budget}, analytic bracket {self.bracket}",
            f"  chosen: admits {self.admitted}, drops {self.dropped_sessions} "
            f"(drop rate {self.drop_rate:.2f}), p99 recovery "
            f"{self.predicted.get('p99_recovery', float('nan')):.3f}, "
            f"late {self.predicted.get('mean_late_fraction', float('nan')):.3f}",
        ]
        header = (
            f"{'cap':>4s} {'admit':>6s} {'drop':>6s} {'p99rec':>7s} "
            f"{'late':>6s} {'util':>6s} {'feas':>5s}  source"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for probe in self.probes:
            lines.append(
                f"{probe.capacity:>4d} {probe.admitted:>6d} {probe.drop_rate:>6.2f} "
                f"{probe.p99_recovery:>7.3f} {probe.mean_late_fraction:>6.3f} "
                f"{probe.mean_ap_utilization:>6.2f} {'yes' if probe.feasible else 'no':>5s}"
                f"  {probe.source}"
            )
        lookups = self.store_hits + self.store_misses
        if lookups:
            lines.append(
                f"  probes: {self.evaluated} evaluated, {self.store_hits} store hits / "
                f"{self.store_misses} misses ({100.0 * self.store_hits / lookups:.0f}% reused)"
            )
        else:
            lines.append(f"  probes: {self.evaluated} evaluated")
        lines.append(f"  trace: {len(self.trace)} iterations")
        return "\n".join(lines)


# --------------------------------------------------------------------- codec
def _encode_plan(result: CapacityPlan) -> dict:
    """Kind-specific payload fields for a plan record."""
    payload = result.to_dict()
    # The record envelope already carries the name, spec and hash.
    for redundant in ("plan", "spec_hash", "slo", "bounds"):
        payload.pop(redundant, None)
    return payload


def _decode_plan(spec: PlanSpec, key: str, payload: dict) -> CapacityPlan:
    """Rebuild a :class:`CapacityPlan` from a plan record's payload."""
    if payload.get("plan_version") != PLAN_VERSION:
        raise StoreError(f"unknown plan record version {payload.get('plan_version')!r}")
    method = str(payload["method"])
    if method != spec.method:
        raise StoreError(f"stored method {method!r} does not match the spec's {spec.method!r}")
    probes = payload["probes"]
    if not isinstance(probes, list):
        raise StoreError("plan record probes must be a list")
    return CapacityPlan(
        spec=spec,
        spec_hash=key,
        feasible=bool(payload["feasible"]),
        capacity=int(payload["capacity"]),
        admitted=int(payload["admitted"]),
        dropped_sessions=int(payload["dropped_sessions"]),
        drop_rate=float(payload["drop_rate"]),
        predicted={k: float(v) for k, v in payload["predicted"].items()},
        bracket=int(payload["bracket"]),
        method=method,
        probes=tuple(PlanProbe.from_dict(row) for row in probes),
        trace=tuple(dict(row) for row in payload["trace"]),
        evaluated=int(payload["evaluated"]),
        store_hits=int(payload["store_hits"]),
        store_misses=int(payload["store_misses"]),
        from_store=True,
    )


register_store_codec("plan", _encode_plan, _decode_plan)


# ------------------------------------------------------------------- bracket
def analytic_bracket(spec: PlanSpec) -> int:
    """Warm-start capacity from the analytic superposition model.

    The largest capacity within the spec's bounds that the
    :class:`~repro.wireless.superposition.SuperpositionModel` calls stable
    at delivery probability 1 — i.e. the most sessions whose worst-case
    air-time demand still fits one command period.  Pure arithmetic
    (``m * service_ms < period_ms``), so the bracket costs nothing and in
    practice lands on (or next to) the empirical knee; when even the
    smallest bound is unstable the bracket clamps to ``min_capacity``.
    """
    fleet = spec.fleet
    period_ms = float(fleet.template.foreco.command_period_ms)
    bracket = spec.min_capacity
    for sessions in range(spec.min_capacity, spec.max_capacity + 1):
        model = SuperpositionModel(
            sessions=sessions,
            delivery_probability=1.0,
            service_ms=fleet.ap_service_ms,
            period_ms=period_ms,
        )
        if not model.is_stable:
            break
        bracket = sessions
    return bracket


# ------------------------------------------------------------------- planner
class _PlanRun:
    """Mutable state of one planning run (ledger, budget, store partition)."""

    def __init__(self, spec: PlanSpec) -> None:
        self.spec = spec
        self.ledger: dict[int, PlanProbe] = {}
        self.store_hits = 0
        self.store_misses = 0

    @property
    def budget_left(self) -> int:
        """Distinct capacities the run may still evaluate."""
        return self.spec.budget - len(self.ledger)


class CapacityPlanner:
    """Search per-AP admission capacities directly against an SLO.

    Parameters
    ----------
    executor:
        The sweep executor probes run through.  Built from ``jobs`` /
        ``backend`` / ``store`` when omitted; pass an explicit executor to
        share engine caches (and the store) with other sweeps.
    jobs / backend / store:
        Convenience constructor arguments for the default executor
        (ignored when ``executor`` is given).
    evaluator:
        Test seam: a callable mapping a probe :class:`FleetSpec` to a
        fleet-result-like object (see
        :func:`~repro.fleet.objective.assess_probe`).  When given, probes
        bypass the executor entirely — the planner's decision logic runs
        against the synthetic surface — and plan records are neither
        loaded nor stored.
    """

    def __init__(
        self,
        executor: SweepExecutor | None = None,
        jobs: int = 1,
        backend: str = "thread",
        store: ResultStore | None = None,
        evaluator: Callable[[FleetSpec], object] | None = None,
    ) -> None:
        self.evaluator = evaluator
        if evaluator is not None:
            if executor is not None:
                raise ConfigurationError("pass either an executor or an evaluator, not both")
            self.executor: SweepExecutor | None = None
            self.store: ResultStore | None = None
            return
        if executor is None:
            executor = SweepExecutor(jobs=jobs, backend=backend, store=store)
        self.executor = executor
        self.store = executor.store

    # ------------------------------------------------------------- probing
    def _probe(self, run: _PlanRun, capacities: list[int], source: str) -> None:
        """Evaluate unprobed capacities (budget-capped) in one batch.

        Already-probed capacities are free; fresh ones beyond the remaining
        budget are silently skipped, which is how both methods stop probing
        at budget exhaustion.  Batches route through the executor in probe
        order, so parallel backends return bit-identical ledgers.
        """
        fresh: list[int] = []
        for capacity in capacities:
            if capacity not in run.ledger and capacity not in fresh:
                fresh.append(capacity)
        fresh = fresh[: max(0, run.budget_left)]
        if not fresh:
            return
        specs = [run.spec.probe_spec(capacity) for capacity in fresh]
        if self.evaluator is not None:
            results: list[object] = [self.evaluator(spec) for spec in specs]
        else:
            assert self.executor is not None
            sweep = self.executor.run(specs)
            run.store_hits += sweep.store_hits
            run.store_misses += sweep.store_misses
            results = list(sweep)
        for capacity, result in zip(fresh, results):
            run.ledger[capacity] = assess_probe(
                capacity,
                result,
                slo_p99=run.spec.slo_p99,
                slo_late=run.spec.slo_late,
                source=source,
                order=len(run.ledger),
            )

    # ------------------------------------------------------------- methods
    def _lagrangian(self, run: _PlanRun, capacity: int, lam: tuple[float, float]) -> float:
        """Estimated Lagrangian of one candidate capacity.

        Probed capacities use their measured utility and violations;
        unprobed ones use the optimistic admission-arithmetic utility and
        the violation vector of the nearest probed capacity (ties toward
        the smaller neighbour).
        """
        row = run.ledger.get(capacity)
        if row is not None:
            return float(row.admitted) - lam[0] * row.p99_violation - lam[1] * row.late_violation
        fleet = run.spec.fleet
        utility = float(admitted_estimate(capacity, fleet.operators, fleet.aps))
        if not run.ledger:
            return utility
        nearest = min(run.ledger, key=lambda probed: (abs(probed - capacity), probed))
        near = run.ledger[nearest]
        return utility - lam[0] * near.p99_violation - lam[1] * near.late_violation

    def _dual_gradient(self, run: _PlanRun, bracket: int) -> list[dict]:
        """Dual-gradient ascent around the feasibility knee (see module docs)."""
        spec = run.spec
        lo, hi = spec.min_capacity, spec.max_capacity
        lam = (0.0, 0.0)
        current = bracket
        trace: list[dict] = []
        for iteration in range(spec.max_iterations):
            row = run.ledger.get(current)
            if row is None:  # budget refused the probe
                break
            violation = (row.p99_violation, row.late_violation)
            lam = (
                lam[0] + spec.dual_step * violation[0],
                lam[1] + spec.dual_step * violation[1],
            )
            if row.feasible:
                candidates = sorted({max(lo, current - 1), current, min(hi, current + 1)})
                best = max(candidates, key=lambda c: (self._lagrangian(run, c, lam), -c))
                best_row = run.ledger.get(best)
                if best != current and best_row is not None and best_row.violation > 0.0:
                    # A probed infeasible neighbour still dominates the
                    # Lagrangian: take one Polyak-sized multiplier jump
                    # along its violation vector (exactly the ascent needed
                    # to stop it dominating) instead of oscillating there.
                    gap = self._lagrangian(run, best, lam) - max(
                        self._lagrangian(run, c, lam) for c in candidates if c != best
                    )
                    vector = (best_row.p99_violation, best_row.late_violation)
                    norm = vector[0] ** 2 + vector[1] ** 2
                    alpha = max(0.0, gap) / norm
                    lam = (lam[0] + alpha * vector[0], lam[1] + alpha * vector[1])
                    best = max(candidates, key=lambda c: (self._lagrangian(run, c, lam), -c))
                nxt = best
            else:
                # Quality gates are load-monotone: everything above a
                # violating capacity is at least as violating, so the
                # primal step from an infeasible iterate always descends.
                nxt = current - 1 if current > lo else current
            trace.append(
                {
                    "iteration": iteration,
                    "capacity": current,
                    "lambda_p99": lam[0],
                    "lambda_late": lam[1],
                    "violation": row.violation,
                    "next": nxt,
                }
            )
            if nxt == current:
                break
            if nxt not in run.ledger:
                self._probe(run, [nxt], "dual")
                if nxt not in run.ledger:
                    break  # budget exhausted
            current = nxt
        return trace

    def _golden_section(self, run: _PlanRun, bracket: int) -> list[dict]:
        """Golden-section refinement of the penalized objective (see module docs)."""
        spec = run.spec
        fleet = spec.fleet
        low, high = spec.min_capacity, spec.max_capacity
        self._probe(run, [low, high], "golden")
        trace: list[dict] = []

        def score(capacity: int) -> float | None:
            row = run.ledger.get(capacity)
            if row is None:
                return None
            return penalized_score(row, fleet.operators, spec.max_capacity)

        iteration = 0
        while high - low > 2 and run.budget_left > 0 and iteration < spec.max_iterations:
            span = high - low
            step = int(round(span * _INV_PHI))
            inner_low = max(low + 1, min(high - step, high - 1))
            inner_high = max(low + 1, min(low + step, high - 1))
            if inner_high <= inner_low:
                inner_high = min(high - 1, inner_low + 1)
            self._probe(run, [inner_low, inner_high], "golden")
            score_low, score_high = score(inner_low), score(inner_high)
            if score_low is None or score_high is None:
                break  # budget exhausted mid-iteration
            trace.append(
                {
                    "iteration": iteration,
                    "low": low,
                    "high": high,
                    "probe_low": inner_low,
                    "probe_high": inner_high,
                    "score_low": score_low,
                    "score_high": score_high,
                }
            )
            if score_low >= score_high:
                # Ties keep the smaller-capacity side (the plan objective
                # breaks utility ties toward the smallest capacity).
                high = inner_high
            else:
                low = inner_low
            iteration += 1
        # Exhaustive sweep of the surviving bracket pins the exact knee.
        self._probe(run, list(range(low, high + 1)), "refine")
        return trace

    # ----------------------------------------------------------------- run
    def run(self, spec: PlanSpec) -> CapacityPlan:
        """Plan one :class:`PlanSpec` (store -> compute, with write-back).

        A plan already persisted under the spec's content address is
        returned directly (``from_store=True``) without a single probe;
        otherwise the search runs, every probe memoizing through the
        executor's store, and the finished plan is written back.
        """
        if not isinstance(spec, PlanSpec):
            raise ConfigurationError("CapacityPlanner.run expects a PlanSpec")
        if self.store is not None:
            cached = self.store.get(spec)
            if cached is not None:
                return cached
        run = _PlanRun(spec)
        bracket = analytic_bracket(spec)
        self._probe(run, [bracket], "bracket")
        if spec.method == "dual-gradient":
            trace = self._dual_gradient(run, bracket)
        else:
            trace = self._golden_section(run, bracket)
        chosen = select_probe(run.ledger.values())
        plan = CapacityPlan(
            spec=spec,
            spec_hash=spec.spec_hash(),
            feasible=chosen.feasible and chosen.drop_rate <= spec.slo_drop,
            capacity=chosen.capacity,
            admitted=chosen.admitted,
            dropped_sessions=chosen.dropped_sessions,
            drop_rate=chosen.drop_rate,
            predicted={
                "p99_recovery": chosen.p99_recovery,
                "mean_late_fraction": chosen.mean_late_fraction,
                "mean_ap_utilization": chosen.mean_ap_utilization,
                "drop_rate": chosen.drop_rate,
            },
            bracket=bracket,
            method=spec.method,
            probes=tuple(sorted(run.ledger.values(), key=lambda probe: probe.order)),
            trace=tuple(trace),
            evaluated=len(run.ledger),
            store_hits=run.store_hits,
            store_misses=run.store_misses,
        )
        if self.store is not None:
            self.store.put(spec, plan)
        return plan


def run_plan(
    spec: PlanSpec,
    jobs: int = 1,
    backend: str = "thread",
    store: ResultStore | None = None,
) -> CapacityPlan:
    """One-call convenience wrapper: configure, run and return the plan.

    This is what the runner's ``plan`` keyword and the CI smoke script
    build on; see :class:`CapacityPlanner` for the determinism and
    memoization contract.
    """
    planner = CapacityPlanner(jobs=jobs, backend=backend, store=store)
    return planner.run(spec)


# ----------------------------------------------------------------- registry
_REGISTRY: dict[str, tuple[PlanSpec, str]] = {}


def register_plan(spec: PlanSpec, description: str = "", overwrite: bool = False) -> None:
    """Register a plan preset under ``spec.name``.

    Raises :class:`~repro.errors.ConfigurationError` when the name is taken
    and ``overwrite`` is false.
    """
    name = spec.name
    if not name or name == "plan":
        raise ConfigurationError("a registered plan needs a distinctive name")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"plan {name!r} is already registered")
    _REGISTRY[name] = (spec, description)


def get_plan(
    name: str,
    scale: str | None = None,
    seed: int | None = None,
    **overrides,
) -> PlanSpec:
    """Fetch a plan preset by name, optionally overriding common knobs.

    Any keyword accepted by :meth:`PlanSpec.with_` (``slo_p99``,
    ``budget``, ``method``, ...) replaces a plan-level field; ``scale`` and
    ``seed`` are forwarded to the target fleet's per-operator template,
    mirroring :func:`repro.fleet.get_fleet`.
    """
    try:
        spec, _ = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(f"unknown plan {name!r}; available: {plan_names()}") from exc
    if overrides:
        spec = spec.with_(**overrides)
    template_overrides = {}
    if scale is not None:
        template_overrides["scale"] = scale
    if seed is not None:
        template_overrides["seed"] = seed
    if template_overrides:
        spec = spec.with_(fleet=spec.fleet.with_template(**template_overrides))
    return spec


def plan_names() -> list[str]:
    """Sorted names of the registered plan presets."""
    return sorted(_REGISTRY)


def plan_catalog() -> dict[str, str]:
    """Mapping of plan preset name to its one-line description."""
    return {name: description for name, (_, description) in sorted(_REGISTRY.items())}


def _register_builtins() -> None:
    """Register the built-in plan presets."""
    register_plan(
        PlanSpec(name="plan-shared-ap", fleet=get_fleet("shared-ap")),
        "dual-gradient capacity plan for the shared-ap fleet (knee at 3 ops/AP)",
    )
    register_plan(
        PlanSpec(name="plan-shared-ap-golden", fleet=get_fleet("shared-ap"), method="golden-section"),
        "golden-section twin of plan-shared-ap (same knee, derivative-free refinement)",
    )


_register_builtins()
