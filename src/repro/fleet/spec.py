"""Declarative fleet specifications.

A :class:`FleetSpec` scales the scenario vocabulary from *one* teleoperation
session to an **operated service**: ``N`` concurrent operators, each running
a session described by a shared :class:`~repro.scenarios.ScenarioSpec`
template, arriving over time (all at once, a Poisson process, or a diurnal
load curve) and contending for a small set of access points.  Like the
session spec it generalises, a fleet spec is a frozen, hashable value
object:

* equal specs produce identical results, so the
  :class:`~repro.fleet.engine.FleetEngine` caches fleets by
  :meth:`FleetSpec.spec_hash`;
* the hash is also the content address under which fleet results persist in
  the :class:`~repro.scenarios.ResultStore` (same epoch scheme as session
  results — see :mod:`repro.fleet.engine`);
* capacity-planning sweeps are just lists of fleet specs, which the
  :class:`~repro.scenarios.SweepExecutor` fans out like any other sweep.

The arrival process draws its randomness through
:mod:`repro.des.distributions` (exponential inter-arrival gaps, uniform
thinning for the diurnal curve) with seeds derived from the spec content,
so fleets are deterministic regardless of worker count or execution order.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

import numpy as np

from ..des.distributions import Exponential, UniformDistribution
from ..errors import ConfigurationError
from ..scenarios.spec import ScenarioSpec
from ..wireless.superposition import TAIL_KINDS

#: Session arrival processes understood by the fleet engine.
ARRIVAL_KINDS: tuple[str, ...] = ("simultaneous", "poisson", "diurnal")

#: One-line summary per arrival kind (rendered into the docs reference).
ARRIVAL_KIND_SUMMARIES: dict[str, str] = {
    "simultaneous": "every operator starts at t=0 (worst-case synchronised load)",
    "poisson": "memoryless session arrivals at a constant rate (sessions/s)",
    "diurnal": "non-homogeneous Poisson arrivals following a sinusoidal load curve",
}

#: Simulation tiers understood by the fleet engines.
TIER_KINDS: tuple[str, ...] = ("exact", "hybrid")

#: One-line summary per simulation tier (rendered into the docs reference).
TIER_KIND_SUMMARIES: dict[str, str] = {
    "exact": "every admitted session through the vectorized Lindley backlog",
    "hybrid": "hot APs exact, cold APs via the analytic superposition model",
}


def _coerce_int(name: str, value) -> int:
    """``int(value)`` that fails as a :class:`ConfigurationError`, not ValueError.

    Non-integral values (e.g. ``aps=2.5``) are rejected rather than silently
    truncated.
    """
    try:
        result = int(value)
        exact = float(value) == float(result)
    except (TypeError, ValueError, OverflowError) as exc:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}") from exc
    if not exact:
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    return result


def _coerce_float(name: str, value) -> float:
    """``float(value)`` that fails as a :class:`ConfigurationError`, not ValueError."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a number, got {value!r}") from exc
    if math.isnan(result):
        raise ConfigurationError(f"{name} must not be NaN")
    return result


@dataclass(frozen=True)
class FleetSpec:
    """One fully-specified multi-operator service workload.

    Attributes
    ----------
    name:
        Human-readable label (preset name); not part of the physical
        configuration and excluded from :meth:`spec_hash`.
    template:
        The per-operator :class:`~repro.scenarios.ScenarioSpec`: channel
        model, FoReCo configuration, operator role, scale, seed and
        repetition count.  Operator 0 runs the template verbatim (same seed,
        same channel realisations); operators ``i > 0`` derive
        hash-decorrelated channel seeds from it.  All operators replay the
        template's command stream and share its trained forecaster — the
        fleet axis varies the *channel*, exactly like repetitions do.
    operators:
        Operator population ``N`` (sessions that try to start).
    aps:
        Number of access points; operator ``i`` is statically assigned to AP
        ``i % aps``.
    ap_capacity:
        Admission limit: a session whose AP already serves ``ap_capacity``
        concurrent sessions at its arrival time is **dropped** (counted in
        :attr:`~repro.fleet.engine.FleetResult.dropped_sessions`, never
        simulated).
    ap_service_ms:
        Air time one delivered command occupies its AP for, in ms.  This is
        the coupling constant of the shared-AP backlog: with ``m`` active
        operators on one AP the per-slot demand is ``m * ap_service_ms``
        against a budget of one command period, and demand beyond the budget
        accumulates as backlog every contending command must wait out.  Keep
        it below the template's ``command_period_ms`` so a lone operator
        never queues behind itself (the single-operator bit-equality
        contract, see :mod:`repro.fleet.engine`).
    arrival:
        Session arrival process (see :data:`ARRIVAL_KINDS`).
    arrival_rate_hz:
        Mean session arrival rate in sessions/second for the ``"poisson"``
        and ``"diurnal"`` processes (ignored by ``"simultaneous"``).
    diurnal_period_s / diurnal_amplitude:
        Shape of the ``"diurnal"`` load curve: the instantaneous rate is
        ``arrival_rate_hz * (1 + diurnal_amplitude * sin(2*pi*t /
        diurnal_period_s))``, sampled by thinning against the peak rate.
    tier:
        Simulation tier (see :data:`TIER_KINDS`).  ``"exact"`` runs every
        admitted session through the vectorized Lindley backlog;
        ``"hybrid"`` classifies each AP hot or cold with the Bianchi
        saturation score (:func:`repro.wireless.bianchi.saturation_score`)
        and services cold APs with the analytic superposition model —
        see :mod:`repro.fleet.hybrid`.  The tier selects an execution
        strategy over the *same* workload: arrival times and channel
        realisations are derived from :meth:`workload_identity`, which
        excludes the tier knobs, so a hybrid fleet and its exact twin see
        identical arrivals and channels.
    hot_threshold:
        Saturation score in ``(0, 1]`` at or above which an AP is
        classified hot (simulated exactly) by the hybrid tier.
    cold_tail / cold_tail_index:
        Tail family (``"gaussian"`` or ``"heavy"``) and Pareto shape of the
        cold-AP superposition model — see
        :class:`repro.wireless.superposition.SuperpositionModel`.
    """

    name: str = "fleet"
    template: ScenarioSpec = field(default_factory=ScenarioSpec)
    operators: int = 4
    aps: int = 1
    ap_capacity: int = 8
    ap_service_ms: float = 6.0
    arrival: str = "simultaneous"
    arrival_rate_hz: float = 0.5
    diurnal_period_s: float = 240.0
    diurnal_amplitude: float = 0.8
    tier: str = "exact"
    hot_threshold: float = 0.5
    cold_tail: str = "gaussian"
    cold_tail_index: float = 3.0

    def __post_init__(self) -> None:
        """Validate the population, topology, arrival-process and tier fields.

        Every violation — including non-numeric field values, zero-capacity
        APs, empty operator populations and tier thresholds outside
        ``(0, 1]`` — raises :class:`~repro.errors.ConfigurationError`, never
        a bare ``ValueError`` or ``ZeroDivisionError``.
        """
        if not isinstance(self.template, ScenarioSpec):
            raise ConfigurationError("FleetSpec.template must be a ScenarioSpec")
        for int_field in ("operators", "aps", "ap_capacity"):
            object.__setattr__(self, int_field, _coerce_int(int_field, getattr(self, int_field)))
        for float_field in ("ap_service_ms", "hot_threshold", "cold_tail_index"):
            object.__setattr__(self, float_field, _coerce_float(float_field, getattr(self, float_field)))
        if self.operators < 1:
            raise ConfigurationError(
                "a fleet needs at least one operator (empty operator populations "
                "are not a valid workload)"
            )
        if self.aps < 1:
            raise ConfigurationError("a fleet needs at least one access point")
        if self.ap_capacity < 1:
            raise ConfigurationError("ap_capacity must be >= 1 (zero-capacity APs admit nobody)")
        if self.ap_service_ms <= 0.0:
            raise ConfigurationError("ap_service_ms must be > 0")
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigurationError(
                f"unknown arrival kind {self.arrival!r}; available: {sorted(ARRIVAL_KINDS)}"
            )
        if self.arrival != "simultaneous" and _coerce_float("arrival_rate_hz", self.arrival_rate_hz) <= 0.0:
            raise ConfigurationError("arrival_rate_hz must be > 0 for timed arrivals")
        if _coerce_float("diurnal_period_s", self.diurnal_period_s) <= 0.0:
            raise ConfigurationError("diurnal_period_s must be > 0")
        if not 0.0 <= _coerce_float("diurnal_amplitude", self.diurnal_amplitude) <= 1.0:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1]")
        if self.tier not in TIER_KINDS:
            raise ConfigurationError(
                f"unknown fleet tier {self.tier!r}; available: {sorted(TIER_KINDS)}"
            )
        if not 0.0 < self.hot_threshold <= 1.0:
            raise ConfigurationError("hot_threshold must be in (0, 1]")
        if self.cold_tail not in TAIL_KINDS:
            raise ConfigurationError(
                f"unknown cold_tail {self.cold_tail!r}; available: {sorted(TAIL_KINDS)}"
            )
        if self.cold_tail_index <= 1.0:
            raise ConfigurationError("cold_tail_index must be > 1 (finite-mean Pareto)")

    # --------------------------------------------------------------- identity
    #: Record kind this spec stores/loads under in a ResultStore.
    store_kind = "fleet"

    def canonical(self) -> dict:
        """JSON-safe canonical representation (the hashing domain).

        Includes the simulation-tier knobs: an exact and a hybrid run of the
        same workload are *different results* (the hybrid one is an
        approximation) and must occupy different store addresses.
        """
        payload = self.workload_identity()
        payload["tier"] = {
            "kind": self.tier,
            "hot_threshold": float(self.hot_threshold),
            "cold_tail": self.cold_tail,
            "cold_tail_index": float(self.cold_tail_index),
        }
        return payload

    def workload_identity(self) -> dict:
        """The canonical representation *minus* the tier knobs.

        This is the randomness domain: arrival times
        (:func:`arrival_seed`) derive from it, so a hybrid fleet and its
        exact twin realise identical arrivals (and, since channel seeds
        come from the template, identical channels) — the property the
        hybrid-vs-exact error gate measures against.
        """
        return {
            "kind": "fleet",
            "template": self.template.canonical(),
            "operators": int(self.operators),
            "aps": int(self.aps),
            "ap_capacity": int(self.ap_capacity),
            "ap_service_ms": float(self.ap_service_ms),
            "arrival": {
                "kind": self.arrival,
                "rate_hz": float(self.arrival_rate_hz),
                "diurnal_period_s": float(self.diurnal_period_s),
                "diurnal_amplitude": float(self.diurnal_amplitude),
            },
        }

    def spec_hash(self) -> str:
        """Stable short hash of the physical configuration (``name`` excluded)."""
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------ convenience
    @property
    def channel(self):
        """The template's channel spec (uniform row rendering in sweep tables)."""
        return self.template.channel

    @property
    def repetitions(self) -> int:
        """Independent fleet realisations (the template's repetition count)."""
        return self.template.repetitions

    # --------------------------------------------------------------- builders
    def with_(self, **changes) -> "FleetSpec":
        """A copy with top-level fleet fields replaced."""
        return replace(self, **changes)

    def with_template(self, **changes) -> "FleetSpec":
        """A copy whose template has top-level scenario fields replaced.

        ``scale`` may be passed as a name, exactly as in
        :meth:`repro.scenarios.ScenarioSpec.with_`.
        """
        return replace(self, template=self.template.with_(**changes))

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        timing = self.arrival
        if self.arrival != "simultaneous":
            timing = f"{self.arrival}@{self.arrival_rate_hz:g}/s"
        tier = ""
        if self.tier != "exact":
            tier = f", {self.tier} tier @ {self.hot_threshold:g}/{self.cold_tail}"
        return (
            f"{self.name}: {self.operators} operators over {self.aps} AP(s) "
            f"(capacity {self.ap_capacity}, service {self.ap_service_ms:g} ms{tier}), "
            f"{timing} arrivals | template {self.template.name}: "
            f"{self.template.channel.describe()}"
        )


# ------------------------------------------------------------------- arrivals
def _hash_seed(payload: str) -> int:
    """32-bit seed from a payload string (same scheme as the session engine)."""
    return int.from_bytes(hashlib.sha256(payload.encode("utf-8")).digest()[:4], "big")


def arrival_seed(fleet: FleetSpec, repetition: int) -> int:
    """Deterministic RNG seed for one fleet realisation's arrival draws.

    Derived from the fleet's :meth:`FleetSpec.workload_identity` (canonical
    content minus the tier knobs) plus the repetition index — independent of
    worker scheduling, so parallel capacity sweeps reproduce serial ones
    exactly, and independent of the simulation tier, so a hybrid fleet and
    its exact twin realise identical arrivals.
    """
    identity = json.dumps(fleet.workload_identity(), sort_keys=True, separators=(",", ":"))
    return _hash_seed(f"{identity}::arrivals::{int(repetition)}")


def sample_arrival_times(fleet: FleetSpec, repetition: int) -> np.ndarray:
    """Session start times in seconds for one fleet realisation.

    Returns a nondecreasing ``(operators,)`` array: operator ``i`` starts at
    the ``i``-th arrival of the process.  ``"simultaneous"`` returns zeros;
    ``"poisson"`` accumulates exponential gaps at ``arrival_rate_hz``;
    ``"diurnal"`` thins a peak-rate Poisson stream against the sinusoidal
    load curve.  All randomness flows through
    :mod:`repro.des.distributions` with an :func:`arrival_seed`-derived
    generator, in a fixed draw order, so the result is a pure function of
    the spec.
    """
    count = int(fleet.operators)
    if fleet.arrival == "simultaneous":
        return np.zeros(count)
    rng = np.random.default_rng(arrival_seed(fleet, repetition))
    if fleet.arrival == "poisson":
        gaps = Exponential(rate=float(fleet.arrival_rate_hz)).sample_many(rng, count)
        return np.cumsum(gaps)
    # "diurnal": thinning against the peak rate keeps the draw order fixed
    # (one gap + one acceptance draw per candidate arrival).
    base = float(fleet.arrival_rate_hz)
    amplitude = float(fleet.diurnal_amplitude)
    period = float(fleet.diurnal_period_s)
    peak = base * (1.0 + amplitude)
    gap = Exponential(rate=peak)
    accept = UniformDistribution(0.0, 1.0)
    times = np.empty(count)
    t = 0.0
    accepted = 0
    while accepted < count:
        t += float(gap.sample(rng))
        rate_now = base * (1.0 + amplitude * math.sin(2.0 * math.pi * t / period))
        if float(accept.sample(rng)) * peak <= rate_now:
            times[accepted] = t
            accepted += 1
    return times
