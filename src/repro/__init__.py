"""repro — a reproduction of FoReCo (forecast-based recovery for teleoperation).

FoReCo (Groshev et al., 2022) is a recovery mechanism for real-time remote
control of robotic manipulators over IEEE 802.11: when a control command is
delayed beyond the robot's tolerance or lost to interference, FoReCo
forecasts the missing command from the recent command history with an ML
model (VAR in the prototype) and injects the forecast into the robot driver,
keeping the executed trajectory close to the operator's intent.

Package layout
--------------
``repro.core``
    The FoReCo contribution: configuration, command dataset, training
    pipeline, runtime recovery engine and the end-to-end simulation used by
    the evaluation.
``repro.forecasting``
    The forecasting algorithms (VAR, MA, seq2seq, plus VARMA and exponential
    smoothing extensions) behind a pluggable interface.
``repro.nn``
    NumPy neural-network substrate (LSTM encoder–decoder, Adam) backing the
    seq2seq forecaster.
``repro.wireless``
    IEEE 802.11 analytical model with electromagnetic interference, the
    access-point queueing model, a bursty jammer and controlled-loss
    injectors.
``repro.des``
    Discrete-event simulation substrate (event engine, G/HEXP/1/Q queue,
    Jackson transport network).
``repro.robot``
    Niryo-One-like manipulator: DH kinematics, joint limits, PID control,
    driver loop and trajectory metrics.
``repro.teleop``
    Pick-and-place task, operator models and the 50 Hz remote controller.
``repro.analysis``
    Result aggregation (heatmaps), statistics and hardware-profiling helpers.
``repro.scenarios``
    The unified scenario runtime: declarative, hashable scenario specs,
    named presets, a caching session engine and a parallel sweep executor —
    the layer every experiment, example and benchmark goes through.
``repro.fleet``
    Fleet-scale service simulation on top of the scenario layer: N
    concurrent operators with arrival processes, AP admission control and
    shared-backlog contention coupling (see ``docs/fleet.md``).
``repro.experiments``
    One module per paper figure/table plus a CLI runner
    (``foreco-experiments``).

Quickstart
----------
>>> from repro import quick_demo
>>> outcome = quick_demo(seed=7)          # doctest: +SKIP
>>> outcome.improvement_factor > 1.0      # doctest: +SKIP
True
"""

from __future__ import annotations

from .core import (
    CommandDataset,
    ForecoConfig,
    ForecoRecovery,
    RemoteControlSimulation,
    SimulationOutcome,
    TrainingPipeline,
    compare_baseline_and_foreco,
)
from .errors import (
    ChannelError,
    ConfigurationError,
    DatasetError,
    DimensionError,
    NotFittedError,
    ReproError,
    RobotError,
    SimulationError,
    StoreError,
)
from .forecasting import (
    Forecaster,
    MovingAverageForecaster,
    Seq2SeqForecaster,
    VarForecaster,
    make_forecaster,
)
from .fleet import FleetEngine, FleetSpec, get_fleet
from .robot import NiryoOneArm, RobotDriver
from .scenarios import (
    ScenarioSpec,
    SessionEngine,
    SweepExecutor,
    SweepResult,
    get_scenario,
    scenario_names,
)
from .teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from .wireless import ConsecutiveLossInjector, GilbertElliottJammer, InterferenceSource, WirelessChannel

__version__ = "1.0.0"

__all__ = [
    "CommandDataset",
    "ForecoConfig",
    "ForecoRecovery",
    "RemoteControlSimulation",
    "SimulationOutcome",
    "TrainingPipeline",
    "compare_baseline_and_foreco",
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DimensionError",
    "SimulationError",
    "DatasetError",
    "ChannelError",
    "RobotError",
    "StoreError",
    "Forecaster",
    "MovingAverageForecaster",
    "Seq2SeqForecaster",
    "VarForecaster",
    "make_forecaster",
    "NiryoOneArm",
    "RobotDriver",
    "OperatorModel",
    "RemoteController",
    "experienced_operator",
    "inexperienced_operator",
    "ConsecutiveLossInjector",
    "GilbertElliottJammer",
    "InterferenceSource",
    "WirelessChannel",
    "FleetEngine",
    "FleetSpec",
    "ScenarioSpec",
    "SessionEngine",
    "SweepExecutor",
    "SweepResult",
    "get_fleet",
    "get_scenario",
    "scenario_names",
    "quick_demo",
    "__version__",
]


def quick_demo(seed: int = 0, n_repetitions: int = 4, n_robots: int = 5) -> SimulationOutcome:
    """Run a miniature end-to-end FoReCo demonstration.

    Generates small experienced/inexperienced operator datasets, trains the
    VAR forecaster, subjects the inexperienced stream to an interference-prone
    802.11 channel and returns the baseline-vs-FoReCo comparison.  Used by the
    README quickstart and smoke tests; the full-size experiments live in
    :mod:`repro.experiments`.
    """
    controller = RemoteController()
    experienced = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=seed), n_repetitions=n_repetitions
    )
    inexperienced = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=seed + 1),
        n_repetitions=max(1, n_repetitions // 2),
    )
    channel = WirelessChannel(
        n_robots=n_robots,
        interference=InterferenceSource(probability=0.05, duration_slots=100),
        seed=seed,
    )
    trace = channel.sample_trace(len(inexperienced))
    return compare_baseline_and_foreco(
        experienced.commands, inexperienced.commands, trace.delays()
    )
