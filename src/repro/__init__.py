"""repro — a reproduction of FoReCo (forecast-based recovery for teleoperation).

FoReCo (Groshev et al., 2022) is a recovery mechanism for real-time remote
control of robotic manipulators over IEEE 802.11: when a control command is
delayed beyond the robot's tolerance or lost to interference, FoReCo
forecasts the missing command from the recent command history with an ML
model (VAR in the prototype) and injects the forecast into the robot driver,
keeping the executed trajectory close to the operator's intent.

Package layout
--------------
``repro.core``
    The FoReCo contribution: configuration, command dataset, training
    pipeline, runtime recovery engine and the end-to-end simulation used by
    the evaluation.
``repro.forecasting``
    The forecasting algorithms (VAR, MA, seq2seq, plus VARMA and exponential
    smoothing extensions) behind a pluggable interface.
``repro.nn``
    NumPy neural-network substrate (LSTM encoder–decoder, Adam) backing the
    seq2seq forecaster.
``repro.wireless``
    IEEE 802.11 analytical model with electromagnetic interference, the
    access-point queueing model, a bursty jammer and controlled-loss
    injectors.
``repro.des``
    Discrete-event simulation substrate (event engine, G/HEXP/1/Q queue,
    Jackson transport network).
``repro.robot``
    Niryo-One-like manipulator: DH kinematics, joint limits, PID control,
    driver loop and trajectory metrics.
``repro.teleop``
    Pick-and-place task, operator models and the 50 Hz remote controller.
``repro.analysis``
    Result aggregation (heatmaps), statistics and hardware-profiling helpers.
``repro.scenarios``
    The unified scenario runtime: declarative, hashable scenario specs,
    named presets, a caching session engine and a parallel sweep executor —
    the layer every experiment, example and benchmark goes through.
``repro.fleet``
    Fleet-scale service simulation on top of the scenario layer: N
    concurrent operators with arrival processes, AP admission control and
    shared-backlog contention coupling (see ``docs/fleet.md``).
``repro.service``
    Live service mode: online admission control (static-cap,
    utilization-threshold, forecast-aware) over fleet workloads on a
    virtual clock, with an incremental snapshot metric stream.
``repro.experiments``
    One module per paper figure/table plus a CLI runner
    (``foreco-experiments``).

Facade
------
The five entry points most users need are exposed directly on the package,
with uniform keyword names (``store=``, ``jobs=``, ``backend=``):

* :func:`run_scenario` — one scenario preset/spec to a session result;
* :func:`run_fleet` — one fleet preset/spec to a fleet result;
* :func:`sweep` — a list of scenario/fleet/service specs, in parallel;
* :func:`serve` — one live-service preset/spec to a service result;
* :func:`plan` — one capacity-plan preset/spec to a :class:`CapacityPlan`.

Quickstart
----------
>>> from repro import quick_demo
>>> outcome = quick_demo(seed=7)          # doctest: +SKIP
>>> outcome.improvement_factor > 1.0      # doctest: +SKIP
True
"""

from __future__ import annotations

from .core import (
    CommandDataset,
    ForecoConfig,
    ForecoRecovery,
    RemoteControlSimulation,
    SimulationOutcome,
    TrainingPipeline,
    compare_baseline_and_foreco,
)
from .errors import (
    ChannelError,
    ConfigurationError,
    DatasetError,
    DimensionError,
    NotFittedError,
    ReproError,
    RobotError,
    SimulationError,
    StoreError,
)
from .forecasting import (
    Forecaster,
    MovingAverageForecaster,
    Seq2SeqForecaster,
    VarForecaster,
    make_forecaster,
)
from .fleet import (
    CapacityPlan,
    CapacityPlanner,
    FleetEngine,
    FleetSpec,
    PlanSpec,
    get_fleet,
    get_plan,
)
from .robot import NiryoOneArm, RobotDriver
from .scenarios import (
    ResultStore,
    ScenarioSpec,
    SessionEngine,
    SweepExecutor,
    SweepResult,
    get_scenario,
    scenario_names,
)
from .service import ServiceEngine, ServiceResult, ServiceSpec, get_service
from .teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from .wireless import ConsecutiveLossInjector, GilbertElliottJammer, InterferenceSource, WirelessChannel

__version__ = "1.0.0"

__all__ = [
    "CommandDataset",
    "ForecoConfig",
    "ForecoRecovery",
    "RemoteControlSimulation",
    "SimulationOutcome",
    "TrainingPipeline",
    "compare_baseline_and_foreco",
    "ReproError",
    "ConfigurationError",
    "NotFittedError",
    "DimensionError",
    "SimulationError",
    "DatasetError",
    "ChannelError",
    "RobotError",
    "StoreError",
    "Forecaster",
    "MovingAverageForecaster",
    "Seq2SeqForecaster",
    "VarForecaster",
    "make_forecaster",
    "NiryoOneArm",
    "RobotDriver",
    "OperatorModel",
    "RemoteController",
    "experienced_operator",
    "inexperienced_operator",
    "ConsecutiveLossInjector",
    "GilbertElliottJammer",
    "InterferenceSource",
    "WirelessChannel",
    "CapacityPlan",
    "CapacityPlanner",
    "FleetEngine",
    "FleetSpec",
    "PlanSpec",
    "ResultStore",
    "ScenarioSpec",
    "ServiceEngine",
    "ServiceResult",
    "ServiceSpec",
    "SessionEngine",
    "SweepExecutor",
    "SweepResult",
    "get_fleet",
    "get_plan",
    "get_scenario",
    "get_service",
    "scenario_names",
    "run_scenario",
    "run_fleet",
    "serve",
    "sweep",
    "plan",
    "quick_demo",
    "__version__",
]


def _as_store(store) -> ResultStore | None:
    """Resolve the facade's ``store=`` keyword: ``None``, a path, or a store."""
    if store is None or isinstance(store, ResultStore):
        return store
    return ResultStore(str(store))


def run_scenario(spec_or_preset, *, seed=None, store=None, jobs: int = 1):
    """Run one scenario and return its :class:`~repro.scenarios.SessionResult`.

    ``spec_or_preset`` is a :class:`ScenarioSpec` or a registered preset
    name (see :func:`scenario_names`).  ``seed`` overrides the spec's seed;
    ``store`` is a :class:`ResultStore` or a directory path (results are
    loaded from it when present, written back otherwise); ``jobs`` is
    accepted for keyword symmetry with :func:`sweep` (a single scenario
    always runs in-process).

    >>> result = run_scenario("clean")            # doctest: +SKIP
    >>> result.improvement_factor > 1.0              # doctest: +SKIP
    True
    """
    spec = get_scenario(spec_or_preset) if isinstance(spec_or_preset, str) else spec_or_preset
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError("run_scenario expects a ScenarioSpec or a preset name")
    if seed is not None:
        spec = spec.with_(seed=int(seed))
    executor = SweepExecutor(jobs=jobs, store=_as_store(store))
    return executor.run([spec])[0]


def run_fleet(spec_or_preset, *, seed=None, store=None, jobs: int = 1):
    """Run one fleet and return its :class:`~repro.fleet.FleetResult`.

    ``spec_or_preset`` is a :class:`FleetSpec` or a registered fleet preset
    name (see :func:`repro.fleet.fleet_names`).  ``seed`` overrides the
    per-operator template's seed; ``store``/``jobs`` behave exactly as in
    :func:`run_scenario`.  Both fleet tiers are supported (hybrid-tier
    specs route through the city-scale engine).

    >>> result = run_fleet("shared-ap")              # doctest: +SKIP
    >>> result.dropped_sessions >= 0                 # doctest: +SKIP
    True
    """
    spec = get_fleet(spec_or_preset) if isinstance(spec_or_preset, str) else spec_or_preset
    if not isinstance(spec, FleetSpec):
        raise ConfigurationError("run_fleet expects a FleetSpec or a fleet preset name")
    if seed is not None:
        spec = spec.with_template(seed=int(seed))
    executor = SweepExecutor(jobs=jobs, store=_as_store(store))
    return executor.run([spec])[0]


def sweep(specs, *, jobs: int = 1, backend: str = "thread", store=None) -> SweepResult:
    """Run a list of specs in parallel and return the ordered result table.

    ``specs`` may mix :class:`ScenarioSpec`, :class:`FleetSpec` and
    :class:`ServiceSpec` values; each routes through the right engine.
    ``jobs`` workers fan the list out over the ``backend`` (``"thread"`` or
    ``"process"``); with a ``store``, already-persisted results are loaded
    instead of recomputed and the sweep is resumable.  Results are
    bit-identical for any worker count.

    >>> table = sweep([get_scenario("clean")], jobs=4)   # doctest: +SKIP
    >>> len(table)                                          # doctest: +SKIP
    1
    """
    executor = SweepExecutor(jobs=jobs, backend=backend, store=_as_store(store))
    return executor.run(specs)


def serve(service_spec, *, until=None, store=None) -> ServiceResult:
    """Run one live service and return its :class:`ServiceResult`.

    ``service_spec`` is a :class:`ServiceSpec` or a registered ``service-*``
    preset name (see :func:`repro.service.service_names`).  ``until`` bounds
    the virtual clock in seconds — arrivals after the horizon never enter
    the service; note the horizon is part of the spec's identity, so a
    truncated run stores under its own address.  ``store`` behaves as in
    :func:`run_scenario`.  Live runs are deterministic: serving the same
    spec twice yields bit-identical results, snapshot stream included.

    >>> result = serve("service-shared-ap", until=60.0)     # doctest: +SKIP
    >>> result.drop_rate <= 1.0                             # doctest: +SKIP
    True
    """
    spec = get_service(service_spec) if isinstance(service_spec, str) else service_spec
    if not isinstance(spec, ServiceSpec):
        raise ConfigurationError("serve expects a ServiceSpec or a service preset name")
    if until is not None:
        spec = spec.with_(until_s=float(until))
    engine = ServiceEngine(store=_as_store(store))
    return engine.run(spec)


def plan(
    plan_spec, *, jobs: int = 1, backend: str = "thread", store=None, **overrides
) -> CapacityPlan:
    """Run one capacity-planning search and return its :class:`CapacityPlan`.

    ``plan_spec`` is a :class:`PlanSpec` or a registered ``plan-*`` preset
    name (see :func:`repro.fleet.plan_names`).  Keyword ``overrides``
    (``slo_p99=``, ``slo_drop=``, ``budget=``, ``method=``, ...) replace
    plan-level fields before the search runs.  ``store``/``jobs``/
    ``backend`` behave exactly as in :func:`sweep`: every capacity probe
    memoizes through the store, the finished plan persists under its own
    content address, and the plan is bit-identical for any worker count or
    backend.

    >>> report = plan("plan-shared-ap")              # doctest: +SKIP
    >>> report.capacity                              # doctest: +SKIP
    3
    """
    spec = get_plan(plan_spec) if isinstance(plan_spec, str) else plan_spec
    if not isinstance(spec, PlanSpec):
        raise ConfigurationError("plan expects a PlanSpec or a plan preset name")
    if overrides:
        spec = spec.with_(**overrides)
    planner = CapacityPlanner(jobs=jobs, backend=backend, store=_as_store(store))
    return planner.run(spec)


def quick_demo(seed: int = 0, n_repetitions: int = 4, n_robots: int = 5) -> SimulationOutcome:
    """Run a miniature end-to-end FoReCo demonstration.

    Generates small experienced/inexperienced operator datasets, trains the
    VAR forecaster, subjects the inexperienced stream to an interference-prone
    802.11 channel and returns the baseline-vs-FoReCo comparison.  Used by the
    README quickstart and smoke tests; the full-size experiments live in
    :mod:`repro.experiments`.
    """
    controller = RemoteController()
    experienced = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=seed), n_repetitions=n_repetitions
    )
    inexperienced = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=seed + 1),
        n_repetitions=max(1, n_repetitions // 2),
    )
    channel = WirelessChannel(
        n_robots=n_robots,
        interference=InterferenceSource(probability=0.05, duration_slots=100),
        seed=seed,
    )
    trace = channel.sample_trace(len(inexperienced))
    return compare_baseline_and_foreco(
        experienced.commands, inexperienced.commands, trace.delays()
    )
