"""Small validation helpers used across the library.

These helpers centralise the repetitive ``if not ...: raise`` checks that
guard public entry points, so that every module reports errors with the same
exception types (:mod:`repro.errors`) and consistent, descriptive messages.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import ConfigurationError, DimensionError


def ensure_positive(name: str, value: float) -> float:
    """Return ``value`` if strictly positive, otherwise raise.

    Parameters
    ----------
    name:
        Parameter name used in the error message.
    value:
        Numeric value to check.
    """
    if not np.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def ensure_non_negative(name: str, value: float) -> float:
    """Return ``value`` if ``>= 0`` and finite, otherwise raise."""
    if not np.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def ensure_probability(name: str, value: float) -> float:
    """Return ``value`` if it lies in the closed interval ``[0, 1]``."""
    if not np.isfinite(value) or value < 0.0 or value > 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return float(value)


def ensure_int(name: str, value: int, minimum: int | None = None) -> int:
    """Return ``value`` as ``int`` after checking it is integral and bounded."""
    if not float(value).is_integer():
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value

def as_command_array(name: str, commands: Sequence[Sequence[float]] | np.ndarray) -> np.ndarray:
    """Coerce ``commands`` into a 2-D ``float64`` array of shape ``(n, d)``.

    A single command (1-D input) is promoted to shape ``(1, d)``.  Anything
    with more than two dimensions, or containing NaN / infinity, is rejected.
    """
    array = np.asarray(commands, dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, -1)
    if array.ndim != 2:
        raise DimensionError(f"{name} must be a 2-D array of commands, got ndim={array.ndim}")
    if array.size == 0:
        raise DimensionError(f"{name} must contain at least one command")
    if not np.all(np.isfinite(array)):
        raise DimensionError(f"{name} contains NaN or infinite values")
    return array


def rng_from(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a seed or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
