"""Fig. 7 — forecast accuracy versus forecasting window.

The paper trains VAR, MA and seq2seq on the experienced-operator dataset and
evaluates, on the inexperienced dataset, the RMSE of forecasting windows of
20–1000 ms (1–50 consecutive commands at Ω = 20 ms).  The reported outcome is
an ordering — VAR slightly better than MA, seq2seq clearly worse because its
~164k weights do not converge on the available data — with errors growing as
the window lengthens.

This module reproduces that sweep.  At CI scale the seq2seq network is shrunk
so the NumPy BPTT stays affordable; the qualitative ordering is preserved
(and asserted by the integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from concurrent.futures import ThreadPoolExecutor

from ..forecasting import make_forecaster, multi_step_rmse
from ..scenarios import SessionEngine
from .common import ExperimentScale, base_scenario, get_scale


@dataclass
class Fig7Result:
    """Forecast RMSE per algorithm per forecasting window."""

    windows_ms: list[int]
    rmse_mm: dict[str, list[float]] = field(default_factory=dict)
    best_record: dict[str, int] = field(default_factory=dict)
    n_parameters: dict[str, int] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the figure as the text table the bench harness prints."""
        lines = ["# Fig. 7 — forecast RMSE [mm] vs forecasting window [ms]"]
        header = "window_ms | " + " ".join(f"{name:>10s}" for name in sorted(self.rmse_mm))
        lines.append(header)
        lines.append("-" * len(header))
        for index, window in enumerate(self.windows_ms):
            row = " ".join(f"{self.rmse_mm[name][index]:10.2f}" for name in sorted(self.rmse_mm))
            lines.append(f"{window:9d} | {row}")
        lines.append("")
        for name in sorted(self.best_record):
            lines.append(
                f"{name}: best record R = {self.best_record[name]}"
                + (f", |w| = {self.n_parameters[name]}" if name in self.n_parameters else "")
            )
        return "\n".join(lines)

    def final_rmse(self, algorithm: str) -> float:
        """RMSE at the longest forecasting window for one algorithm."""
        return self.rmse_mm[algorithm][-1]

    def to_dict(self) -> dict:
        """JSON-safe rendering of the per-algorithm RMSE curves."""
        return {
            "experiment": "fig7",
            "windows_ms": list(self.windows_ms),
            "rmse_mm": {name: list(curve) for name, curve in self.rmse_mm.items()},
            "best_record": dict(self.best_record),
            "n_parameters": dict(self.n_parameters),
        }


def _candidate_records(algorithm: str, scale: ExperimentScale) -> list[int]:
    """Record lengths swept per algorithm (paper: R = 1..20, best reported)."""
    if scale.name == "ci":
        return [5, 10] if algorithm != "seq2seq" else [5]
    if algorithm == "seq2seq":
        return [5, 10]
    return [1, 2, 5, 10, 15, 20]


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    algorithms: tuple[str, ...] = ("var", "ma", "seq2seq"),
    jobs: int = 1,
) -> Fig7Result:
    """Reproduce the Fig. 7 sweep at the requested scale.

    ``jobs`` parallelises the (algorithm, record-length) candidate fits;
    the per-candidate evaluation is self-contained, so the selected curves
    are identical to the serial run.
    """
    scale = get_scale(scale)
    datasets = SessionEngine().datasets(base_scenario("fig7", scale, seed))
    train = datasets.experienced.commands
    test = datasets.inexperienced.commands
    period_ms = datasets.inexperienced.period_ms

    windows_ms = list(scale.forecast_windows_ms)
    horizons = [max(1, int(round(w / period_ms))) for w in windows_ms]
    stride = max(1, (test.shape[0] - 60) // max(1, scale.forecast_evaluations))

    candidates = [
        (algorithm, record)
        for algorithm in algorithms
        for record in _candidate_records(algorithm, scale)
    ]

    def evaluate(candidate: tuple[str, int]) -> tuple[str, int, list[float], int]:
        algorithm, record = candidate
        forecaster = _build(algorithm, record, scale, seed)
        forecaster.fit(train)
        rmse = [
            multi_step_rmse(
                forecaster, test, horizon, stride=stride,
                max_evaluations=scale.forecast_evaluations,
            )
            for horizon in horizons
        ]
        return algorithm, record, rmse, int(getattr(forecaster, "n_parameters", 0) or 0)

    if max(1, int(jobs)) > 1 and len(candidates) > 1:
        with ThreadPoolExecutor(max_workers=int(jobs)) as pool:
            evaluations = list(pool.map(evaluate, candidates))
    else:
        evaluations = [evaluate(candidate) for candidate in candidates]

    result = Fig7Result(windows_ms=windows_ms)
    for algorithm in algorithms:
        best_rmse: list[float] | None = None
        best_record = 0
        best_params = 0
        for name, record, rmse, n_params in evaluations:
            if name != algorithm:
                continue
            if best_rmse is None or np.mean(rmse) < np.mean(best_rmse):
                best_rmse = rmse
                best_record = record
                best_params = n_params
        assert best_rmse is not None
        result.rmse_mm[algorithm] = [float(v) for v in best_rmse]
        result.best_record[algorithm] = best_record
        if best_params:
            result.n_parameters[algorithm] = int(best_params)
    return result


def _build(algorithm: str, record: int, scale: ExperimentScale, seed: int):
    """Construct one forecaster with scale-appropriate options."""
    if algorithm == "seq2seq":
        encoder, decoder = scale.seq2seq_units
        return make_forecaster(
            "seq2seq",
            record=record,
            encoder_units=encoder,
            decoder_units=decoder,
            epochs=scale.seq2seq_epochs,
            max_training_windows=400 if scale.name == "ci" else 2000,
            seed=seed,
        )
    return make_forecaster(algorithm, record=record)
