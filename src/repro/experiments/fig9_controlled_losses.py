"""Fig. 9 — controlled consecutive-loss experiments.

In the paper's first experimental analysis (§VI-D1), the remote controller
deliberately drops 5, 10 or 25 consecutive control commands at random points
of a 30-second run, and the robot trajectory is recorded with the stock stack
and with FoReCo injecting VAR forecasts.  Each burst length is one
``loss-burst`` :class:`ScenarioSpec`, executed through the scenario sweep
engine.  Reported outcomes:

* FoReCo reduces the trajectory error for every burst length;
* its RMSE stays in the single-digit millimetre range, consistent with the
  5-robot simulation heatmap;
* the forecast drifts progressively as the burst length grows, because each
  forecast is built from prior forecasts (error propagation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ForecoConfig, SimulationOutcome
from ..scenarios import SweepExecutor, loss_burst_channel, scenario_grid
from .common import (
    FIG9_BURST_LENGTHS,
    ExperimentScale,
    base_scenario,
    get_scale,
)


@dataclass
class Fig9Result:
    """Per-burst-length comparison of no-forecast vs FoReCo."""

    burst_lengths: list[int]
    rmse_no_forecast_mm: dict[int, float] = field(default_factory=dict)
    rmse_foreco_mm: dict[int, float] = field(default_factory=dict)
    max_error_foreco_mm: dict[int, float] = field(default_factory=dict)
    outcomes: dict[int, SimulationOutcome] = field(default_factory=dict, repr=False)

    def to_text(self) -> str:
        """Text rendering of the three Fig. 9 panels."""
        lines = ["# Fig. 9 — controlled consecutive command losses"]
        header = "burst | no-forecast RMSE [mm] | FoReCo RMSE [mm] | improvement | FoReCo max error [mm]"
        lines.append(header)
        lines.append("-" * len(header))
        for burst in self.burst_lengths:
            baseline = self.rmse_no_forecast_mm[burst]
            foreco = self.rmse_foreco_mm[burst]
            lines.append(
                f"{burst:5d} | {baseline:21.2f} | {foreco:16.2f} | x{baseline / max(foreco, 1e-9):10.1f} "
                f"| {self.max_error_foreco_mm[burst]:20.2f}"
            )
        return "\n".join(lines)

    def improvement_factor(self, burst: int) -> float:
        """No-forecast RMSE over FoReCo RMSE for one burst length."""
        return self.rmse_no_forecast_mm[burst] / max(self.rmse_foreco_mm[burst], 1e-9)

    def to_dict(self) -> dict:
        """JSON-safe rendering of the per-burst table."""
        return {
            "experiment": "fig9",
            "burst_lengths": list(self.burst_lengths),
            "rmse_no_forecast_mm": {str(b): self.rmse_no_forecast_mm[b] for b in self.burst_lengths},
            "rmse_foreco_mm": {str(b): self.rmse_foreco_mm[b] for b in self.burst_lengths},
            "max_error_foreco_mm": {str(b): self.max_error_foreco_mm[b] for b in self.burst_lengths},
            "improvement_factor": {
                str(b): self.improvement_factor(b) for b in self.burst_lengths
            },
        }


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    burst_lengths: tuple[int, ...] = FIG9_BURST_LENGTHS,
    n_bursts: int = 5,
    config: ForecoConfig | None = None,
    jobs: int = 1,
) -> Fig9Result:
    """Reproduce the Fig. 9 controlled-loss experiments."""
    scale = get_scale(scale)
    base = base_scenario(
        "fig9",
        scale,
        seed,
        config,
        channel=loss_burst_channel(burst_length=5, n_bursts=n_bursts, min_gap=60),
        run_seconds=scale.run_seconds,
    )
    specs = scenario_grid(base, {"channel.burst_length": burst_lengths})
    sweep = SweepExecutor(jobs=jobs).run(specs)

    result = Fig9Result(burst_lengths=list(burst_lengths))
    for burst, row in zip(burst_lengths, sweep):
        outcome = row.outcome
        foreco_errors = _per_step_errors(outcome)
        result.rmse_no_forecast_mm[burst] = row.mean_rmse_no_forecast_mm
        result.rmse_foreco_mm[burst] = row.mean_rmse_foreco_mm
        result.max_error_foreco_mm[burst] = float(foreco_errors.max()) if foreco_errors.size else 0.0
        result.outcomes[burst] = outcome
    return result


def _per_step_errors(outcome: SimulationOutcome) -> np.ndarray:
    """Per-slot Cartesian error of the FoReCo trajectory against the defined one."""
    from ..robot.niryo import NiryoOneArm

    arm = NiryoOneArm()
    executed = arm.kinematics.positions(outcome.foreco.joints) * 1000.0
    defined = arm.kinematics.positions(outcome.defined.joints) * 1000.0
    return np.linalg.norm(executed - defined, axis=1)
