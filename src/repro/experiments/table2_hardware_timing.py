"""Table II — training and inference times across hardware tiers.

The paper measures VAR training time (minutes) and single-forecast inference
time (milliseconds) on four platforms: the robot's Raspberry Pi 3, an NVIDIA
Jetson Nano, a laptop (user equipment) and a local edge server.  We cannot
run on that silicon, so this experiment measures the real training/inference
on the current host and projects the other tiers through scale factors
calibrated from the paper's own numbers
(:data:`repro.analysis.profiling.HARDWARE_PROFILES`).

Expected shape: faster platforms are strictly faster, inference is orders of
magnitude below the 20 ms control period even on the Raspberry Pi, and
training on the robot stays in the minutes range.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..analysis.profiling import HARDWARE_PROFILES, scale_timings_to_hardware
from ..forecasting import make_forecaster
from ..core import ForecoConfig
from ..scenarios import SessionEngine
from .common import ExperimentScale, base_scenario, get_scale


@dataclass
class Table2Result:
    """Measured host timings plus per-tier projections."""

    measured_training_s: float
    measured_inference_ms: float
    reference_tier: str
    projections: dict[str, dict[str, float]] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render the Table II layout (training in minutes, inference in ms)."""
        lines = [
            "# Table II — training and inference times per hardware tier",
            f"measured on host: training {self.measured_training_s:.2f} s, "
            f"inference {self.measured_inference_ms:.4f} ms "
            f"(host treated as the '{self.reference_tier}' tier)",
            f"{'platform':<30s} {'training [min]':>15s} {'inference [ms]':>15s}",
        ]
        for key, profile in HARDWARE_PROFILES.items():
            projection = self.projections[key]
            lines.append(
                f"{profile.name:<30s} {projection['training_min']:>15.3f} {projection['inference_ms']:>15.4f}"
            )
        return "\n".join(lines)

    def training_minutes(self, tier: str) -> float:
        """Projected training time (minutes) for one tier."""
        return self.projections[tier]["training_min"]

    def inference_ms(self, tier: str) -> float:
        """Projected single-forecast inference time (ms) for one tier."""
        return self.projections[tier]["inference_ms"]

    def to_dict(self) -> dict:
        """JSON-safe rendering of the per-tier projections."""
        return {
            "experiment": "table2",
            "measured_training_s": self.measured_training_s,
            "measured_inference_ms": self.measured_inference_ms,
            "reference_tier": self.reference_tier,
            "projections": {tier: dict(values) for tier, values in self.projections.items()},
        }


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    config: ForecoConfig | None = None,
    reference_tier: str = "laptop",
    n_inference_samples: int = 200,
    jobs: int = 1,
) -> Table2Result:
    """Measure training/inference on the host and project every Table II tier.

    ``jobs`` is accepted for CLI uniformity but ignored: concurrent work
    would skew the wall-clock measurements.
    """
    scale = get_scale(scale)
    datasets = SessionEngine().datasets(base_scenario("table2", scale, seed, config))
    config = config if config is not None else ForecoConfig()
    train = datasets.experienced.commands
    test = datasets.inexperienced.commands

    forecaster = make_forecaster(config.algorithm, record=config.record, **config.algorithm_options)
    start = time.perf_counter()
    forecaster.fit(train)
    training_s = time.perf_counter() - start

    record = forecaster.record
    durations = []
    limit = min(n_inference_samples, test.shape[0] - record - 1)
    for offset in range(max(1, limit)):
        history = test[offset : offset + record]
        start = time.perf_counter()
        forecaster.predict_next(history)
        durations.append(time.perf_counter() - start)
    inference_ms = float(np.mean(durations) * 1000.0)

    projections = scale_timings_to_hardware(training_s, inference_ms, reference=reference_tier)
    return Table2Result(
        measured_training_s=training_s,
        measured_inference_ms=inference_ms,
        reference_tier=reference_tier,
        projections=projections,
    )
