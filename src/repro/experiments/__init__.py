"""Experiment harness: one module per paper figure/table.

Every experiment module exposes a ``run(config)`` function returning a plain
result object with a ``to_text()`` rendering, so the same code path is used by

* the CLI runner (``foreco-experiments fig8 --scale full``),
* the benchmark suite (``pytest benchmarks/ --benchmark-only``), and
* the integration tests (``tests/experiments/``).

All experiments accept an :class:`ExperimentScale` so CI runs finish in
seconds while a ``full`` run approaches the paper's sweep sizes.
"""

from .common import (
    ExperimentScale,
    SharedDatasets,
    base_scenario,
    build_datasets,
    get_scale,
)
from . import (
    fig6_dataset,
    fig7_forecast_accuracy,
    fig8_simulation_heatmap,
    fig9_controlled_losses,
    fig10_jammer,
    table1_training_profile,
    table2_hardware_timing,
)

__all__ = [
    "ExperimentScale",
    "SharedDatasets",
    "base_scenario",
    "build_datasets",
    "get_scale",
    "fig6_dataset",
    "fig7_forecast_accuracy",
    "fig8_simulation_heatmap",
    "fig9_controlled_losses",
    "fig10_jammer",
    "table1_training_profile",
    "table2_hardware_timing",
]
