"""Shared infrastructure for the experiment modules.

The paper's evaluation always starts from the same two artefacts — the
experienced-operator training dataset and the inexperienced-operator test
dataset — and then varies the channel.  Dataset construction, sizing scales
and caching all live in the scenario layer now
(:mod:`repro.scenarios`); this module re-exports them for the experiment
modules and hosts the paper's sweep constants plus small helpers shared by
the figures.

The dataset cache is keyed by the *full* :class:`ExperimentScale` value plus
seed (not just the scale name), so passing a custom scale object can never
silently return data sized for a different scale.
"""

from __future__ import annotations

from ..core import ForecoConfig
from ..scenarios import (
    ExperimentScale,
    ForecoSpec,
    ScenarioSpec,
    SharedDatasets,
    build_datasets,
    get_scale,
)

__all__ = [
    "ExperimentScale",
    "SharedDatasets",
    "build_datasets",
    "get_scale",
    "base_scenario",
    "FIG8_PROBABILITIES",
    "FIG8_DURATIONS",
    "FIG8_ROBOT_COUNTS",
    "FIG9_BURST_LENGTHS",
]

#: Interference sweep of Fig. 8 (probability in [0, 1], duration in slots).
FIG8_PROBABILITIES: tuple[float, ...] = (0.01, 0.025, 0.05)
FIG8_DURATIONS: tuple[int, ...] = (10, 50, 100)
FIG8_ROBOT_COUNTS: tuple[int, ...] = (5, 15, 25)

#: Consecutive-loss burst lengths of Fig. 9.
FIG9_BURST_LENGTHS: tuple[int, ...] = (5, 10, 25)


def base_scenario(
    name: str,
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    config: ForecoConfig | None = None,
    **fields,
) -> ScenarioSpec:
    """The scenario spec an experiment starts from.

    ``config`` (a runtime :class:`ForecoConfig`) is frozen into the spec's
    :class:`~repro.scenarios.ForecoSpec`; extra ``fields`` are forwarded to
    :class:`~repro.scenarios.ScenarioSpec` (e.g. ``use_pid=True``).
    """
    foreco = ForecoSpec.from_config(config) if config is not None else ForecoSpec()
    return ScenarioSpec(name=name, scale=get_scale(scale), seed=int(seed), foreco=foreco, **fields)
