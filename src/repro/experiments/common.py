"""Shared infrastructure for the experiment modules.

The paper's evaluation always starts from the same two artefacts — the
experienced-operator training dataset and the inexperienced-operator test
dataset — and then varies the channel.  :func:`build_datasets` produces those
two command streams (cached per scale+seed within a process so the seven
experiments and the benchmark suite do not regenerate them over and over),
and :class:`ExperimentScale` maps the three supported scales to dataset sizes
and repetition counts:

``ci``
    Seconds-long runs used by the integration tests and default benchmarks.
``standard``
    A few minutes in total; the default for the CLI runner.
``full``
    Approaches the paper's sweep sizes (100 task repetitions, 40 simulation
    repetitions per heatmap cell); expect a long run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core import ForecoConfig, ForecoRecovery
from ..errors import ConfigurationError
from ..teleop import OperatorModel, RemoteController, experienced_operator, inexperienced_operator
from ..teleop.controller import CommandStream


@dataclass(frozen=True)
class ExperimentScale:
    """Sizing knobs shared by every experiment.

    Attributes
    ----------
    name:
        Scale label ("ci", "standard", "full").
    train_repetitions / test_repetitions:
        Pick-and-place cycles generated for the experienced (training) and
        inexperienced (test) operators.
    heatmap_repetitions:
        Simulation repetitions averaged per Fig. 8 heatmap cell (paper: 40).
    run_seconds:
        Length of each Fig. 9 / Fig. 10 experiment run (paper: 30 s).
    forecast_windows_ms:
        Forecasting windows evaluated for Fig. 7 (paper: 20–1000 ms).
    forecast_evaluations:
        Number of rolling evaluations per Fig. 7 point.
    seq2seq_units:
        (encoder, decoder) sizes for the seq2seq forecaster; the paper's
        200/30 is used at full scale only, smaller sizes keep the NumPy BPTT
        affordable at CI scale.
    seq2seq_epochs:
        Training epochs for the seq2seq forecaster.
    """

    name: str
    train_repetitions: int
    test_repetitions: int
    heatmap_repetitions: int
    run_seconds: float
    forecast_windows_ms: tuple[int, ...]
    forecast_evaluations: int
    seq2seq_units: tuple[int, int]
    seq2seq_epochs: int


_SCALES: dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci",
        train_repetitions=6,
        test_repetitions=2,
        heatmap_repetitions=2,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 300, 600, 1000),
        forecast_evaluations=30,
        seq2seq_units=(16, 8),
        seq2seq_epochs=2,
    ),
    "standard": ExperimentScale(
        name="standard",
        train_repetitions=20,
        test_repetitions=4,
        heatmap_repetitions=10,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        forecast_evaluations=120,
        seq2seq_units=(64, 16),
        seq2seq_epochs=4,
    ),
    "full": ExperimentScale(
        name="full",
        train_repetitions=100,
        test_repetitions=10,
        heatmap_repetitions=40,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        forecast_evaluations=400,
        seq2seq_units=(200, 30),
        seq2seq_epochs=10,
    ),
}

#: Interference sweep of Fig. 8 (probability in [0, 1], duration in slots).
FIG8_PROBABILITIES: tuple[float, ...] = (0.01, 0.025, 0.05)
FIG8_DURATIONS: tuple[int, ...] = (10, 50, 100)
FIG8_ROBOT_COUNTS: tuple[int, ...] = (5, 15, 25)

#: Consecutive-loss burst lengths of Fig. 9.
FIG9_BURST_LENGTHS: tuple[int, ...] = (5, 10, 25)


def get_scale(scale: str | ExperimentScale = "ci") -> ExperimentScale:
    """Resolve a scale by name (or pass an :class:`ExperimentScale` through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment scale {scale!r}; available: {sorted(_SCALES)}"
        ) from exc


@dataclass
class SharedDatasets:
    """The two operator command streams every experiment starts from."""

    experienced: CommandStream
    inexperienced: CommandStream

    @property
    def n_joints(self) -> int:
        """Command dimensionality (6 for the Niryo One)."""
        return self.experienced.n_joints


@lru_cache(maxsize=8)
def _cached_datasets(scale_name: str, seed: int) -> SharedDatasets:
    scale = get_scale(scale_name)
    controller = RemoteController()
    experienced = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=seed),
        n_repetitions=scale.train_repetitions,
    )
    inexperienced = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=seed + 1),
        n_repetitions=scale.test_repetitions,
    )
    return SharedDatasets(experienced=experienced, inexperienced=inexperienced)


def build_datasets(scale: str | ExperimentScale = "ci", seed: int = 42) -> SharedDatasets:
    """Build (or fetch from the in-process cache) the shared operator datasets."""
    scale = get_scale(scale)
    return _cached_datasets(scale.name, int(seed))


def default_recovery(datasets: SharedDatasets, config: ForecoConfig | None = None) -> ForecoRecovery:
    """Train a FoReCo recovery engine on the experienced dataset."""
    config = config if config is not None else ForecoConfig()
    recovery = ForecoRecovery(config=config)
    recovery.train(datasets.experienced.commands)
    return recovery


def test_commands_for_run(datasets: SharedDatasets, run_seconds: float) -> np.ndarray:
    """The first ``run_seconds`` worth of inexperienced-operator commands."""
    stream = datasets.inexperienced.head_seconds(run_seconds)
    return stream.commands
