"""Fig. 10 — jammed-channel experiment with PID recovery transient.

In the paper's second experimental analysis (§VI-D2), a 2.4 GHz jammer
interferes with the wireless channel for a 30-second run.  The reported
outcomes are:

* FoReCo reduces the trajectory RMSE by more than 2x (18.91 mm → 8.72 mm);
* during long jam bursts FoReCo's forecast slowly drifts (the same error
  propagation as Fig. 9);
* after the channel recovers, the stock stack's MoveIt PID controller needs
  ≈400 ms to settle back onto the defined trajectory, because it received
  repeated commands for over a second.

This module reproduces the run as a single ``jammer`` :class:`ScenarioSpec`
(Gilbert–Elliott channel, PID joint controller enabled) resolved through the
scenario session engine, and reports the RMSE pair, the improvement factor
and the measured PID settling time after the longest jam burst.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..core import ForecoConfig, SimulationOutcome
from ..robot.niryo import NiryoOneArm
from ..scenarios import SessionEngine, jammer_channel
from ..wireless import JammerConfig
from .common import ExperimentScale, base_scenario, get_scale


@dataclass
class Fig10Result:
    """Jammed-run comparison between the stock stack and FoReCo."""

    rmse_no_forecast_mm: float
    rmse_foreco_mm: float
    jammed_fraction: float
    longest_burst_commands: int
    pid_settling_ms: float
    outcome: SimulationOutcome

    @property
    def improvement_factor(self) -> float:
        """No-forecast RMSE divided by FoReCo RMSE (paper: ≈2x)."""
        return self.rmse_no_forecast_mm / max(self.rmse_foreco_mm, 1e-9)

    def to_text(self) -> str:
        """Human-readable summary of the Fig. 10 reproduction."""
        return "\n".join(
            [
                "# Fig. 10 — robot trajectory upon IEEE 802.11 jammer interference",
                f"no-forecast RMSE [mm] : {self.rmse_no_forecast_mm:.2f}",
                f"FoReCo RMSE [mm]      : {self.rmse_foreco_mm:.2f}",
                f"improvement           : x{self.improvement_factor:.2f}",
                f"jammed command share  : {self.jammed_fraction:.2f}",
                f"longest jam burst     : {self.longest_burst_commands} commands",
                f"PID settling time     : {self.pid_settling_ms:.0f} ms after channel recovery",
            ]
        )

    def to_dict(self) -> dict:
        """JSON-safe rendering of the headline numbers."""
        return {
            "experiment": "fig10",
            "rmse_no_forecast_mm": self.rmse_no_forecast_mm,
            "rmse_foreco_mm": self.rmse_foreco_mm,
            "improvement_factor": self.improvement_factor,
            "jammed_fraction": self.jammed_fraction,
            "longest_burst_commands": self.longest_burst_commands,
            "pid_settling_ms": self.pid_settling_ms,
        }


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    jammer_config: JammerConfig | None = None,
    config: ForecoConfig | None = None,
    use_pid: bool = True,
    jobs: int = 1,
) -> Fig10Result:
    """Reproduce the jammed-channel experiment (``jobs`` accepted for CLI uniformity)."""
    scale = get_scale(scale)
    channel_params = asdict(jammer_config) if jammer_config is not None else {}
    spec = base_scenario(
        "fig10",
        scale,
        seed,
        config,
        channel=jammer_channel(**channel_params),
        run_seconds=scale.run_seconds,
        use_pid=use_pid,
    )
    row = SessionEngine().run(spec)
    outcome = row.outcome
    delays = row.delays_ms

    period_ms = spec.foreco.command_period_ms
    deadline_ms = spec.foreco.to_config().deadline_ms
    late_mask = ~np.isfinite(delays) | (delays > deadline_ms)
    longest = _longest_run(late_mask)
    settling_ms = _pid_settling_after_recovery(outcome, late_mask, period_ms)

    return Fig10Result(
        rmse_no_forecast_mm=outcome.rmse_no_forecast_mm,
        rmse_foreco_mm=outcome.rmse_foreco_mm,
        jammed_fraction=float(late_mask.mean()),
        longest_burst_commands=longest,
        pid_settling_ms=settling_ms,
        outcome=outcome,
    )


def _longest_run(mask: np.ndarray) -> int:
    """Length of the longest run of ``True`` entries."""
    longest = current = 0
    for value in mask:
        current = current + 1 if value else 0
        longest = max(longest, current)
    return int(longest)


def _pid_settling_after_recovery(
    outcome: SimulationOutcome, late_mask: np.ndarray, period_ms: float, threshold_mm: float | None = None
) -> float:
    """Time the baseline needs to settle back after the longest outage ends.

    Mirrors the paper's observation that the PID takes ≈400 ms to re-converge
    after the channel recovers from a long jam burst.  The settling threshold
    defaults to the baseline's own steady-state error level (its median error
    over slots whose command arrived on time) plus a 3 mm margin.
    """
    arm = NiryoOneArm()
    baseline = arm.kinematics.positions(outcome.baseline.joints) * 1000.0
    defined = arm.kinematics.positions(outcome.defined.joints) * 1000.0
    errors = np.linalg.norm(baseline - defined, axis=1)
    if threshold_mm is None:
        on_time_errors = errors[~late_mask] if np.any(~late_mask) else errors
        threshold_mm = float(np.median(on_time_errors)) + 3.0

    # Find the end of the longest outage.
    longest_end = 0
    longest_length = 0
    current = 0
    for index, late in enumerate(late_mask):
        if late:
            current += 1
            if current > longest_length:
                longest_length = current
                longest_end = index
        else:
            current = 0
    if longest_length == 0:
        return 0.0
    recovery_start = longest_end + 1
    settled_slots = 0
    for index in range(recovery_start, errors.size):
        settled_slots = index - recovery_start
        if errors[index] <= threshold_mm:
            break
    return float(settled_slots * period_ms)
