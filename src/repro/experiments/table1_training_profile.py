"""Table I — time profiling of FoReCo training on the robot.

The paper breaks the training path into four stages and measures them on the
Niryo One's Raspberry Pi 3: Load Data, Down Sampling, Check Quality and
Training Model.  This experiment runs the same pipeline
(:class:`repro.core.pipeline.TrainingPipeline`) on the experienced-operator
dataset, times every stage on the current host, and also projects the totals
onto the Raspberry Pi using the calibrated hardware scale factors (see
:mod:`repro.analysis.profiling`).

The expected shape: the quality check and model training dominate, loading
and down-sampling are comparatively negligible, and single-command inference
stays far below the Ω = 20 ms control period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.profiling import HARDWARE_PROFILES
from ..analysis.statistics import summarize
from ..core import CommandDataset, ForecoConfig, TrainingPipeline
from ..scenarios import SessionEngine
from .common import ExperimentScale, base_scenario, get_scale


@dataclass
class Table1Result:
    """Per-stage timings (seconds) over repeated pipeline runs."""

    stage_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    n_runs: int = 0
    n_commands: int = 0
    test_rmse_mm: float = float("nan")
    inference_ms: float = float("nan")
    projected_pi_total_s: float = float("nan")

    def to_text(self) -> str:
        """Render the Table I layout."""
        lines = [
            "# Table I — time profiling of FoReCo training"
            f" ({self.n_runs} runs, {self.n_commands} commands)",
            f"{'stage':<16s} {'mean [s]':>10s} {'std [s]':>10s}",
        ]
        for stage, stats in self.stage_stats.items():
            lines.append(f"{stage:<16s} {stats['mean']:>10.4f} {stats['std']:>10.4f}")
        lines.append(f"{'inference [ms]':<16s} {self.inference_ms:>10.4f}")
        pi_scale = (
            HARDWARE_PROFILES["raspberry-pi3"].training_scale
            / HARDWARE_PROFILES["laptop"].training_scale
        )
        lines.append(
            f"projected Raspberry Pi 3 total: {self.projected_pi_total_s:.1f} s "
            f"(host total x {pi_scale:.1f})"
        )
        return "\n".join(lines)

    @property
    def total_mean_s(self) -> float:
        """Mean total pipeline duration on the current host."""
        return float(sum(stats["mean"] for stats in self.stage_stats.values()))

    def to_dict(self) -> dict:
        """JSON-safe rendering of the stage-timing table."""
        return {
            "experiment": "table1",
            "n_runs": self.n_runs,
            "n_commands": self.n_commands,
            "stage_stats": {stage: dict(stats) for stage, stats in self.stage_stats.items()},
            "test_rmse_mm": self.test_rmse_mm,
            "inference_ms": self.inference_ms,
            "projected_pi_total_s": self.projected_pi_total_s,
        }


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    repetitions: int = 3,
    downsample_factor: int = 1,
    config: ForecoConfig | None = None,
    jobs: int = 1,
) -> Table1Result:
    """Profile the training pipeline stages over ``repetitions`` runs.

    ``jobs`` is accepted for CLI uniformity but ignored: parallel runs would
    contend for the CPU and skew the wall-clock timings being measured.
    """
    scale = get_scale(scale)
    datasets = SessionEngine().datasets(base_scenario("table1", scale, seed, config))
    config = config if config is not None else ForecoConfig()

    dataset = CommandDataset(datasets.n_joints, period_ms=config.command_period_ms)
    dataset.extend(datasets.experienced.commands)
    pipeline = TrainingPipeline(config=config, downsample_factor=downsample_factor)

    stage_samples: dict[str, list[float]] = {
        "load_data": [], "downsampling": [], "check_quality": [], "training_model": [],
    }
    test_rmse = float("nan")
    inference_ms = float("nan")
    for _ in range(max(1, repetitions)):
        _, report = pipeline.run(dataset)
        stage_samples["load_data"].append(report.timings.load_data_s)
        stage_samples["downsampling"].append(report.timings.downsampling_s)
        stage_samples["check_quality"].append(report.timings.quality_check_s)
        stage_samples["training_model"].append(report.timings.training_s)
        test_rmse = report.test_rmse
        inference_ms = report.inference_time_ms

    result = Table1Result(
        n_runs=max(1, repetitions),
        n_commands=len(dataset),
        test_rmse_mm=test_rmse,
        inference_ms=inference_ms,
    )
    host_total = 0.0
    for stage, samples in stage_samples.items():
        stats = summarize(np.array(samples))
        result.stage_stats[stage] = stats
        host_total += stats["mean"]
    pi = HARDWARE_PROFILES["raspberry-pi3"].training_scale
    laptop = HARDWARE_PROFILES["laptop"].training_scale
    result.projected_pi_total_s = host_total * pi / laptop
    return result
