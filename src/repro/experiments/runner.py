"""Command-line runner for the paper experiments.

Installed as the ``foreco-experiments`` console script::

    foreco-experiments all                 # every figure/table at CI scale
    foreco-experiments fig8 --scale standard
    foreco-experiments fig7 fig9 --seed 7 --output results.txt

Each experiment prints the text rendering of its result (the same tables the
benchmark harness produces), so the paper-vs-measured comparison recorded in
EXPERIMENTS.md can be regenerated with a single command.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from . import (
    fig6_dataset,
    fig7_forecast_accuracy,
    fig8_simulation_heatmap,
    fig9_controlled_losses,
    fig10_jammer,
    table1_training_profile,
    table2_hardware_timing,
)

#: Registry of experiment name -> run callable.
EXPERIMENTS: dict[str, Callable] = {
    "fig6": fig6_dataset.run,
    "fig7": fig7_forecast_accuracy.run,
    "fig8": fig8_simulation_heatmap.run,
    "fig9": fig9_controlled_losses.run,
    "fig10": fig10_jammer.run,
    "table1": table1_training_profile.run,
    "table2": table2_hardware_timing.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``foreco-experiments`` entry point."""
    parser = argparse.ArgumentParser(
        prog="foreco-experiments",
        description="Regenerate the FoReCo paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiments to run: " + ", ".join(sorted(EXPERIMENTS)) + ", or 'all'",
    )
    parser.add_argument("--scale", default="ci", choices=["ci", "standard", "full"],
                        help="experiment scale (default: ci)")
    parser.add_argument("--seed", type=int, default=42, help="random seed (default: 42)")
    parser.add_argument("--output", default=None, help="also write the report to this file")
    return parser


def run_experiments(names: list[str], scale: str, seed: int) -> str:
    """Run the selected experiments and return the combined text report."""
    if any(name == "all" for name in names):
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
    sections = []
    for name in names:
        result = EXPERIMENTS[name](scale=scale, seed=seed)
        sections.append(result.to_text())
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    report = run_experiments(args.experiments, scale=args.scale, seed=args.seed)
    sys.stdout.write(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
