"""Command-line runner for the paper experiments and scenario presets.

Installed as the ``foreco-experiments`` console script::

    foreco-experiments all                     # every figure/table at CI scale
    foreco-experiments fig8 --scale ci --jobs 4
    foreco-experiments fig7 fig9 --seed 7 --output results.txt
    foreco-experiments --scenario jammer --scenario congested-ap --jobs 2
    foreco-experiments all --format json       # machine-readable report
    foreco-experiments --scenario all --store ~/.cache/foreco-store
    foreco-experiments --scenario all --store ~/.cache/foreco-store --resume
    foreco-experiments fleet                   # every fleet preset
    foreco-experiments fleet --fleet 8 --jobs 4  # ... with 8 operators each

(also installed as ``repro-experiments``, the name CI uses)

Each experiment prints the text rendering of its result (the same tables the
benchmark harness produces) or, with ``--format json``, a JSON document, so
the paper-vs-measured comparison recorded in EXPERIMENTS.md can be
regenerated with a single command.  ``--jobs`` fans sweep-style experiments
out over worker threads through the scenario engine; results are identical
to the serial run.  ``--scenario`` runs named presets from
:mod:`repro.scenarios.registry` (repeat the flag for several; the special
name ``all`` runs every preset).

``--store PATH`` attaches a persistent :class:`repro.scenarios.ResultStore`
to the scenario sweep: results already stored are loaded instead of
recomputed, everything newly computed is written back, and the report states
the hit/miss partition — so an interrupted or extended sweep only ever
computes what is missing.  ``--resume`` additionally *requires* the store to
exist and be non-empty, guarding against a mistyped path silently
recomputing a whole grid from scratch.  (The figure/table experiments run
their own pipelines and are not stored.)

The ``search`` keyword runs the budgeted coverage-guided scenario search
(:mod:`repro.scenarios.search`) over the combinator grammar: ``--budget N``
sets the number of candidate evaluations, ``--promote`` registers the
top-discovered worst cases as ``adversarial-*`` presets for the rest of the
invocation (they then run like any preset via ``--scenario all``), and
``--store``/``--resume``/``--jobs``/``--backend`` memoize and parallelise
the probes exactly like scenario sweeps — a warm rerun against the same
store recomputes nothing.

The ``fleet`` keyword runs every fleet preset from
:mod:`repro.fleet.registry` — multi-operator service workloads with shared
access points, admission control and arrival processes (see
``docs/fleet.md``).  ``--fleet N`` overrides the operator population of
every fleet preset (and implies the ``fleet`` run); ``--fleet-tier
hybrid|exact`` overrides the simulation tier (the city-scale hybrid tier
classifies APs hot/cold and services the cold tail analytically — see
``docs/fleet.md`` "City scale"); fleets honour ``--jobs``, ``--store`` and
``--resume`` exactly like scenario sweeps.  Reports carry a tier section:
per-fleet tier fields in JSON rows plus an aggregate ``fleet_tier`` block,
and a ``tier:`` summary line in text mode.

The ``serve`` keyword runs every live-service preset from
:mod:`repro.service.registry` — fleet workloads operated under online
admission control on the virtual clock (see ``docs/fleet.md`` "Live
operations").  ``--policy NAME`` overrides each preset's admission policy
(``static-cap``, ``utilization-threshold`` or ``forecast-aware``) and
``--until SECONDS`` bounds the virtual admission horizon; serve runs honour
``--jobs``, ``--store`` and ``--resume`` exactly like the other sweeps and
are bit-identical for any worker count.

The ``plan`` keyword runs every capacity-plan preset from
:mod:`repro.fleet.plan` — SLO-driven searches over per-AP admission
capacities (see ``docs/fleet.md`` "Capacity planning").  ``--slo-p99`` and
``--slo-drop`` override the p99-recovery and drop-rate gates of every
preset, ``--budget N`` caps the number of capacities probed, and
``--jobs``/``--backend``/``--store``/``--resume`` parallelise and memoize
the probes exactly like scenario sweeps; with a store, the finished plans
persist under their own content addresses, so a warm rerun loads the plan
records and recomputes nothing.

Flags that only make sense for one keyword are rejected when that keyword
is absent (``--fleet-tier`` without ``fleet``, ``--budget`` without
``search``/``plan``, ``--promote`` without ``search``,
``--policy``/``--until`` without ``serve``, ``--slo-p99``/``--slo-drop``
without ``plan``): the
library entry point :func:`run_experiments` raises
:class:`~repro.errors.ConfigurationError`, which :func:`main` renders as a
clean CLI error.  JSON reports carry a top-level ``"report_version"``
field (:data:`REPORT_VERSION`); consumers should pin it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable

from ..errors import ConfigurationError
from ..scenarios import ResultStore, SweepExecutor, get_scenario, scenario_catalog, scenario_names
from . import (
    fig6_dataset,
    fig7_forecast_accuracy,
    fig8_simulation_heatmap,
    fig9_controlled_losses,
    fig10_jammer,
    table1_training_profile,
    table2_hardware_timing,
)

#: Version of the JSON report schema.  Bump when a section is added,
#: removed or restructured, so downstream consumers can pin the shape.
#: (2: added the ``plans`` section and plan lookups in ``store``.)
REPORT_VERSION = 2

#: Registry of experiment name -> run callable.
EXPERIMENTS: dict[str, Callable] = {
    "fig6": fig6_dataset.run,
    "fig7": fig7_forecast_accuracy.run,
    "fig8": fig8_simulation_heatmap.run,
    "fig9": fig9_controlled_losses.run,
    "fig10": fig10_jammer.run,
    "table1": table1_training_profile.run,
    "table2": table2_hardware_timing.run,
}


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``foreco-experiments`` entry point."""
    parser = argparse.ArgumentParser(
        prog="foreco-experiments",
        description="Regenerate the FoReCo paper's figures and tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiments to run: " + ", ".join(sorted(EXPERIMENTS)) + ", 'all', "
        "'fleet' (every fleet preset), 'serve' (every live-service preset), "
        "'search' (coverage-guided scenario search), or 'plan' (SLO-driven "
        "capacity planning)",
    )
    parser.add_argument("--scale", default="ci", choices=["ci", "standard", "full"],
                        help="experiment scale (default: ci)")
    parser.add_argument("--seed", type=int, default=42, help="random seed (default: 42)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker threads for sweep-style experiments (default: 1)")
    parser.add_argument("--backend", default="thread", choices=["thread", "process"],
                        help="--scenario sweep backend: shared-cache threads or "
                        "multi-core worker processes (default: thread)")
    parser.add_argument(
        "--scenario",
        action="append",
        default=[],
        metavar="NAME",
        help="also run a named scenario preset ("
        + ", ".join(scenario_names())
        + "); repeat for several, or 'all' for every preset",
    )
    parser.add_argument("--fleet", type=int, default=None, metavar="N",
                        help="operator-population override for the fleet presets; "
                        "implies the 'fleet' run (see docs/fleet.md)")
    parser.add_argument("--fleet-tier", dest="fleet_tier", default=None,
                        choices=["exact", "hybrid"],
                        help="simulation-tier override for the fleet presets: "
                        "'exact' forces the vectorized Lindley path, 'hybrid' the "
                        "city-scale exact/analytic tier (default: each preset's own "
                        "tier; see docs/fleet.md 'City scale')")
    parser.add_argument("--budget", type=int, default=None, metavar="N",
                        help="evaluation budget: candidate evaluations for the "
                        "'search' keyword (default: 16), capacities probed per "
                        "plan for the 'plan' keyword (default: each preset's "
                        "own); only valid with 'search' or 'plan'")
    parser.add_argument("--promote", action="store_true",
                        help="register the search's top discoveries as "
                        "'adversarial-*' presets (requires the 'search' keyword)")
    parser.add_argument("--policy", default=None, metavar="NAME",
                        help="admission-policy override for the 'serve' keyword: "
                        "static-cap, utilization-threshold or forecast-aware "
                        "(default: each preset's own policy)")
    parser.add_argument("--until", type=float, default=None, metavar="SECONDS",
                        help="virtual-time admission horizon for the 'serve' "
                        "keyword: arrivals after this instant never enter the "
                        "service (default: accept every arrival)")
    parser.add_argument("--slo-p99", dest="slo_p99", type=float, default=None,
                        metavar="FRACTION",
                        help="p99-recovery SLO override for the 'plan' keyword: "
                        "99%% of admitted sessions must recover at least this "
                        "fraction (default: each preset's own gate)")
    parser.add_argument("--slo-drop", dest="slo_drop", type=float, default=None,
                        metavar="FRACTION",
                        help="drop-rate SLO override for the 'plan' keyword: the "
                        "chosen capacity may drop at most this fraction of "
                        "sessions (default: each preset's own gate)")
    parser.add_argument("--format", dest="fmt", default="text", choices=["text", "json"],
                        help="report format (default: text)")
    parser.add_argument("--output", default=None, help="also write the report to this file")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persistent result store for --scenario sweeps: stored "
                        "results are reused, computed ones written back")
    parser.add_argument("--resume", action="store_true",
                        help="require --store to exist and be non-empty (refuses to "
                        "silently recompute a whole sweep from a mistyped path)")
    return parser


def _open_store(path: str | None, resume: bool) -> ResultStore | None:
    """Materialise the ``--store``/``--resume`` flags (shared CLI semantics)."""
    if path is None:
        if resume:
            raise ConfigurationError("--resume requires --store PATH (nothing to resume from)")
        return None
    store = ResultStore(path)
    if resume and len(store) == 0:
        raise ConfigurationError(
            f"--resume: store at {path!r} has no entries for engine epoch "
            f"{store.epoch}; drop --resume for a first run (or check the path)"
        )
    return store


def _plan_store_partition(plans) -> tuple[int, int]:
    """This-run store hits/misses attributable to the ``plan`` keyword.

    A plan loaded whole from its record is one hit and zero probes; a
    computed plan contributes its probes' partition plus the one miss of
    the failed plan-record lookup.
    """
    hits = misses = 0
    for report in plans or ():
        if report.from_store:
            hits += 1
        else:
            hits += report.store_hits
            misses += report.store_misses + 1
    return hits, misses


def run_experiments(
    names: list[str],
    scale: str,
    seed: int,
    jobs: int = 1,
    fmt: str = "text",
    scenarios: list[str] | None = None,
    backend: str = "thread",
    store: str | None = None,
    resume: bool = False,
    fleet: int | None = None,
    fleet_tier: str | None = None,
    budget: int | None = None,
    promote: bool = False,
    policy: str | None = None,
    until: float | None = None,
    slo_p99: float | None = None,
    slo_drop: float | None = None,
) -> str:
    """Run the selected experiments/scenarios/fleets/services and return the report.

    This is the library entry point behind :func:`main`; configuration
    misuse (unknown names, flags without their keyword) raises
    :class:`~repro.errors.ConfigurationError` rather than exiting the
    process, so programmatic callers can handle it.
    """
    names = list(names)
    fleet_requested = fleet is not None or "fleet" in names
    search_requested = "search" in names
    serve_requested = "serve" in names
    plan_requested = "plan" in names
    names = [name for name in names if name not in ("fleet", "search", "serve", "plan")]
    if any(name == "all" for name in names):
        names = sorted(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        raise ConfigurationError(f"unknown experiment(s): {', '.join(unknown)}")
    if fleet_tier is not None and not fleet_requested:
        raise ConfigurationError(
            "--fleet-tier only applies to fleet runs: add the 'fleet' keyword or --fleet N"
        )
    if budget is not None and not (search_requested or plan_requested):
        raise ConfigurationError("--budget only applies to the 'search' and 'plan' keywords")
    if promote and not search_requested:
        raise ConfigurationError("--promote only applies to the 'search' keyword")
    if policy is not None and not serve_requested:
        raise ConfigurationError("--policy only applies to the 'serve' keyword")
    if until is not None and not serve_requested:
        raise ConfigurationError("--until only applies to the 'serve' keyword")
    if slo_p99 is not None and not plan_requested:
        raise ConfigurationError("--slo-p99 only applies to the 'plan' keyword")
    if slo_drop is not None and not plan_requested:
        raise ConfigurationError("--slo-drop only applies to the 'plan' keyword")
    scenarios = list(scenarios or [])
    if (
        not names
        and not scenarios
        and not fleet_requested
        and not search_requested
        and not serve_requested
        and not plan_requested
    ):
        raise ConfigurationError(
            "nothing to run: pass experiment names, 'fleet', 'serve', 'search', "
            "'plan' and/or --scenario"
        )
    result_store = _open_store(store, resume)

    results = {name: EXPERIMENTS[name](scale=scale, seed=seed, jobs=jobs) for name in names}
    # One executor serves every sweep-shaped run (scenario presets, fleet
    # presets, service presets, search probes), so they share
    # dataset/forecaster caches.
    executor = SweepExecutor(jobs=jobs, backend=backend, store=result_store)
    search_result = None
    if search_requested:
        from ..scenarios.search import ScenarioSearch, SearchConfig  # deferred: keeps import light

        config = SearchConfig(budget=16 if budget is None else budget, seed=seed)
        search_result = ScenarioSearch(config=config, executor=executor).run()
        if promote:
            search_result.promote()
    if any(name == "all" for name in scenarios):
        # Expanded after a possible --promote, so 'all' includes presets the
        # search registered moments ago.
        scenarios = scenario_names()
    sweep = None
    if scenarios:
        specs = [get_scenario(name, scale=scale, seed=seed) for name in scenarios]
        sweep = executor.run(specs)
    fleet_sweep = None
    fleet_presets: list[str] = []
    if fleet_requested:
        from ..fleet import fleet_names, get_fleet  # deferred: keeps import light

        fleet_presets = fleet_names()
        fleet_overrides = {} if fleet_tier is None else {"tier": fleet_tier}
        fleet_specs = [
            get_fleet(name, operators=fleet, scale=scale, seed=seed, **fleet_overrides)
            for name in fleet_presets
        ]
        fleet_sweep = executor.run(fleet_specs)
    service_sweep = None
    service_presets: list[str] = []
    if serve_requested:
        from ..service import get_service, service_names  # deferred: keeps import light

        service_presets = service_names()
        service_specs = [
            get_service(name, policy=policy, scale=scale, seed=seed)
            for name in service_presets
        ]
        if until is not None:
            service_specs = [spec.with_(until_s=until) for spec in service_specs]
        service_sweep = executor.run(service_specs)
    plans = None
    plan_presets: list[str] = []
    if plan_requested:
        from ..fleet import CapacityPlanner, get_plan, plan_names  # deferred: keeps import light

        plan_overrides: dict = {}
        if slo_p99 is not None:
            plan_overrides["slo_p99"] = slo_p99
        if slo_drop is not None:
            plan_overrides["slo_drop"] = slo_drop
        if budget is not None:
            plan_overrides["budget"] = budget
        plan_presets = plan_names()
        planner = CapacityPlanner(executor=executor)
        plans = [
            planner.run(get_plan(name, scale=scale, seed=seed, **plan_overrides))
            for name in plan_presets
        ]

    if fmt == "json":
        document: dict = {
            "report_version": REPORT_VERSION,
            "scale": scale,
            "seed": seed,
            "experiments": {name: result.to_dict() for name, result in results.items()},
        }
        if search_result is not None:
            document["search"] = search_result.to_dict()
        if sweep is not None:
            document["scenarios"] = sweep.to_records()
        if fleet_sweep is not None:
            document["fleets"] = fleet_sweep.to_records()
            document["fleet_tier"] = {
                "override": fleet_tier,
                "tiers": {row.spec.name: row.tier for row in fleet_sweep},
                "hot_aps": sum(row.hot_aps for row in fleet_sweep),
                "cold_aps": sum(row.cold_aps for row in fleet_sweep),
                "exact_sessions": sum(row.exact_sessions for row in fleet_sweep),
                "analytic_sessions": sum(row.analytic_sessions for row in fleet_sweep),
            }
        if service_sweep is not None:
            document["services"] = service_sweep.to_records()
        if plans is not None:
            document["plans"] = [report.to_dict() for report in plans]
        sweeps = (sweep, fleet_sweep, service_sweep)
        if result_store is not None and (any(s is not None for s in sweeps) or plans is not None):
            stats = result_store.stats()
            hits = sum(s.store_hits for s in sweeps if s is not None)
            misses = sum(s.store_misses for s in sweeps if s is not None)
            plan_hits, plan_misses = _plan_store_partition(plans)
            hits += plan_hits
            misses += plan_misses
            document["store"] = {
                "path": str(result_store.root),
                "epoch": result_store.epoch,
                "hits": hits,
                "misses": misses,
                "entries": stats.entries,
                "total_bytes": stats.total_bytes,
            }
        return json.dumps(document, indent=2) + "\n"

    sections = []
    for result in results.values():
        sections.append(result.to_text())
        sections.append("")
    if search_result is not None:
        sections.append("# scenario search")
        sections.append(search_result.to_text())
        sections.append("")
    if sweep is not None:
        catalog = scenario_catalog()
        sections.append("# scenario presets")
        for name, row in zip(scenarios, sweep):
            description = catalog.get(row.spec.name, "")
            if description:
                sections.append(f"## {name} — {description}")
        sections.append(sweep.to_table())
        if result_store is not None:
            stats = result_store.stats()
            sections.append(
                f"store: {sweep.store_hits} hits / {sweep.store_misses} misses "
                f"({100.0 * sweep.hit_fraction:.0f}% reused), "
                f"{stats.entries} entries at {result_store.root} (epoch {result_store.epoch})"
            )
        sections.append("")
    if fleet_sweep is not None:
        from ..fleet import fleet_catalog

        catalog = fleet_catalog()
        sections.append("# fleet presets")
        for name, row in zip(fleet_presets, fleet_sweep):
            description = catalog.get(row.spec.name, "")
            if description:
                sections.append(f"## {name} — {description}")
            sections.append(row.to_text())
        hybrid_rows = [row for row in fleet_sweep if row.tier != "exact"]
        tier_line = (
            f"tier: {len(hybrid_rows)}/{len(fleet_sweep)} presets hybrid "
            f"({sum(r.exact_sessions for r in fleet_sweep)} exact + "
            f"{sum(r.analytic_sessions for r in fleet_sweep)} analytic sessions)"
        )
        if fleet_tier is not None:
            tier_line += f" | --fleet-tier {fleet_tier} override"
        sections.append(tier_line)
        if result_store is not None:
            stats = result_store.stats()
            sections.append(
                f"store: {fleet_sweep.store_hits} hits / {fleet_sweep.store_misses} misses "
                f"({100.0 * fleet_sweep.hit_fraction:.0f}% reused), "
                f"{stats.entries} entries at {result_store.root} (epoch {result_store.epoch})"
            )
        sections.append("")
    if service_sweep is not None:
        from ..service import service_catalog  # deferred: keeps import light

        catalog = service_catalog()
        sections.append("# service presets")
        for name, row in zip(service_presets, service_sweep):
            description = catalog.get(name, "")
            if description:
                sections.append(f"## {name} — {description}")
            sections.append(row.to_text())
        overrides = []
        if policy is not None:
            overrides.append(f"--policy {policy}")
        if until is not None:
            overrides.append(f"--until {until:g}")
        if overrides:
            sections.append(f"overrides: {' '.join(overrides)}")
        if result_store is not None:
            stats = result_store.stats()
            sections.append(
                f"store: {service_sweep.store_hits} hits / {service_sweep.store_misses} misses "
                f"({100.0 * service_sweep.hit_fraction:.0f}% reused), "
                f"{stats.entries} entries at {result_store.root} (epoch {result_store.epoch})"
            )
        sections.append("")
    if plans is not None:
        from ..fleet import plan_catalog  # deferred: keeps import light

        catalog = plan_catalog()
        sections.append("# capacity plans")
        for name, report in zip(plan_presets, plans):
            description = catalog.get(name, "")
            if description:
                sections.append(f"## {name} — {description}")
            sections.append(report.to_text())
        overrides = []
        if slo_p99 is not None:
            overrides.append(f"--slo-p99 {slo_p99:g}")
        if slo_drop is not None:
            overrides.append(f"--slo-drop {slo_drop:g}")
        if budget is not None:
            overrides.append(f"--budget {budget}")
        if overrides:
            sections.append(f"overrides: {' '.join(overrides)}")
        if result_store is not None:
            stats = result_store.stats()
            plan_hits, plan_misses = _plan_store_partition(plans)
            lookups = plan_hits + plan_misses
            reused = 100.0 * plan_hits / lookups if lookups else 0.0
            sections.append(
                f"store: {plan_hits} hits / {plan_misses} misses "
                f"({reused:.0f}% reused), "
                f"{stats.entries} entries at {result_store.root} (epoch {result_store.epoch})"
            )
        sections.append("")
    return "\n".join(sections).rstrip() + "\n"


def main(argv: list[str] | None = None) -> int:
    """Entry point used by the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        report = run_experiments(
            args.experiments,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            fmt=args.fmt,
            scenarios=args.scenario,
            backend=args.backend,
            store=args.store,
            resume=args.resume,
            fleet=args.fleet,
            fleet_tier=args.fleet_tier,
            budget=args.budget,
            promote=args.promote,
            policy=args.policy,
            until=args.until,
            slo_p99=args.slo_p99,
            slo_drop=args.slo_drop,
        )
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc
    sys.stdout.write(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    raise SystemExit(main())
