"""Fig. 8 — simulation heatmaps: trajectory RMSE with and without FoReCo.

The paper replays the inexperienced operator's command stream through the
IEEE 802.11 analytical model for 5 / 15 / 25 robots sharing the medium, and
sweeps the interference probability (1%, 2.5%, 5%) and duration (10, 50, 100
slots).  For every cell it averages the trajectory RMSE over 40 repetitions,
once with the stock robot stack ("no forecasting") and once with FoReCo.

The sweep itself is declarative: one :class:`ScenarioSpec` per heatmap cell,
expanded with :func:`repro.scenarios.scenario_grid` and executed by the
:class:`repro.scenarios.SweepExecutor` (pass ``jobs`` to fan the cells out
over worker threads; results are identical to the serial run).

Reported outcome (the shape this experiment reproduces):

* the no-forecast error grows sharply with interference probability/duration
  and with the number of robots;
* FoReCo keeps the error bounded and roughly an order of magnitude smaller
  in the mild-to-moderate cells, and still wins in the worst cells;
* FoReCo's own error grows mildly along the same axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.heatmap import HeatmapGrid
from ..analysis.sweeps import heatmap_from_sweep
from ..core import ForecoConfig
from ..scenarios import SweepExecutor, scenario_grid, wireless_channel
from .common import (
    FIG8_DURATIONS,
    FIG8_PROBABILITIES,
    FIG8_ROBOT_COUNTS,
    ExperimentScale,
    base_scenario,
    get_scale,
)


@dataclass
class Fig8Result:
    """Per-robot-count heatmap pairs (no-forecast vs FoReCo)."""

    robot_counts: list[int]
    no_forecast: dict[int, HeatmapGrid] = field(default_factory=dict)
    foreco: dict[int, HeatmapGrid] = field(default_factory=dict)
    repetitions: int = 0

    def to_text(self) -> str:
        """Render all six heatmaps (paper layout: top row no-forecast, bottom FoReCo)."""
        blocks = [f"# Fig. 8 — trajectory RMSE heatmaps ({self.repetitions} repetitions/cell)"]
        for robots in self.robot_counts:
            blocks.append(self.no_forecast[robots].to_text())
            blocks.append(self.foreco[robots].to_text())
            blocks.append("")
        blocks.append(self.summary_text())
        return "\n".join(blocks)

    def summary_text(self) -> str:
        """The headline numbers the paper quotes from the figure."""
        lines = ["# summary"]
        for robots in self.robot_counts:
            worst_foreco = self.foreco[robots].max_mean()
            worst_baseline = self.no_forecast[robots].max_mean()
            lines.append(
                f"{robots:2d} robots: worst-cell no-forecast {worst_baseline:8.2f} mm, "
                f"worst-cell FoReCo {worst_foreco:6.2f} mm, "
                f"improvement x{worst_baseline / max(worst_foreco, 1e-9):.1f}"
            )
        return "\n".join(lines)

    def improvement_factor(self, robots: int) -> float:
        """Worst-cell no-forecast RMSE divided by worst-cell FoReCo RMSE."""
        return self.no_forecast[robots].max_mean() / max(self.foreco[robots].max_mean(), 1e-9)

    def to_dict(self) -> dict:
        """JSON-safe rendering (per-cell means for both heatmap stacks)."""
        return {
            "experiment": "fig8",
            "repetitions": self.repetitions,
            "robot_counts": list(self.robot_counts),
            "no_forecast": {str(r): self.no_forecast[r].as_records() for r in self.robot_counts},
            "foreco": {str(r): self.foreco[r].as_records() for r in self.robot_counts},
        }


def run(
    scale: str | ExperimentScale = "ci",
    seed: int = 42,
    robot_counts: tuple[int, ...] = FIG8_ROBOT_COUNTS,
    probabilities: tuple[float, ...] = FIG8_PROBABILITIES,
    durations: tuple[int, ...] = FIG8_DURATIONS,
    config: ForecoConfig | None = None,
    jobs: int = 1,
) -> Fig8Result:
    """Reproduce the Fig. 8 sweep at the requested scale."""
    scale = get_scale(scale)
    base = base_scenario(
        "fig8",
        scale,
        seed,
        config,
        channel=wireless_channel(),
        repetitions=scale.heatmap_repetitions,
        run_seconds=scale.run_seconds * 2,
    )
    specs = scenario_grid(
        base,
        {
            "channel.n_robots": robot_counts,
            "channel.probability": probabilities,
            "channel.duration_slots": durations,
        },
    )
    sweep = SweepExecutor(jobs=jobs).run(specs)

    result = Fig8Result(robot_counts=list(robot_counts), repetitions=scale.heatmap_repetitions)
    for robots in robot_counts:
        rows = sweep.filter(lambda row: row.spec.channel.options()["n_robots"] == robots)
        result.no_forecast[robots] = heatmap_from_sweep(
            rows, metric="rmse_no_forecast_mm", label=f"no forecasting - {robots} robots"
        )
        result.foreco[robots] = heatmap_from_sweep(
            rows, metric="rmse_foreco_mm", label=f"FoReCo - {robots} robots"
        )
    return result
