"""Fig. 6 — the pick-and-place trajectory dataset.

The paper's Fig. 6 plots the distance from origin of the robot end effector
over time while an inexperienced operator repeats the pick-and-place task:
a periodic trace oscillating between roughly 200 and 500 mm.  This experiment
regenerates that trace from the synthetic operator datasets and reports its
summary statistics (range, period, number of cycles), which the tests check
against the expected envelope.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..robot.niryo import NiryoOneArm
from ..scenarios import SessionEngine
from .common import ExperimentScale, base_scenario, get_scale


@dataclass
class Fig6Result:
    """Distance-from-origin trace of the inexperienced operator dataset."""

    times_s: np.ndarray
    distance_mm: np.ndarray
    n_commands: int
    n_repetitions: int
    min_distance_mm: float
    max_distance_mm: float
    cycle_duration_s: float

    def to_text(self) -> str:
        """Human-readable summary (the benchmark harness prints this)."""
        lines = [
            "# Fig. 6 — pick-and-place dataset (distance from origin vs time)",
            f"commands             : {self.n_commands}",
            f"task repetitions     : {self.n_repetitions}",
            f"distance range [mm]  : {self.min_distance_mm:.1f} .. {self.max_distance_mm:.1f}",
            f"cycle duration [s]   : {self.cycle_duration_s:.1f}",
            f"total duration [s]   : {self.times_s[-1]:.1f}",
        ]
        return "\n".join(lines)

    def series(self, max_points: int = 50) -> list[tuple[float, float]]:
        """Down-sampled (time, distance) pairs for quick text plotting."""
        step = max(1, self.times_s.size // max_points)
        return [
            (float(t), float(d))
            for t, d in zip(self.times_s[::step], self.distance_mm[::step])
        ]

    def to_dict(self) -> dict:
        """JSON-safe summary (the down-sampled series plus the envelope)."""
        return {
            "experiment": "fig6",
            "n_commands": self.n_commands,
            "n_repetitions": self.n_repetitions,
            "min_distance_mm": self.min_distance_mm,
            "max_distance_mm": self.max_distance_mm,
            "cycle_duration_s": self.cycle_duration_s,
            "series": self.series(),
        }


def run(scale: str | ExperimentScale = "ci", seed: int = 42, jobs: int = 1) -> Fig6Result:
    """Regenerate the Fig. 6 dataset trace at the requested scale."""
    scale = get_scale(scale)
    datasets = SessionEngine().datasets(base_scenario("fig6", scale, seed))
    stream = datasets.inexperienced
    arm = NiryoOneArm()
    distance = arm.trajectory_distance_mm(stream.commands)
    times = stream.generation_times_s()
    return Fig6Result(
        times_s=times,
        distance_mm=distance,
        n_commands=len(stream),
        n_repetitions=scale.test_repetitions,
        min_distance_mm=float(distance.min()),
        max_distance_mm=float(distance.max()),
        cycle_duration_s=float(times[-1] + stream.period_ms / 1000.0) / scale.test_repetitions,
    )
