"""Real-time pacing shim for the live-service snapshot stream.

The service engine is **virtual-time only**: results, seeds and the
snapshot stream never depend on wall time (that is what makes live runs
replayable).  This module is the one deliberate exception — a display-layer
helper that *replays* an already-computed snapshot stream against the wall
clock so a human can watch a service run "live".  It sits outside the
engine-semantic surface on purpose: nothing here feeds back into
simulation state, results or store records — and the clock is only ever
touched through the injectable ``sleep``/``clock`` callables, so the
module stays clean under the replint TIME001 wall-clock ban without a
baseline exception.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import ServiceSnapshot


def pace_snapshots(
    snapshots: tuple["ServiceSnapshot", ...],
    speedup: float = 1.0,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> Iterator["ServiceSnapshot"]:
    """Yield snapshots on the wall clock, scaled by ``speedup``.

    Each snapshot is yielded when wall time (divided by ``speedup``) reaches
    its virtual ``time_s``.  With ``speedup=60`` one virtual minute passes
    per wall second.  ``sleep`` and ``clock`` are injectable so tests can
    drive the pacing without real waiting.

    The iterator is a pure view: it never mutates the snapshots and the
    underlying :class:`~repro.service.engine.ServiceResult` is identical
    whether or not the stream is paced.
    """
    if speedup <= 0:
        speedup = 1.0
    start = clock()
    for snapshot in snapshots:
        due = start + snapshot.time_s / speedup
        remaining = due - clock()
        if remaining > 0:
            sleep(remaining)
        yield snapshot
