"""Named live-service presets.

The ``service-*`` family mirrors the scenario and fleet registries: each
preset is a fully-specified :class:`~repro.service.spec.ServiceSpec` fetched
by name, optionally re-parameterised (``policy=``, ``scale=``, ``seed=`` or
any :meth:`ServiceSpec.with_` keyword) without touching its identity
otherwise.  All three presets derive their workload from registered fleet
presets, so the service layer stays anchored to the same traffic models the
fleet experiments pin.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..fleet.registry import get_fleet
from .spec import ServiceSpec

_REGISTRY: dict[str, tuple[ServiceSpec, str]] = {}


def register_service(spec: ServiceSpec, description: str = "", overwrite: bool = False) -> None:
    """Register a service preset under ``spec.name``.

    Raises :class:`~repro.errors.ConfigurationError` when the name is taken
    and ``overwrite`` is false.
    """
    name = spec.name
    if not name or name == "service":
        raise ConfigurationError("a registered service needs a distinctive name")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"service {name!r} is already registered")
    _REGISTRY[name] = (spec, description)


def get_service(
    name: str,
    policy: str | None = None,
    scale: str | None = None,
    seed: int | None = None,
    **overrides,
) -> ServiceSpec:
    """Fetch a service preset by name, optionally overriding common knobs.

    ``policy`` (and any other keyword accepted by
    :meth:`ServiceSpec.with_`) replaces a service-level field; ``scale`` and
    ``seed`` are forwarded to the fleet's per-operator template, mirroring
    :func:`repro.fleet.get_fleet`.
    """
    try:
        spec, _ = _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown service {name!r}; available: {service_names()}"
        ) from exc
    if policy is not None:
        overrides["policy"] = policy
    if overrides:
        spec = spec.with_(**overrides)
    template_overrides: dict = {}
    if scale is not None:
        template_overrides["scale"] = scale
    if seed is not None:
        template_overrides["seed"] = int(seed)
    if template_overrides:
        spec = spec.with_template(**template_overrides)
    return spec


def service_names() -> list[str]:
    """Sorted names of the registered service presets."""
    return sorted(_REGISTRY)


def service_catalog() -> dict[str, str]:
    """Mapping of service preset name to its one-line description."""
    return {name: description for name, (_, description) in sorted(_REGISTRY.items())}


def _register_builtins() -> None:
    """Register the built-in service presets."""
    register_service(
        ServiceSpec(
            name="service-shared-ap",
            # The shared-ap workload widened to three APs and slowed-down
            # Poisson arrivals: sessions overlap only partially, so arrival
            # clusters overload one home AP while another still has slack —
            # the regime where migration beats the static rule.  The
            # policy-comparison experiment pins its ranking on this preset.
            fleet=get_fleet(
                "shared-ap",
                operators=12,
                aps=3,
                ap_capacity=3,
                arrival="poisson",
                arrival_rate_hz=0.3,
            ),
            policy="static-cap",
            # One session costs 0.3 of a command period of air time (6 ms /
            # 20 ms), so capacity 3 peaks at 0.9 utilisation: a 0.95 limit
            # lets the balancing policies use the full cap AND migrate,
            # instead of being strictly tighter than static-cap.
            utilization_limit=0.95,
        ),
        "oversubscribed shared-AP workload widened to 3 APs (policy-comparison anchor)",
    )
    register_service(
        ServiceSpec(
            name="service-peak-hour",
            fleet=get_fleet("peak-hour"),
            policy="utilization-threshold",
            utilization_limit=0.75,
        ),
        "peak-hour fleet operated under a 0.75 utilisation admission threshold",
    )
    register_service(
        ServiceSpec(
            name="service-diurnal",
            fleet=get_fleet("diurnal-campus"),
            policy="forecast-aware",
            forecast_record=8,
        ),
        "diurnal campus fleet with forecast-aware admission (FoReCo-style congestion prediction)",
    )


_register_builtins()
