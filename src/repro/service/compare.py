"""Policy-comparison experiment: rank admission policies on one workload.

Because :meth:`ServiceSpec.workload_identity` excludes the policy knobs,
every policy variant of one spec sees *identical* arrivals and channel
realisations — so the comparison isolates the admission decision itself.
Policies are scored against the service-level trade-off the paper's
operator cares about: reject as few sessions as possible (drop rate) while
keeping the recovery tail above an SLO (p99 recovery, the recovery share at
least 99% of admitted sessions achieve).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenarios.store import ResultStore

from .engine import ServiceEngine, ServiceResult
from .registry import get_service
from .spec import POLICY_KINDS, ServiceSpec

#: Default p99-recovery service-level objective the ranking scores against.
DEFAULT_RECOVERY_SLO = 0.5


@dataclass
class PolicyComparison:
    """Ranked outcome of running every admission policy on one workload."""

    spec: ServiceSpec
    slo: float
    #: Per-policy results keyed by policy name.
    results: dict[str, ServiceResult]
    #: Policy names, best first (ascending score).
    ranking: tuple[str, ...]
    #: Per-policy score (lower is better), keyed by policy name.
    scores: dict[str, float]

    @property
    def best(self) -> str:
        """The winning policy name."""
        return self.ranking[0]

    def to_dict(self) -> dict:
        """JSON-safe comparison summary (snapshot streams elided)."""
        rows = {}
        for policy in self.ranking:
            result = self.results[policy]
            rows[policy] = {
                "score": float(self.scores[policy]),
                "drop_rate": result.drop_rate,
                "p99_recovery": result.p99_recovery,
                "admitted": result.admitted,
                "dropped_sessions": result.dropped_sessions,
                "migrated_sessions": result.migrated_sessions,
            }
        return {
            "service": self.spec.name,
            "workload": self.spec.workload_identity(),
            "slo": float(self.slo),
            "ranking": list(self.ranking),
            "policies": rows,
        }

    def to_text(self) -> str:
        """Compact ranking table for the CLI report."""
        lines = [
            f"{self.spec.name}: policy ranking at p99-recovery SLO {self.slo:g} "
            "(score = drop rate + SLO shortfall; lower is better)"
        ]
        for rank, policy in enumerate(self.ranking, start=1):
            result = self.results[policy]
            lines.append(
                f"  {rank}. {policy}: score {self.scores[policy]:.3f} "
                f"(drop {result.drop_rate:.2f}, p99 recovery {result.p99_recovery:.2f}, "
                f"{result.migrated_sessions} migrated)"
            )
        return "\n".join(lines)


def policy_score(result: ServiceResult, slo: float) -> float:
    """Score one policy run: drop rate plus any p99-recovery SLO shortfall.

    Both terms are dimensionless fractions in ``[0, 1]``, so the score
    weighs a rejected session the same as an equal-sized recovery-tail
    deficit — the simplest expression of the paper's admission trade-off.
    """
    return result.drop_rate + max(0.0, slo - result.p99_recovery)


def compare_policies(
    spec_or_name: ServiceSpec | str,
    slo: float = DEFAULT_RECOVERY_SLO,
    engine: ServiceEngine | None = None,
    store: "ResultStore | None" = None,
) -> PolicyComparison:
    """Run every admission policy on one workload and rank them.

    ``spec_or_name`` may be a :class:`ServiceSpec` or a registered
    ``service-*`` preset name.  Ties in score break by canonical policy
    order (:data:`~repro.service.spec.POLICY_KINDS`), keeping the ranking
    deterministic.
    """
    spec = get_service(spec_or_name) if isinstance(spec_or_name, str) else spec_or_name
    runner = engine if engine is not None else ServiceEngine(store=store)
    results = {policy: runner.run(spec.with_(policy=policy)) for policy in POLICY_KINDS}
    scores = {policy: policy_score(result, slo) for policy, result in results.items()}
    ranking = tuple(
        sorted(POLICY_KINDS, key=lambda policy: (scores[policy], POLICY_KINDS.index(policy)))
    )
    return PolicyComparison(spec=spec, slo=float(slo), results=results, ranking=ranking, scores=scores)
