"""Service engine: run a :class:`ServiceSpec` as a live admission loop.

The engine turns the fleet layer's *batch* pipeline into an *operated*
service.  Arrivals still come from the fleet arrival processes and sessions
still execute through the batched scenario kernel, but admission is no
longer the fleet's fixed rule: each arrival fires as a discrete event on the
:class:`repro.des.engine.Simulator` virtual clock, and the spec's
:class:`~repro.service.policies.AdmissionPolicy` decides — at that virtual
instant, seeing exactly the state an online controller would see — whether
the session is admitted at its home AP, migrated to another AP, or dropped.

Two-phase execution keeps live semantics and batch speed at once:

1. **Admission phase (online).**  One DES pass per repetition schedules
   every arrival at its virtual time and asks the policy for a placement in
   strict event order.  Policies only ever see already-made decisions, so
   the loop is causally faithful to a real controller.  ``until_s`` bounds
   the virtual clock: arrivals past the horizon stay unprocessed.
2. **Execution phase (batch).**  The admitted sessions — with their
   possibly-migrated AP assignments — are handed to the fleet machinery:
   per-operator channel realisations, shared-AP Lindley coupling, one
   batched kernel pass, completion times.  The coupling reads each
   session's ``ap`` field, so migrations change contention exactly as they
   would live.

Because every random draw is spec-derived and the virtual clock never reads
wall time, a "live" run is replayable bit for bit — the pacing shim in
:mod:`repro.service.pacing` exists only to *display* the snapshot stream in
real time and never touches engine state.

The incremental :class:`ServiceSnapshot` stream is derived from the same
admitted/dropped/completed events the DES pass produced, sampled every
``snapshot_every_slots`` command slots on the virtual clock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..scenarios.store import ResultStore

from ..des.engine import Event, Simulator
from ..fleet.engine import FleetEngine, _Session, operator_channel_spec
from ..fleet.spec import sample_arrival_times
from ..scenarios.engine import SessionEngine, repetition_seed, sample_channel_delays_batch
from ..scenarios.spec import ScenarioSpec
from .policies import AdmissionPolicy, ServiceState, make_policy
from .spec import ServiceSpec


# ------------------------------------------------------------------ snapshots
@dataclass(frozen=True)
class ServiceSnapshot:
    """One sample of the incremental live-service metric stream.

    Snapshots are taken on the virtual clock every
    ``ServiceSpec.snapshot_every_slots`` command slots and aggregate over
    all repetitions of the service realisation.
    """

    #: Virtual time of the sample, seconds since service start.
    time_s: float
    #: Sessions active (arrived, not yet past their command window), summed
    #: over repetitions.
    active_sessions: int
    #: Cumulative admissions up to this instant.
    admitted: int
    #: Cumulative drops (policy rejections) up to this instant.
    dropped: int
    #: Cumulative migrations (admissions at a non-home AP) up to this instant.
    migrated: int
    #: Sessions whose last command was delivered by this instant.
    completed: int
    #: Rolling p99 recovery (1st percentile over completed sessions), or
    #: ``None`` while no session has completed yet.
    rolling_p99_recovery: float | None
    #: Per-AP air-time utilisation at this instant (mean over repetitions,
    #: capped at 1).
    ap_utilization: tuple[float, ...]

    def to_dict(self) -> dict:
        """JSON-safe snapshot row."""
        return {
            "time_s": float(self.time_s),
            "active_sessions": int(self.active_sessions),
            "admitted": int(self.admitted),
            "dropped": int(self.dropped),
            "migrated": int(self.migrated),
            "completed": int(self.completed),
            "rolling_p99_recovery": (
                None if self.rolling_p99_recovery is None else float(self.rolling_p99_recovery)
            ),
            "ap_utilization": [float(u) for u in self.ap_utilization],
        }


# -------------------------------------------------------------------- results
@dataclass
class ServiceResult:
    """Uniform per-service result row produced by the engine.

    Per-session metric tuples hold one entry per **admitted** session in
    operator-major order (exactly the fleet convention) and are empty when
    the policy admitted nothing.  ``snapshots`` is the incremental metric
    stream, in virtual-time order.
    """

    spec: ServiceSpec
    spec_hash: str
    n_commands: int
    admitted: int
    dropped_sessions: int
    migrated_sessions: int
    rmse_no_forecast_mm: tuple[float, ...]
    rmse_foreco_mm: tuple[float, ...]
    late_fraction: tuple[float, ...]
    recovery_fraction: tuple[float, ...]
    completion_time_s: tuple[float, ...]
    ap_utilization: tuple[float, ...]
    snapshots: tuple[ServiceSnapshot, ...] = field(default=())

    #: Record kind this result stores under in a ResultStore.
    store_kind = "service"

    @property
    def offered(self) -> int:
        """Arrivals the policy ruled on (admitted + dropped)."""
        return self.admitted + self.dropped_sessions

    @property
    def drop_rate(self) -> float:
        """Share of offered sessions the policy dropped (0 when none offered)."""
        if self.offered == 0:
            return 0.0
        return self.dropped_sessions / self.offered

    @property
    def migration_rate(self) -> float:
        """Share of admitted sessions placed at a non-home AP."""
        if self.admitted == 0:
            return 0.0
        return self.migrated_sessions / self.admitted

    @property
    def p50_recovery(self) -> float:
        """Median per-session recovery rate (0 when nothing was admitted)."""
        if not self.recovery_fraction:
            return 0.0
        return float(np.percentile(self.recovery_fraction, 50))

    @property
    def p99_recovery(self) -> float:
        """Recovery rate at least 99% of sessions achieve (1st percentile)."""
        if not self.recovery_fraction:
            return 0.0
        return float(np.percentile(self.recovery_fraction, 1))

    @property
    def p99_completion_s(self) -> float:
        """99th-percentile session completion time in seconds."""
        if not self.completion_time_s:
            return 0.0
        return float(np.percentile(self.completion_time_s, 99))

    @property
    def mean_ap_utilization(self) -> float:
        """AP air-time utilisation averaged over access points."""
        if not self.ap_utilization:
            return 0.0
        return float(np.mean(self.ap_utilization))

    def to_dict(self) -> dict:
        """JSON-safe summary row (snapshot stream included)."""
        return {
            "service": self.spec.name,
            "spec_hash": self.spec_hash,
            "policy": self.spec.policy,
            "template": self.spec.template.name,
            "channel": self.spec.channel.describe(),
            "operators": self.spec.fleet.operators,
            "aps": self.spec.fleet.aps,
            "ap_capacity": self.spec.fleet.ap_capacity,
            "arrival": self.spec.fleet.arrival,
            "until_s": None if self.spec.until_s is None else float(self.spec.until_s),
            "repetitions": self.spec.repetitions,
            "n_commands": self.n_commands,
            "admitted": self.admitted,
            "dropped_sessions": self.dropped_sessions,
            "migrated_sessions": self.migrated_sessions,
            "drop_rate": self.drop_rate,
            "migration_rate": self.migration_rate,
            "p50_recovery": self.p50_recovery,
            "p99_recovery": self.p99_recovery,
            "p99_completion_s": self.p99_completion_s,
            "ap_utilization": [float(u) for u in self.ap_utilization],
            "snapshots": [snapshot.to_dict() for snapshot in self.snapshots],
        }

    def to_text(self) -> str:
        """Compact multi-line operations report for one service."""
        lines = [
            self.spec.describe(),
            (
                f"  sessions: {self.admitted} admitted, {self.dropped_sessions} dropped "
                f"(drop rate {self.drop_rate:.2f}), {self.migrated_sessions} migrated"
            ),
            (
                f"  recovery: p50 {self.p50_recovery:.2f}, p99 {self.p99_recovery:.2f} | "
                f"p99 completion {self.p99_completion_s:.1f} s | "
                f"mean AP utilization {self.mean_ap_utilization:.2f}"
            ),
            f"  snapshots: {len(self.snapshots)} samples on the virtual clock",
        ]
        return "\n".join(lines)


# ------------------------------------------------------------------ admission
@dataclass
class _AdmissionLog:
    """Outcome of the online admission phase for one repetition."""

    admitted: list[_Session]
    dropped_offsets: list[int]
    migrated_offsets: list[int]


# --------------------------------------------------------------------- engine
class ServiceEngine:
    """Resolves service specs into live admission runs, with caching.

    Parameters
    ----------
    sessions:
        The :class:`~repro.scenarios.SessionEngine` supplying datasets and
        trained forecasters (a private one is created when omitted).
    cache_results:
        Keep finished :class:`ServiceResult` objects keyed by spec hash.
    store:
        Optional persistent :class:`~repro.scenarios.ResultStore`.  Service
        results share the store (and its engine-epoch scheme) with session
        and fleet results: lookups go memory -> disk -> compute, computed
        services are written back immediately.
    """

    def __init__(
        self,
        sessions: SessionEngine | None = None,
        cache_results: bool = True,
        store: "ResultStore | None" = None,
    ) -> None:
        self.sessions = sessions if sessions is not None else SessionEngine()
        # Reuse the fleet machinery (channel sampling, coupling, kernel) —
        # caching stays at the service level, so the inner engine holds none.
        self._fleet = FleetEngine(sessions=self.sessions, cache_results=False)
        self.cache_results = bool(cache_results)
        self.store = store
        self._results: dict[str, ServiceResult] = {}
        self._results_lock = threading.Lock()

    # ------------------------------------------------------------------- run
    def run(self, spec: ServiceSpec) -> ServiceResult:
        """Run one service (all repetitions) through its admission policy."""
        key = spec.spec_hash()
        if self.cache_results:
            with self._results_lock:
                cached = self._results.get(key)
            if cached is not None:
                return cached
        if self.store is not None:
            stored = self.store.get(spec)
            if stored is not None:
                if self.cache_results:
                    with self._results_lock:
                        stored = self._results.setdefault(key, stored)
                return stored

        result = self._compute(spec)
        if self.cache_results:
            with self._results_lock:
                result = self._results.setdefault(key, result)
        if self.store is not None:
            self.store.put(spec, result)
        return result

    # ----------------------------------------------------- admission (online)
    def _serve_repetition(
        self,
        spec: ServiceSpec,
        repetition: int,
        n_commands: int,
        policy: AdmissionPolicy,
    ) -> _AdmissionLog:
        """One online admission pass on the virtual clock.

        Every arrival is scheduled at its arrival-process time and the
        policy rules on it when the event fires.  Scheduling happens in
        nondecreasing-slot order with ties broken by operator index (the
        DES tie-break is insertion order), which reproduces the fleet
        planner's processing order exactly — so the ``static-cap`` policy
        admits the very same sessions :class:`FleetEngine` would.
        """
        fleet = spec.fleet
        period_s = fleet.template.foreco.command_period_ms / 1000.0
        arrivals = sample_arrival_times(fleet, repetition)
        offsets = np.floor(arrivals / period_s).astype(int)
        order = np.argsort(offsets, kind="stable")

        state = ServiceState(spec, n_commands)
        log = _AdmissionLog(admitted=[], dropped_offsets=[], migrated_offsets=[])

        def on_arrival(sim: Simulator, event: Event) -> None:
            operator, offset = event.payload
            home_ap = operator % fleet.aps
            placed = policy.admit(state, home_ap, offset)
            if placed is None:
                log.dropped_offsets.append(offset)
                return
            state.admit(placed, offset)
            if placed != home_ap:
                log.migrated_offsets.append(offset)
            log.admitted.append(
                _Session(operator=operator, repetition=repetition, offset_slots=offset, ap=placed)
            )

        sim = Simulator()
        for operator in order:
            operator = int(operator)
            offset = int(offsets[operator])
            sim.schedule_at(
                offset * period_s,
                Event(name=f"arrival:op{operator}", callback=on_arrival, payload=(operator, offset)),
            )
        # An arrival exactly at the horizon is still processed (run() stops
        # strictly past `until`); later arrivals never enter the service.
        sim.run(until=spec.until_s)
        return log

    # --------------------------------------------------------------- compute
    def _compute(self, spec: ServiceSpec) -> ServiceResult:
        """Admit online, then execute the admitted sessions in one batch."""
        fleet = spec.fleet
        template = fleet.template
        commands = self.sessions.test_commands(template)
        n_commands = int(commands.shape[0])
        period = float(template.foreco.command_period_ms)
        policy = make_policy(spec)

        # 1. Online admission, one DES pass per repetition.
        plans: list[list[_Session]] = []
        dropped = 0
        migrated = 0
        admitted_offsets: list[int] = []
        dropped_offsets: list[int] = []
        migrated_offsets: list[int] = []
        for repetition in range(template.repetitions):
            log = self._serve_repetition(spec, repetition, n_commands, policy)
            log.admitted.sort(key=lambda session: session.operator)
            plans.append(log.admitted)
            dropped += len(log.dropped_offsets)
            migrated += len(log.migrated_offsets)
            admitted_offsets.extend(session.offset_slots for session in log.admitted)
            dropped_offsets.extend(log.dropped_offsets)
            migrated_offsets.extend(log.migrated_offsets)

        sessions_flat: list[_Session] = sorted(
            (session for admitted in plans for session in admitted),
            key=lambda session: (session.operator, session.repetition),
        )
        for flat, session in enumerate(sessions_flat):
            session.flat = flat

        if not sessions_flat:
            # A policy (or a tiny horizon) may admit nothing; the result is
            # still well-formed, with empty metric tuples and an all-idle
            # utilisation profile.
            return ServiceResult(
                spec=spec,
                spec_hash=spec.spec_hash(),
                n_commands=n_commands,
                admitted=0,
                dropped_sessions=dropped,
                migrated_sessions=migrated,
                rmse_no_forecast_mm=(),
                rmse_foreco_mm=(),
                late_fraction=(),
                recovery_fraction=(),
                completion_time_s=(),
                ap_utilization=tuple(0.0 for _ in range(fleet.aps)),
                snapshots=self._snapshots(
                    spec, n_commands, [], (), admitted_offsets, dropped_offsets, migrated_offsets
                ),
            )

        # 2. Base channel realisations — identical to the fleet engine's, so
        # a static-cap service is bit-comparable to its fleet counterpart.
        operator_specs: dict[int, ScenarioSpec] = {}
        seeds = []
        for session in sessions_flat:
            op_spec = operator_specs.get(session.operator)
            if op_spec is None:
                op_spec = operator_channel_spec(fleet, session.operator)
                operator_specs[session.operator] = op_spec
            seeds.append(repetition_seed(op_spec, session.repetition))
        base = sample_channel_delays_batch(
            template.channel, n_commands, seeds, command_period_ms=period
        )

        # 3. Couple through the shared per-AP backlog (migrated assignments
        # included — _couple reads each session's `ap`), then one batched
        # kernel pass and completion times.
        coupled, utilization = self._fleet._couple(fleet, plans, base, n_commands, period)
        outcomes = self._fleet._simulate(template, commands, coupled)
        completion = FleetEngine._completion_times(sessions_flat, coupled, n_commands, period)

        return ServiceResult(
            spec=spec,
            spec_hash=spec.spec_hash(),
            n_commands=n_commands,
            admitted=len(sessions_flat),
            dropped_sessions=dropped,
            migrated_sessions=migrated,
            rmse_no_forecast_mm=tuple(o.rmse_no_forecast_mm for o in outcomes),
            rmse_foreco_mm=tuple(o.rmse_foreco_mm for o in outcomes),
            late_fraction=tuple(o.late_fraction for o in outcomes),
            recovery_fraction=tuple(o.recovery_fraction for o in outcomes),
            completion_time_s=completion,
            ap_utilization=utilization,
            snapshots=self._snapshots(
                spec,
                n_commands,
                sessions_flat,
                tuple(
                    (completion[i], outcomes[i].recovery_fraction)
                    for i in range(len(sessions_flat))
                ),
                admitted_offsets,
                dropped_offsets,
                migrated_offsets,
            ),
        )

    # -------------------------------------------------------------- snapshots
    @staticmethod
    def _snapshots(
        spec: ServiceSpec,
        n_commands: int,
        sessions_flat: list[_Session],
        completions: tuple[tuple[float, float], ...],
        admitted_offsets: list[int],
        dropped_offsets: list[int],
        migrated_offsets: list[int],
    ) -> tuple[ServiceSnapshot, ...]:
        """Derive the incremental metric stream from the admission record.

        A pure function of spec-derived data — sampling the stream never
        perturbs results, and replaying a run reproduces it bit for bit.
        """
        fleet = spec.fleet
        period_s = fleet.template.foreco.command_period_ms / 1000.0
        interval_slots = spec.snapshot_every_slots
        session_load = float(fleet.ap_service_ms) / float(
            fleet.template.foreco.command_period_ms
        )

        if sessions_flat:
            horizon_slots = max(s.offset_slots for s in sessions_flat) + n_commands
        elif admitted_offsets or dropped_offsets:
            horizon_slots = max(admitted_offsets + dropped_offsets) + n_commands
        else:
            horizon_slots = n_commands
        sample_slots = list(range(0, horizon_slots + 1, interval_slots))
        if sample_slots[-1] != horizon_slots:
            sample_slots.append(horizon_slots)

        admitted_sorted = np.sort(np.asarray(admitted_offsets, dtype=np.int64))
        dropped_sorted = np.sort(np.asarray(dropped_offsets, dtype=np.int64))
        migrated_sorted = np.sort(np.asarray(migrated_offsets, dtype=np.int64))
        completion_times = np.sort(np.asarray([c[0] for c in completions], dtype=np.float64))
        # Recovery fractions ordered by completion time, for the rolling p99.
        recovery_by_completion = np.asarray(
            [c[1] for c in sorted(completions, key=lambda c: c[0])], dtype=np.float64
        )

        # Per-AP active-session windows, per repetition.
        repetitions = fleet.template.repetitions
        ap_starts: list[list[list[int]]] = [
            [[] for _ in range(fleet.aps)] for _ in range(repetitions)
        ]
        for session in sessions_flat:
            ap_starts[session.repetition][session.ap].append(session.offset_slots)
        ap_sorted = [
            [np.sort(np.asarray(starts, dtype=np.int64)) for starts in per_rep]
            for per_rep in ap_starts
        ]

        snapshots = []
        for slot in sample_slots:
            time_s = slot * period_s
            active = 0
            per_ap = np.zeros(fleet.aps, dtype=np.float64)
            for repetition in range(repetitions):
                for ap in range(fleet.aps):
                    starts = ap_sorted[repetition][ap]
                    ap_active = int(
                        np.searchsorted(starts, slot, side="right")
                        - np.searchsorted(starts, slot - n_commands, side="right")
                    )
                    active += ap_active
                    per_ap[ap] += min(1.0, ap_active * session_load)
            per_ap /= max(1, repetitions)
            completed = int(np.searchsorted(completion_times, time_s, side="right"))
            rolling = (
                float(np.percentile(recovery_by_completion[:completed], 1))
                if completed > 0
                else None
            )
            snapshots.append(
                ServiceSnapshot(
                    time_s=float(time_s),
                    active_sessions=active,
                    admitted=int(np.searchsorted(admitted_sorted, slot, side="right")),
                    dropped=int(np.searchsorted(dropped_sorted, slot, side="right")),
                    migrated=int(np.searchsorted(migrated_sorted, slot, side="right")),
                    completed=completed,
                    rolling_p99_recovery=rolling,
                    ap_utilization=tuple(float(u) for u in per_ap),
                )
            )
        return tuple(snapshots)

    # --------------------------------------------------------------- caching
    def cached_result(self, spec: ServiceSpec) -> ServiceResult | None:
        """The cached result for this service, if any."""
        with self._results_lock:
            return self._results.get(spec.spec_hash())

    def clear(self) -> None:
        """Drop the service-result cache (the session engine keeps its own)."""
        with self._results_lock:
            self._results.clear()
