"""Declarative live-service specifications.

A :class:`ServiceSpec` turns the fleet vocabulary into an **operated live
service**: operator sessions arrive over virtual time (through the fleet
arrival processes), and every arrival is admitted, rejected or *migrated* to
another access point by a pluggable admission policy
(:mod:`repro.service.policies`) instead of the fleet layer's fixed
home-AP/capacity rule.  Like the scenario and fleet specs it builds on, a
service spec is a frozen, hashable value object:

* equal specs produce identical results, so the
  :class:`~repro.service.engine.ServiceEngine` caches runs by
  :meth:`ServiceSpec.spec_hash`;
* the hash is the content address under which :class:`~repro.service.engine.
  ServiceResult` records persist in the :class:`~repro.scenarios.ResultStore`
  (record kind ``"service"``, same engine-epoch scheme as everything else);
* live runs are **replayable**: every random draw derives from the spec
  content (the arrival times come straight from
  :func:`repro.fleet.sample_arrival_times` on the embedded fleet), never
  from wall time or scheduling, so a "live" run re-executes bit-identically.

The policy knobs are **excluded** from :meth:`workload_identity`, mirroring
how the fleet tier knobs are excluded from the fleet workload: the three
admission policies of one workload see *identical* arrivals and channel
realisations, which is what makes the policy-comparison experiment
(:mod:`repro.service.compare`) an apples-to-apples ranking.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from ..fleet.spec import FleetSpec, _coerce_float, _coerce_int

#: Admission policies understood by the service engine.
POLICY_KINDS: tuple[str, ...] = ("static-cap", "utilization-threshold", "forecast-aware")

#: One-line summary per admission policy (rendered into the docs reference).
POLICY_KIND_SUMMARIES: dict[str, str] = {
    "static-cap": "admit at the home AP while it holds fewer than ap_capacity sessions (no migration)",
    "utilization-threshold": "admit/migrate to the least-utilised AP whose post-admission air-time load stays within utilization_limit",
    "forecast-aware": "admit/migrate on a Forecaster prediction of each AP's next utilisation sample (congestion forecast)",
}


@dataclass(frozen=True)
class ServiceSpec:
    """One fully-specified live teleoperation service.

    Attributes
    ----------
    name:
        Human-readable label (preset name); not part of the physical
        configuration and excluded from :meth:`spec_hash`.
    fleet:
        The underlying :class:`~repro.fleet.FleetSpec` workload: per-operator
        scenario template, operator population, AP topology and capacity,
        coupling constant and arrival process.  Only ``tier="exact"`` fleets
        are valid — the live loop couples sessions through the exact Lindley
        backlog; the hybrid tier's analytic shortcut has no live timeline.
        ``ap_capacity`` stays the hard per-AP admission ceiling under every
        policy; the policies decide *where* (and whether) to place an
        arrival below that ceiling.
    policy:
        Admission policy (see :data:`POLICY_KINDS`).  ``"static-cap"``
        reproduces the fleet layer's admission rule exactly (home AP only);
        the other two may migrate arrivals to less-loaded APs.
    utilization_limit:
        Air-time load in ``(0, 1]`` the ``"utilization-threshold"`` and
        ``"forecast-aware"`` policies refuse to exceed when placing an
        arrival: a candidate AP is acceptable when its (instantaneous or
        forecast) utilisation *after* admitting the session stays at or
        below this limit.
    forecast_record:
        History window ``R`` (in utilisation samples, one per command slot)
        the ``"forecast-aware"`` policy's forecaster conditions on.
    forecast_algorithm:
        Forecaster registry name (:func:`repro.forecasting.make_forecaster`)
        the ``"forecast-aware"`` policy predicts per-AP utilisation with.
    snapshot_every_slots:
        Interval of the incremental :class:`~repro.service.engine.
        ServiceSnapshot` stream, in command slots.
    until_s:
        Optional admission horizon in seconds of virtual time: arrivals
        after this instant never enter the service (neither admitted nor
        dropped — the service stopped accepting).  Sessions admitted before
        the horizon still run to completion.  ``None`` accepts every
        arrival.
    """

    name: str = "service"
    fleet: FleetSpec = field(default_factory=FleetSpec)
    policy: str = "static-cap"
    utilization_limit: float = 0.85
    forecast_record: int = 8
    forecast_algorithm: str = "ma"
    snapshot_every_slots: int = 50
    until_s: float | None = None

    def __post_init__(self) -> None:
        """Validate the workload, policy and snapshot fields.

        Every violation raises :class:`~repro.errors.ConfigurationError`,
        never a bare ``ValueError`` — including unknown policy names,
        utilisation limits outside ``(0, 1]`` and non-positive horizons.
        """
        if not isinstance(self.fleet, FleetSpec):
            raise ConfigurationError("ServiceSpec.fleet must be a FleetSpec")
        if self.fleet.tier != "exact":
            raise ConfigurationError(
                "a live service runs tier='exact' fleets only (the hybrid tier's "
                "analytic cold path has no live timeline); use "
                "fleet.with_(tier='exact')"
            )
        if self.policy not in POLICY_KINDS:
            raise ConfigurationError(
                f"unknown admission policy {self.policy!r}; available: {sorted(POLICY_KINDS)}"
            )
        object.__setattr__(
            self, "utilization_limit", _coerce_float("utilization_limit", self.utilization_limit)
        )
        if not 0.0 < self.utilization_limit <= 1.0:
            raise ConfigurationError("utilization_limit must be in (0, 1]")
        object.__setattr__(
            self, "forecast_record", _coerce_int("forecast_record", self.forecast_record)
        )
        if self.forecast_record < 1:
            raise ConfigurationError("forecast_record must be >= 1")
        from ..forecasting import forecaster_names  # deferred: service imports stay light

        if self.forecast_algorithm not in forecaster_names():
            raise ConfigurationError(
                f"unknown forecast_algorithm {self.forecast_algorithm!r}; "
                f"available: {forecaster_names()}"
            )
        object.__setattr__(
            self,
            "snapshot_every_slots",
            _coerce_int("snapshot_every_slots", self.snapshot_every_slots),
        )
        if self.snapshot_every_slots < 1:
            raise ConfigurationError("snapshot_every_slots must be >= 1")
        if self.until_s is not None:
            horizon = _coerce_float("until_s", self.until_s)
            if not math.isfinite(horizon) or horizon <= 0.0:
                raise ConfigurationError("until_s must be a positive, finite horizon (or None)")
            object.__setattr__(self, "until_s", horizon)

    # --------------------------------------------------------------- identity
    #: Record kind this spec stores/loads under in a ResultStore.
    store_kind = "service"

    def workload_identity(self) -> dict:
        """The canonical representation *minus* the policy knobs.

        This is the randomness domain: the arrival times of a service run
        come from :func:`repro.fleet.sample_arrival_times` on the embedded
        fleet (whose own workload identity excludes its tier knobs), so the
        three admission policies of one workload — and a truncated
        (``until_s``) replay of it — realise **identical** arrivals and
        channel draws.
        """
        return {
            "kind": "service",
            "fleet": self.fleet.workload_identity(),
            "until_s": None if self.until_s is None else float(self.until_s),
        }

    def canonical(self) -> dict:
        """JSON-safe canonical representation (the hashing domain).

        Includes the policy and snapshot knobs: two policies of one workload
        are *different results* and must occupy different store addresses.
        """
        payload = self.workload_identity()
        payload["policy"] = {
            "kind": self.policy,
            "utilization_limit": float(self.utilization_limit),
            "forecast_record": int(self.forecast_record),
            "forecast_algorithm": self.forecast_algorithm,
        }
        payload["snapshot_every_slots"] = int(self.snapshot_every_slots)
        return payload

    def spec_hash(self) -> str:
        """Stable short hash of the physical configuration (``name`` excluded)."""
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------ convenience
    @property
    def template(self):
        """The fleet's per-operator scenario template."""
        return self.fleet.template

    @property
    def channel(self):
        """The template's channel spec (uniform row rendering in tables)."""
        return self.fleet.template.channel

    @property
    def repetitions(self) -> int:
        """Independent service realisations (the template's repetition count)."""
        return self.fleet.template.repetitions

    # --------------------------------------------------------------- builders
    def with_(self, **changes) -> "ServiceSpec":
        """A copy with top-level service fields replaced."""
        return replace(self, **changes)

    def with_fleet(self, **changes) -> "ServiceSpec":
        """A copy whose fleet has top-level fleet fields replaced."""
        return replace(self, fleet=self.fleet.with_(**changes))

    def with_template(self, **changes) -> "ServiceSpec":
        """A copy whose fleet template has scenario fields replaced.

        ``scale`` may be passed as a name, exactly as in
        :meth:`repro.scenarios.ScenarioSpec.with_`.
        """
        return replace(self, fleet=self.fleet.with_template(**changes))

    def describe(self) -> str:
        """One-line summary used by reports and the CLI."""
        horizon = "" if self.until_s is None else f", accepting until {self.until_s:g} s"
        return (
            f"{self.name}: {self.policy} admission over {self.fleet.operators} operators / "
            f"{self.fleet.aps} AP(s) (capacity {self.fleet.ap_capacity}, "
            f"limit {self.utilization_limit:g}{horizon}), {self.fleet.arrival} arrivals | "
            f"template {self.fleet.template.name}: {self.fleet.template.channel.describe()}"
        )
