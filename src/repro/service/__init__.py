"""Live teleoperation service: online admission control over fleet workloads.

This package turns the fleet layer's offline batch simulation into an
*operated* service — the setting the paper actually describes: operators
arrive over time, contend for access points, and must be admitted, rejected
or migrated **online** by an admission controller, while the service streams
incremental health metrics.

* :mod:`repro.service.spec` — frozen, hashable :class:`ServiceSpec`
  (embedded :class:`~repro.fleet.FleetSpec` workload + admission-policy
  knobs + snapshot cadence + optional virtual-time horizon);
* :mod:`repro.service.policies` — pluggable :class:`AdmissionPolicy`
  implementations: ``static-cap`` (the fleet rule, the anchor),
  ``utilization-threshold`` (instantaneous load balancing) and
  ``forecast-aware`` (placement by Forecaster-predicted per-AP
  utilisation);
* :mod:`repro.service.engine` — the :class:`ServiceEngine`: a
  :mod:`repro.des` virtual-clock admission pass per repetition followed by
  one batched fleet-machinery execution of the admitted sessions;
  :class:`ServiceResult` carries drop/migration counts, the service-level
  metric tuples and the incremental :class:`ServiceSnapshot` stream;
* :mod:`repro.service.pacing` — the optional wall-clock display shim
  (deliberately outside engine semantics);
* :mod:`repro.service.registry` — the ``service-*`` preset family;
* :mod:`repro.service.compare` — the policy-comparison experiment ranking
  the three policies on drop rate vs a p99-recovery SLO.

Service results persist in the same content-addressed
:class:`~repro.scenarios.ResultStore` (and engine-epoch scheme) as session
and fleet results — importing this package registers the ``"service"``
record codec — and :class:`~repro.scenarios.SweepExecutor` accepts service
specs alongside scenario and fleet specs.
"""

from __future__ import annotations

from ..errors import StoreError
from ..scenarios.store import _metric_tuples, register_store_codec
from .compare import DEFAULT_RECOVERY_SLO, PolicyComparison, compare_policies, policy_score
from .engine import ServiceEngine, ServiceResult, ServiceSnapshot
from .pacing import pace_snapshots
from .policies import (
    AdmissionPolicy,
    ForecastAwarePolicy,
    ServiceState,
    StaticCapPolicy,
    UtilizationThresholdPolicy,
    make_policy,
    policy_names,
)
from .registry import (
    get_service,
    register_service,
    service_catalog,
    service_names,
)
from .spec import POLICY_KIND_SUMMARIES, POLICY_KINDS, ServiceSpec

_SERVICE_METRICS = (
    "rmse_no_forecast_mm",
    "rmse_foreco_mm",
    "late_fraction",
    "recovery_fraction",
    "completion_time_s",
)


def _encode_service(result: ServiceResult) -> dict:
    """Kind-specific payload fields for a service record (snapshots included)."""
    payload = {
        "n_commands": int(result.n_commands),
        "admitted": int(result.admitted),
        "dropped_sessions": int(result.dropped_sessions),
        "migrated_sessions": int(result.migrated_sessions),
        "policy": result.spec.policy,
        "ap_utilization": [float(u) for u in result.ap_utilization],
        "snapshots": [snapshot.to_dict() for snapshot in result.snapshots],
    }
    for metric in _SERVICE_METRICS:
        payload[metric] = [float(v) for v in getattr(result, metric)]
    return payload


def _decode_service(spec: ServiceSpec, key: str, payload: dict) -> ServiceResult:
    """Rebuild a :class:`ServiceResult` from a service record's payload."""
    policy = str(payload["policy"])
    if policy != spec.policy:
        raise StoreError(f"stored policy {policy!r} does not match the spec's {spec.policy!r}")
    utilization = payload["ap_utilization"]
    if not isinstance(utilization, list) or len(utilization) != spec.fleet.aps:
        raise StoreError("ap_utilization does not match the spec's AP count")
    admitted = int(payload["admitted"])
    if admitted > 0:
        metrics = _metric_tuples(payload, _SERVICE_METRICS)
    else:
        # A policy may legitimately admit nothing; _metric_tuples treats an
        # empty list as corruption, so the empty case decodes explicitly.
        metrics = {metric: () for metric in _SERVICE_METRICS}
    raw_snapshots = payload.get("snapshots")
    if not isinstance(raw_snapshots, list):
        raise StoreError("service record has no snapshot stream")
    snapshots = tuple(
        ServiceSnapshot(
            time_s=float(row["time_s"]),
            active_sessions=int(row["active_sessions"]),
            admitted=int(row["admitted"]),
            dropped=int(row["dropped"]),
            migrated=int(row["migrated"]),
            completed=int(row["completed"]),
            rolling_p99_recovery=(
                None
                if row["rolling_p99_recovery"] is None
                else float(row["rolling_p99_recovery"])
            ),
            ap_utilization=tuple(float(u) for u in row["ap_utilization"]),
        )
        for row in raw_snapshots
    )
    return ServiceResult(
        spec=spec,
        spec_hash=key,
        n_commands=int(payload["n_commands"]),
        admitted=admitted,
        dropped_sessions=int(payload["dropped_sessions"]),
        migrated_sessions=int(payload["migrated_sessions"]),
        ap_utilization=tuple(float(u) for u in utilization),
        snapshots=snapshots,
        **metrics,
    )


register_store_codec("service", _encode_service, _decode_service)

__all__ = [
    "AdmissionPolicy",
    "DEFAULT_RECOVERY_SLO",
    "ForecastAwarePolicy",
    "POLICY_KIND_SUMMARIES",
    "POLICY_KINDS",
    "PolicyComparison",
    "ServiceEngine",
    "ServiceResult",
    "ServiceSnapshot",
    "ServiceSpec",
    "ServiceState",
    "StaticCapPolicy",
    "UtilizationThresholdPolicy",
    "compare_policies",
    "get_service",
    "make_policy",
    "pace_snapshots",
    "policy_names",
    "policy_score",
    "register_service",
    "service_catalog",
    "service_names",
]
