"""Pluggable admission policies for the live service loop.

An :class:`AdmissionPolicy` answers one question, once per arrival: *given
the service state at this command slot, which AP (if any) takes the new
session?*  Returning the home AP admits in place, returning another AP
**migrates** the arrival there, and returning ``None`` drops it.

All three built-in policies share the fleet layer's hard constraint — an AP
never holds more than ``ap_capacity`` concurrent sessions — and differ only
in how (and whether) they place an arrival below that ceiling:

``static-cap``
    The fleet layer's rule verbatim: home AP only, admit while it has a free
    slot.  This is the anchor policy — a ``static-cap`` service reproduces
    :class:`~repro.fleet.FleetEngine` admissions exactly, which the test
    suite pins.
``utilization-threshold``
    Greedy load balancing on *instantaneous* air-time utilisation: place the
    arrival on the least-loaded AP (home first on ties) whose utilisation
    after admission stays within ``ServiceSpec.utilization_limit``.
``forecast-aware``
    The FoReCo move applied to admission: feed each AP's recent utilisation
    samples to a :class:`~repro.forecasting.Forecaster` and place the
    arrival by *predicted* next-slot utilisation instead of the current one,
    so a briefly-idle AP that is about to congest is avoided.

Policies are deterministic pure functions of the service state — they hold
no RNG and never look at wall time, so live replays stay bit-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_right, insort

import numpy as np

from ..errors import ConfigurationError
from .spec import POLICY_KINDS, ServiceSpec


class ServiceState:
    """Mutable per-repetition admission bookkeeping the policies read.

    Tracks, per AP, the (nondecreasing) arrival offsets of admitted
    sessions.  Because every session occupies exactly ``n_commands``
    consecutive command slots, the number of sessions active on an AP at
    slot ``offset`` is a pure window count over those offsets — the same
    arithmetic :meth:`repro.fleet.FleetEngine._plan_repetition` uses, which
    keeps the ``static-cap`` policy bit-for-bit aligned with the fleet
    engine.
    """

    def __init__(self, spec: ServiceSpec, n_commands: int) -> None:
        fleet = spec.fleet
        self.n_commands = int(n_commands)
        self.capacity = fleet.ap_capacity
        self.aps = fleet.aps
        #: Per-slot air-time cost of one active session, as a fraction of the
        #: command period (the fleet coupling constant).
        self.session_load = float(fleet.ap_service_ms) / float(
            fleet.template.foreco.command_period_ms
        )
        self._admitted: list[list[int]] = [[] for _ in range(fleet.aps)]

    def active(self, ap: int, offset: int) -> int:
        """Sessions active on ``ap`` at command slot ``offset``."""
        offsets = self._admitted[ap]
        return len(offsets) - bisect_right(offsets, offset - self.n_commands)

    def utilization(self, ap: int, offset: int, extra: int = 0) -> float:
        """Air-time utilisation of ``ap`` at ``offset``, with ``extra`` more sessions."""
        return min(1.0, (self.active(ap, offset) + extra) * self.session_load)

    def admit(self, ap: int, offset: int) -> None:
        """Record an admitted session on ``ap`` starting at ``offset``."""
        # Arrivals are processed in nondecreasing-offset order, but insort
        # keeps the window arithmetic valid even for same-slot ties.
        insort(self._admitted[ap], offset)

    def utilization_history(self, ap: int, offset: int) -> np.ndarray:
        """Per-slot utilisation samples of ``ap`` over slots ``[0, offset)``.

        This is the series the forecast-aware policy conditions on: one
        sample per elapsed command slot, each the capped air-time load the
        AP carried during that slot.
        """
        if offset <= 0:
            return np.zeros((0,), dtype=np.float64)
        offsets = np.asarray(self._admitted[ap], dtype=np.int64)
        slots = np.arange(offset, dtype=np.int64)
        if offsets.size == 0:
            return np.zeros((offset,), dtype=np.float64)
        # active(slot) = #{o : slot - n_commands < o <= slot}
        upper = np.searchsorted(offsets, slots, side="right")
        lower = np.searchsorted(offsets, slots - self.n_commands, side="right")
        return np.minimum(1.0, (upper - lower) * self.session_load)


class AdmissionPolicy(ABC):
    """Decide AP placement for each arriving session.

    Subclasses implement :meth:`admit`; the service engine calls it once per
    arrival, in virtual-time order, and records the admitted offset into the
    shared :class:`ServiceState` on the policy's behalf.
    """

    #: Registry name; subclasses override.
    kind = ""

    def __init__(self, spec: ServiceSpec) -> None:
        self.spec = spec

    @abstractmethod
    def admit(self, state: ServiceState, home_ap: int, offset: int) -> int | None:
        """Return the AP index that takes the arrival, or ``None`` to drop it."""


class StaticCapPolicy(AdmissionPolicy):
    """Home-AP admission under the hard capacity cap (the fleet rule)."""

    kind = "static-cap"

    def admit(self, state: ServiceState, home_ap: int, offset: int) -> int | None:
        if state.active(home_ap, offset) < state.capacity:
            return home_ap
        return None


class UtilizationThresholdPolicy(AdmissionPolicy):
    """Least-utilised-AP placement under an instantaneous load threshold."""

    kind = "utilization-threshold"

    def admit(self, state: ServiceState, home_ap: int, offset: int) -> int | None:
        limit = self.spec.utilization_limit
        # Home AP first, then the rest by (current active count, index):
        # deterministic, and ties always resolve to the lowest AP index.
        order = sorted(range(state.aps), key=lambda ap: (ap != home_ap, state.active(ap, offset), ap))
        for ap in order:
            if state.active(ap, offset) >= state.capacity:
                continue
            if state.utilization(ap, offset, extra=1) <= limit:
                return ap
        return None


class ForecastAwarePolicy(AdmissionPolicy):
    """Placement by forecast next-slot utilisation (FoReCo-style admission).

    Each AP's utilisation history (one sample per elapsed command slot) is
    fed to a freshly-fit :class:`~repro.forecasting.Forecaster`; the arrival
    goes to the AP whose *predicted* utilisation leaves room under the
    limit.  Until an AP has accumulated enough history to fit on
    (``forecast_record + 1`` samples), its instantaneous utilisation is the
    fallback predictor — so early in a run this policy behaves like
    ``utilization-threshold`` and smoothly switches to forecasts.
    """

    kind = "forecast-aware"

    def _predicted_utilization(self, state: ServiceState, ap: int, offset: int) -> float:
        from ..forecasting import make_forecaster

        record = self.spec.forecast_record
        history = state.utilization_history(ap, offset)
        if history.size <= record:
            return state.utilization(ap, offset)
        series = history.reshape(-1, 1)
        forecaster = make_forecaster(self.spec.forecast_algorithm, record=record)
        forecaster.fit(series)
        predicted = float(forecaster.predict_next(series[-record:])[0])
        return min(1.0, max(0.0, predicted))

    def admit(self, state: ServiceState, home_ap: int, offset: int) -> int | None:
        limit = self.spec.utilization_limit
        predictions = {
            ap: self._predicted_utilization(state, ap, offset) for ap in range(state.aps)
        }
        order = sorted(range(state.aps), key=lambda ap: (ap != home_ap, predictions[ap], ap))
        for ap in order:
            if state.active(ap, offset) >= state.capacity:
                continue
            if predictions[ap] + state.session_load <= limit:
                return ap
        return None


_POLICIES: dict[str, type[AdmissionPolicy]] = {
    StaticCapPolicy.kind: StaticCapPolicy,
    UtilizationThresholdPolicy.kind: UtilizationThresholdPolicy,
    ForecastAwarePolicy.kind: ForecastAwarePolicy,
}
assert set(_POLICIES) == set(POLICY_KINDS)


def policy_names() -> tuple[str, ...]:
    """Registered admission-policy names, in canonical comparison order."""
    return POLICY_KINDS


def make_policy(spec: ServiceSpec) -> AdmissionPolicy:
    """Instantiate the admission policy a :class:`ServiceSpec` names."""
    try:
        factory = _POLICIES[spec.policy]
    except KeyError:  # pragma: no cover - ServiceSpec validates first
        raise ConfigurationError(
            f"unknown admission policy {spec.policy!r}; available: {sorted(_POLICIES)}"
        ) from None
    return factory(spec)
