"""Pick-and-place task description.

The evaluation workload is a repetitive pick-and-place task: the arm starts
at its home pose, moves above the pick location, descends to grasp, lifts,
carries the object across the workspace, descends to place it, and returns
home.  The paper's Fig. 6 shows the resulting distance-from-origin trace:
a periodic pattern oscillating roughly between 200 mm and 500 mm.

A task is a list of :class:`Waypoint` objects — joint-space poses with dwell
times — and :func:`default_pick_place_task` builds a Niryo-One-sized instance
whose Cartesian sweep matches the range in Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..robot.niryo import NiryoOneArm


@dataclass
class Waypoint:
    """One joint-space waypoint of a teleoperated task.

    Attributes
    ----------
    joints:
        Target joint configuration (radians), shape ``(d,)``.
    move_duration_s:
        Nominal time an operator takes to move from the previous waypoint to
        this one.
    dwell_s:
        Time the operator holds the pose once reached (e.g. closing the
        gripper at the pick point).
    name:
        Label used in logs and plots.
    """

    joints: np.ndarray
    move_duration_s: float
    dwell_s: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        self.joints = np.asarray(self.joints, dtype=float).ravel()
        if self.move_duration_s <= 0:
            raise ConfigurationError("move_duration_s must be positive")
        if self.dwell_s < 0:
            raise ConfigurationError("dwell_s must be non-negative")


@dataclass
class PickPlaceTask:
    """A repetitive task as an ordered list of waypoints.

    One *cycle* of the task visits every waypoint once; operators repeat the
    cycle a configurable number of times to build a dataset.
    """

    waypoints: list[Waypoint] = field(default_factory=list)
    name: str = "pick-and-place"

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise ConfigurationError("a task needs at least one waypoint")
        n_joints = self.waypoints[0].joints.size
        for waypoint in self.waypoints:
            if waypoint.joints.size != n_joints:
                raise ConfigurationError("all waypoints must have the same number of joints")

    @property
    def n_joints(self) -> int:
        """Joint dimensionality of the task."""
        return self.waypoints[0].joints.size

    def cycle_duration_s(self) -> float:
        """Nominal duration of one task cycle."""
        return float(sum(w.move_duration_s + w.dwell_s for w in self.waypoints))

    def joint_matrix(self) -> np.ndarray:
        """All waypoint joint vectors stacked into an ``(n_waypoints, d)`` array."""
        return np.array([w.joints for w in self.waypoints])

    def cartesian_extent_mm(self, arm: NiryoOneArm | None = None) -> tuple[float, float]:
        """Min/max distance-from-origin over the waypoints (sanity checks)."""
        arm = arm if arm is not None else NiryoOneArm()
        distances = [arm.distance_from_origin_mm(w.joints) for w in self.waypoints]
        return float(min(distances)), float(max(distances))


def default_pick_place_task(arm: NiryoOneArm | None = None) -> PickPlaceTask:
    """Niryo-One-sized pick-and-place cycle matching the paper's Fig. 6 range.

    The waypoints sweep the end effector between roughly 200 mm (tucked pick
    pose close to the base) and 500 mm (extended carry/place pose), with
    dwell times at the pick and place poses for the gripper action.
    """
    arm = arm if arm is not None else NiryoOneArm()
    home = arm.home_pose()
    above_pick = np.array([0.75, -0.25, 0.35, 0.0, -0.45, 0.0])
    pick = np.array([0.75, -0.55, 0.75, 0.0, -0.85, 0.0])
    lift = np.array([0.75, -0.10, 0.20, 0.0, -0.30, 0.0])
    carry = np.array([-0.35, 0.20, -0.35, 0.0, 0.10, 0.0])
    above_place = np.array([-0.80, -0.05, 0.05, 0.0, -0.20, 0.0])
    place = np.array([-0.80, -0.35, 0.45, 0.0, -0.55, 0.0])
    retreat = np.array([-0.40, 0.15, -0.45, 0.0, 0.05, 0.0])

    waypoints = [
        Waypoint(home, move_duration_s=1.6, dwell_s=0.2, name="home"),
        Waypoint(above_pick, move_duration_s=2.6, dwell_s=0.1, name="above-pick"),
        Waypoint(pick, move_duration_s=1.6, dwell_s=0.4, name="pick"),
        Waypoint(lift, move_duration_s=1.4, dwell_s=0.1, name="lift"),
        Waypoint(carry, move_duration_s=3.0, dwell_s=0.1, name="carry"),
        Waypoint(above_place, move_duration_s=2.2, dwell_s=0.1, name="above-place"),
        Waypoint(place, move_duration_s=1.6, dwell_s=0.4, name="place"),
        Waypoint(retreat, move_duration_s=1.4, dwell_s=0.1, name="retreat"),
        Waypoint(home, move_duration_s=2.4, dwell_s=0.3, name="return-home"),
    ]
    return PickPlaceTask(waypoints=waypoints)
