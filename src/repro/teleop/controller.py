"""Remote controller: turns operator motion into the on-the-wire command stream.

The joystick-based remote controller in the testbed issues one absolute joint
command every Ω = 20 ms, where consecutive commands differ by at most the
robot's configured *moving offset* (0.04 rad per joint).  This module applies
that quantisation to an operator's raw motion and packages the result as a
:class:`CommandStream`, the canonical input of every experiment:

* the defined (ideal) command sequence ``c_1 .. c_N``,
* the generation timestamps ``g(c_i)`` on the Ω grid,
* convenience accessors used by the dataset/recovery layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_command_array, ensure_positive
from ..errors import DimensionError
from ..robot.niryo import NiryoOneArm
from .operator import OperatorModel


@dataclass
class CommandStream:
    """An ordered stream of remote-control commands on the Ω time grid.

    Attributes
    ----------
    commands:
        Absolute joint commands, shape ``(n, d)``.
    period_ms:
        Command interval Ω in milliseconds.
    label:
        Free-form provenance label ("experienced", "inexperienced", ...).
    """

    commands: np.ndarray
    period_ms: float = 20.0
    label: str = ""

    def __post_init__(self) -> None:
        self.commands = as_command_array("commands", self.commands)
        self.period_ms = ensure_positive("period_ms", self.period_ms)

    def __len__(self) -> int:
        return self.commands.shape[0]

    @property
    def n_joints(self) -> int:
        """Dimensionality ``d`` of each command."""
        return self.commands.shape[1]

    @property
    def duration_s(self) -> float:
        """Wall-clock duration spanned by the stream."""
        return len(self) * self.period_ms / 1000.0

    def generation_times_s(self) -> np.ndarray:
        """``g(c_i)`` — the time each command is issued, in seconds."""
        return np.arange(len(self)) * self.period_ms / 1000.0

    def slice(self, start: int, stop: int) -> "CommandStream":
        """Sub-stream of commands ``start <= i < stop``."""
        return CommandStream(self.commands[start:stop], period_ms=self.period_ms, label=self.label)

    def head_seconds(self, seconds: float) -> "CommandStream":
        """The first ``seconds`` worth of commands (e.g. a 30 s experiment run)."""
        n = int(round(seconds * 1000.0 / self.period_ms))
        n = max(1, min(n, len(self)))
        return self.slice(0, n)

    def distance_from_origin_mm(self, arm: NiryoOneArm | None = None) -> np.ndarray:
        """Distance-from-origin series of the defined trajectory (Fig. 6 y-axis)."""
        arm = arm if arm is not None else NiryoOneArm()
        return arm.trajectory_distance_mm(self.commands)


class RemoteController:
    """Quantising remote controller sitting between the operator and the network.

    Parameters
    ----------
    arm:
        The target arm (provides the moving offset and joint limits).
    command_period_ms:
        Ω, the command interval.
    moving_offset_rad:
        Maximum per-joint change between consecutive commands.  ``None`` uses
        the arm's configured offset (0.04 rad for the Niryo One).
    """

    def __init__(
        self,
        arm: NiryoOneArm | None = None,
        command_period_ms: float = 20.0,
        moving_offset_rad: float | None = None,
    ) -> None:
        self.arm = arm if arm is not None else NiryoOneArm()
        self.command_period_ms = ensure_positive("command_period_ms", command_period_ms)
        offset = (
            moving_offset_rad
            if moving_offset_rad is not None
            else self.arm.limits.moving_offset_rad
        )
        self.moving_offset_rad = ensure_positive("moving_offset_rad", offset)

    def quantise(self, raw_motion: np.ndarray, label: str = "") -> CommandStream:
        """Convert raw operator motion into a rate-limited command stream.

        Each output command moves every joint at most ``moving_offset_rad``
        from the previous command towards the operator's current position, and
        is clamped to the arm's joint limits — exactly what the joystick
        controller in the testbed does.
        """
        raw_motion = as_command_array("raw_motion", raw_motion)
        if raw_motion.shape[1] != self.arm.n_joints:
            raise DimensionError(
                f"raw motion must have {self.arm.n_joints} joints, got {raw_motion.shape[1]}"
            )
        commands = np.empty_like(raw_motion)
        current = raw_motion[0].copy()
        commands[0] = self.arm.clamp(current)
        for index in range(1, raw_motion.shape[0]):
            delta = raw_motion[index] - current
            delta = np.clip(delta, -self.moving_offset_rad, self.moving_offset_rad)
            current = self.arm.clamp(current + delta)
            commands[index] = current
        return CommandStream(commands, period_ms=self.command_period_ms, label=label)

    def stream_from_operator(self, operator: OperatorModel, n_repetitions: int = 10) -> CommandStream:
        """Generate an operator dataset and quantise it into a command stream."""
        raw = operator.generate_dataset(n_repetitions)
        return self.quantise(raw, label=operator.profile.name)
