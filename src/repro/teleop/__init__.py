"""Teleoperation substrate: tasks, operators and the remote controller.

The paper's datasets were produced by two human operators (one experienced,
one inexperienced) driving the Niryo One through 100 repetitions of a
pick-and-place task with a joystick at 50 Hz over an ideal (Ethernet) link.
This package synthesises equivalent command streams:

* :mod:`repro.teleop.pick_place` — the pick-and-place task as a sequence of
  joint-space waypoints with dwell times (pick, lift, carry, place, return).
* :mod:`repro.teleop.operator` — operator models that turn the task into a
  50 Hz joint-command stream; the experienced operator is smooth and
  consistent, the inexperienced one adds jitter, overshoot and variable
  speed, mirroring the paper's two datasets.
* :mod:`repro.teleop.controller` — the remote controller that quantises the
  operator's motion into per-command joint increments bounded by the robot's
  0.04 rad moving offset.
"""

from .controller import CommandStream, RemoteController
from .operator import OperatorModel, OperatorProfile, experienced_operator, inexperienced_operator
from .pick_place import PickPlaceTask, Waypoint, default_pick_place_task

__all__ = [
    "CommandStream",
    "RemoteController",
    "OperatorModel",
    "OperatorProfile",
    "experienced_operator",
    "inexperienced_operator",
    "PickPlaceTask",
    "Waypoint",
    "default_pick_place_task",
]
