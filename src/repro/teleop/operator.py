"""Human-operator models producing 50 Hz joint-command streams.

The paper collected two datasets — an *experienced* operator and an
*inexperienced* one — each repeating the pick-and-place action 100 times with
a joystick issuing a new command every 20 ms (H = 187 109 commands in total).
The experienced dataset trains the ML models; the inexperienced one is used
for testing and for driving every simulation/experiment, so that the model
operates "on data that is tightly related but not exactly the same as the
training data".

:class:`OperatorModel` synthesises equivalent streams.  A cycle of the task is
rendered as a trapezoidal-velocity interpolation between waypoints (the
profile a joystick naturally produces; a minimum-jerk profile is available as
an alternative); the operator's skill level (captured in
:class:`OperatorProfile`) adds:

* per-cycle timing variability (slower/faster repetitions),
* low-frequency joystick wander (smoothed noise) and overshoot at waypoints,
* occasional pauses, more frequent for the inexperienced operator.

The result is deterministic given a seed, so datasets are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import ensure_int, ensure_positive, rng_from
from ..errors import ConfigurationError
from .pick_place import PickPlaceTask, default_pick_place_task


@dataclass
class OperatorProfile:
    """Statistical description of an operator's driving style.

    Attributes
    ----------
    name:
        Label ("experienced" / "inexperienced").
    speed_variability:
        Standard deviation of the per-segment duration multiplier.
    jitter_rad:
        Standard deviation of the smoothed joystick wander added to every
        joint (radians).
    jitter_smoothing:
        Exponential-smoothing factor of the wander (closer to 1 = smoother).
    overshoot_rad:
        Magnitude of the overshoot added when arriving at a waypoint.
    pause_probability:
        Per-segment probability of inserting a short hesitation pause.
    pause_duration_s:
        Mean duration of a hesitation pause.
    """

    name: str
    speed_variability: float = 0.05
    jitter_rad: float = 0.002
    jitter_smoothing: float = 0.95
    overshoot_rad: float = 0.002
    pause_probability: float = 0.02
    pause_duration_s: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter_smoothing < 1.0:
            raise ConfigurationError("jitter_smoothing must lie in [0, 1)")
        if self.speed_variability < 0 or self.jitter_rad < 0 or self.overshoot_rad < 0:
            raise ConfigurationError("operator noise magnitudes must be non-negative")
        if not 0.0 <= self.pause_probability <= 1.0:
            raise ConfigurationError("pause_probability must lie in [0, 1]")


def experienced_operator() -> OperatorProfile:
    """Profile of the experienced operator (smooth, consistent, few pauses)."""
    return OperatorProfile(
        name="experienced",
        speed_variability=0.04,
        jitter_rad=0.0015,
        jitter_smoothing=0.97,
        overshoot_rad=0.001,
        pause_probability=0.01,
        pause_duration_s=0.15,
    )


def inexperienced_operator() -> OperatorProfile:
    """Profile of the inexperienced operator (jittery, variable, hesitant)."""
    return OperatorProfile(
        name="inexperienced",
        speed_variability=0.12,
        jitter_rad=0.005,
        jitter_smoothing=0.90,
        overshoot_rad=0.006,
        pause_probability=0.06,
        pause_duration_s=0.35,
    )


def _minimum_jerk(fraction: np.ndarray) -> np.ndarray:
    """Minimum-jerk position profile: 10t^3 - 15t^4 + 6t^5 on [0, 1]."""
    t = np.clip(fraction, 0.0, 1.0)
    return 10.0 * t ** 3 - 15.0 * t ** 4 + 6.0 * t ** 5


def _trapezoidal(fraction: np.ndarray, ramp: float = 0.2) -> np.ndarray:
    """Trapezoidal-velocity position profile on [0, 1].

    Joystick teleoperation produces motion that is close to constant velocity
    with short acceleration/deceleration ramps (the operator pushes the stick,
    holds it, and releases it), rather than the high-curvature minimum-jerk
    profile of an automatic planner.  ``ramp`` is the fraction of the segment
    spent accelerating (and, symmetrically, decelerating).
    """
    t = np.clip(fraction, 0.0, 1.0)
    ramp = float(np.clip(ramp, 1e-6, 0.5))
    peak = 1.0 / (1.0 - ramp)  # cruise velocity so the displacement integrates to 1
    position = np.empty_like(t)
    accel = t < ramp
    cruise = (t >= ramp) & (t <= 1.0 - ramp)
    decel = t > 1.0 - ramp
    position[accel] = 0.5 * peak * t[accel] ** 2 / ramp
    position[cruise] = 0.5 * peak * ramp + peak * (t[cruise] - ramp)
    td = 1.0 - t[decel]
    position[decel] = 1.0 - 0.5 * peak * td ** 2 / ramp
    return position


_PROFILES = {"trapezoidal": _trapezoidal, "minimum-jerk": _minimum_jerk}


class OperatorModel:
    """Synthesises a 50 Hz joint-command stream for a repetitive task.

    Parameters
    ----------
    task:
        The task to execute; defaults to the Niryo-sized pick-and-place cycle.
    profile:
        Operator style; defaults to the experienced operator.
    command_period_ms:
        Ω — command interval (20 ms, i.e. 50 Hz).
    seed:
        RNG seed; the same seed reproduces the same dataset exactly.
    """

    def __init__(
        self,
        task: PickPlaceTask | None = None,
        profile: OperatorProfile | None = None,
        command_period_ms: float = 20.0,
        motion_profile: str = "trapezoidal",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.task = task if task is not None else default_pick_place_task()
        self.profile = profile if profile is not None else experienced_operator()
        self.command_period_ms = ensure_positive("command_period_ms", command_period_ms)
        if motion_profile not in _PROFILES:
            raise ConfigurationError(
                f"unknown motion_profile {motion_profile!r}; available: {sorted(_PROFILES)}"
            )
        self.motion_profile = motion_profile
        self._profile_fn = _PROFILES[motion_profile]
        self.rng = rng_from(seed)

    @property
    def n_joints(self) -> int:
        """Joint dimensionality of the generated commands."""
        return self.task.n_joints

    # ------------------------------------------------------------ generation
    def generate_cycle(self, start_joints: np.ndarray | None = None) -> np.ndarray:
        """Generate the joint commands of a single task cycle.

        Returns an ``(n_commands, d)`` array starting from ``start_joints``
        (default: the first waypoint of the task).
        """
        dt_s = self.command_period_ms / 1000.0
        profile = self.profile
        waypoints = self.task.waypoints
        current = (
            np.asarray(start_joints, dtype=float).ravel().copy()
            if start_joints is not None
            else waypoints[0].joints.copy()
        )
        commands: list[np.ndarray] = []
        wander = np.zeros(self.n_joints)

        for waypoint in waypoints:
            duration = waypoint.move_duration_s * max(
                0.2, 1.0 + self.rng.normal(0.0, profile.speed_variability)
            )
            n_steps = max(1, int(round(duration / dt_s)))
            target = waypoint.joints + self.rng.normal(0.0, profile.overshoot_rad, self.n_joints)
            start = current.copy()
            fractions = self._profile_fn(np.arange(1, n_steps + 1) / n_steps)
            for fraction in fractions:
                wander = (
                    profile.jitter_smoothing * wander
                    + (1.0 - profile.jitter_smoothing)
                    * self.rng.normal(0.0, profile.jitter_rad, self.n_joints)
                )
                command = start + fraction * (target - start) + wander
                commands.append(command)
            current = commands[-1].copy()

            dwell = waypoint.dwell_s
            if self.rng.random() < profile.pause_probability:
                dwell += self.rng.exponential(profile.pause_duration_s)
            n_dwell = int(round(dwell / dt_s))
            for _ in range(n_dwell):
                wander = (
                    profile.jitter_smoothing * wander
                    + (1.0 - profile.jitter_smoothing)
                    * self.rng.normal(0.0, profile.jitter_rad, self.n_joints)
                )
                commands.append(current + wander)
        return np.array(commands)

    def generate_dataset(self, n_repetitions: int = 10) -> np.ndarray:
        """Concatenate ``n_repetitions`` task cycles into one command stream.

        The paper uses 100 repetitions per operator; examples and tests use a
        smaller default so they run in seconds.
        """
        n_repetitions = ensure_int("n_repetitions", n_repetitions, minimum=1)
        cycles = []
        current: np.ndarray | None = None
        for _ in range(n_repetitions):
            cycle = self.generate_cycle(start_joints=current)
            cycles.append(cycle)
            current = cycle[-1]
        return np.vstack(cycles)

    def generate_timed_dataset(self, n_repetitions: int = 10) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(times_s, commands)`` with times on the 50 Hz command grid."""
        commands = self.generate_dataset(n_repetitions)
        times = np.arange(commands.shape[0]) * self.command_period_ms / 1000.0
        return times, commands
