"""Combinator grammar over scenario parameters for coverage-guided search.

The preset registry names a dozen hand-picked workloads; this module spans
the space *between* them.  A :class:`ScenarioGrammar` is a bounded combinator
grammar over :class:`~repro.scenarios.spec.ChannelSpec` /
:class:`~repro.scenarios.spec.ForecoSpec` parameters — channel kinds with
per-kind knob grids (loss/jammer knobs, Markov regime matrices, handover
profiles), compound stage compositions, and a couple of recovery-side axes —
from which candidates are produced two ways:

* **bounded enumeration** (:meth:`ScenarioGrammar.enumerate_specs`): the
  cross-product of every kind's knob grid, interleaved round-robin across
  kinds so a small budget still samples diverse channel families, in a
  deterministic order;
* **random-neighborhood expansion** (:meth:`ScenarioGrammar.random_spec`,
  :meth:`ScenarioGrammar.neighbors`): draw a fresh point uniformly inside
  the knob bounds, or perturb one knob of an existing candidate within its
  bounds — the refinement move of the search harness in
  :mod:`repro.scenarios.search`.

Every candidate is a frozen, hashable
:class:`~repro.scenarios.spec.ScenarioSpec`, so the search memoizes probes
through the content-addressed :class:`~repro.scenarios.store.ResultStore`
and stays bit-deterministic across worker counts and backends.  Invalid
grammar configurations and out-of-range knobs raise
:class:`~repro.errors.ConfigurationError` — never a bare ``ValueError`` —
matching the spec layer's validation contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .spec import (
    ChannelSpec,
    ScenarioSpec,
    compound_channel,
    handover_channel,
    jammer_channel,
    loss_burst_channel,
    markov_interference_channel,
    periodic_loss_channel,
    random_loss_channel,
    wireless_channel,
)

#: Channel kinds the grammar composes over.  ``clean`` and ``trace`` are
#: deliberately excluded: the search targets adversarial conditions, and a
#: trace channel is parameterised by a recording, not by knobs.
GRAMMAR_KINDS: tuple[str, ...] = (
    "wireless",
    "jammer",
    "loss-burst",
    "periodic-loss",
    "random-loss",
    "markov-interference",
    "handover",
    "compound",
)

#: Primitive kinds a compound candidate may compose (two distinct stages).
COMPOUND_STAGE_KINDS: tuple[str, ...] = (
    "wireless",
    "jammer",
    "markov-interference",
    "handover",
)


@dataclass(frozen=True)
class Knob:
    """One bounded numeric channel parameter of a grammar kind.

    Attributes
    ----------
    name:
        Channel parameter name the knob maps onto.
    grid:
        Values used by bounded enumeration (small, hand-bounded).
    low / high:
        Inclusive mutation bounds for neighborhood expansion.
    integer:
        Round mutated values to integers (e.g. burst lengths, robot counts).
    """

    name: str
    grid: tuple
    low: float
    high: float
    integer: bool = False

    def jitter(self, value: float, rng: np.random.Generator) -> float:
        """One mutated value near ``value``, clamped into ``[low, high]``.

        The step is a Gaussian with 15 % of the bound span as its scale;
        integer knobs are rounded and nudged by one when the rounded step
        would be a no-op, so a mutation always moves the knob when the
        bounds leave it any room.
        """
        span = float(self.high - self.low)
        mutated = float(value) + float(rng.normal(0.0, 0.15 * span))
        mutated = min(float(self.high), max(float(self.low), mutated))
        if self.integer:
            mutated = float(round(mutated))
            if mutated == float(value):
                step = 1.0 if rng.random() < 0.5 else -1.0
                mutated = min(float(self.high), max(float(self.low), mutated + step))
        return mutated

    def sample(self, rng: np.random.Generator) -> float:
        """One value drawn uniformly inside the knob bounds."""
        value = float(rng.uniform(float(self.low), float(self.high)))
        return float(round(value)) if self.integer else value


#: Per-kind knob tables: enumeration grids double as mutation bounds.
_KIND_KNOBS: dict[str, tuple[Knob, ...]] = {
    "wireless": (
        Knob("n_robots", (15, 30), 5, 35, integer=True),
        Knob("probability", (0.02, 0.06), 0.0, 0.08),
        Knob("duration_slots", (60, 120), 10, 150, integer=True),
    ),
    "jammer": (
        Knob("p_good_to_jammed", (0.04, 0.10), 0.01, 0.2),
        Knob("p_jammed_to_good", (0.03, 0.08), 0.02, 0.3),
        Knob("delay_jammed_ms", (40.0, 80.0), 10.0, 120.0),
    ),
    "loss-burst": (
        Knob("burst_length", (5, 10, 20), 2, 45, integer=True),
        Knob("n_bursts", (2, 3), 1, 4, integer=True),
    ),
    "periodic-loss": (
        Knob("period", (50, 120), 20, 200, integer=True),
        Knob("burst_length", (10, 30), 1, 45, integer=True),
    ),
    "random-loss": (
        Knob("loss_probability", (0.1, 0.25, 0.4), 0.01, 0.5),
    ),
    "handover": (
        Knob("period", (120, 250), 60, 400, integer=True),
        Knob("outage", (15, 40), 2, 60, integer=True),
        Knob("spike_delay_ms", (30.0, 60.0), 5.0, 90.0),
    ),
}

#: Burst spacing of grammar loss-burst channels, and the run length (in
#: commands) every grammar candidate must stay placeable in: the default
#: base runs 6 s at 50 Hz.  The loss-burst knob bounds are sized so the
#: worst corner (4 bursts of 45 with gap 30) fits exactly.
_LOSS_BURST_MIN_GAP = 30
_GRAMMAR_MIN_COMMANDS = 300

#: Markov-regime axes: diagonal stickiness of the transition matrix and a
#: severity factor scaling the contended/swamped regime delays.
_MARKOV_STICKINESS = Knob("stickiness", (0.9, 0.97), 0.6, 0.99)
_MARKOV_SEVERITY = Knob("severity", (1.0, 2.5), 0.5, 4.0)

#: Recovery-side (ForecoSpec) mutation axes for neighborhood expansion.
_FORECO_KNOBS: tuple[Knob, ...] = (
    Knob("record", (10, 5), 2, 30, integer=True),
    Knob("tolerance_ms", (0.0,), 0.0, 40.0),
)

#: ForecoSpec variants crossed into the enumerated frontier (the first is
#: the base spec's own configuration).
_FORECO_VARIANTS: tuple[dict, ...] = ({}, {"record": 5})


def _markov_channel(stickiness: float, severity: float) -> ChannelSpec:
    """A three-regime Markov channel from the grammar's two Markov axes.

    ``stickiness`` is the shared diagonal of the row-stochastic transition
    matrix (off-diagonal mass split evenly); ``severity`` scales the
    contended/swamped regime delays of the default 2.4 GHz band model.
    """
    s = float(stickiness)
    if not 0.0 < s < 1.0:
        raise ConfigurationError(f"markov stickiness must be in (0, 1), got {s!r}")
    f = float(severity)
    if f <= 0.0:
        raise ConfigurationError(f"markov severity must be > 0, got {f!r}")
    off = (1.0 - s) / 2.0
    transition = (
        (s, off, off),
        (off, s, off),
        (off, off, s),
    )
    delays = (2.0, min(200.0, 12.0 * f), min(200.0, 45.0 * f))
    return markov_interference_channel(
        transition=transition,
        delay_means_ms=delays,
        loss_probabilities=(0.002, 0.05, 0.6),
    )


def _primitive_channel(kind: str, values: dict) -> ChannelSpec:
    """Materialise one primitive (non-compound) channel from knob values."""
    if kind == "markov-interference":
        return _markov_channel(values["stickiness"], values["severity"])
    builders = {
        "wireless": wireless_channel,
        "jammer": jammer_channel,
        "loss-burst": loss_burst_channel,
        "periodic-loss": periodic_loss_channel,
        "random-loss": random_loss_channel,
        "handover": handover_channel,
    }
    try:
        builder = builders[kind]
    except KeyError as exc:
        raise ConfigurationError(f"unknown grammar kind {kind!r}") from exc
    cast = {
        knob.name: (int(values[knob.name]) if knob.integer else float(values[knob.name]))
        for knob in _KIND_KNOBS[kind]
    }
    # Cross-knob feasibility: some injectors validate against the run length
    # or between knobs only when the scenario executes, so normalise here and
    # keep every grammar candidate runnable (base runs are >= 300 commands).
    if kind == "loss-burst":
        cast["min_gap"] = _LOSS_BURST_MIN_GAP
        capacity = _GRAMMAR_MIN_COMMANDS // (cast["burst_length"] + _LOSS_BURST_MIN_GAP)
        cast["n_bursts"] = max(1, min(cast["n_bursts"], capacity))
    elif kind == "periodic-loss":
        cast["burst_length"] = min(cast["burst_length"], cast["period"] - 1)
    elif kind == "handover":
        cast["outage"] = min(cast["outage"], cast["period"] - 1)
    return builder(**cast)


def _mid_values(kind: str) -> dict:
    """The middle-of-grid knob values for a kind (compound stage prototype)."""
    if kind == "markov-interference":
        return {
            "stickiness": _MARKOV_STICKINESS.grid[len(_MARKOV_STICKINESS.grid) // 2],
            "severity": _MARKOV_SEVERITY.grid[len(_MARKOV_SEVERITY.grid) // 2],
        }
    return {knob.name: knob.grid[len(knob.grid) // 2] for knob in _KIND_KNOBS[kind]}


def _kind_knobs(kind: str) -> tuple[Knob, ...]:
    """The mutation knobs of one primitive kind."""
    if kind == "markov-interference":
        return (_MARKOV_STICKINESS, _MARKOV_SEVERITY)
    return _KIND_KNOBS[kind]


def _enumerate_kind(kind: str):
    """Yield every grid point of one kind's knob cross-product, in order."""
    if kind == "compound":
        for i, first in enumerate(COMPOUND_STAGE_KINDS):
            for second in COMPOUND_STAGE_KINDS[i + 1:]:
                yield compound_channel(
                    _primitive_channel(first, _mid_values(first)),
                    _primitive_channel(second, _mid_values(second)),
                )
        return
    knobs = _kind_knobs(kind)
    grids = [knob.grid for knob in knobs]
    indices = [0] * len(grids)
    while True:
        values = {knob.name: grid[i] for knob, grid, i in zip(knobs, grids, indices)}
        yield _primitive_channel(kind, values)
        for axis in range(len(grids) - 1, -1, -1):
            indices[axis] += 1
            if indices[axis] < len(grids[axis]):
                break
            indices[axis] = 0
        else:
            return


def _mutate_primitive(channel: ChannelSpec, rng: np.random.Generator) -> ChannelSpec:
    """Perturb one knob of a primitive channel within its grammar bounds."""
    kind = channel.kind
    knobs = _kind_knobs(kind)
    knob = knobs[int(rng.integers(len(knobs)))]
    if kind == "markov-interference":
        options = channel.options()
        transition = options["transition"]
        stickiness = float(np.mean([row[i] for i, row in enumerate(transition)]))
        severity = float(options["delay_means_ms"][1]) / 12.0
        values = {"stickiness": stickiness, "severity": severity}
        values[knob.name] = knob.jitter(values[knob.name], rng)
        return _markov_channel(values["stickiness"], values["severity"])
    values = channel.options()
    values[knob.name] = knob.jitter(float(values[knob.name]), rng)
    return _primitive_channel(kind, values)


class ScenarioGrammar:
    """Bounded combinator grammar producing frozen, hashable scenario specs.

    Parameters
    ----------
    base:
        Template the grammar grafts channels onto; its scale, seed and
        repetition count bound the cost of one probe.  The default keeps a
        probe in the sub-second range (CI scale, 3 repetitions, 6 s runs).
    kinds:
        Channel kinds to compose over, a subset of :data:`GRAMMAR_KINDS`
        (default: all of them).  Unknown kinds raise
        :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        base: ScenarioSpec | None = None,
        kinds: tuple[str, ...] | None = None,
    ) -> None:
        if base is None:
            base = ScenarioSpec(name="grammar", repetitions=3, run_seconds=6.0)
        if not isinstance(base, ScenarioSpec):
            raise ConfigurationError("grammar base must be a ScenarioSpec")
        self.base = base
        kinds = tuple(kinds) if kinds is not None else GRAMMAR_KINDS
        unknown = [kind for kind in kinds if kind not in GRAMMAR_KINDS]
        if unknown:
            raise ConfigurationError(
                f"unknown grammar kind(s) {unknown!r}; available: {sorted(GRAMMAR_KINDS)}"
            )
        if not kinds:
            raise ConfigurationError("a grammar needs at least one channel kind")
        self.kinds = kinds

    # ------------------------------------------------------------ enumeration
    def _spec_from_channel(self, channel: ChannelSpec, foreco_changes: dict) -> ScenarioSpec:
        """Graft a channel (and optional foreco overrides) onto the base spec."""
        spec = self.base.with_(channel=channel, name=f"grammar-{channel.kind}")
        if foreco_changes:
            spec = spec.with_foreco(**foreco_changes)
        return spec

    def enumerate_specs(self, limit: int | None = None) -> list[ScenarioSpec]:
        """The bounded enumerated frontier, in a deterministic order.

        Kinds are interleaved round-robin (one grid point per kind per
        round) so truncating with ``limit`` still samples every channel
        family; the full frontier crosses each channel grid with the
        :data:`_FORECO_VARIANTS` recovery-side variants.  ``limit`` must be
        positive when given.
        """
        if limit is not None and int(limit) < 1:
            raise ConfigurationError("enumeration limit must be >= 1")
        specs: list[ScenarioSpec] = []
        for foreco_changes in _FORECO_VARIANTS:
            generators = [_enumerate_kind(kind) for kind in self.kinds]
            while generators:
                still_open = []
                for generator in generators:
                    channel = next(generator, None)
                    if channel is None:
                        continue
                    specs.append(self._spec_from_channel(channel, foreco_changes))
                    if limit is not None and len(specs) >= int(limit):
                        return specs
                    still_open.append(generator)
                generators = still_open
        return specs

    # ------------------------------------------------------------- expansion
    def random_spec(self, rng: np.random.Generator) -> ScenarioSpec:
        """One candidate drawn uniformly inside the grammar's knob bounds."""
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        if kind == "compound":
            first, second = rng.choice(len(COMPOUND_STAGE_KINDS), size=2, replace=False)
            stages = [COMPOUND_STAGE_KINDS[int(first)], COMPOUND_STAGE_KINDS[int(second)]]
            channel = compound_channel(
                *[
                    _primitive_channel(
                        stage,
                        {knob.name: knob.sample(rng) for knob in _kind_knobs(stage)},
                    )
                    for stage in stages
                ]
            )
        else:
            values = {knob.name: knob.sample(rng) for knob in _kind_knobs(kind)}
            channel = _primitive_channel(kind, values)
        return self._spec_from_channel(channel, {})

    def neighbors(
        self, spec: ScenarioSpec, rng: np.random.Generator, count: int = 4
    ) -> list[ScenarioSpec]:
        """``count`` candidates one knob-perturbation away from ``spec``.

        Each neighbor perturbs exactly one knob: with probability 1/4 a
        recovery-side axis (:data:`_FORECO_KNOBS`), otherwise a channel
        knob of the spec's kind (for compounds, one knob of one stage).
        Perturbations are clamped into the grammar bounds, so a neighbor of
        a valid candidate is always a valid candidate.
        """
        count = int(count)
        if count < 0:
            raise ConfigurationError("neighbor count must be >= 0")
        if spec.channel.kind not in GRAMMAR_KINDS:
            raise ConfigurationError(
                f"cannot expand around channel kind {spec.channel.kind!r}; "
                f"grammar kinds: {sorted(GRAMMAR_KINDS)}"
            )
        out: list[ScenarioSpec] = []
        for _ in range(count):
            if rng.random() < 0.25:
                knob = _FORECO_KNOBS[int(rng.integers(len(_FORECO_KNOBS)))]
                current = float(getattr(spec.foreco, knob.name))
                mutated = knob.jitter(current, rng)
                if knob.integer:
                    mutated = int(mutated)
                out.append(spec.with_foreco(**{knob.name: mutated}))
                continue
            channel = spec.channel
            if channel.kind == "compound":
                stages = list(channel.options()["stages"])
                index = int(rng.integers(len(stages)))
                stages[index] = _mutate_primitive(stages[index], rng)
                mutated_channel = compound_channel(*stages)
            else:
                mutated_channel = _mutate_primitive(channel, rng)
            out.append(spec.with_(channel=mutated_channel))
        return out
