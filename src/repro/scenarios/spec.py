"""Declarative scenario specifications.

A :class:`ScenarioSpec` captures *everything* needed to reproduce one
remote-control session — the operator profiles, the channel model and its
parameters, the FoReCo configuration, the sizing scale, the seed and the
repetition count — as a frozen, hashable value object.  Because the spec is
a pure value:

* two equal specs always produce identical results, so the
  :class:`~repro.scenarios.engine.SessionEngine` can cache sessions by
  :meth:`ScenarioSpec.spec_hash`;
* a sweep is just a list of specs, which the
  :class:`~repro.scenarios.sweep.SweepExecutor` can fan out over worker
  threads without any shared mutable state;
* experiments, examples, benchmarks and the CLI all describe workloads in
  the same vocabulary instead of hand-wiring channels and recovery engines.

The module also hosts :class:`ExperimentScale` (the ci/standard/full sizing
knobs previously private to :mod:`repro.experiments.common`) because the
scale is part of the scenario identity.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from ..errors import ConfigurationError
from ..core.config import ForecoConfig


# --------------------------------------------------------------------- scales
@dataclass(frozen=True)
class ExperimentScale:
    """Sizing knobs shared by every experiment and scenario.

    Attributes
    ----------
    name:
        Scale label ("ci", "standard", "full").
    train_repetitions / test_repetitions:
        Pick-and-place cycles generated for the experienced (training) and
        inexperienced (test) operators.
    heatmap_repetitions:
        Simulation repetitions averaged per Fig. 8 heatmap cell (paper: 40).
    run_seconds:
        Length of each Fig. 9 / Fig. 10 experiment run (paper: 30 s).
    forecast_windows_ms:
        Forecasting windows evaluated for Fig. 7 (paper: 20–1000 ms).
    forecast_evaluations:
        Number of rolling evaluations per Fig. 7 point.
    seq2seq_units:
        (encoder, decoder) sizes for the seq2seq forecaster; the paper's
        200/30 is used at full scale only, smaller sizes keep the NumPy BPTT
        affordable at CI scale.
    seq2seq_epochs:
        Training epochs for the seq2seq forecaster.
    """

    name: str
    train_repetitions: int
    test_repetitions: int
    heatmap_repetitions: int
    run_seconds: float
    forecast_windows_ms: tuple[int, ...]
    forecast_evaluations: int
    seq2seq_units: tuple[int, int]
    seq2seq_epochs: int


_SCALES: dict[str, ExperimentScale] = {
    "ci": ExperimentScale(
        name="ci",
        train_repetitions=6,
        test_repetitions=2,
        heatmap_repetitions=2,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 300, 600, 1000),
        forecast_evaluations=30,
        seq2seq_units=(16, 8),
        seq2seq_epochs=2,
    ),
    "standard": ExperimentScale(
        name="standard",
        train_repetitions=20,
        test_repetitions=4,
        heatmap_repetitions=10,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        forecast_evaluations=120,
        seq2seq_units=(64, 16),
        seq2seq_epochs=4,
    ),
    "full": ExperimentScale(
        name="full",
        train_repetitions=100,
        test_repetitions=10,
        heatmap_repetitions=40,
        run_seconds=30.0,
        forecast_windows_ms=(20, 100, 200, 300, 400, 500, 600, 700, 800, 900, 1000),
        forecast_evaluations=400,
        seq2seq_units=(200, 30),
        seq2seq_epochs=10,
    ),
}


def get_scale(scale: str | ExperimentScale = "ci") -> ExperimentScale:
    """Resolve a scale by name (or pass an :class:`ExperimentScale` through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return _SCALES[scale]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown experiment scale {scale!r}; available: {sorted(_SCALES)}"
        ) from exc


def scale_names() -> list[str]:
    """Names of the registered scales (for CLI choices)."""
    return sorted(_SCALES)


# ------------------------------------------------------------------- freezing
def freeze_params(params: dict) -> tuple:
    """Convert a parameter dict into a canonical hashable tuple of pairs.

    Values are frozen recursively: dicts become sorted ``(key, value)``
    tuples, lists/tuples become tuples.  Anything left unhashable is
    rejected so specs stay usable as cache keys.
    """
    frozen = tuple(sorted((str(key), _freeze_value(value)) for key, value in params.items()))
    return frozen


def _freeze_value(value):
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    try:
        hash(value)
    except TypeError as exc:
        raise ConfigurationError(
            f"scenario parameter values must be hashable, got {type(value).__name__}"
        ) from exc
    return value


def _thaw(value):
    """Inverse of :func:`_freeze_value` for pair-tuples produced by it."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            return {key: _thaw(item) for key, item in value}
        return tuple(_thaw(v) for v in value)
    return value


# ------------------------------------------------------------------- channels
#: Channel model kinds understood by the session engine.
CHANNEL_KINDS: tuple[str, ...] = (
    "clean",
    "wireless",
    "jammer",
    "loss-burst",
    "periodic-loss",
    "random-loss",
    "trace",
    "markov-interference",
    "handover",
    "compound",
)

#: One-line summary per channel kind (rendered into the docs reference).
CHANNEL_KIND_SUMMARIES: dict[str, str] = {
    "clean": "lossless channel with a constant nominal delay",
    "wireless": "802.11 AP queue with Bianchi contention and ON/OFF interference (Fig. 8)",
    "jammer": "Gilbert-Elliott two-state bursty jammer (Fig. 10)",
    "loss-burst": "random bursts of consecutive losses on a healthy channel (Fig. 9)",
    "periodic-loss": "deterministic loss burst every `period` commands",
    "random-loss": "memoryless i.i.d. Bernoulli losses",
    "trace": "replay of a recorded delay/loss array, cycled with per-repetition phase offsets",
    "markov-interference": "K-state Markov-modulated delay/loss regimes (superposable interference)",
    "handover": "periodic AP-roaming outages with decaying delay spikes",
    "compound": "superposition of stages: delays add, losses union",
}


@dataclass(frozen=True)
class ChannelSpec:
    """Declarative description of a channel model.

    ``kind`` selects the model (see :data:`CHANNEL_KINDS`) and ``params``
    holds its keyword arguments as a frozen tuple of pairs (use
    :meth:`ChannelSpec.make` to build one from plain keywords).  A
    ``"compound"`` channel composes stages: a command traverses every stage,
    its delays add up and it is lost if any stage loses it.
    """

    kind: str = "clean"
    params: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in CHANNEL_KINDS:
            raise ConfigurationError(
                f"unknown channel kind {self.kind!r}; available: {sorted(CHANNEL_KINDS)}"
            )

    @classmethod
    def make(cls, kind: str, **params) -> "ChannelSpec":
        """Build a spec from plain keyword parameters."""
        return cls(kind=kind, params=freeze_params(params))

    def options(self) -> dict:
        """Parameters as a plain dict (inverse of :meth:`make`)."""
        return {key: _thaw(value) for key, value in self.params}

    def updated(self, **params) -> "ChannelSpec":
        """A copy with ``params`` merged over the existing parameters."""
        merged = self.options()
        merged.update(params)
        return ChannelSpec.make(self.kind, **merged)

    def describe(self) -> str:
        """Compact one-line rendering, e.g. ``wireless(n_robots=25, ...)``."""
        if self.kind == "compound":
            stages = self.options().get("stages", ())
            inner = " + ".join(stage.describe() for stage in stages)
            return f"compound[{inner}]"
        inner = ", ".join(f"{key}={value}" for key, value in self.params)
        return f"{self.kind}({inner})"


def clean_channel(nominal_delay_ms: float = 1.0) -> ChannelSpec:
    """A lossless channel with a constant nominal delay."""
    return ChannelSpec.make("clean", nominal_delay_ms=nominal_delay_ms)


def wireless_channel(
    n_robots: int = 5,
    probability: float = 0.0,
    duration_slots: int = 0,
    **extra,
) -> ChannelSpec:
    """The 802.11 access-point channel of the Fig. 8 sweep.

    ``probability``/``duration_slots`` parameterise the non-802.11
    interference source; extra keywords are forwarded to
    :class:`repro.wireless.WirelessChannel` (e.g. ``queue_capacity``).
    """
    return ChannelSpec.make(
        "wireless",
        n_robots=n_robots,
        probability=probability,
        duration_slots=duration_slots,
        **extra,
    )


def jammer_channel(**config) -> ChannelSpec:
    """The Gilbert–Elliott bursty jammer of Fig. 10.

    Keywords are :class:`repro.wireless.JammerConfig` fields.
    """
    return ChannelSpec.make("jammer", **config)


def loss_burst_channel(
    burst_length: int,
    n_bursts: int = 5,
    min_gap: int = 60,
    nominal_delay_ms: float = 1.0,
) -> ChannelSpec:
    """The controlled consecutive-loss channel of Fig. 9."""
    return ChannelSpec.make(
        "loss-burst",
        burst_length=burst_length,
        n_bursts=n_bursts,
        min_gap=min_gap,
        nominal_delay_ms=nominal_delay_ms,
    )


def random_loss_channel(loss_probability: float, nominal_delay_ms: float = 1.0) -> ChannelSpec:
    """I.i.d. Bernoulli losses on an otherwise healthy channel."""
    return ChannelSpec.make(
        "random-loss", loss_probability=loss_probability, nominal_delay_ms=nominal_delay_ms
    )


def periodic_loss_channel(
    period: int, burst_length: int, nominal_delay_ms: float = 1.0
) -> ChannelSpec:
    """Deterministic periodic loss bursts (regression-friendly)."""
    return ChannelSpec.make(
        "periodic-loss",
        period=period,
        burst_length=burst_length,
        nominal_delay_ms=nominal_delay_ms,
    )


def trace_channel(delays_ms, cycle_offsets: bool = True) -> ChannelSpec:
    """Replay a recorded per-command delay array (``inf`` marks a loss).

    The trace cycles when the run is longer than the recording; with
    ``cycle_offsets=True`` (default) every repetition starts the replay at a
    seed-derived phase offset, so repeated sessions sample different windows
    of the capture instead of replaying it verbatim.  This is the bridge
    between the synthetic channel models and real packet captures.
    """
    values = tuple(float(d) for d in delays_ms)
    if not values:
        raise ConfigurationError("a trace channel needs at least one recorded delay")
    for value in values:
        if value != value or value < 0.0:  # NaN or negative
            raise ConfigurationError(
                f"trace delays must be >= 0 ms (inf = lost), got {value!r}"
            )
    return ChannelSpec.make("trace", delays_ms=values, cycle_offsets=bool(cycle_offsets))


def markov_interference_channel(
    transition=None,
    delay_means_ms=None,
    loss_probabilities=None,
    start_state: int = 0,
) -> ChannelSpec:
    """``K``-state Markov-modulated delay/loss regimes.

    Defaults model an idle / contended / swamped 2.4 GHz band (see
    :class:`repro.wireless.MarkovChannelConfig`).  Superpose several sources
    with :func:`compound_channel` to express heterogeneous interference whose
    burstiness survives aggregation.
    """
    params: dict = {"start_state": int(start_state)}
    if transition is not None:
        params["transition"] = tuple(tuple(float(p) for p in row) for row in transition)
    if delay_means_ms is not None:
        params["delay_means_ms"] = tuple(float(d) for d in delay_means_ms)
    if loss_probabilities is not None:
        params["loss_probabilities"] = tuple(float(p) for p in loss_probabilities)
    return ChannelSpec.make("markov-interference", **params)


def handover_channel(
    period: int = 250,
    outage: int = 15,
    spike_delay_ms: float = 30.0,
    spike_decay_commands: float = 10.0,
    nominal_delay_ms: float = 2.0,
) -> ChannelSpec:
    """Periodic AP-roaming profile: loss gaps plus decaying delay spikes.

    Keywords are :class:`repro.wireless.HandoverConfig` fields; each
    repetition shifts the schedule by a seed-derived phase offset.
    """
    return ChannelSpec.make(
        "handover",
        period=period,
        outage=outage,
        spike_delay_ms=spike_delay_ms,
        spike_decay_commands=spike_decay_commands,
        nominal_delay_ms=nominal_delay_ms,
    )


def compound_channel(*stages: ChannelSpec) -> ChannelSpec:
    """Superpose several channel models (delays add, losses union)."""
    if len(stages) < 2:
        raise ConfigurationError("a compound channel needs at least two stages")
    return ChannelSpec.make("compound", stages=tuple(stages))


# --------------------------------------------------------------------- foreco
@dataclass(frozen=True)
class ForecoSpec:
    """Hashable mirror of :class:`repro.core.ForecoConfig`.

    ``algorithm_options`` is a frozen tuple of pairs (see
    :meth:`ForecoSpec.make`); :meth:`to_config` materialises the mutable
    runtime configuration.
    """

    command_period_ms: float = 20.0
    tolerance_ms: float = 0.0
    record: int = 10
    train_fraction: float = 0.8
    algorithm: str = "var"
    algorithm_options: tuple = ()
    max_history: int | None = 200_000
    feedback: str = "forecast"
    max_step_rad: float | None = 0.04

    @classmethod
    def make(cls, **kwargs) -> "ForecoSpec":
        """Build a spec, freezing a plain ``algorithm_options`` dict if given."""
        options = kwargs.pop("algorithm_options", None)
        if isinstance(options, dict):
            kwargs["algorithm_options"] = freeze_params(options)
        elif options is not None:
            kwargs["algorithm_options"] = tuple(options)
        return cls(**kwargs)

    @classmethod
    def from_config(cls, config: ForecoConfig) -> "ForecoSpec":
        """Derive a frozen spec from a runtime configuration."""
        return cls.make(
            command_period_ms=config.command_period_ms,
            tolerance_ms=config.tolerance_ms,
            record=config.record,
            train_fraction=config.train_fraction,
            algorithm=config.algorithm,
            algorithm_options=dict(config.algorithm_options),
            max_history=config.max_history,
            feedback=config.feedback,
            max_step_rad=config.max_step_rad,
        )

    def options(self) -> dict:
        """``algorithm_options`` as a plain dict."""
        return {key: _thaw(value) for key, value in self.algorithm_options}

    def training_identity(self) -> tuple:
        """The fields that determine forecaster training.

        Recovery-only knobs (tolerance, feedback, clamp, history cap) are
        excluded so sweeps over them reuse one fitted model instead of
        refitting identical forecasters.
        """
        return (self.algorithm, self.record, self.algorithm_options, self.train_fraction)

    def to_config(self) -> ForecoConfig:
        """Materialise the runtime :class:`ForecoConfig` (validates values)."""
        return ForecoConfig(
            command_period_ms=self.command_period_ms,
            tolerance_ms=self.tolerance_ms,
            record=self.record,
            train_fraction=self.train_fraction,
            algorithm=self.algorithm,
            algorithm_options=self.options(),
            max_history=self.max_history,
            feedback=self.feedback,
            max_step_rad=self.max_step_rad,
        )


#: Operator roles a scenario can replay as the *test* stream.
OPERATORS: tuple[str, ...] = ("inexperienced", "experienced", "mix")


# ------------------------------------------------------------------ scenarios
@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified remote-control scenario.

    Attributes
    ----------
    name:
        Human-readable label (preset name or experiment id); not part of the
        physical configuration but included in reports.
    channel:
        The channel model (see the ``*_channel`` helpers).
    foreco:
        The recovery-engine configuration.
    scale:
        Dataset/repetition sizing (ci / standard / full).
    operator:
        Which operator's stream is replayed through the channel:
        ``"inexperienced"`` (the paper's test operator), ``"experienced"``,
        or ``"mix"`` — an operator handover halfway through the run.
    seed:
        Master seed; dataset generation and per-repetition channel seeds all
        derive from it deterministically.
    repetitions:
        Number of simulation repetitions (distinct channel realisations).
    run_seconds:
        Replayed stream length; ``None`` uses ``scale.run_seconds``.
    use_pid:
        Execute through the PID joint controller (Fig. 10 mode).
    fallback:
        Baseline driver fallback policy (``"hold"`` or ``"stop"``).
    """

    name: str = "custom"
    channel: ChannelSpec = field(default_factory=clean_channel)
    foreco: ForecoSpec = field(default_factory=ForecoSpec)
    scale: ExperimentScale = field(default_factory=lambda: get_scale("ci"))
    operator: str = "inexperienced"
    seed: int = 42
    repetitions: int = 1
    run_seconds: float | None = None
    use_pid: bool = False
    fallback: str = "hold"

    def __post_init__(self) -> None:
        if self.operator not in OPERATORS:
            raise ConfigurationError(
                f"unknown operator {self.operator!r}; available: {sorted(OPERATORS)}"
            )
        if self.fallback not in ("hold", "stop"):
            raise ConfigurationError("fallback must be 'hold' or 'stop'")
        if int(self.repetitions) < 1:
            raise ConfigurationError("repetitions must be >= 1")

    # ------------------------------------------------------------- identity
    def canonical(self) -> dict:
        """JSON-safe canonical representation (the hashing domain)."""
        return {
            "channel": {"kind": self.channel.kind, "params": _jsonify(self.channel.params)},
            "foreco": {
                f.name: _jsonify(getattr(self.foreco, f.name)) for f in fields(self.foreco)
            },
            "scale": {f.name: _jsonify(getattr(self.scale, f.name)) for f in fields(self.scale)},
            "operator": self.operator,
            "seed": int(self.seed),
            "repetitions": int(self.repetitions),
            "run_seconds": self.run_seconds,
            "use_pid": bool(self.use_pid),
            "fallback": self.fallback,
        }

    def spec_hash(self) -> str:
        """Stable short hash of the physical configuration.

        The ``name`` label is deliberately excluded: renaming a scenario
        must not invalidate cached results.
        """
        payload = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def channel_identity(self) -> dict:
        """The part of the spec that determines the channel realisation.

        Recovery-side knobs (forecaster, tolerance, fallback, PID) are
        excluded on purpose: two specs that differ only in how they *react*
        to the channel see the exact same delay trace, so ablations compare
        like with like.  The command period is included because it
        parameterises the delay samplers.
        """
        return {
            "channel": {"kind": self.channel.kind, "params": _jsonify(self.channel.params)},
            "operator": self.operator,
            "scale": {f.name: _jsonify(getattr(self.scale, f.name)) for f in fields(self.scale)},
            "seed": int(self.seed),
            "run_seconds": self.resolved_run_seconds,
            "command_period_ms": self.foreco.command_period_ms,
        }

    # ------------------------------------------------------------ resolving
    @property
    def resolved_run_seconds(self) -> float:
        """The replay length actually used (spec override or scale default)."""
        return float(self.run_seconds) if self.run_seconds is not None else self.scale.run_seconds

    # ------------------------------------------------------------- builders
    def with_(self, **changes) -> "ScenarioSpec":
        """A copy with top-level fields replaced (``scale`` may be a name)."""
        if "scale" in changes:
            changes["scale"] = get_scale(changes["scale"])
        return replace(self, **changes)

    def with_channel(self, **params) -> "ScenarioSpec":
        """A copy with channel parameters merged over the current ones."""
        return replace(self, channel=self.channel.updated(**params))

    def with_foreco(self, **changes) -> "ScenarioSpec":
        """A copy with FoReCo fields replaced (options dicts are frozen)."""
        options = changes.pop("algorithm_options", None)
        foreco = replace(self.foreco, **changes)
        if options is not None:
            foreco = replace(foreco, algorithm_options=freeze_params(dict(options)))
        return replace(self, foreco=foreco)

    def describe(self) -> str:
        """One-line summary used by sweep tables and the CLI."""
        pid = ", pid" if self.use_pid else ""
        return (
            f"{self.name}: {self.channel.describe()} | {self.foreco.algorithm}"
            f"(R={self.foreco.record}) | {self.operator} op, scale={self.scale.name}, "
            f"seed={self.seed}, reps={self.repetitions}{pid}"
        )


def _jsonify(value):
    """Render frozen values (nested tuples) as JSON-safe structures."""
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, ChannelSpec):
        return {"kind": value.kind, "params": _jsonify(value.params)}
    return value
