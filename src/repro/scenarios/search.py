"""Budgeted coverage-guided search for worst-case recovery scenarios.

:class:`ScenarioSearch` drives the combinator grammar of
:mod:`repro.scenarios.grammar` against the session engine to find where the
recovery worst cases live in the channel parameter space:

1. **Explore**: evaluate a slice of the grammar's enumerated frontier
   (round-robin across channel kinds, deterministic order).
2. **Refine**: repeatedly perturb the current top-``k`` candidates through
   :meth:`~repro.scenarios.grammar.ScenarioGrammar.neighbors` and evaluate
   the unseen neighbors, until the probe budget is spent.

Candidates are scored by :func:`adversarial_score` — a worst-case recovery
objective combining the p99 recovery shortfall (the 1st percentile of
per-repetition recovery fractions, SLO semantics as in
:class:`repro.fleet.engine.FleetResult`) with the mean late/lost fraction;
higher scores mean worse service.

Every probe runs through a :class:`~repro.scenarios.sweep.SweepExecutor`,
so evaluation parallelises over threads or processes and — when a
:class:`~repro.scenarios.store.ResultStore` is attached — memoizes through
the content-addressed store: a repeated search recomputes **nothing** (the
smoke gate in ``scripts/search_smoke.py`` asserts a warm second pass is
100 % store hits).  All random draws happen in the coordinating thread in a
fixed order seeded from :attr:`SearchConfig.seed`, and candidate evaluation
is a pure function of the spec, so a search with a fixed seed and budget is
bit-deterministic across ``--jobs 1`` vs ``--jobs N`` and thread vs process
backends.

Discovered worst cases graduate to named presets through
:meth:`SearchResult.promote` — they appear as ``adversarial-*`` entries in
the scenario registry, runnable like any built-in preset.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .engine import SessionResult
from .grammar import ScenarioGrammar
from .registry import register_scenario
from .spec import ScenarioSpec
from .store import ResultStore
from .sweep import SweepExecutor


# -------------------------------------------------------------------- scoring
def p99_recovery(result: SessionResult) -> float:
    """The 1st percentile of per-repetition recovery fractions.

    Mirrors the fleet layer's SLO semantics
    (:attr:`repro.fleet.engine.FleetResult.p99_recovery`): 99 % of
    repetitions recover at least this fraction of their missing slots.
    """
    return float(np.percentile(np.asarray(result.recovery_fraction, dtype=float), 1.0))


def adversarial_score(result: SessionResult) -> float:
    """Worst-case recovery objective (higher = worse service).

    ``(1 - p99_recovery) + mean_late_fraction`` — the p99 recovery
    shortfall plus the mean drop/late fraction.  Both terms live in
    ``[0, 1]``, so the score is bounded by 2 and a healthy channel scores
    near 0.
    """
    return (1.0 - p99_recovery(result)) + float(result.mean_late_fraction)


# --------------------------------------------------------------------- config
@dataclass(frozen=True)
class SearchConfig:
    """Knobs of one budgeted scenario search.

    Attributes
    ----------
    budget:
        Total number of candidate evaluations (enumerated + neighborhood).
    seed:
        Seed of the coordinating RNG; with a fixed budget it pins the whole
        search trajectory (candidate generation consumes randomness only in
        the coordinating thread, in a fixed order).
    top_k:
        Number of best-so-far candidates refined each round (and promoted
        by default).
    neighbors_per_round:
        Unseen neighborhood candidates evaluated per refinement round.
    explore_fraction:
        Share of the budget spent on the enumerated frontier before
        neighborhood refinement starts.
    """

    budget: int = 16
    seed: int = 0
    top_k: int = 2
    neighbors_per_round: int = 8
    explore_fraction: float = 0.5

    def __post_init__(self) -> None:
        """Validate every knob, raising :class:`ConfigurationError` on misuse."""
        if int(self.budget) < 1:
            raise ConfigurationError("search budget must be >= 1")
        if int(self.top_k) < 1:
            raise ConfigurationError("top_k must be >= 1")
        if int(self.neighbors_per_round) < 1:
            raise ConfigurationError("neighbors_per_round must be >= 1")
        if not 0.0 < float(self.explore_fraction) <= 1.0:
            raise ConfigurationError("explore_fraction must be in (0, 1]")


# -------------------------------------------------------------------- results
@dataclass(frozen=True)
class SearchProbe:
    """One evaluated candidate of a scenario search.

    Attributes
    ----------
    spec:
        The candidate spec (grammar-generated; name carries the kind).
    result:
        The session result the spec evaluated to.
    score:
        Its :func:`adversarial_score`.
    round:
        0 for the enumerated frontier, ``n >= 1`` for refinement round n.
    """

    spec: ScenarioSpec
    result: SessionResult
    score: float
    round: int

    def to_dict(self) -> dict:
        """JSON-safe summary row of this probe."""
        return {
            "name": self.spec.name,
            "kind": self.spec.channel.kind,
            "channel": self.spec.channel.describe(),
            "spec_hash": self.spec.spec_hash(),
            "round": self.round,
            "score": self.score,
            "p99_recovery": p99_recovery(self.result),
            "mean_late_fraction": float(self.result.mean_late_fraction),
            "mean_recovery_fraction": float(self.result.mean_recovery_fraction),
        }


@dataclass
class SearchResult:
    """Outcome of one budgeted search: every probe plus the store partition.

    ``store_hits`` / ``store_misses`` aggregate the executor's partition
    across rounds; a warm rerun of the same search against the same store is
    100 % hits (nothing recomputed).  ``promoted`` records the preset names
    registered by :meth:`promote`.
    """

    config: SearchConfig
    probes: list[SearchProbe] = field(default_factory=list)
    rounds: int = 0
    store_hits: int = 0
    store_misses: int = 0
    promoted: list[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.probes)

    def top(self, k: int | None = None) -> list[SearchProbe]:
        """The ``k`` worst-case probes, score-descending (hash tie-break)."""
        k = self.config.top_k if k is None else int(k)
        ranked = sorted(self.probes, key=lambda p: (-p.score, p.spec.spec_hash()))
        return ranked[:k]

    def promote(self, k: int | None = None, register: bool = True) -> list[ScenarioSpec]:
        """Name the top-``k`` discoveries ``adversarial-*`` and register them.

        Each promoted spec is renamed
        ``adversarial-<channel kind>-<spec hash prefix>`` (the hash prefix
        keeps promoted names collision-free because the registry refuses
        duplicate names) and registered with a provenance description —
        search seed, budget and score — so a promoted preset documents how
        it was found.  ``register=False`` returns the renamed specs without
        touching the registry.
        """
        promoted: list[ScenarioSpec] = []
        for probe in self.top(k):
            spec = probe.spec
            name = f"adversarial-{spec.channel.kind}-{spec.spec_hash()[:6]}"
            renamed = spec.with_(name=name)
            if register:
                register_scenario(
                    renamed,
                    f"search-discovered worst case (score {probe.score:.3f}, "
                    f"seed {self.config.seed}, budget {self.config.budget})",
                    overwrite=True,
                )
                if name not in self.promoted:
                    self.promoted.append(name)
            promoted.append(renamed)
        return promoted

    def to_dict(self) -> dict:
        """JSON-safe rendering of the search (config, top probes, store)."""
        return {
            "budget": self.config.budget,
            "seed": self.config.seed,
            "rounds": self.rounds,
            "evaluated": len(self.probes),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "promoted": list(self.promoted),
            "top": [probe.to_dict() for probe in self.top()],
            "probes": [probe.to_dict() for probe in self.probes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON text rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_text(self) -> str:
        """Fixed-width text report: top probes, budget and store partition."""
        header = (
            f"{'rank':>4s} {'score':>6s} {'p99rec':>7s} {'late':>6s} "
            f"{'round':>5s}  channel"
        )
        lines = [
            f"scenario search: {len(self.probes)} probes "
            f"(budget {self.config.budget}, seed {self.config.seed}, "
            f"{self.rounds} refinement rounds)",
            header,
            "-" * len(header),
        ]
        for rank, probe in enumerate(self.top(max(self.config.top_k, 5)), start=1):
            channel = probe.spec.channel.describe()
            if len(channel) > 60:
                channel = channel[:57] + "..."
            lines.append(
                f"{rank:>4d} {probe.score:>6.3f} {p99_recovery(probe.result):>7.3f} "
                f"{probe.result.mean_late_fraction:>6.3f} {probe.round:>5d}  {channel}"
            )
        lookups = self.store_hits + self.store_misses
        if lookups:
            lines.append(
                f"store: {self.store_hits} hits / {self.store_misses} misses "
                f"({100.0 * self.store_hits / lookups:.0f}% reused)"
            )
        if self.promoted:
            lines.append("promoted: " + ", ".join(self.promoted))
        return "\n".join(lines)


# --------------------------------------------------------------------- search
class ScenarioSearch:
    """Coverage-guided scenario search over a grammar, with memoized probes.

    Parameters
    ----------
    grammar:
        Candidate source (default: a :class:`ScenarioGrammar` over every
        grammar kind with the default probe-sized base spec).
    config:
        Budget/seed/refinement knobs (default: :class:`SearchConfig`).
    executor:
        The sweep executor probes run through.  Built from ``jobs`` /
        ``backend`` / ``store`` when omitted; pass an explicit executor to
        share engine caches with other sweeps.
    jobs / backend / store:
        Convenience constructor arguments for the default executor
        (ignored when ``executor`` is given).
    """

    def __init__(
        self,
        grammar: ScenarioGrammar | None = None,
        config: SearchConfig | None = None,
        executor: SweepExecutor | None = None,
        jobs: int = 1,
        backend: str = "thread",
        store: ResultStore | None = None,
    ) -> None:
        self.grammar = grammar if grammar is not None else ScenarioGrammar()
        if not isinstance(self.grammar, ScenarioGrammar):
            raise ConfigurationError("grammar must be a ScenarioGrammar")
        self.config = config if config is not None else SearchConfig()
        if executor is None:
            executor = SweepExecutor(jobs=jobs, backend=backend, store=store)
        self.executor = executor

    def _evaluate(
        self, specs: list[ScenarioSpec], round_index: int, out: SearchResult
    ) -> None:
        """Run one batch through the executor and append scored probes."""
        sweep = self.executor.run(specs)
        out.store_hits += sweep.store_hits
        out.store_misses += sweep.store_misses
        for spec, row in zip(specs, sweep):
            out.probes.append(
                SearchProbe(
                    spec=spec,
                    result=row,
                    score=adversarial_score(row),
                    round=round_index,
                )
            )

    def run(self) -> SearchResult:
        """Execute the search to budget exhaustion and return every probe.

        Deterministic by construction: the enumerated frontier has a fixed
        order, neighborhood generation consumes the seeded coordinating RNG
        in a fixed order (independent of worker scheduling), candidates are
        deduplicated by spec hash, and evaluation is a pure function of the
        spec — so fixed ``(seed, budget)`` always yields the same probes in
        the same order, for any job count or backend.
        """
        config = self.config
        rng = np.random.default_rng(config.seed)
        result = SearchResult(config=config)
        seen: set[str] = set()

        frontier_budget = max(1, min(config.budget, round(config.budget * config.explore_fraction)))
        frontier: list[ScenarioSpec] = []
        for spec in self.grammar.enumerate_specs():
            key = spec.spec_hash()
            if key in seen:
                continue
            seen.add(key)
            frontier.append(spec)
            if len(frontier) >= frontier_budget:
                break
        self._evaluate(frontier, 0, result)

        remaining = config.budget - len(result.probes)
        max_attempts = 50 * config.neighbors_per_round
        while remaining > 0:
            result.rounds += 1
            leaders = result.top(config.top_k)
            batch: list[ScenarioSpec] = []
            attempts = 0
            want = min(remaining, config.neighbors_per_round)
            while len(batch) < want and attempts < max_attempts:
                attempts += 1
                parent = leaders[len(batch) % len(leaders)].spec
                candidate = self.grammar.neighbors(parent, rng, 1)[0]
                key = candidate.spec_hash()
                if key in seen:
                    continue
                seen.add(key)
                batch.append(candidate)
            while len(batch) < want and attempts < 2 * max_attempts:
                # Neighborhoods around the leaders are exhausted (every
                # perturbation already probed): fall back to fresh draws so
                # the budget is still spent exploring.
                attempts += 1
                candidate = self.grammar.random_spec(rng)
                key = candidate.spec_hash()
                if key in seen:
                    continue
                seen.add(key)
                batch.append(candidate)
            if not batch:
                break
            self._evaluate(batch, result.rounds, result)
            remaining = config.budget - len(result.probes)
        return result


def run_search(
    budget: int = 16,
    seed: int = 0,
    top_k: int = 2,
    jobs: int = 1,
    backend: str = "thread",
    store: ResultStore | None = None,
    grammar: ScenarioGrammar | None = None,
) -> SearchResult:
    """One-call convenience wrapper: configure, run and return the search.

    This is what the runner's ``search`` keyword and the CI smoke script
    call; see :class:`ScenarioSearch` for the determinism and memoization
    contract.
    """
    config = SearchConfig(budget=budget, seed=seed, top_k=top_k)
    search = ScenarioSearch(
        grammar=grammar, config=config, jobs=jobs, backend=backend, store=store
    )
    return search.run()
