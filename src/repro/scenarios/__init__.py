"""Unified scenario runtime: declarative specs plus a parallel sweep engine.

This package is the single entry point every evaluation workload goes
through — the seven paper experiments, the examples, the benchmark harness
and the ``foreco-experiments`` CLI all describe work as
:class:`ScenarioSpec` values and execute them through the
:class:`SessionEngine` / :class:`SweepExecutor` pair:

* :mod:`repro.scenarios.spec` — frozen, hashable scenario descriptions
  (operator, channel model + params, FoReCo config, scale, seed,
  repetitions) and the channel-spec helpers;
* :mod:`repro.scenarios.registry` — named presets (``clean``,
  ``bursty-loss``, ``jammer``, ``congested-ap``, ``jammer-congestion``,
  ``operator-mix``, ``random-loss``, ``markov-interference``, ``handover``,
  ``trace-replay``);
* :mod:`repro.scenarios.engine` — resolves one spec into
  :class:`repro.core.RemoteControlSimulation` runs with dataset /
  forecaster / result caching keyed by the spec hash;
* :mod:`repro.scenarios.sweep` — fans lists/grids of specs out over worker
  threads and returns a uniform :class:`SweepResult` table;
* :mod:`repro.scenarios.store` — persistent, content-addressed
  :class:`ResultStore` (spec hash + :data:`ENGINE_EPOCH`) making sweeps
  resumable: executors compute only the specs missing from the store;
* :mod:`repro.scenarios.grammar` — bounded combinator grammar enumerating
  and mutating channel/FoReCo knobs into frozen candidate specs;
* :mod:`repro.scenarios.search` — budgeted coverage-guided search scoring
  candidates by worst-case recovery and promoting the top discoveries to
  named ``adversarial-*`` presets.
"""

from .engine import (
    ENGINE_EPOCH,
    SessionEngine,
    SessionResult,
    SharedDatasets,
    build_datasets,
    compound_stage_seed,
    repetition_seed,
    sample_channel_delays,
    sample_channel_delays_batch,
)
from .grammar import Knob, ScenarioGrammar
from .registry import (
    get_scenario,
    register_scenario,
    scenario_catalog,
    scenario_names,
)
from .search import (
    ScenarioSearch,
    SearchConfig,
    SearchProbe,
    SearchResult,
    adversarial_score,
    p99_recovery,
    run_search,
)
from .spec import (
    CHANNEL_KIND_SUMMARIES,
    CHANNEL_KINDS,
    OPERATORS,
    ChannelSpec,
    ExperimentScale,
    ForecoSpec,
    ScenarioSpec,
    clean_channel,
    compound_channel,
    freeze_params,
    get_scale,
    handover_channel,
    jammer_channel,
    loss_burst_channel,
    markov_interference_channel,
    periodic_loss_channel,
    random_loss_channel,
    scale_names,
    trace_channel,
    wireless_channel,
)
from .store import ResultStore, StoreStats
from .sweep import SweepExecutor, SweepResult, scenario_grid

__all__ = [
    "CHANNEL_KIND_SUMMARIES",
    "CHANNEL_KINDS",
    "ENGINE_EPOCH",
    "OPERATORS",
    "ChannelSpec",
    "ExperimentScale",
    "ForecoSpec",
    "Knob",
    "ResultStore",
    "ScenarioGrammar",
    "ScenarioSearch",
    "ScenarioSpec",
    "SearchConfig",
    "SearchProbe",
    "SearchResult",
    "SessionEngine",
    "SessionResult",
    "SharedDatasets",
    "StoreStats",
    "SweepExecutor",
    "SweepResult",
    "adversarial_score",
    "build_datasets",
    "clean_channel",
    "compound_channel",
    "compound_stage_seed",
    "freeze_params",
    "get_scale",
    "get_scenario",
    "handover_channel",
    "jammer_channel",
    "loss_burst_channel",
    "markov_interference_channel",
    "p99_recovery",
    "periodic_loss_channel",
    "random_loss_channel",
    "register_scenario",
    "repetition_seed",
    "run_search",
    "sample_channel_delays",
    "sample_channel_delays_batch",
    "scale_names",
    "scenario_catalog",
    "scenario_grid",
    "scenario_names",
    "trace_channel",
    "wireless_channel",
]
