"""Persistent, content-addressed storage for finished session results.

The :class:`~repro.scenarios.engine.SessionEngine` caches
:class:`~repro.scenarios.engine.SessionResult` rows in memory, which is lost
with the process: a crashed or extended sweep restarts at zero.  The
:class:`ResultStore` moves that cache to disk, content-addressed the same way
the in-memory cache is — by :meth:`ScenarioSpec.spec_hash`, the stable hash
of the spec's *physical* configuration — so a result computed by any process,
worker or past run can be reused by any other, and a sweep only ever computes
the specs whose results are not already stored (the low-distance
synchronisation idea: transfer/compute only what differs).

Layout and guarantees
---------------------

* One JSON shard per result at ``<root>/epoch-<E>/<hh>/<hash>.json`` (``hh``
  = first two hex digits of the hash, keeping directories small at millions
  of entries).  Records are RFC 8259-strict JSON; non-finite delays (``inf``
  = lost command) are encoded as ``null``.
* ``<E>`` is the **engine epoch** (:data:`~repro.scenarios.engine.
  ENGINE_EPOCH`): a code-semantics version, bumped whenever a change alters
  results for an unchanged spec hash (e.g. PR 3's compound-seed fix).  A
  store opened at epoch ``E`` never reads or deletes another epoch's shards,
  so an old store survives an upgrade and simply re-fills.
* Writes are atomic: the record lands in a per-writer temp file in the shard
  directory and is ``os.replace``-d into place, so concurrent writers
  (sweep threads, worker processes, parallel CI jobs sharing a cache
  directory) can race on the same key and readers still only ever see a
  complete record — last writer wins, and equal specs write equal bytes
  anyway.
* Loads are corruption-tolerant: a truncated, garbled or wrong-schema shard
  counts as a miss (and is deleted best-effort) instead of poisoning the
  sweep — the result is simply recomputed and rewritten.
* An optional LRU cap (``max_entries`` / ``max_bytes``) bounds the store;
  recency is tracked through shard mtimes, which :meth:`get` refreshes.

What a shard stores — and what it does not
------------------------------------------

A shard persists the complete summary row: the per-repetition metric tuples,
the command count, the canonical spec (for debuggability and auditability)
and the last repetition's delay trace.  The in-memory-only ``outcome``
field (full trajectories, megabytes per session) is **not** persisted;
results loaded from the store carry ``outcome=None``.  Everything the sweep
tables, heatmaps and JSON reports read — :meth:`SessionResult.to_dict` and
the metric tuples — round-trips bit-for-bit (floats are serialised with
``repr``-exact shortest form).

Record kinds
------------

The store holds more than one result type under one epoch scheme.  Every
shard carries a ``kind`` tag (absent = ``"session"``, the original record
layout) and each kind registers a codec through :func:`register_store_codec`
— the fleet layer (:mod:`repro.fleet`) registers ``"fleet"`` records for
:class:`~repro.fleet.engine.FleetResult` rows this way.  The expected kind
is derived from the *spec* passed to :meth:`ResultStore.get` (its
``store_kind`` attribute, default ``"session"``), so a session spec can
never deserialise a fleet shard or vice versa; spec hashing domains are
disjoint anyway.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, StoreError
from .engine import ENGINE_EPOCH, SessionResult
from .spec import ScenarioSpec

#: Schema version of the shard records themselves (bump on layout changes).
_RECORD_FORMAT = 1


# -------------------------------------------------------------------- codecs
def encode_delays(delays) -> list | None:
    """RFC 8259-safe rendering of a delay trace (``inf`` = lost -> ``null``)."""
    if delays is None:
        return None
    return [float(v) if math.isfinite(v) else None for v in np.asarray(delays).ravel()]


def decode_delays(values) -> np.ndarray | None:
    """Inverse of :func:`encode_delays` (``null`` -> ``inf``)."""
    if values is None:
        return None
    return np.array([math.inf if v is None else float(v) for v in values])


def _metric_tuples(payload: dict, fields: tuple[str, ...]) -> dict:
    """Decode per-repetition metric lists, validating shape consistency."""
    metrics = {}
    for field in fields:
        values = payload[field]
        if not isinstance(values, list) or not values:
            raise StoreError(f"field {field!r} is not a non-empty list")
        metrics[field] = tuple(float(v) for v in values)
    if len({len(v) for v in metrics.values()}) != 1:
        raise StoreError("per-repetition metric tuples have inconsistent lengths")
    return metrics


_SESSION_METRICS = ("rmse_no_forecast_mm", "rmse_foreco_mm", "late_fraction", "recovery_fraction")


def _encode_session(result: SessionResult) -> dict:
    """Kind-specific payload fields for a session record."""
    return {
        "n_commands": int(result.n_commands),
        "rmse_no_forecast_mm": [float(v) for v in result.rmse_no_forecast_mm],
        "rmse_foreco_mm": [float(v) for v in result.rmse_foreco_mm],
        "late_fraction": [float(v) for v in result.late_fraction],
        "recovery_fraction": [float(v) for v in result.recovery_fraction],
        "delays_ms": encode_delays(result.delays_ms),
    }


def _decode_session(spec: ScenarioSpec, key: str, payload: dict) -> SessionResult:
    """Rebuild a :class:`SessionResult` from a session record's payload."""
    return SessionResult(
        spec=spec,
        spec_hash=key,
        n_commands=int(payload["n_commands"]),
        outcome=None,  # trajectories are in-memory only (see module docs)
        delays_ms=decode_delays(payload.get("delays_ms")),
        **_metric_tuples(payload, _SESSION_METRICS),
    )


#: kind -> (encode(result) -> payload dict, decode(spec, key, payload) -> result).
_CODECS: dict[str, tuple] = {"session": (_encode_session, _decode_session)}


def register_store_codec(kind: str, encode, decode) -> None:
    """Register the shard codec for a result kind.

    ``encode(result)`` returns the kind-specific payload fields (the store
    adds the common envelope: format, epoch, spec hash, kind, name and
    canonical spec); ``decode(spec, key, payload)`` rebuilds the result
    object.  Specs and results advertise their kind through a ``store_kind``
    attribute (default ``"session"``).
    """
    _CODECS[str(kind)] = (encode, decode)


# -------------------------------------------------------------------- stats
@dataclass
class StoreStats:
    """Point-in-time store statistics (see :meth:`ResultStore.stats`).

    ``entries``/``total_bytes`` describe what is on disk for this store's
    epoch right now; the counters (``hits``, ``misses``, ``writes``,
    ``evictions``, ``corrupted``) describe what *this* :class:`ResultStore`
    instance observed since it was opened.
    """

    root: str
    epoch: int
    entries: int
    total_bytes: int
    hits: int
    misses: int
    writes: int
    evictions: int
    corrupted: int

    @property
    def hit_fraction(self) -> float:
        """Hits over lookups for this instance (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


# -------------------------------------------------------------------- store
class ResultStore:
    """Disk-backed, content-addressed cache of :class:`SessionResult` rows.

    Parameters
    ----------
    root:
        Directory holding the store (created on first write).  Different
        epochs coexist under one root.
    epoch:
        Engine/code epoch this store reads and writes (default: the current
        :data:`~repro.scenarios.engine.ENGINE_EPOCH`).  Entries written
        under other epochs are invisible — never hits, never evicted.
    max_entries / max_bytes:
        Optional LRU caps enforced after every write; ``None`` = unbounded.
        Recency is approximated by shard mtime (refreshed on every hit), so
        the cap is honest within a process and approximate across processes.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        epoch: int = ENGINE_EPOCH,
        max_entries: int | None = None,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and int(max_entries) < 1:
            raise ConfigurationError("max_entries must be >= 1 (or None for unbounded)")
        if max_bytes is not None and int(max_bytes) < 1:
            raise ConfigurationError("max_bytes must be >= 1 (or None for unbounded)")
        self.root = Path(root).expanduser()
        self.epoch = int(epoch)
        self.max_entries = None if max_entries is None else int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._lock = threading.Lock()
        self._tmp_counter = itertools.count()
        self._clock = time.time()
        #: Approximate (entries, total_bytes) for O(1) cap checks; seeded by
        #: a scan on the first capped write, corrected by every eviction
        #: rescan, invalidated by evict()/clear().  Other processes' writes
        #: drift it, which the rescan at eviction time reconciles.
        self._tracked: tuple[int, int] | None = None
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._evictions = 0
        self._corrupted = 0

    # ------------------------------------------------------------- layout
    @property
    def epoch_dir(self) -> Path:
        """Directory holding this epoch's shards."""
        return self.root / f"epoch-{self.epoch}"

    def shard_path(self, key: str) -> Path:
        """Shard file for a spec hash (two-level fan-out keeps dirs small)."""
        return self.epoch_dir / key[:2] / f"{key}.json"

    def _shard_files(self) -> list[Path]:
        if not self.epoch_dir.is_dir():
            return []
        return [path for path in self.epoch_dir.glob("??/*.json") if path.is_file()]

    def _touch(self, path: Path) -> None:
        """Refresh a shard's mtime with a strictly increasing stamp.

        The strict monotone step keeps LRU ordering well-defined even when
        several touches land within the filesystem's timestamp resolution.
        """
        with self._lock:
            self._clock = max(self._clock + 1e-4, time.time())
            stamp = self._clock
        try:
            os.utime(path, (stamp, stamp))
        except OSError:  # pragma: no cover - raced with a concurrent evict
            pass

    # -------------------------------------------------------------- codec
    def _encode(self, key: str, result) -> dict:
        """Full shard record for a result: common envelope + codec payload."""
        kind = getattr(result, "store_kind", "session")
        try:
            encode, _ = _CODECS[kind]
        except KeyError as exc:
            raise ConfigurationError(f"no store codec registered for kind {kind!r}") from exc
        record = {
            "format": _RECORD_FORMAT,
            "epoch": self.epoch,
            "spec_hash": key,
            "kind": kind,
            "name": result.spec.name,
            "spec": result.spec.canonical(),
        }
        record.update(encode(result))
        return record

    def _decode(self, spec, key: str, payload: dict):
        """Rebuild a result from a shard record, validating the envelope."""
        if payload.get("format") != _RECORD_FORMAT:
            raise StoreError(f"unknown record format {payload.get('format')!r}")
        if payload.get("epoch") != self.epoch:
            raise StoreError(f"epoch mismatch: {payload.get('epoch')!r} != {self.epoch}")
        if payload.get("spec_hash") != key:
            raise StoreError(f"content address mismatch: {payload.get('spec_hash')!r} != {key}")
        expected = getattr(spec, "store_kind", "session")
        kind = payload.get("kind", "session")
        if kind != expected:
            raise StoreError(f"record kind {kind!r} does not match the spec's {expected!r}")
        _, decode = _CODECS[expected]
        return decode(spec, key, payload)

    # ---------------------------------------------------------------- api
    def get(self, spec):
        """The stored result for ``spec``, or ``None`` on a miss.

        ``spec`` is any hashable spec with a ``spec_hash()`` method and a
        registered record kind (:class:`ScenarioSpec` or
        :class:`~repro.fleet.FleetSpec`).  The returned row is attached to
        the *caller's* spec object (the shard's canonical spec is audit
        metadata, not the source of truth — the content address already
        guarantees they describe the same physics).  Corrupted shards count
        as misses and are deleted.
        """
        key = spec.spec_hash()
        path = self.shard_path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, OSError):
            with self._lock:
                self._misses += 1
            return None
        try:
            result = self._decode(spec, key, json.loads(text))
        except (StoreError, ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            with self._lock:
                self._corrupted += 1
                self._misses += 1
            return None
        self._touch(path)
        with self._lock:
            self._hits += 1
        return result

    def put(self, spec, result) -> Path:
        """Persist a result under its spec's content address (atomic).

        ``spec``/``result`` may be any kind with a registered codec (session
        or fleet).  Re-putting an existing key overwrites it with identical
        bytes (equal specs produce equal results), so racing writers are
        harmless.  Returns the shard path.
        """
        key = spec.spec_hash()
        if result.spec_hash != key:
            raise ConfigurationError(
                f"result hash {result.spec_hash!r} does not match spec hash {key!r}"
            )
        record = self._encode(key, result)
        path = self.shard_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / (
            f".{key}.{os.getpid()}.{threading.get_ident()}.{next(self._tmp_counter)}.tmp"
        )
        data = json.dumps(record, sort_keys=True, separators=(",", ":"), allow_nan=False) + "\n"
        try:
            old_size = path.stat().st_size
        except OSError:
            old_size = 0
        try:
            tmp.write_text(data, encoding="utf-8")
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        self._touch(path)
        with self._lock:
            self._writes += 1
        if self.max_entries is not None or self.max_bytes is not None:
            self._account_put(path, old_size, len(data.encode("utf-8")))
        return path

    def contains(self, spec) -> bool:
        """Whether a shard exists for this spec (no validation, no touch)."""
        return self.shard_path(spec.spec_hash()).is_file()

    __contains__ = contains

    def evict(self, spec) -> bool:
        """Remove one entry; returns whether anything was removed."""
        path = self.shard_path(spec.spec_hash())
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        with self._lock:
            self._evictions += 1
            self._tracked = None  # reseeded on the next capped write
        return True

    def clear(self) -> int:
        """Remove every entry of this store's epoch; returns the count."""
        removed = 0
        for path in self._shard_files():
            path.unlink(missing_ok=True)
            removed += 1
        with self._lock:
            self._evictions += removed
            self._tracked = (0, 0)
        return removed

    def __len__(self) -> int:
        """Number of shards on disk for this store's epoch."""
        return len(self._shard_files())

    def stats(self) -> StoreStats:
        """Current on-disk footprint plus this instance's counters."""
        files = self._shard_files()
        total = 0
        for path in files:
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - raced with a concurrent evict
                continue
        with self._lock:
            return StoreStats(
                root=str(self.root),
                epoch=self.epoch,
                entries=len(files),
                total_bytes=total,
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                evictions=self._evictions,
                corrupted=self._corrupted,
            )

    # ------------------------------------------------------------ eviction
    def _account_put(self, keep: Path, old_size: int, new_size: int) -> None:
        """O(1) cap check after a write; full eviction scan only when over.

        Keeps an approximate (entries, bytes) tally so a capped store does
        not rescan the shard tree on every put — only the first capped write
        of this instance scans to seed the tally, and only an actually
        exceeded cap triggers the (accurate, rescanning) eviction pass.
        """
        with self._lock:
            tracked = self._tracked
        if tracked is None:
            entries, total = 0, 0
            for path in self._shard_files():
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - raced with a concurrent evict
                    continue
                entries += 1
                total += size
        else:
            entries, total = tracked
            entries += 0 if old_size else 1
            total += new_size - old_size
        with self._lock:
            self._tracked = (entries, total)
        over_entries = self.max_entries is not None and entries > self.max_entries
        over_bytes = self.max_bytes is not None and total > self.max_bytes
        if over_entries or over_bytes:
            self._enforce_cap(keep)

    def _enforce_cap(self, keep: Path) -> None:
        """Drop least-recently-used shards until within the configured caps.

        ``keep`` (the shard just written) is never evicted, so a cap of N
        always admits the newest result.  The scan's outcome reseeds the
        approximate tally used by :meth:`_account_put`.
        """
        entries = []
        total = 0
        for path in self._shard_files():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with a concurrent evict
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda item: item[0])
        evicted = 0
        for mtime, size, path in entries:
            over_entries = self.max_entries is not None and len(entries) - evicted > self.max_entries
            over_bytes = self.max_bytes is not None and total > self.max_bytes
            if not over_entries and not over_bytes:
                break
            if path == keep:
                continue
            path.unlink(missing_ok=True)
            evicted += 1
            total -= size
        with self._lock:
            self._tracked = (len(entries) - evicted, total)
            if evicted:
                self._evictions += evicted
