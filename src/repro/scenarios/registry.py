"""Named scenario presets.

The registry maps human-friendly names to :class:`ScenarioSpec` values so
experiments, examples and the CLI (``foreco-experiments --scenario jammer``)
share one vocabulary of workloads.  Presets cover the paper's evaluation
conditions plus harsher combinations used by the scaling roadmap:

``clean``
    Healthy channel, no losses — the control condition.
``bursty-loss``
    Controlled consecutive-loss bursts (the Fig. 9 condition).
``jammer``
    Gilbert–Elliott 2.4 GHz jammer with the PID controller in the loop
    (the Fig. 10 condition).
``congested-ap``
    25 robots behind one access point with heavy interference (the worst
    column of the Fig. 8 sweep).
``jammer-congestion``
    The jammer superposed on a congested access point — heterogeneous
    interference the paper's single-cause scenarios do not cover.
``operator-mix``
    An operator handover mid-run (experienced → inexperienced) over a
    moderately interfered channel.
``random-loss``
    Memoryless i.i.d. losses — the baseline the ablation benches compare
    bursty conditions against.
``markov-interference``
    Three-regime Markov-modulated interference (idle / contended / swamped)
    — bursty heterogeneous traffic the single-cause presets cannot express.
``handover``
    Periodic AP-roaming outages with decaying delay spikes.
``trace-replay``
    Replay of a recorded delay/loss trace (a congestion ramp with outages),
    cycled with per-repetition phase offsets — the bridge to real captures.
``adversarial-compound-3a9fdc`` / ``adversarial-jammer-391374``
    Worst cases discovered by the coverage-guided scenario search
    (:func:`repro.scenarios.search.run_search`) and pinned here as standing
    regression presets.  Their names carry the spec-hash prefix of the
    discovered spec; the knob values are frozen at full precision so the
    hash — and therefore any memoized store entry — stays stable.

Use :func:`register_scenario` to add project-specific presets.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .spec import (
    ScenarioSpec,
    clean_channel,
    compound_channel,
    handover_channel,
    jammer_channel,
    loss_burst_channel,
    markov_interference_channel,
    random_loss_channel,
    trace_channel,
    wireless_channel,
)

_REGISTRY: dict[str, tuple[ScenarioSpec, str]] = {}

#: Alternate spellings accepted by :func:`get_scenario`.
_ALIASES: dict[str, str] = {
    "jammer+congestion": "jammer-congestion",
}


def register_scenario(spec: ScenarioSpec, description: str = "", overwrite: bool = False) -> None:
    """Register a preset under ``spec.name``.

    Raises :class:`~repro.errors.ConfigurationError` when the name is taken
    and ``overwrite`` is false.
    """
    name = spec.name
    if not name or name == "custom":
        raise ConfigurationError("a registered scenario needs a distinctive name")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = (spec, description)


def get_scenario(name: str, **overrides) -> ScenarioSpec:
    """Fetch a preset by name, optionally overriding top-level fields.

    ``scale`` may be passed as a name ("ci", "standard", "full"); other
    overrides are :class:`ScenarioSpec` fields, e.g. ``seed=7`` or
    ``repetitions=10``.
    """
    key = _ALIASES.get(name, name)
    try:
        spec, _ = _REGISTRY[key]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        ) from exc
    return spec.with_(**overrides) if overrides else spec


def scenario_names() -> list[str]:
    """Sorted names of the registered presets."""
    return sorted(_REGISTRY)


def scenario_catalog() -> dict[str, str]:
    """Mapping of preset name to its one-line description."""
    return {name: description for name, (_, description) in sorted(_REGISTRY.items())}


def _register_builtins() -> None:
    register_scenario(
        ScenarioSpec(name="clean", channel=clean_channel()),
        "healthy channel, no losses (control condition)",
    )
    register_scenario(
        ScenarioSpec(name="bursty-loss", channel=loss_burst_channel(burst_length=10)),
        "controlled consecutive-loss bursts (Fig. 9 condition)",
    )
    register_scenario(
        ScenarioSpec(name="jammer", channel=jammer_channel(), use_pid=True),
        "Gilbert-Elliott 2.4 GHz jammer with the PID in the loop (Fig. 10)",
    )
    register_scenario(
        ScenarioSpec(
            name="congested-ap",
            channel=wireless_channel(n_robots=25, probability=0.05, duration_slots=100),
        ),
        "25 robots behind one AP with heavy interference (worst Fig. 8 cell)",
    )
    register_scenario(
        ScenarioSpec(
            name="jammer-congestion",
            channel=compound_channel(
                wireless_channel(n_robots=15, probability=0.025, duration_slots=50),
                jammer_channel(),
            ),
        ),
        "jammer superposed on a congested AP (heterogeneous interference)",
    )
    register_scenario(
        ScenarioSpec(
            name="operator-mix",
            operator="mix",
            channel=wireless_channel(n_robots=15, probability=0.025, duration_slots=50),
        ),
        "operator handover mid-run over a moderately interfered channel",
    )
    register_scenario(
        ScenarioSpec(name="random-loss", channel=random_loss_channel(loss_probability=0.1)),
        "memoryless i.i.d. command losses (ablation baseline)",
    )
    register_scenario(
        ScenarioSpec(name="markov-interference", channel=markov_interference_channel()),
        "3-regime Markov-modulated interference (idle/contended/swamped band)",
    )
    register_scenario(
        ScenarioSpec(name="handover", channel=handover_channel()),
        "periodic AP-roaming outages with decaying delay spikes",
    )
    register_scenario(
        ScenarioSpec(name="trace-replay", channel=trace_channel(_recorded_congestion_trace())),
        "replayed delay/loss recording (congestion ramp + outage), phase-cycled",
    )
    # Search-discovered adversarial presets.  Found by
    # ``run_search(budget=48, seed=7)`` over the default grammar; the knob
    # values (including the long floats) are the exact discovered points and
    # must not be rounded, or the spec hash in the name goes stale.
    register_scenario(
        ScenarioSpec(
            name="adversarial-compound-3a9fdc",
            channel=compound_channel(
                wireless_channel(n_robots=30, probability=0.06, duration_slots=120),
                jammer_channel(
                    p_good_to_jammed=0.1,
                    p_jammed_to_good=0.08,
                    delay_jammed_ms=75.47672538652341,
                ),
            ),
            repetitions=3,
            run_seconds=6.0,
        ),
        "search-discovered worst case (score 0.785, seed 7, budget 48): "
        "saturated AP under a sticky jammer",
    )
    register_scenario(
        ScenarioSpec(
            name="adversarial-jammer-391374",
            channel=jammer_channel(
                p_good_to_jammed=0.05396049843027815,
                p_jammed_to_good=0.03,
                delay_jammed_ms=80.0,
            ),
            repetitions=3,
            run_seconds=6.0,
        ),
        "search-discovered worst case (score 0.674, seed 7, budget 48): "
        "slow-recovery deep jammer",
    )


def _recorded_congestion_trace() -> tuple[float, ...]:
    """Synthetic stand-in for a measured capture: ramp, outage, recovery.

    Delay climbs from 2 ms to ~22 ms as the medium congests, the link then
    drops for 10 commands and recovers through a short elevated-delay tail —
    a burst length in the recoverable band of the Fig. 9 analysis.  Real
    packet captures plug into the same ``trace`` channel kind.
    """
    ramp = [2.0 + 0.25 * step for step in range(80)]
    outage = [float("inf")] * 10
    recovery = [12.0, 8.0, 5.0, 3.0, 2.5]
    steady = [2.0] * 25
    return tuple(ramp + outage + recovery + steady)


_register_builtins()
