"""Session engine: resolve a :class:`ScenarioSpec` into simulation runs.

The engine owns every piece of shared, cacheable state the scenario layer
needs:

* the operator datasets, cached per *full* :class:`ExperimentScale` value
  plus seed (not just the scale name, so custom scales never alias);
* trained forecasters, cached per training identity (algorithm, record,
  options, train fraction, scale, seed) — the fitted master is never
  predicted on directly; every session gets a deep copy, because
  forecasters may carry predict-time state (VARMA's residual window, or a
  registered custom class);
* finished :class:`SessionResult` objects, cached by the spec hash.

All caches are guarded by locks so the :class:`~repro.scenarios.sweep.
SweepExecutor` can call :meth:`SessionEngine.run` from worker threads.
Determinism is by construction: every random draw is seeded from the spec
hash and the repetition index, never from execution order, so a sweep
produces bit-identical results with 1 or N workers.

Repetitions execute through the **batched session kernel** by default: all
of a spec's channel realisations advance as one stacked NumPy computation
(:class:`repro.core.BatchedRemoteControlSimulation`) instead of a serial
Python loop, which is several times faster at equal results — the serial
path is kept behind the ``batch=False`` escape hatch and doubles as the
bit-equality oracle in the tests.
"""

from __future__ import annotations

import copy
import hashlib
import json
import threading
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (store imports engine)
    from .store import ResultStore

from ..core.recovery import ForecoRecovery
from ..core.simulation import (
    BatchedRemoteControlSimulation,
    RemoteControlSimulation,
    SimulationOutcome,
)
from ..errors import ConfigurationError
from ..forecasting import make_forecaster
from ..teleop import (
    OperatorModel,
    RemoteController,
    experienced_operator,
    inexperienced_operator,
)
from ..teleop.controller import CommandStream
from .._validation import rng_from
from ..wireless import (
    ConsecutiveLossInjector,
    GilbertElliottJammer,
    HandoverChannel,
    HandoverConfig,
    InterferenceSource,
    JammerConfig,
    MarkovChannelConfig,
    MarkovModulatedChannel,
    PeriodicLossInjector,
    RandomLossInjector,
    WirelessChannel,
    sample_handover_delays_batch,
    sample_jammer_delays_batch,
    sample_markov_delays_batch,
)
from .spec import ChannelSpec, ExperimentScale, ScenarioSpec, _jsonify, get_scale

#: Engine/code epoch for persisted results.  Two runs may only share a
#: :class:`~repro.scenarios.store.ResultStore` entry when both the spec hash
#: AND this epoch match — bump it whenever a code change alters the results
#: produced for an *unchanged* spec hash (PR 3's compound-seed fix is the
#: canonical example: spec hashes survived, compound delay traces did not).
#: Pure refactors, new channel kinds and performance work do NOT bump it.
#: Epoch 5: the fleet record schema gained mandatory tier metadata and fleet
#: spec hashes moved to the tier-aware canonical form, so epoch-4 fleet
#: shards are unreadable by (and invisible to) the hybrid-tier engines.
#: Epoch 6: the live-service layer landed — a third record kind
#: (``"service"``: admission counters, migration, snapshot streams) joined
#: the store, and service modules joined the epoch manifest's tracked set.
ENGINE_EPOCH = 6


# ------------------------------------------------------------------- datasets
@dataclass
class SharedDatasets:
    """The two operator command streams every scenario starts from."""

    experienced: CommandStream
    inexperienced: CommandStream

    @property
    def n_joints(self) -> int:
        """Command dimensionality (6 for the Niryo One)."""
        return self.experienced.n_joints


@lru_cache(maxsize=16)
def _cached_datasets(scale: ExperimentScale, seed: int) -> SharedDatasets:
    controller = RemoteController()
    experienced = controller.stream_from_operator(
        OperatorModel(profile=experienced_operator(), seed=seed),
        n_repetitions=scale.train_repetitions,
    )
    inexperienced = controller.stream_from_operator(
        OperatorModel(profile=inexperienced_operator(), seed=seed + 1),
        n_repetitions=scale.test_repetitions,
    )
    return SharedDatasets(experienced=experienced, inexperienced=inexperienced)


def build_datasets(scale: str | ExperimentScale = "ci", seed: int = 42) -> SharedDatasets:
    """Build (or fetch from the in-process cache) the shared operator datasets.

    The cache key is the *entire* scale value, so a custom
    :class:`ExperimentScale` with a reused name still gets its own datasets.
    """
    return _cached_datasets(get_scale(scale), int(seed))


# ------------------------------------------------------------------- channels
def _hash_seed(payload: str) -> int:
    """32-bit seed derived from a payload string (shared hashing scheme)."""
    return int.from_bytes(hashlib.sha256(payload.encode("utf-8")).digest()[:4], "big")


def repetition_seed(spec: ScenarioSpec, repetition: int, stage: int = 0) -> int:
    """Deterministic per-repetition RNG seed for the channel samplers.

    Derived from the spec's *channel identity* (see
    :meth:`ScenarioSpec.channel_identity`): distinct channels decorrelate,
    while specs that differ only in recovery-side knobs (record length,
    tolerance, fallback, …) replay the exact same delay trace.  Independent
    of worker scheduling, so parallel sweeps reproduce serial ones exactly.

    ``stage`` opens a hash-decorrelated sub-stream axis for callers that need
    several independent draws per repetition; compound channels derive their
    per-stage seeds through the same sha256 scheme (see
    :func:`compound_stage_seed`), keyed on stage *content* rather than stage
    position so superposition stays order-invariant.
    """
    identity = json.dumps(spec.channel_identity(), sort_keys=True, separators=(",", ":"))
    return _hash_seed(f"{identity}::{int(repetition)}::{int(stage)}")


def compound_stage_seed(seed: int, stage: ChannelSpec, occurrence: int = 0) -> int:
    """Hash-derived RNG seed for one stage of a compound channel.

    The old additive scheme (``seed + 9973 * (index + 1)``) could collide or
    correlate across dense 32-bit repetition seeds; this derivation feeds the
    base seed, the stage's *content* (kind + parameters) and its occurrence
    count among identical stages through the same sha256 construction as
    :func:`repetition_seed`.  Keying on content instead of position makes
    superposition order-invariant: reordering the stages of a compound
    channel permutes only the summation order, never the per-stage
    realisations or the union of losses.

    Compatibility: spec hashes are unchanged (seed derivation is not part of
    the hashing domain), but compound-channel delay traces differ from those
    produced before this scheme — cached ``SessionResult`` rows for compound
    specs from older runs are not comparable.
    """
    identity = json.dumps(
        {"kind": stage.kind, "params": _jsonify(stage.params)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return _hash_seed(f"{int(seed)}::{identity}::{int(occurrence)}")


def _compound_stage_seeds(stages, seed: int) -> list[int]:
    """Per-stage seeds for one compound realisation (content-keyed)."""
    occurrences: dict[ChannelSpec, int] = {}
    stage_seeds: list[int] = []
    for stage in stages:
        occurrence = occurrences.get(stage, 0)
        occurrences[stage] = occurrence + 1
        stage_seeds.append(compound_stage_seed(seed, stage, occurrence))
    return stage_seeds


def _wireless_from_options(
    options: dict, command_period_ms: float, seed=None
) -> WirelessChannel:
    """Materialise a :class:`WirelessChannel` from frozen spec options."""
    interference = InterferenceSource(
        probability=float(options.pop("probability", 0.0)),
        duration_slots=int(options.pop("duration_slots", 0)),
    )
    return WirelessChannel(
        n_robots=int(options.pop("n_robots", 5)),
        interference=interference,
        command_period_ms=command_period_ms,
        seed=seed,
        **options,
    )


def _trace_replay(options: dict, n_commands: int, seeds) -> np.ndarray:
    """``(B, n)`` replay of a recorded delay trace with per-seed phase offsets."""
    recorded = np.asarray(options.get("delays_ms", ()), dtype=float)
    if recorded.ndim != 1 or recorded.size == 0:
        raise ConfigurationError("trace channel needs a non-empty delays_ms recording")
    cycle_offsets = bool(options.get("cycle_offsets", True))
    if cycle_offsets:
        offsets = np.array([int(rng_from(seed).integers(recorded.size)) for seed in seeds])
    else:
        offsets = np.zeros(len(seeds), dtype=int)
    indices = (np.arange(n_commands)[None, :] + offsets[:, None]) % recorded.size
    return recorded[indices]


def sample_channel_delays(
    channel: ChannelSpec,
    n_commands: int,
    seed: int,
    command_period_ms: float = 20.0,
) -> np.ndarray:
    """Sample one realisation of per-command delays (ms, ``inf`` = lost).

    This is the serial reference path — one repetition at a time, kept as
    the bit-equality oracle for :func:`sample_channel_delays_batch`.
    """
    options = channel.options()
    if channel.kind == "clean":
        return np.full(n_commands, float(options.get("nominal_delay_ms", 1.0)))
    if channel.kind == "wireless":
        wireless = _wireless_from_options(options, command_period_ms, seed=seed)
        return wireless.sample_trace(n_commands).delays()
    if channel.kind == "jammer":
        jammer = GilbertElliottJammer(config=JammerConfig(**options), seed=seed)
        return jammer.sample_trace(n_commands).delays()
    if channel.kind == "loss-burst":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = ConsecutiveLossInjector(seed=seed, **options)
        return injector.to_delays(n_commands, nominal_delay_ms=nominal)
    if channel.kind == "periodic-loss":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = PeriodicLossInjector(**options)
        return injector.to_delays(n_commands, nominal_delay_ms=nominal)
    if channel.kind == "random-loss":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = RandomLossInjector(seed=seed, **options)
        return injector.to_delays(n_commands, nominal_delay_ms=nominal)
    if channel.kind == "trace":
        return _trace_replay(options, n_commands, [seed])[0]
    if channel.kind == "markov-interference":
        markov = MarkovModulatedChannel(config=MarkovChannelConfig(**options), seed=seed)
        return markov.sample_delays(n_commands)
    if channel.kind == "handover":
        handover = HandoverChannel(config=HandoverConfig(**options), seed=seed)
        return handover.sample_delays(n_commands)
    if channel.kind == "compound":
        stages = options.get("stages", ())
        if not stages:
            raise ConfigurationError("compound channel has no stages")
        total = np.zeros(n_commands)
        for stage, stage_seed in zip(stages, _compound_stage_seeds(stages, seed)):
            total = total + sample_channel_delays(
                stage, n_commands, stage_seed, command_period_ms
            )
        return total
    raise ConfigurationError(f"unknown channel kind {channel.kind!r}")


def sample_channel_delays_batch(
    channel: ChannelSpec,
    n_commands: int,
    seeds,
    command_period_ms: float = 20.0,
) -> np.ndarray:
    """Sample ``B`` independent delay realisations as one ``(B, n)`` array.

    Row ``b`` is bit-identical to
    ``sample_channel_delays(channel, n_commands, seeds[b], command_period_ms)``
    — each repetition consumes its own seed's RNG stream exactly as the
    serial path does — but the heavy samplers (the 802.11 AP queue, the
    Markov chains, the loss injectors) advance every repetition in lockstep
    NumPy arrays and expensive derived state (the Bianchi DCF fixed point,
    service distributions) is built once per batch instead of once per
    repetition.  This is the entry point :class:`SessionEngine` routes
    batched repetitions through.
    """
    seeds = [int(seed) for seed in seeds]
    if not seeds:
        raise ConfigurationError("sample_channel_delays_batch needs at least one seed")
    batch = len(seeds)
    options = channel.options()
    if channel.kind == "clean":
        return np.full((batch, n_commands), float(options.get("nominal_delay_ms", 1.0)))
    if channel.kind == "wireless":
        wireless = _wireless_from_options(options, command_period_ms)
        return wireless.sample_delays_batch(n_commands, seeds)
    if channel.kind == "jammer":
        return sample_jammer_delays_batch(JammerConfig(**options), n_commands, seeds)
    if channel.kind == "loss-burst":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = ConsecutiveLossInjector(**options)
        return np.where(injector.lost_mask_batch(n_commands, seeds), np.inf, nominal)
    if channel.kind == "periodic-loss":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = PeriodicLossInjector(**options)
        return np.where(injector.lost_mask_batch(n_commands, seeds), np.inf, nominal)
    if channel.kind == "random-loss":
        nominal = float(options.pop("nominal_delay_ms", 1.0))
        injector = RandomLossInjector(**options)
        return np.where(injector.lost_mask_batch(n_commands, seeds), np.inf, nominal)
    if channel.kind == "trace":
        return _trace_replay(options, n_commands, seeds)
    if channel.kind == "markov-interference":
        return sample_markov_delays_batch(MarkovChannelConfig(**options), n_commands, seeds)
    if channel.kind == "handover":
        return sample_handover_delays_batch(HandoverConfig(**options), n_commands, seeds)
    if channel.kind == "compound":
        stages = options.get("stages", ())
        if not stages:
            raise ConfigurationError("compound channel has no stages")
        per_seed_stage_seeds = [_compound_stage_seeds(stages, seed) for seed in seeds]
        total = np.zeros((batch, n_commands))
        for index, stage in enumerate(stages):
            stage_seeds = [row[index] for row in per_seed_stage_seeds]
            total = total + sample_channel_delays_batch(
                stage, n_commands, stage_seeds, command_period_ms
            )
        return total
    raise ConfigurationError(f"unknown channel kind {channel.kind!r}")


# -------------------------------------------------------------------- results
@dataclass
class SessionResult:
    """Uniform per-scenario result row produced by the engine.

    Scalar metric tuples hold one entry per repetition; ``outcome`` and
    ``delays_ms`` keep the *last* repetition's full detail for trajectory
    plots and transient analyses (Figs. 9/10).
    """

    spec: ScenarioSpec
    spec_hash: str
    n_commands: int
    rmse_no_forecast_mm: tuple[float, ...]
    rmse_foreco_mm: tuple[float, ...]
    late_fraction: tuple[float, ...]
    recovery_fraction: tuple[float, ...]
    outcome: SimulationOutcome | None = field(repr=False, default=None)
    delays_ms: np.ndarray | None = field(repr=False, default=None)

    @property
    def repetitions(self) -> int:
        """Number of repetitions actually run."""
        return len(self.rmse_foreco_mm)

    @property
    def mean_rmse_no_forecast_mm(self) -> float:
        """Baseline trajectory RMSE averaged over repetitions."""
        return float(np.mean(self.rmse_no_forecast_mm))

    @property
    def mean_rmse_foreco_mm(self) -> float:
        """FoReCo trajectory RMSE averaged over repetitions."""
        return float(np.mean(self.rmse_foreco_mm))

    @property
    def mean_late_fraction(self) -> float:
        """Late/lost command share averaged over repetitions."""
        return float(np.mean(self.late_fraction))

    @property
    def mean_recovery_fraction(self) -> float:
        """Share of missing slots FoReCo filled, averaged over repetitions."""
        return float(np.mean(self.recovery_fraction))

    @property
    def improvement_factor(self) -> float:
        """Mean baseline RMSE over mean FoReCo RMSE (the paper's ×18 / ×2).

        Contract: when the FoReCo RMSE denominator is zero or numerically
        negligible (< 1e-12 mm — e.g. a clean channel where FoReCo replays
        the defined trajectory exactly), the factor is ``float("inf")``
        rather than a NaN, an exception, or an arbitrary huge float.
        Callers that tabulate or JSON-encode results must expect ``inf``.
        """
        denominator = self.mean_rmse_foreco_mm
        if denominator < 1e-12:
            return float("inf")
        return self.mean_rmse_no_forecast_mm / denominator

    def to_dict(self) -> dict:
        """JSON-safe summary row (trajectories and raw delays excluded).

        A non-finite :attr:`improvement_factor` (the documented ``inf`` for
        a ~zero FoReCo RMSE) is serialised as ``None`` — ``json.dumps``
        would otherwise emit the literal ``Infinity``, which RFC 8259
        consumers reject.
        """
        factor = self.improvement_factor
        return {
            "scenario": self.spec.name,
            "spec_hash": self.spec_hash,
            "channel": self.spec.channel.describe(),
            "operator": self.spec.operator,
            "scale": self.spec.scale.name,
            "seed": self.spec.seed,
            "repetitions": self.repetitions,
            "n_commands": self.n_commands,
            "rmse_no_forecast_mm": [float(v) for v in self.rmse_no_forecast_mm],
            "rmse_foreco_mm": [float(v) for v in self.rmse_foreco_mm],
            "mean_rmse_no_forecast_mm": self.mean_rmse_no_forecast_mm,
            "mean_rmse_foreco_mm": self.mean_rmse_foreco_mm,
            "improvement_factor": factor if np.isfinite(factor) else None,
            "mean_late_fraction": self.mean_late_fraction,
            "mean_recovery_fraction": self.mean_recovery_fraction,
        }


# --------------------------------------------------------------------- engine
class SessionEngine:
    """Resolves scenario specs into simulation runs, with caching.

    Parameters
    ----------
    cache_results:
        Keep finished :class:`SessionResult` objects keyed by spec hash, so
        re-running the same spec (e.g. across sweep rounds) is free.  The
        forecaster and dataset caches are always on — they are pure
        functions of the spec.
    batch:
        Execute a spec's repetitions through the batched session kernel
        (:class:`repro.core.BatchedRemoteControlSimulation`) whenever the
        spec has more than one repetition and its forecaster supports
        batched prediction.  The kernel is bit-identical to the serial
        repetition loop; ``batch=False`` is the escape hatch that forces the
        serial path (and is what the equality tests compare against).
    store:
        Optional persistent :class:`~repro.scenarios.store.ResultStore`.
        Lookups go memory cache → disk store → compute; computed results are
        written back immediately, so an interrupted sweep has persisted
        everything it finished.  Store hits carry ``outcome=None`` (full
        trajectories are not persisted — see the store module docs); the
        summary row and delay trace round-trip bit-for-bit.
    """

    def __init__(
        self,
        cache_results: bool = True,
        batch: bool = True,
        store: "ResultStore | None" = None,
    ) -> None:
        self.cache_results = bool(cache_results)
        self.batch = bool(batch)
        self.store = store
        self._results: dict[str, SessionResult] = {}
        self._forecasters: dict[tuple, object] = {}
        self._results_lock = threading.Lock()
        self._forecaster_lock = threading.Lock()
        self._training_locks: dict[tuple, threading.Lock] = {}

    # ------------------------------------------------------------- datasets
    def datasets(self, spec: ScenarioSpec) -> SharedDatasets:
        """The operator datasets this spec resolves to."""
        return build_datasets(spec.scale, seed=spec.seed)

    def test_commands(self, spec: ScenarioSpec) -> np.ndarray:
        """The command stream replayed through the channel for this spec."""
        datasets = self.datasets(spec)
        seconds = spec.resolved_run_seconds
        if spec.operator == "experienced":
            return datasets.experienced.head_seconds(seconds).commands
        if spec.operator == "inexperienced":
            return datasets.inexperienced.head_seconds(seconds).commands
        # "mix": an operator handover halfway through the run.
        half = seconds / 2.0
        first = datasets.experienced.head_seconds(half).commands
        second = datasets.inexperienced.head_seconds(half).commands
        return np.vstack([first, second])

    # ----------------------------------------------------------- forecaster
    def trained_forecaster(self, spec: ScenarioSpec):
        """The fitted master forecaster for this spec's training identity.

        Cached and never predicted on by the engine itself — sessions run
        against deep copies (see :meth:`session_forecaster`) because
        forecasters may carry predict-time state.  Training for distinct
        identities proceeds in parallel; concurrent requests for the same
        identity serialise on a per-key lock so the model is fitted once.
        """
        key = (spec.foreco.training_identity(), spec.scale, int(spec.seed))
        with self._forecaster_lock:
            forecaster = self._forecasters.get(key)
            if forecaster is not None:
                return forecaster
            training_lock = self._training_locks.setdefault(key, threading.Lock())
        with training_lock:
            with self._forecaster_lock:
                forecaster = self._forecasters.get(key)
                if forecaster is not None:
                    return forecaster
            forecaster = make_forecaster(
                spec.foreco.algorithm,
                record=spec.foreco.record,
                **spec.foreco.options(),
            )
            forecaster.fit(self.datasets(spec).experienced.commands)
            with self._forecaster_lock:
                self._forecasters[key] = forecaster
            return forecaster

    def session_forecaster(self, spec: ScenarioSpec):
        """A private fitted forecaster for one session (deep copy of the master).

        The copy makes every session start from pristine fitted state, so
        stateful forecasters (VARMA's residual window, custom registered
        classes) cannot leak state across repetitions, sessions or worker
        threads — results stay independent of execution order.
        """
        return copy.deepcopy(self.trained_forecaster(spec))

    def recovery(self, spec: ScenarioSpec) -> ForecoRecovery:
        """A fresh recovery engine around a private copy of the trained forecaster."""
        return ForecoRecovery(config=spec.foreco.to_config(), forecaster=self.session_forecaster(spec))

    # ------------------------------------------------------------- sessions
    def run(self, spec: ScenarioSpec, batch: bool | None = None) -> SessionResult:
        """Run one scenario (all its repetitions) and return the result row.

        Parameters
        ----------
        spec:
            The scenario to execute.
        batch:
            Per-call override of the engine's :attr:`batch` setting:
            ``False`` forces the serial repetition loop, ``True`` requests
            the batched kernel (still subject to the forecaster supporting
            it).  Both paths produce bit-identical results, so cached rows
            are shared between them.
        """
        key = spec.spec_hash()
        if self.cache_results:
            with self._results_lock:
                cached = self._results.get(key)
            if cached is not None:
                return cached
        if self.store is not None:
            stored = self.store.get(spec)
            if stored is not None:
                if self.cache_results:
                    with self._results_lock:
                        stored = self._results.setdefault(key, stored)
                return stored

        commands = self.test_commands(spec)
        master = self.trained_forecaster(spec)  # ensure the master is fitted once
        use_batch = self.batch if batch is None else bool(batch)
        if (
            use_batch
            and spec.repetitions > 1
            and getattr(master, "supports_batch_predict", False)
        ):
            outcomes, delays = self._run_batched(spec, commands)
        else:
            outcomes, delays = self._run_serial(spec, commands)

        result = SessionResult(
            spec=spec,
            spec_hash=key,
            n_commands=int(commands.shape[0]),
            rmse_no_forecast_mm=tuple(o.rmse_no_forecast_mm for o in outcomes),
            rmse_foreco_mm=tuple(o.rmse_foreco_mm for o in outcomes),
            late_fraction=tuple(o.late_fraction for o in outcomes),
            recovery_fraction=tuple(o.recovery_fraction for o in outcomes),
            outcome=outcomes[-1],
            delays_ms=delays,
        )
        if self.cache_results:
            with self._results_lock:
                self._results.setdefault(key, result)
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def _sample_delays(self, spec: ScenarioSpec, n_commands: int, repetition: int) -> np.ndarray:
        """One repetition's channel realisation (seeded from the spec)."""
        return sample_channel_delays(
            spec.channel,
            n_commands,
            seed=repetition_seed(spec, repetition),
            command_period_ms=spec.foreco.command_period_ms,
        )

    def _sample_delays_batch(self, spec: ScenarioSpec, n_commands: int) -> np.ndarray:
        """All repetitions' channel realisations as one ``(B, n)`` array.

        Uses the same spec-derived per-repetition seeds as
        :meth:`_sample_delays`, so the stacked realisations are bit-identical
        to the serial loop's.
        """
        seeds = [repetition_seed(spec, repetition) for repetition in range(spec.repetitions)]
        return sample_channel_delays_batch(
            spec.channel,
            n_commands,
            seeds,
            command_period_ms=spec.foreco.command_period_ms,
        )

    def _run_serial(
        self, spec: ScenarioSpec, commands: np.ndarray
    ) -> tuple[list[SimulationOutcome], np.ndarray]:
        """The reference path: one full simulation per repetition.

        Kept verbatim as the equality oracle for the batched kernel (and as
        the fallback for forecasters without batched prediction).
        """
        outcomes: list[SimulationOutcome] = []
        delays: np.ndarray | None = None
        for repetition in range(spec.repetitions):
            recovery = ForecoRecovery(
                config=spec.foreco.to_config(), forecaster=self.session_forecaster(spec)
            )
            simulation = RemoteControlSimulation(
                recovery, use_pid=spec.use_pid, fallback=spec.fallback
            )
            delays = self._sample_delays(spec, commands.shape[0], repetition)
            outcomes.append(simulation.run(commands, delays))
        assert delays is not None  # repetitions >= 1 by spec validation
        return outcomes, delays

    def _run_batched(
        self, spec: ScenarioSpec, commands: np.ndarray
    ) -> tuple[list[SimulationOutcome], np.ndarray]:
        """The batched kernel: all repetitions as one stacked computation.

        Channel realisations come from the vectorized batch sampler with the
        exact spec-derived per-repetition seeds, and one private fitted
        forecaster serves the whole stack (the ``supports_batch_predict``
        contract makes that equivalent to the serial path's per-repetition
        deep copies), so the outcomes are bit-identical to
        :meth:`_run_serial`.
        """
        delays_batch = self._sample_delays_batch(spec, commands.shape[0])
        recovery = ForecoRecovery(
            config=spec.foreco.to_config(), forecaster=self.session_forecaster(spec)
        )
        simulation = BatchedRemoteControlSimulation(
            recovery, use_pid=spec.use_pid, fallback=spec.fallback
        )
        outcomes = simulation.run(commands, delays_batch)
        return outcomes, delays_batch[-1]

    def cached_result(self, spec: ScenarioSpec) -> SessionResult | None:
        """The cached result for this spec, if any."""
        with self._results_lock:
            return self._results.get(spec.spec_hash())

    def clear(self) -> None:
        """Drop the session-result cache (forecaster cache is kept)."""
        with self._results_lock:
            self._results.clear()
