"""Parallel sweep execution over lists/grids of scenario specs.

A sweep is an ordered list of :class:`ScenarioSpec` values — or
:class:`~repro.fleet.FleetSpec` values, which route through a
:class:`~repro.fleet.HybridFleetEngine` sharing the executor's session
engine and store (capacity-planning sweeps resume and parallelise like any
other; the hybrid engine runs both the exact and the hybrid fleet tier), or
:class:`~repro.service.ServiceSpec` values, which route through a
:class:`~repro.service.ServiceEngine` the same way (live-service runs are
spec-seeded too, so they stay bit-identical across worker counts).  The
:class:`SweepExecutor` fans the list out over a thread pool (each session is
NumPy-bound and self-contained, and the engine's caches are lock-guarded) or,
with ``backend="process"``, over a process pool for true multi-core grids —
preserving input order in the returned :class:`SweepResult` either way.
Because every random draw is seeded from the spec itself (see
:func:`repro.scenarios.engine.repetition_seed`), the result is bit-identical
whether the sweep runs with 1 worker or N, threads or processes.

:func:`scenario_grid` expands axis definitions into the cross-product of
specs — the declarative replacement for the nested ``for`` loops the
experiment modules used to hand-write.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError
from .engine import SessionEngine, SessionResult
from .spec import ScenarioSpec
from .store import ResultStore


# ----------------------------------------------------------------------- grid
def scenario_grid(base: ScenarioSpec, axes: dict[str, Sequence]) -> list[ScenarioSpec]:
    """Cross-product of specs from a base spec and axis definitions.

    Axis keys address spec fields by path:

    * ``"channel.<param>"`` merges a channel parameter
      (e.g. ``"channel.n_robots": (5, 15, 25)``);
    * ``"foreco.<field>"`` replaces a FoReCo field
      (e.g. ``"foreco.record": (2, 5, 10)``);
    * any other key replaces a top-level :class:`ScenarioSpec` field
      (e.g. ``"seed": range(10)``).

    Axes expand in insertion order with the *last* axis varying fastest, so
    the output order is deterministic.
    """
    if not axes:
        return [base]
    keys = list(axes)
    value_lists = [list(axes[key]) for key in keys]
    if any(not values for values in value_lists):
        raise ConfigurationError("every sweep axis needs at least one value")
    specs = []
    for combo in itertools.product(*value_lists):
        spec = base
        for key, value in zip(keys, combo):
            spec = _apply_axis(spec, key, value)
        specs.append(spec)
    return specs


def _apply_axis(spec: ScenarioSpec, key: str, value) -> ScenarioSpec:
    if key.startswith("channel."):
        return spec.with_channel(**{key[len("channel."):]: value})
    if key.startswith("foreco."):
        return spec.with_foreco(**{key[len("foreco."):]: value})
    return spec.with_(**{key: value})


# -------------------------------------------------------------------- results
@dataclass
class SweepResult:
    """Ordered table of per-scenario session results.

    When the sweep ran against a persistent
    :class:`~repro.scenarios.store.ResultStore`, ``store_hits`` /
    ``store_misses`` record how the specs partitioned: hits were loaded from
    disk, misses were computed (and written back).  Both stay 0 for
    store-less sweeps and for derived tables (:meth:`filter`).
    """

    rows: list[SessionResult] = field(default_factory=list)
    store_hits: int = 0
    store_misses: int = 0

    @property
    def hit_fraction(self) -> float:
        """Store hits over specs (0.0 when the sweep had no store)."""
        lookups = self.store_hits + self.store_misses
        return self.store_hits / lookups if lookups else 0.0

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index: int) -> SessionResult:
        return self.rows[index]

    def filter(self, predicate: Callable[[SessionResult], bool]) -> "SweepResult":
        """A sub-sweep of the rows matching ``predicate`` (order kept)."""
        return SweepResult([row for row in self.rows if predicate(row)])

    def metric(self, name: str) -> list[float]:
        """One aggregate metric across rows (attribute name on the rows)."""
        return [getattr(row, name) for row in self.rows]

    def worst(self, metric: str = "mean_rmse_foreco_mm") -> SessionResult:
        """The row with the largest value of ``metric``."""
        if not self.rows:
            raise ConfigurationError("empty sweep has no worst row")
        return max(self.rows, key=lambda row: getattr(row, metric))

    def best(self, metric: str = "mean_rmse_foreco_mm") -> SessionResult:
        """The row with the smallest value of ``metric``."""
        if not self.rows:
            raise ConfigurationError("empty sweep has no best row")
        return min(self.rows, key=lambda row: getattr(row, metric))

    def to_records(self) -> list[dict]:
        """JSON-safe record list (one dict per row)."""
        return [row.to_dict() for row in self.rows]

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering of the sweep table."""
        return json.dumps(self.to_records(), indent=indent)

    def to_table(self) -> str:
        """Fixed-width text table (one line per scenario row)."""
        header = (
            f"{'scenario':<18s} {'channel':<44s} {'reps':>4s} "
            f"{'no-forecast':>12s} {'FoReCo':>8s} {'gain':>6s} {'late':>6s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            channel = row.spec.channel.describe()
            if len(channel) > 44:
                channel = channel[:41] + "..."
            lines.append(
                f"{row.spec.name:<18s} {channel:<44s} {row.repetitions:>4d} "
                f"{row.mean_rmse_no_forecast_mm:>10.2f}mm {row.mean_rmse_foreco_mm:>6.2f}mm "
                f"x{row.improvement_factor:>5.1f} {row.mean_late_fraction:>6.2f}"
            )
        return "\n".join(lines)

    def to_text(self) -> str:
        """Alias of :meth:`to_table` (uniform with experiment results)."""
        return self.to_table()


# ------------------------------------------------------------------- executor
#: Per-process session engine for the ``"process"`` backend.  Created lazily
#: in each worker on its first spec, so one worker amortises dataset and
#: forecaster training across every spec it is handed.
_WORKER_ENGINE: SessionEngine | None = None

#: Per-process fleet engine (wraps the worker's session engine; lazy like it).
_WORKER_FLEET_ENGINE = None

#: Per-process service engine (wraps the worker's session engine; lazy like it).
_WORKER_SERVICE_ENGINE = None


def _run_spec_in_worker(task: tuple[ScenarioSpec, tuple | None]):
    """Run one spec in a pool worker; ``task`` is ``(spec, store_config)``.

    ``store_config`` is ``(root, epoch, max_entries, max_bytes)`` or ``None``;
    each worker process opens its own :class:`ResultStore` handle on it, so
    results are persisted the moment a worker finishes them (per-key atomic
    renames make the concurrent writers safe).  Fleet specs route through a
    per-process :class:`~repro.fleet.HybridFleetEngine` sharing the worker's
    session engine and store (it runs both fleet tiers; exact-tier specs
    take the plain :class:`~repro.fleet.FleetEngine` path unchanged).
    """
    global _WORKER_ENGINE, _WORKER_FLEET_ENGINE, _WORKER_SERVICE_ENGINE
    spec, store_config = task
    if _WORKER_ENGINE is None:
        store = ResultStore(*store_config) if store_config is not None else None
        _WORKER_ENGINE = SessionEngine(store=store)
    if isinstance(spec, ScenarioSpec):
        return _WORKER_ENGINE.run(spec)
    if getattr(spec, "store_kind", None) == "service":
        if _WORKER_SERVICE_ENGINE is None:
            from ..service import ServiceEngine  # deferred: service imports scenarios

            _WORKER_SERVICE_ENGINE = ServiceEngine(
                sessions=_WORKER_ENGINE, store=_WORKER_ENGINE.store
            )
        return _WORKER_SERVICE_ENGINE.run(spec)
    if _WORKER_FLEET_ENGINE is None:
        from ..fleet import HybridFleetEngine  # deferred: fleet imports scenarios

        _WORKER_FLEET_ENGINE = HybridFleetEngine(
            sessions=_WORKER_ENGINE, store=_WORKER_ENGINE.store
        )
    return _WORKER_FLEET_ENGINE.run(spec)


class SweepExecutor:
    """Runs a list of scenario specs, optionally over workers.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` (default) runs serially in the calling thread.
    engine:
        Shared :class:`SessionEngine`; a private one is created when omitted,
        so repeated ``run`` calls on one executor reuse its caches.  Ignored
        by the ``"process"`` backend (see below).
    backend:
        ``"thread"`` (default) fans specs out over a thread pool sharing
        ``engine`` and its caches — the right choice when sweeps reuse
        datasets/forecasters heavily or results must land in this process's
        cache.  ``"process"`` uses a :class:`~concurrent.futures.
        ProcessPoolExecutor` for true multi-core scaling of NumPy-bound
        grids: every worker process builds a private engine on first use
        (caches cannot be shared across processes), specs and result rows
        travel by pickling.  Because all randomness is seeded from the spec,
        both backends return results bit-identical to a serial run.

        Caveat: runtime registrations (``register_forecaster`` /
        ``register_scenario``) live in per-process module globals.  Workers
        inherit them under the ``fork`` start method (Linux default) but NOT
        under ``spawn`` (macOS/Windows default), where specs referencing
        them fail with a ``ConfigurationError``; use ``backend="thread"``
        for such specs on those platforms.
    store:
        Optional persistent :class:`~repro.scenarios.store.ResultStore`.
        :meth:`run` first partitions the specs into store hits and misses
        and fans out **only the misses** — the synchronisation-protocol
        move: compute only what differs from what is already stored.  Every
        computed result is written back as soon as it finishes (worker
        processes open their own handle on the same directory), so an
        interrupted sweep resumes where it crashed and a grown grid reuses
        its overlap with previous grids.  When both ``engine`` and ``store``
        are given, the store is attached to the engine (which must not
        already carry a different one).
    """

    #: Accepted ``backend`` values.
    BACKENDS: tuple[str, ...] = ("thread", "process")

    def __init__(
        self,
        jobs: int = 1,
        engine: SessionEngine | None = None,
        backend: str = "thread",
        store: ResultStore | None = None,
    ) -> None:
        if backend not in self.BACKENDS:
            raise ConfigurationError(
                f"unknown sweep backend {backend!r}; available: {sorted(self.BACKENDS)}"
            )
        self.jobs = max(1, int(jobs))
        if engine is None:
            engine = SessionEngine(store=store)
        elif store is not None:
            if engine.store is not None and engine.store is not store:
                raise ConfigurationError("engine already carries a different result store")
            engine.store = store
        self.engine = engine
        self.backend = backend
        self.store = store if store is not None else engine.store
        self._fleet_engine = None  # lazy FleetEngine for FleetSpec rows
        self._service_engine = None  # lazy ServiceEngine for ServiceSpec rows

    def _store_config(self) -> tuple | None:
        """Picklable store parameters for worker processes."""
        if self.store is None:
            return None
        return (str(self.store.root), self.store.epoch, self.store.max_entries, self.store.max_bytes)

    def _ensure_fleet_engine(self):
        """The lazily created :class:`~repro.fleet.HybridFleetEngine` for fleet rows.

        Shares this executor's session engine (and therefore its dataset /
        forecaster caches) and store — so capacity sweeps mix freely with
        scenario sweeps.  The hybrid engine runs *both* fleet tiers:
        exact-tier specs take the plain :class:`~repro.fleet.FleetEngine`
        path unchanged, hybrid-tier specs route through the city-scale
        classifier (see :mod:`repro.fleet.hybrid`).
        """
        if self._fleet_engine is None:
            from ..fleet import HybridFleetEngine  # deferred: fleet imports scenarios

            self._fleet_engine = HybridFleetEngine(sessions=self.engine, store=self.store)
        return self._fleet_engine

    def _ensure_service_engine(self):
        """The lazily created :class:`~repro.service.ServiceEngine` for service rows.

        Like the fleet engine, it shares this executor's session engine and
        store, so live-service runs mix freely with scenario and fleet rows
        in one resumable sweep.
        """
        if self._service_engine is None:
            from ..service import ServiceEngine  # deferred: service imports scenarios

            self._service_engine = ServiceEngine(sessions=self.engine, store=self.store)
        return self._service_engine

    def _run_one(self, spec):
        """Run one spec through the right engine (session, fleet or service)."""
        if isinstance(spec, ScenarioSpec):
            return self.engine.run(spec)
        if getattr(spec, "store_kind", None) == "service":
            return self._ensure_service_engine().run(spec)
        return self._ensure_fleet_engine().run(spec)

    def run(self, specs: Iterable[ScenarioSpec]) -> SweepResult:
        """Execute every spec and return results in input order.

        With a store attached, specs whose results are already persisted are
        loaded instead of computed; only the misses fan out to workers.  The
        rows are indistinguishable from a cold serial run (modulo the
        in-memory-only ``outcome`` field on hits).
        """
        specs = list(specs)
        if not specs:
            return SweepResult([])
        rows: list[SessionResult | None] = [None] * len(specs)
        pending: list[tuple[int, ScenarioSpec]] = []
        hits = 0
        if self.store is not None:
            for index, spec in enumerate(specs):
                # Partition with a cheap existence check; the stats-counted
                # get() runs only for actual hits, so the per-spec miss is
                # counted exactly once (by the engine, when it computes).
                cached = self.store.get(spec) if self.store.contains(spec) else None
                if cached is not None:
                    rows[index] = cached
                    hits += 1
                else:
                    pending.append((index, spec))
        else:
            pending = list(enumerate(specs))
        misses = len(pending) if self.store is not None else 0

        if pending:
            pending_specs = [spec for _, spec in pending]
            # Materialise the non-scenario engines before fanning out so
            # worker threads never race their lazy construction.
            kinds = {
                getattr(spec, "store_kind", None)
                for spec in pending_specs
                if not isinstance(spec, ScenarioSpec)
            }
            if "service" in kinds:
                self._ensure_service_engine()
            if kinds - {"service"}:
                self._ensure_fleet_engine()
            if self.jobs == 1 or len(pending_specs) == 1:
                computed = [self._run_one(spec) for spec in pending_specs]
            elif self.backend == "process":
                store_config = self._store_config()
                tasks = [(spec, store_config) for spec in pending_specs]
                with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                    computed = list(pool.map(_run_spec_in_worker, tasks))
            else:
                # The engine trains distinct forecaster identities in parallel and
                # serialises same-identity requests on a per-key lock, so workers
                # can start immediately.
                with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                    computed = list(pool.map(self._run_one, pending_specs))
            for (index, _), row in zip(pending, computed):
                rows[index] = row
        return SweepResult(rows, store_hits=hits, store_misses=misses)

    def run_grid(self, base: ScenarioSpec, axes: dict[str, Sequence]) -> SweepResult:
        """Expand a grid (see :func:`scenario_grid`) and execute it."""
        return self.run(scenario_grid(base, axes))
