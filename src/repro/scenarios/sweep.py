"""Parallel sweep execution over lists/grids of scenario specs.

A sweep is an ordered list of :class:`ScenarioSpec` values.  The
:class:`SweepExecutor` fans the list out over a thread pool (each session is
NumPy-bound and self-contained, and the engine's caches are lock-guarded) or,
with ``backend="process"``, over a process pool for true multi-core grids —
preserving input order in the returned :class:`SweepResult` either way.
Because every random draw is seeded from the spec itself (see
:func:`repro.scenarios.engine.repetition_seed`), the result is bit-identical
whether the sweep runs with 1 worker or N, threads or processes.

:func:`scenario_grid` expands axis definitions into the cross-product of
specs — the declarative replacement for the nested ``for`` loops the
experiment modules used to hand-write.
"""

from __future__ import annotations

import itertools
import json
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError
from .engine import SessionEngine, SessionResult
from .spec import ScenarioSpec


# ----------------------------------------------------------------------- grid
def scenario_grid(base: ScenarioSpec, axes: dict[str, Sequence]) -> list[ScenarioSpec]:
    """Cross-product of specs from a base spec and axis definitions.

    Axis keys address spec fields by path:

    * ``"channel.<param>"`` merges a channel parameter
      (e.g. ``"channel.n_robots": (5, 15, 25)``);
    * ``"foreco.<field>"`` replaces a FoReCo field
      (e.g. ``"foreco.record": (2, 5, 10)``);
    * any other key replaces a top-level :class:`ScenarioSpec` field
      (e.g. ``"seed": range(10)``).

    Axes expand in insertion order with the *last* axis varying fastest, so
    the output order is deterministic.
    """
    if not axes:
        return [base]
    keys = list(axes)
    value_lists = [list(axes[key]) for key in keys]
    if any(not values for values in value_lists):
        raise ConfigurationError("every sweep axis needs at least one value")
    specs = []
    for combo in itertools.product(*value_lists):
        spec = base
        for key, value in zip(keys, combo):
            spec = _apply_axis(spec, key, value)
        specs.append(spec)
    return specs


def _apply_axis(spec: ScenarioSpec, key: str, value) -> ScenarioSpec:
    if key.startswith("channel."):
        return spec.with_channel(**{key[len("channel."):]: value})
    if key.startswith("foreco."):
        return spec.with_foreco(**{key[len("foreco."):]: value})
    return spec.with_(**{key: value})


# -------------------------------------------------------------------- results
@dataclass
class SweepResult:
    """Ordered table of per-scenario session results."""

    rows: list[SessionResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, index: int) -> SessionResult:
        return self.rows[index]

    def filter(self, predicate: Callable[[SessionResult], bool]) -> "SweepResult":
        """A sub-sweep of the rows matching ``predicate`` (order kept)."""
        return SweepResult([row for row in self.rows if predicate(row)])

    def metric(self, name: str) -> list[float]:
        """One aggregate metric across rows (attribute name on the rows)."""
        return [getattr(row, name) for row in self.rows]

    def worst(self, metric: str = "mean_rmse_foreco_mm") -> SessionResult:
        """The row with the largest value of ``metric``."""
        if not self.rows:
            raise ConfigurationError("empty sweep has no worst row")
        return max(self.rows, key=lambda row: getattr(row, metric))

    def best(self, metric: str = "mean_rmse_foreco_mm") -> SessionResult:
        """The row with the smallest value of ``metric``."""
        if not self.rows:
            raise ConfigurationError("empty sweep has no best row")
        return min(self.rows, key=lambda row: getattr(row, metric))

    def to_records(self) -> list[dict]:
        """JSON-safe record list (one dict per row)."""
        return [row.to_dict() for row in self.rows]

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering of the sweep table."""
        return json.dumps(self.to_records(), indent=indent)

    def to_table(self) -> str:
        """Fixed-width text table (one line per scenario row)."""
        header = (
            f"{'scenario':<18s} {'channel':<44s} {'reps':>4s} "
            f"{'no-forecast':>12s} {'FoReCo':>8s} {'gain':>6s} {'late':>6s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            channel = row.spec.channel.describe()
            if len(channel) > 44:
                channel = channel[:41] + "..."
            lines.append(
                f"{row.spec.name:<18s} {channel:<44s} {row.repetitions:>4d} "
                f"{row.mean_rmse_no_forecast_mm:>10.2f}mm {row.mean_rmse_foreco_mm:>6.2f}mm "
                f"x{row.improvement_factor:>5.1f} {row.mean_late_fraction:>6.2f}"
            )
        return "\n".join(lines)

    def to_text(self) -> str:
        """Alias of :meth:`to_table` (uniform with experiment results)."""
        return self.to_table()


# ------------------------------------------------------------------- executor
#: Per-process session engine for the ``"process"`` backend.  Created lazily
#: in each worker on its first spec, so one worker amortises dataset and
#: forecaster training across every spec it is handed.
_WORKER_ENGINE: SessionEngine | None = None


def _run_spec_in_worker(spec: ScenarioSpec) -> SessionResult:
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None:
        _WORKER_ENGINE = SessionEngine()
    return _WORKER_ENGINE.run(spec)


class SweepExecutor:
    """Runs a list of scenario specs, optionally over workers.

    Parameters
    ----------
    jobs:
        Worker count; ``1`` (default) runs serially in the calling thread.
    engine:
        Shared :class:`SessionEngine`; a private one is created when omitted,
        so repeated ``run`` calls on one executor reuse its caches.  Ignored
        by the ``"process"`` backend (see below).
    backend:
        ``"thread"`` (default) fans specs out over a thread pool sharing
        ``engine`` and its caches — the right choice when sweeps reuse
        datasets/forecasters heavily or results must land in this process's
        cache.  ``"process"`` uses a :class:`~concurrent.futures.
        ProcessPoolExecutor` for true multi-core scaling of NumPy-bound
        grids: every worker process builds a private engine on first use
        (caches cannot be shared across processes), specs and result rows
        travel by pickling.  Because all randomness is seeded from the spec,
        both backends return results bit-identical to a serial run.

        Caveat: runtime registrations (``register_forecaster`` /
        ``register_scenario``) live in per-process module globals.  Workers
        inherit them under the ``fork`` start method (Linux default) but NOT
        under ``spawn`` (macOS/Windows default), where specs referencing
        them fail with a ``ConfigurationError``; use ``backend="thread"``
        for such specs on those platforms.
    """

    #: Accepted ``backend`` values.
    BACKENDS: tuple[str, ...] = ("thread", "process")

    def __init__(
        self,
        jobs: int = 1,
        engine: SessionEngine | None = None,
        backend: str = "thread",
    ) -> None:
        if backend not in self.BACKENDS:
            raise ConfigurationError(
                f"unknown sweep backend {backend!r}; available: {sorted(self.BACKENDS)}"
            )
        self.jobs = max(1, int(jobs))
        self.engine = engine if engine is not None else SessionEngine()
        self.backend = backend

    def run(self, specs: Iterable[ScenarioSpec]) -> SweepResult:
        """Execute every spec and return results in input order."""
        specs = list(specs)
        if not specs:
            return SweepResult([])
        if self.jobs == 1 or len(specs) == 1:
            rows = [self.engine.run(spec) for spec in specs]
        elif self.backend == "process":
            with ProcessPoolExecutor(max_workers=self.jobs) as pool:
                rows = list(pool.map(_run_spec_in_worker, specs))
        else:
            # The engine trains distinct forecaster identities in parallel and
            # serialises same-identity requests on a per-key lock, so workers
            # can start immediately.
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                rows = list(pool.map(self.engine.run, specs))
        return SweepResult(rows)

    def run_grid(self, base: ScenarioSpec, axes: dict[str, Sequence]) -> SweepResult:
        """Expand a grid (see :func:`scenario_grid`) and execute it."""
        return self.run(scenario_grid(base, axes))
