"""seq2seq forecaster: the LSTM encoder–decoder wrapped as a Forecaster.

This is the FoReCo-facing adapter around :class:`repro.nn.seq2seq.Seq2SeqModel`
— the many-to-one LSTM encoder–decoder the paper trains with Adam (§IV-B,
§IV-C).  The defaults mirror the paper (encoder 200, decoder 30, ReLU
activations, Adam with η=0.001/β1=0.9/β2=0.999/ε=1e-7); tests and CI-sized
experiments pass much smaller layer sizes and epoch counts because the NumPy
BPTT implementation is orders of magnitude slower than TensorFlow on a GPU.

The paper finds that seq2seq *under-performs* MA and VAR on this task because
its ~164k weights do not converge on the available dataset; the reproduction
shows the same qualitative ordering (see Fig. 7 / EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_int
from ..nn.seq2seq import Seq2SeqModel
from .base import Forecaster, sliding_windows


class Seq2SeqForecaster(Forecaster):
    """LSTM encoder–decoder forecaster (paper §IV-B, "seq2seq")."""

    name = "seq2seq"
    # The forward pass is pure (no predict-time state), so a shared instance
    # is batch-safe.  Unlike MA/VAR there is no vectorized kernel: stacking
    # the LSTM matmuls across repetitions would route through BLAS gemm,
    # whose reduction order depends on the batch size and would break the
    # bit-identity contract — so the batch runs one forward pass per row.
    supports_batch_predict = True

    def __init__(
        self,
        record: int = 5,
        encoder_units: int = 200,
        decoder_units: int = 30,
        epochs: int = 3,
        batch_size: int = 32,
        learning_rate: float = 0.001,
        max_training_windows: int | None = 2000,
        seed: int | None = 0,
    ) -> None:
        super().__init__(record=record)
        self.encoder_units = ensure_int("encoder_units", encoder_units, minimum=1)
        self.decoder_units = ensure_int("decoder_units", decoder_units, minimum=1)
        self.epochs = ensure_int("epochs", epochs, minimum=1)
        self.batch_size = ensure_int("batch_size", batch_size, minimum=1)
        self.learning_rate = learning_rate
        self.max_training_windows = (
            None if max_training_windows is None
            else ensure_int("max_training_windows", max_training_windows, minimum=1)
        )
        self.seed = seed
        self.model: Seq2SeqModel | None = None
        self.training_history: list[float] = []

    # ----------------------------------------------------------------- fit
    def _fit(self, commands: np.ndarray) -> None:
        windows, targets = sliding_windows(commands, self.record)
        if self.max_training_windows is not None and windows.shape[0] > self.max_training_windows:
            # Uniformly subsample the training windows to bound NumPy-BPTT time.
            stride = windows.shape[0] // self.max_training_windows
            windows = windows[::stride][: self.max_training_windows]
            targets = targets[::stride][: self.max_training_windows]
        self.model = Seq2SeqModel(
            input_dim=commands.shape[1],
            encoder_units=self.encoder_units,
            decoder_units=self.decoder_units,
            learning_rate=self.learning_rate,
            seed=self.seed,
        )
        result = self.model.fit(
            windows, targets, epochs=self.epochs, batch_size=self.batch_size
        )
        self.training_history = list(result.loss_history)

    # ------------------------------------------------------------- predict
    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        assert self.model is not None  # guaranteed by Forecaster.fit
        return self.model.predict(history)

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        assert self.model is not None  # guaranteed by Forecaster.fit
        return self.model.predict_batch(windows)

    @property
    def n_parameters(self) -> int:
        """Number of scalar weights ``|w|`` in the underlying network."""
        return 0 if self.model is None else self.model.n_parameters
