"""Forecast accuracy metrics.

Fig. 7 of the paper reports the RMSE of the *Cartesian* forecast error — in
millimetres of end-effector position — as a function of the forecasting
window (how many consecutive commands are forecasted).  These helpers compute
both the joint-space RMSE (useful for model selection) and the Cartesian RMSE
used by the figure, via the robot's forward kinematics.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_command_array, ensure_int
from ..errors import DimensionError
from ..robot.niryo import NiryoOneArm
from .base import Forecaster


def forecast_rmse(predicted: np.ndarray, actual: np.ndarray) -> float:
    """Joint-space RMSE between predicted and actual command arrays."""
    predicted = as_command_array("predicted", predicted)
    actual = as_command_array("actual", actual)
    if predicted.shape != actual.shape:
        raise DimensionError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    return float(np.sqrt(np.mean((predicted - actual) ** 2)))


def cartesian_forecast_rmse_mm(
    predicted: np.ndarray, actual: np.ndarray, arm: NiryoOneArm | None = None
) -> float:
    """RMSE (mm) of the end-effector position implied by the forecasts."""
    predicted = as_command_array("predicted", predicted)
    actual = as_command_array("actual", actual)
    if predicted.shape != actual.shape:
        raise DimensionError(f"shape mismatch: {predicted.shape} vs {actual.shape}")
    arm = arm if arm is not None else NiryoOneArm()
    predicted_mm = arm.kinematics.positions(predicted) * 1000.0
    actual_mm = arm.kinematics.positions(actual) * 1000.0
    return float(np.sqrt(np.mean(np.sum((predicted_mm - actual_mm) ** 2, axis=1))))


def rolling_forecast_errors(
    forecaster: Forecaster,
    commands: np.ndarray,
    horizon: int,
    stride: int = 1,
    max_evaluations: int | None = None,
) -> np.ndarray:
    """Per-evaluation Cartesian errors of ``horizon``-step forecasts.

    Slides over the test command stream: at every ``stride``-th position,
    forecast the next ``horizon`` commands from the preceding history and
    record the Euclidean end-effector error of the *last* forecasted command
    (the command at the end of the forecasting window — the quantity Fig. 7
    plots against the window length).
    """
    commands = as_command_array("commands", commands)
    horizon = ensure_int("horizon", horizon, minimum=1)
    stride = ensure_int("stride", stride, minimum=1)
    record = forecaster.record
    arm = NiryoOneArm()

    errors: list[float] = []
    last_start = commands.shape[0] - record - horizon
    if last_start < 0:
        raise DimensionError("command stream too short for the requested record and horizon")
    starts = range(0, last_start + 1, stride)
    for count, start in enumerate(starts):
        if max_evaluations is not None and count >= max_evaluations:
            break
        history = commands[start : start + record]
        actual = commands[start + record : start + record + horizon]
        result = forecaster.forecast_horizon(history, horizon)
        predicted_mm = arm.kinematics.end_effector_position(result.forecasts[-1]) * 1000.0
        actual_mm = arm.kinematics.end_effector_position(actual[-1]) * 1000.0
        errors.append(float(np.linalg.norm(predicted_mm - actual_mm)))
    return np.array(errors)


def multi_step_rmse(
    forecaster: Forecaster,
    commands: np.ndarray,
    horizon: int,
    stride: int = 1,
    max_evaluations: int | None = None,
) -> float:
    """Cartesian RMSE (mm) of the final command of a ``horizon``-step forecast."""
    errors = rolling_forecast_errors(
        forecaster, commands, horizon, stride=stride, max_evaluations=max_evaluations
    )
    return float(np.sqrt(np.mean(errors ** 2)))
