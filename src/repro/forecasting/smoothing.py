"""Exponential smoothing forecaster (paper future-work candidate, §VII-C).

Implements damped double exponential smoothing (Holt's linear trend method
with damping) applied independently to every joint:

.. math::

    \\ell_i = \\alpha c_i + (1 - \\alpha)(\\ell_{i-1} + \\phi b_{i-1}) \\\\
    b_i   = \\beta (\\ell_i - \\ell_{i-1}) + (1 - \\beta) \\phi b_{i-1} \\\\
    \\hat c_{i+1} = \\ell_i + \\phi b_i

The level/trend recursion is re-run over the history window at prediction
time, so the forecaster is stateless between calls — the same convention as
the other FoReCo algorithms — and the smoothing constants can optionally be
tuned on the training set by a small grid search.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_probability
from .base import Forecaster, sliding_windows


class ExponentialSmoothingForecaster(Forecaster):
    """Damped Holt (double exponential) smoothing per joint."""

    name = "ses"
    supports_batch_predict = True

    def __init__(
        self,
        record: int = 5,
        alpha: float = 0.6,
        beta: float = 0.3,
        damping: float = 0.9,
        tune_on_fit: bool = True,
    ) -> None:
        super().__init__(record=record)
        self.alpha = ensure_probability("alpha", alpha)
        self.beta = ensure_probability("beta", beta)
        self.damping = ensure_probability("damping", damping)
        self.tune_on_fit = bool(tune_on_fit)

    # ----------------------------------------------------------------- fit
    def _fit(self, commands: np.ndarray) -> None:
        if not self.tune_on_fit:
            return
        # Small grid search of (alpha, beta) on one-step-ahead RMSE over the
        # training stream; keeps the damping factor fixed.
        windows, targets = sliding_windows(commands, self.record)
        best = (self.alpha, self.beta)
        best_rmse = np.inf
        for alpha in (0.3, 0.5, 0.7, 0.9):
            for beta in (0.1, 0.3, 0.5):
                rmse = self._grid_rmse(windows, targets, alpha, beta)
                if rmse < best_rmse:
                    best_rmse = rmse
                    best = (alpha, beta)
        self.alpha, self.beta = best

    def _grid_rmse(self, windows: np.ndarray, targets: np.ndarray, alpha: float, beta: float) -> float:
        sample = windows[:: max(1, windows.shape[0] // 200)]
        sample_targets = targets[:: max(1, windows.shape[0] // 200)]
        predictions = np.array([self._smooth(window, alpha, beta) for window in sample])
        return float(np.sqrt(np.mean((predictions - sample_targets) ** 2)))

    # ------------------------------------------------------------- predict
    def _smooth(self, history: np.ndarray, alpha: float, beta: float) -> np.ndarray:
        level = history[0].astype(float).copy()
        trend = np.zeros_like(level)
        phi = self.damping
        for command in history[1:]:
            previous_level = level
            level = alpha * command + (1.0 - alpha) * (level + phi * trend)
            trend = beta * (level - previous_level) + (1.0 - beta) * phi * trend
        return level + phi * trend

    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        return self._smooth(history, self.alpha, self.beta)

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        # The Holt recursion is purely elementwise, so running it over the
        # stacked (B, record, d) windows advances every repetition in
        # lockstep while producing bit-identical rows to the serial version.
        alpha, beta, phi = self.alpha, self.beta, self.damping
        level = windows[:, 0].astype(float).copy()
        trend = np.zeros_like(level)
        for step in range(1, windows.shape[1]):
            command = windows[:, step]
            previous_level = level
            level = alpha * command + (1.0 - alpha) * (level + phi * trend)
            trend = beta * (level - previous_level) + (1.0 - beta) * phi * trend
        return level + phi * trend
