"""Vector Autoregression (VAR) forecaster — the algorithm FoReCo deploys.

The VAR model (paper eq. 5) predicts every coordinate of the next command as
an affine combination of *all* coordinates of the last ``R`` commands:

.. math::

    \\hat c^k_{i+1} = b^k + \\sum_{l=1}^{d} \\sum_{j=i-R}^{i} w^l_{i,j} \\hat c^l_j

which captures the cross-joint correlation of a robotic arm (joints move
together to reach an object).  Training uses Ordinary Least Squares (paper
eq. 9): stack one row per training window containing the flattened ``R``
commands plus an intercept column and solve the least-squares system for all
``d`` outputs simultaneously.

A ridge (shrinkage) term regularises the solution.  It serves two purposes:
it stabilises the normal equations when the design matrix is ill-conditioned
(long constant dwell segments of the pick-and-place task make columns nearly
collinear), and — more importantly for FoReCo — it damps the *iterated*
forecast used during loss bursts, where each prediction is fed back as input
for the next one and any over-fitted coefficient amplifies its own error.
The default ``ridge=0.03`` was selected on the closed-loop recovery
experiments (see the ablation benches); pass ``ridge=0`` for textbook OLS.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_non_negative
from ..errors import NotFittedError
from .base import Forecaster, sliding_windows


class VarForecaster(Forecaster):
    """OLS-trained vector autoregression of order ``R``."""

    name = "var"
    supports_batch_predict = True

    def __init__(self, record: int = 5, ridge: float = 0.03) -> None:
        super().__init__(record=record)
        self.ridge = ensure_non_negative("ridge", ridge)
        self.coefficients: np.ndarray | None = None
        self.intercept: np.ndarray | None = None

    # ----------------------------------------------------------------- fit
    def _fit(self, commands: np.ndarray) -> None:
        windows, targets = sliding_windows(commands, self.record)
        n_samples = windows.shape[0]
        design = windows.reshape(n_samples, -1)
        design = np.hstack([np.ones((n_samples, 1)), design])
        if self.ridge > 0.0:
            # Ridge-regularised normal equations.
            gram = design.T @ design + self.ridge * np.eye(design.shape[1])
            moment = design.T @ targets
            solution = np.linalg.solve(gram, moment)
        else:
            # Plain OLS via least squares, which also handles rank-deficient
            # designs (e.g. perfectly collinear lag columns) gracefully.
            solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
        self.intercept = solution[0]
        self.coefficients = solution[1:]

    # ------------------------------------------------------------- predict
    #
    # Prediction goes through np.einsum rather than BLAS ``@``: BLAS picks
    # different kernels (and hence different floating-point reduction orders)
    # for gemv, single-row gemm and multi-row gemm, so a batched matmul is
    # not bit-identical to its per-row application.  einsum reduces over the
    # feature axis in a fixed sequential order regardless of the batch size,
    # which is what lets the batched session kernel reproduce the serial
    # repetition loop exactly.
    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        if self.coefficients is None or self.intercept is None:
            raise NotFittedError("VarForecaster has no fitted coefficients")
        features = np.ascontiguousarray(history).reshape(-1)
        return self.intercept + np.einsum("f,fj->j", features, self.coefficients)

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        if self.coefficients is None or self.intercept is None:
            raise NotFittedError("VarForecaster has no fitted coefficients")
        features = windows.reshape(windows.shape[0], -1)
        return self.intercept + np.einsum("bf,fj->bj", features, self.coefficients)

    # ------------------------------------------------------------ insights
    @property
    def n_parameters(self) -> int:
        """Number of learned scalars (weights + intercepts)."""
        if self.coefficients is None or self.intercept is None:
            return 0
        return int(self.coefficients.size + self.intercept.size)

    def training_residual_rmse(self, commands: np.ndarray) -> float:
        """In-sample RMSE of the fitted model over a command stream."""
        if self.coefficients is None:
            raise NotFittedError("fit the model before computing residuals")
        windows, targets = sliding_windows(commands, self.record)
        design = windows.reshape(windows.shape[0], -1)
        predictions = self.intercept + design @ self.coefficients
        return float(np.sqrt(np.mean((predictions - targets) ** 2)))
