"""Forecasting algorithms studied by FoReCo (§IV-B / §IV-C).

The paper evaluates three forecasters — Vector Autoregression (VAR, the one
selected for the prototype), a Moving Average benchmark and an LSTM
seq2seq model — and mentions exponential smoothing and VARMA as follow-up
candidates.  All of them are implemented here behind the common
:class:`~repro.forecasting.base.Forecaster` interface, so FoReCo can swap
algorithms "in a modular fashion" as the paper requires.
"""

from .base import (
    Forecaster,
    ForecastResult,
    forecaster_names,
    make_forecaster,
    register_forecaster,
    sliding_windows,
)
from .ma import MovingAverageForecaster
from .metrics import forecast_rmse, multi_step_rmse, rolling_forecast_errors
from .seq2seq import Seq2SeqForecaster
from .smoothing import ExponentialSmoothingForecaster
from .var import VarForecaster
from .varma import VarmaForecaster

__all__ = [
    "Forecaster",
    "ForecastResult",
    "forecaster_names",
    "make_forecaster",
    "register_forecaster",
    "sliding_windows",
    "MovingAverageForecaster",
    "forecast_rmse",
    "multi_step_rmse",
    "rolling_forecast_errors",
    "Seq2SeqForecaster",
    "ExponentialSmoothingForecaster",
    "VarForecaster",
    "VarmaForecaster",
]
