"""Moving Average forecaster — the paper's benchmark algorithm.

The MA forecaster (paper eq. 8) predicts the next command as the arithmetic
mean of the last ``R`` commands.  It needs no training, but :meth:`fit` is
still part of the interface so FoReCo can treat every algorithm uniformly.
"""

from __future__ import annotations

import numpy as np

from .base import Forecaster


class MovingAverageForecaster(Forecaster):
    """Predict ``ĉ_{i+1}`` as the mean of the last ``R`` commands."""

    name = "ma"
    supports_batch_predict = True

    def _fit(self, commands: np.ndarray) -> None:
        # The moving average has no weights to learn; fitting only records the
        # command dimensionality (handled by the base class).
        return None

    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        return history.mean(axis=0)

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        # Reducing axis 1 of the C-contiguous (B, record, d) stack visits the
        # record rows in the same order as the serial axis-0 mean, so every
        # row matches the serial forecast bit for bit.
        return windows.mean(axis=1)
