"""VARMA forecaster — the paper's proposed future-work extension (§VII-C).

The discussion section suggests combining the benefits of MA and VAR into a
Vector Autoregression Moving Average model "to prevent saw-teeth oscillations
and anticipate faster the increases/decreases of the time-series".  We
implement a pragmatic two-stage VARMA(R, q) estimator:

1. fit a plain VAR of order ``R`` (OLS, as in :class:`VarForecaster`) and
   compute its in-sample one-step residuals;
2. regress the VAR residual at step ``i`` on the last ``q`` residuals (again
   OLS), giving a moving-average correction term.

Prediction adds the MA correction of the recent residuals to the VAR
forecast.  During multi-step forecasting (when residuals of forecasted steps
are unknown) the residual history decays towards zero, so the model gracefully
degrades to the plain VAR — exactly the behaviour wanted for loss bursts.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_int, ensure_non_negative
from ..errors import NotFittedError
from .base import Forecaster, sliding_windows
from .var import VarForecaster


class VarmaForecaster(Forecaster):
    """Two-stage VARMA(R, q) forecaster built on top of the OLS VAR."""

    name = "varma"
    # The predict-time state (_recent_residuals) only ever accumulates the
    # zero residuals registered during autonomous forecasting — FoReCo's
    # recovery loop never feeds real residuals back — so the MA correction is
    # exactly zero on every path and a single shared instance produces the
    # same forecasts as independent per-repetition copies.  That is what the
    # batch contract requires (callers driving observe_residual by hand get
    # "one shared state for all rows" semantics instead).
    supports_batch_predict = True

    def __init__(self, record: int = 5, ma_order: int = 3, ridge: float = 0.03) -> None:
        super().__init__(record=record)
        self.ma_order = ensure_int("ma_order", ma_order, minimum=1)
        self.ridge = ensure_non_negative("ridge", ridge)
        self._var = VarForecaster(record=record, ridge=ridge)
        self.ma_coefficients: np.ndarray | None = None
        self._recent_residuals: list[np.ndarray] = []

    # ----------------------------------------------------------------- fit
    def _fit(self, commands: np.ndarray) -> None:
        self._var.fit(commands)
        windows, targets = sliding_windows(commands, self.record)
        design = windows.reshape(windows.shape[0], -1)
        var_predictions = self._var.intercept + design @ self._var.coefficients
        residuals = targets - var_predictions

        if residuals.shape[0] <= self.ma_order:
            # Not enough residuals for the MA stage: behave as plain VAR.
            self.ma_coefficients = np.zeros((self.ma_order * residuals.shape[1], residuals.shape[1]))
        else:
            lagged, next_residuals = sliding_windows(residuals, self.ma_order)
            lagged = lagged.reshape(lagged.shape[0], -1)
            gram = lagged.T @ lagged + max(self.ridge, 1e-8) * np.eye(lagged.shape[1])
            self.ma_coefficients = np.linalg.solve(gram, lagged.T @ next_residuals)
        self._recent_residuals = []

    # ------------------------------------------------------------- predict
    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        if self.ma_coefficients is None:
            raise NotFittedError("VarmaForecaster has no fitted coefficients")
        var_prediction = self._var.predict_next(history)
        correction = np.zeros_like(var_prediction)
        if len(self._recent_residuals) >= self.ma_order:
            lagged = np.concatenate(self._recent_residuals[-self.ma_order :])
            correction = lagged @ self.ma_coefficients
        prediction = var_prediction + correction
        # During autonomous multi-step forecasting the true next command is
        # unknown, so we register a zero residual; the MA correction thereby
        # decays over a loss burst and VARMA degrades to VAR as intended.
        self.observe_residual(np.zeros_like(prediction))
        return prediction

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        if self.ma_coefficients is None:
            raise NotFittedError("VarmaForecaster has no fitted coefficients")
        var_predictions = self._var.predict_next_batch(windows)
        correction = np.zeros(var_predictions.shape[1])
        if len(self._recent_residuals) >= self.ma_order:
            lagged = np.concatenate(self._recent_residuals[-self.ma_order :])
            correction = lagged @ self.ma_coefficients
        predictions = var_predictions + correction
        # One zero residual per batched step, mirroring the per-step append
        # of the serial path (the correction stays exactly zero either way).
        self.observe_residual(np.zeros(var_predictions.shape[1]))
        return predictions

    # -------------------------------------------------------------- update
    def observe_residual(self, residual: np.ndarray) -> None:
        """Record a one-step residual (true command minus forecast).

        FoReCo calls this when a real command arrives so the MA stage reacts
        to the most recent tracking errors.
        """
        residual = np.asarray(residual, dtype=float).ravel()
        self._recent_residuals.append(residual)
        if len(self._recent_residuals) > 4 * self.ma_order:
            self._recent_residuals = self._recent_residuals[-2 * self.ma_order :]

    def observe_command(self, history: np.ndarray, actual: np.ndarray) -> None:
        """Convenience wrapper computing and recording the residual for ``actual``."""
        prediction = self._var.predict_next(np.asarray(history, dtype=float))
        self.observe_residual(np.asarray(actual, dtype=float).ravel() - prediction)
