"""Common forecaster interface and shared utilities.

Every forecasting algorithm in FoReCo follows the same contract (paper
Problem 1): given the last ``R`` commands ``{ĉ_j}``, produce the next command
``ĉ_{i+1} ∈ R^d``.  :class:`Forecaster` encodes that contract:

* :meth:`Forecaster.fit` learns the weights ``w`` from a training command
  stream (the experienced-operator dataset),
* :meth:`Forecaster.predict_next` forecasts a single command from a history
  window,
* :meth:`Forecaster.forecast_horizon` iterates the one-step forecast to fill
  an arbitrary forecasting window (20–1000 ms in Fig. 7), feeding its own
  forecasts back as inputs — exactly how FoReCo behaves during a loss burst.

:func:`sliding_windows` builds the supervised ``(history, next)`` pairs used
for training, and :func:`make_forecaster` is a small registry/factory used by
the experiments and the CLI.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from .._validation import as_command_array, ensure_int
from ..errors import ConfigurationError, DimensionError, NotFittedError


@dataclass
class ForecastResult:
    """A multi-step forecast and the history it was produced from."""

    forecasts: np.ndarray
    history_length: int
    algorithm: str

    def __len__(self) -> int:
        return self.forecasts.shape[0]


def sliding_windows(commands: np.ndarray, record: int) -> tuple[np.ndarray, np.ndarray]:
    """Build supervised pairs ``(X, y)`` from a command stream.

    ``X[k]`` is the window of ``record`` consecutive commands ending at index
    ``k + record - 1`` and ``y[k]`` is the command that follows it.

    Returns
    -------
    X : numpy.ndarray of shape ``(n - record, record, d)``
    y : numpy.ndarray of shape ``(n - record, d)``
    """
    commands = as_command_array("commands", commands)
    record = ensure_int("record", record, minimum=1)
    n, d = commands.shape
    if n <= record:
        raise DimensionError(
            f"need more than record={record} commands to build windows, got {n}"
        )
    n_windows = n - record
    windows = np.empty((n_windows, record, d))
    targets = np.empty((n_windows, d))
    for k in range(n_windows):
        windows[k] = commands[k : k + record]
        targets[k] = commands[k + record]
    return windows, targets


class Forecaster(abc.ABC):
    """Abstract one-step-ahead forecaster over ``R``-command histories.

    Parameters
    ----------
    record:
        ``R`` — the number of most recent commands a forecast is computed
        from (the paper's history window).

    Notes
    -----
    Subclasses implement ``_fit`` and ``_predict_next``; they may also
    override ``_predict_next_batch`` with a vectorized kernel and set
    :attr:`supports_batch_predict` once they honour its contract (see
    :meth:`predict_next_batch`).
    """

    #: Registry name; subclasses override it.
    name = "forecaster"

    #: Contract flag for the batched session kernel.  ``True`` promises that
    #: :meth:`predict_next_batch` called on ONE shared instance returns, for
    #: every row, exactly (bit-for-bit) what :meth:`predict_next` would
    #: return on an independent, freshly deep-copied instance fed the same
    #: history.  Stateless predictors satisfy this trivially; predictors with
    #: mutable predict-time state must either vectorize that state per row or
    #: leave the flag ``False`` so the engine falls back to the serial path.
    supports_batch_predict = False

    def __init__(self, record: int = 5) -> None:
        self.record = ensure_int("record", record, minimum=1)
        self._fitted = False
        self._n_joints: int | None = None

    # ------------------------------------------------------------------ api
    @abc.abstractmethod
    def _fit(self, commands: np.ndarray) -> None:
        """Algorithm-specific training on an ``(n, d)`` command stream."""

    @abc.abstractmethod
    def _predict_next(self, history: np.ndarray) -> np.ndarray:
        """Algorithm-specific one-step forecast from an ``(record, d)`` history."""

    def _predict_next_batch(self, windows: np.ndarray) -> np.ndarray:
        """Algorithm-specific batched forecast from ``(B, record, d)`` windows.

        The default applies :meth:`_predict_next` row by row on this very
        instance; vectorized subclasses override it with a stacked kernel
        whose rows are bit-identical to the serial one.
        """
        return np.stack(
            [np.asarray(self._predict_next(window), dtype=float).ravel() for window in windows]
        )

    # ------------------------------------------------------------- template
    def fit(self, commands: np.ndarray) -> "Forecaster":
        """Learn the forecaster weights from a training command stream."""
        commands = as_command_array("training commands", commands)
        if commands.shape[0] <= self.record:
            raise DimensionError(
                f"training stream must be longer than record={self.record}, got {commands.shape[0]}"
            )
        self._n_joints = commands.shape[1]
        self._fit(commands)
        self._fitted = True
        return self

    def predict_next(self, history: np.ndarray) -> np.ndarray:
        """Forecast the next command from the last ``record`` commands.

        Histories longer than ``record`` are truncated to the most recent
        ``record`` commands; shorter histories are rejected.
        """
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")
        history = as_command_array("history", history)
        if self._n_joints is not None and history.shape[1] != self._n_joints:
            raise DimensionError(
                f"history has {history.shape[1]} joints but the model was trained with {self._n_joints}"
            )
        if history.shape[0] < self.record:
            raise DimensionError(
                f"history must contain at least record={self.record} commands, got {history.shape[0]}"
            )
        window = history[-self.record :]
        return np.asarray(self._predict_next(window), dtype=float).ravel()

    def predict_next_batch(self, histories: np.ndarray) -> np.ndarray:
        """Forecast the next command for ``B`` independent histories at once.

        This is the kernel the batched session engine drives: one call per
        slot instead of one Python call per slot *per repetition*.

        Parameters
        ----------
        histories:
            Array of shape ``(B, n_history, d)`` stacking one history window
            per repetition.  As with :meth:`predict_next`, windows longer
            than ``record`` are truncated to the most recent ``record``
            commands; shorter windows are rejected.

        Returns
        -------
        numpy.ndarray of shape ``(B, d)``
            One forecast per row.  When :attr:`supports_batch_predict` is
            true, row ``b`` is bit-identical to
            ``predict_next(histories[b])`` on a fresh copy of this
            forecaster, which is what makes the batched simulation an exact
            replacement for the serial repetition loop.
        """
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} must be fitted before predicting")
        histories = np.asarray(histories, dtype=float)
        if histories.ndim != 3:
            raise DimensionError(
                f"histories must have shape (B, n_history, d), got {histories.shape}"
            )
        if self._n_joints is not None and histories.shape[2] != self._n_joints:
            raise DimensionError(
                f"histories have {histories.shape[2]} joints but the model was trained "
                f"with {self._n_joints}"
            )
        if histories.shape[1] < self.record:
            raise DimensionError(
                f"histories must contain at least record={self.record} commands, "
                f"got {histories.shape[1]}"
            )
        windows = np.ascontiguousarray(histories[:, -self.record :, :])
        if windows.shape[0] == 0:
            return np.empty((0, windows.shape[2]))
        return np.asarray(self._predict_next_batch(windows), dtype=float).reshape(
            windows.shape[0], windows.shape[2]
        )

    def forecast_horizon(self, history: np.ndarray, steps: int) -> ForecastResult:
        """Iterate the one-step forecast ``steps`` times, feeding forecasts back.

        This reproduces the paper's forecasting-window evaluation (Fig. 7) and
        FoReCo's behaviour during a burst of consecutive losses: forecast
        ``ĉ_{i+1}`` from real history, then ``ĉ_{i+2}`` from history that
        already contains ``ĉ_{i+1}``, and so on — which is why forecast error
        accumulates over long bursts (paper §VI-D1).
        """
        steps = ensure_int("steps", steps, minimum=1)
        history = as_command_array("history", history)
        window = history[-self.record :].copy()
        forecasts = np.empty((steps, window.shape[1]))
        for step in range(steps):
            next_command = self.predict_next(window)
            forecasts[step] = next_command
            window = np.vstack([window[1:], next_command]) if self.record > 1 else next_command.reshape(1, -1)
        return ForecastResult(forecasts=forecasts, history_length=self.record, algorithm=self.name)

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has completed."""
        return self._fitted

    @property
    def n_joints(self) -> int | None:
        """Command dimensionality seen at fit time (``None`` before fitting)."""
        return self._n_joints


#: Extra forecaster classes registered at runtime (name -> class).
_CUSTOM_FORECASTERS: dict[str, type["Forecaster"]] = {}


def register_forecaster(name: str, cls: type["Forecaster"], overwrite: bool = False) -> None:
    """Register a custom forecaster class under ``name``.

    Registered classes become constructible through :func:`make_forecaster`
    — and therefore usable from a :class:`~repro.scenarios.ScenarioSpec`,
    whose ``algorithm`` field is a registry name.  The built-in names
    ("var", "ma", "seq2seq", "varma", "ses") cannot be shadowed.
    """
    key = name.lower()
    if key in _builtin_forecasters():
        raise ConfigurationError(f"cannot shadow the built-in forecaster {name!r}")
    if key in _CUSTOM_FORECASTERS and not overwrite:
        raise ConfigurationError(f"forecaster {name!r} is already registered")
    if not (isinstance(cls, type) and issubclass(cls, Forecaster)):
        raise ConfigurationError("a registered forecaster must subclass Forecaster")
    _CUSTOM_FORECASTERS[key] = cls


def forecaster_names() -> list[str]:
    """Sorted names accepted by :func:`make_forecaster`."""
    return sorted({**_builtin_forecasters(), **_CUSTOM_FORECASTERS})


def _builtin_forecasters() -> dict[str, type["Forecaster"]]:
    from .ma import MovingAverageForecaster
    from .seq2seq import Seq2SeqForecaster
    from .smoothing import ExponentialSmoothingForecaster
    from .var import VarForecaster
    from .varma import VarmaForecaster

    return {
        "var": VarForecaster,
        "ma": MovingAverageForecaster,
        "seq2seq": Seq2SeqForecaster,
        "varma": VarmaForecaster,
        "ses": ExponentialSmoothingForecaster,
    }


def make_forecaster(name: str, record: int = 5, **kwargs) -> Forecaster:
    """Factory building a forecaster by registry name.

    Built-in names: ``"var"``, ``"ma"``, ``"seq2seq"``, ``"varma"``,
    ``"ses"``; more can be added with :func:`register_forecaster`.
    """
    registry = {**_builtin_forecasters(), **_CUSTOM_FORECASTERS}
    try:
        cls = registry[name.lower()]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown forecaster {name!r}; available: {sorted(registry)}"
        ) from exc
    return cls(record=record, **kwargs)
