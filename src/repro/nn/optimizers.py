"""Gradient-descent optimisers.

:class:`Adam` implements the update rule quoted in the paper (eqs. 11–13):
first- and second-moment estimates of the gradient with bias correction and
an ``ε``-regularised step.  Parameters are handled as named dictionaries of
arrays so layers can register arbitrarily shaped weights.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import ensure_positive
from ..errors import ConfigurationError


class Optimizer(abc.ABC):
    """Interface of a stateful gradient-descent optimiser."""

    @abc.abstractmethod
    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        """Update ``params`` in place using ``grads`` (same keys, same shapes)."""


class Sgd(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = ensure_positive("learning_rate", learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity: dict[str, np.ndarray] = {}

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        for name, grad in grads.items():
            if name not in params:
                raise ConfigurationError(f"gradient provided for unknown parameter {name!r}")
            velocity = self._velocity.get(name)
            if velocity is None:
                velocity = np.zeros_like(params[name])
            velocity = self.momentum * velocity - self.learning_rate * grad
            params[name] += velocity
            self._velocity[name] = velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba) with the paper's default hyper-parameters.

    The paper uses the standard selection ``η = 0.001``, ``β1 = 0.9``,
    ``β2 = 0.999``, ``ε = 1e-07`` (§VI-B).
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
        clip_norm: float | None = 5.0,
    ) -> None:
        self.learning_rate = ensure_positive("learning_rate", learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError("beta1 and beta2 must lie in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = ensure_positive("epsilon", epsilon)
        self.clip_norm = clip_norm
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def update(self, params: dict[str, np.ndarray], grads: dict[str, np.ndarray]) -> None:
        self._t += 1
        if self.clip_norm is not None:
            grads = _clip_global_norm(grads, self.clip_norm)
        for name, grad in grads.items():
            if name not in params:
                raise ConfigurationError(f"gradient provided for unknown parameter {name!r}")
            m = self._m.get(name, np.zeros_like(params[name]))
            v = self._v.get(name, np.zeros_like(params[name]))
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            m_hat = m / (1.0 - self.beta1 ** self._t)
            v_hat = v / (1.0 - self.beta2 ** self._t)
            params[name] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
            self._m[name] = m
            self._v[name] = v


def _clip_global_norm(grads: dict[str, np.ndarray], max_norm: float) -> dict[str, np.ndarray]:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Gradient clipping keeps the BPTT training of the LSTM numerically stable,
    especially with the ReLU output activation the paper specifies.
    """
    total = float(np.sqrt(sum(float(np.sum(g ** 2)) for g in grads.values())))
    if total <= max_norm or total == 0.0:
        return grads
    scale = max_norm / total
    return {name: g * scale for name, g in grads.items()}
