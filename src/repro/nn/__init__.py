"""Neural-network substrate (NumPy only).

The paper's seq2seq forecaster is a TensorFlow LSTM encoder–decoder; since no
deep-learning framework is available offline, this package implements the
required pieces from scratch on NumPy:

* :mod:`repro.nn.activations` — sigmoid / tanh / ReLU / identity with
  derivatives.
* :mod:`repro.nn.losses` — mean-squared-error loss with gradient.
* :mod:`repro.nn.optimizers` — Adam (paper eqs. 11–13) and plain SGD.
* :mod:`repro.nn.layers` — fully-connected layer and an LSTM layer with full
  backpropagation-through-time.
* :mod:`repro.nn.seq2seq` — the many-to-one encoder–decoder model used by
  :class:`repro.forecasting.seq2seq.Seq2SeqForecaster`.
"""

from .activations import Activation, Identity, Relu, Sigmoid, Tanh, get_activation
from .layers import Dense, LstmLayer
from .losses import MeanSquaredError
from .optimizers import Adam, Sgd
from .seq2seq import Seq2SeqModel, Seq2SeqTrainingResult

__all__ = [
    "Activation",
    "Identity",
    "Relu",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "Dense",
    "LstmLayer",
    "MeanSquaredError",
    "Adam",
    "Sgd",
    "Seq2SeqModel",
    "Seq2SeqTrainingResult",
]
