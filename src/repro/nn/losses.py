"""Loss functions for the NumPy neural-network substrate."""

from __future__ import annotations

import numpy as np

from ..errors import DimensionError


class MeanSquaredError:
    """Mean squared error over all elements of the prediction.

    This matches the paper's training objective (eq. 10): the sum of squared
    per-coordinate errors averaged over the batch.
    """

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Scalar loss for a batch of predictions."""
        predictions, targets = self._check(predictions, targets)
        return float(np.mean((predictions - targets) ** 2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the loss w.r.t. the predictions."""
        predictions, targets = self._check(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size

    @staticmethod
    def _check(predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = np.asarray(predictions, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if predictions.shape != targets.shape:
            raise DimensionError(
                f"predictions {predictions.shape} and targets {targets.shape} shapes differ"
            )
        return predictions, targets
