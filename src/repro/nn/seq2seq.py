"""Many-to-one sequence-to-sequence model (LSTM encoder + LSTM decoder).

The paper's seq2seq forecaster (§IV-B) is a many-to-one architecture: a
sequence of the last ``R`` commands is fed to an encoder LSTM of 200 units,
its output sequence is "interpreted" by a decoder LSTM of 30 units, and the
decoder's final hidden state is projected to a single forecast command
``ĉ_{i+1} ∈ R^d``.  Both layers use ReLU activations, training uses Adam with
the standard hyper-parameters and an MSE loss over mini-batches.

The default layer sizes here match the paper (200 / 30) but are configurable
so that tests and CI-sized benchmarks can run quickly; the Fig. 7 experiment
notes the vast number of weights (``|w| = 163 803`` in the paper) as the
reason seq2seq under-performs, and we reproduce that qualitative outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import ensure_int, rng_from
from ..errors import DimensionError, NotFittedError
from .layers import Dense, LstmLayer
from .losses import MeanSquaredError
from .optimizers import Adam


@dataclass
class Seq2SeqTrainingResult:
    """Training history of a :class:`Seq2SeqModel` fit."""

    epochs: int
    batch_size: int
    loss_history: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Training loss after the final epoch."""
        return self.loss_history[-1] if self.loss_history else float("nan")


class Seq2SeqModel:
    """LSTM encoder–decoder mapping a command sequence to the next command.

    Parameters
    ----------
    input_dim:
        Dimensionality ``d`` of each command (6 for the Niryo One).
    encoder_units / decoder_units:
        Hidden sizes of the encoder and decoder LSTM layers (paper: 200 / 30).
    activation:
        Output activation of both LSTM layers (paper: ReLU).
    learning_rate, beta1, beta2, epsilon:
        Adam hyper-parameters (paper defaults).
    seed:
        Seed for reproducible weight initialisation and batch shuffling.
    """

    def __init__(
        self,
        input_dim: int,
        encoder_units: int = 200,
        decoder_units: int = 30,
        activation: str = "relu",
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.input_dim = ensure_int("input_dim", input_dim, minimum=1)
        self.encoder_units = ensure_int("encoder_units", encoder_units, minimum=1)
        self.decoder_units = ensure_int("decoder_units", decoder_units, minimum=1)
        self.rng = rng_from(seed)
        self.encoder = LstmLayer(
            self.input_dim, self.encoder_units, output_activation=activation,
            name="encoder", seed=self.rng,
        )
        self.decoder = LstmLayer(
            self.encoder_units, self.decoder_units, output_activation=activation,
            name="decoder", seed=self.rng,
        )
        self.head = Dense(self.decoder_units, self.input_dim, name="head", seed=self.rng)
        self.optimizer = Adam(learning_rate=learning_rate, beta1=beta1, beta2=beta2, epsilon=epsilon)
        self.loss = MeanSquaredError()
        self._fitted = False

    # ------------------------------------------------------------ parameters
    @property
    def params(self) -> dict[str, np.ndarray]:
        """Flat dictionary of every weight array (the paper's weight vector w)."""
        merged: dict[str, np.ndarray] = {}
        merged.update(self.encoder.params)
        merged.update(self.decoder.params)
        merged.update(self.head.params)
        return merged

    @property
    def n_parameters(self) -> int:
        """Total number of scalar weights ``|w|``."""
        return self.encoder.n_parameters + self.decoder.n_parameters + self.head.n_parameters

    # --------------------------------------------------------------- forward
    def _forward_sequence(self, sequence: np.ndarray) -> np.ndarray:
        """Forward one ``(R, d)`` sequence to a single ``(d,)`` prediction."""
        encoded = self.encoder.forward(sequence)
        decoded = self.decoder.forward(encoded)
        return self.head.forward(decoded[-1:]).ravel()

    def _backward_sequence(self, d_prediction: np.ndarray) -> dict[str, np.ndarray]:
        """Backward pass for one sequence given ``dL/d prediction``."""
        d_head_in, head_grads = self.head.backward(d_prediction.reshape(1, -1))
        steps = len(self.decoder._cache["x"])
        d_decoder_out = np.zeros((steps, self.decoder_units))
        d_decoder_out[-1] = d_head_in.ravel()
        d_encoder_out, decoder_grads = self.decoder.backward(d_decoder_out)
        _, encoder_grads = self.encoder.backward(d_encoder_out)
        grads: dict[str, np.ndarray] = {}
        grads.update(encoder_grads)
        grads.update(decoder_grads)
        grads.update(head_grads)
        return grads

    # ------------------------------------------------------------------ fit
    def fit(
        self,
        sequences: np.ndarray,
        targets: np.ndarray,
        epochs: int = 5,
        batch_size: int = 32,
        verbose: bool = False,
    ) -> Seq2SeqTrainingResult:
        """Train on ``(N, R, d)`` sequences and ``(N, d)`` next-command targets."""
        sequences = np.asarray(sequences, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if sequences.ndim != 3 or sequences.shape[2] != self.input_dim:
            raise DimensionError(
                f"sequences must have shape (N, R, {self.input_dim}), got {sequences.shape}"
            )
        if targets.shape != (sequences.shape[0], self.input_dim):
            raise DimensionError(
                f"targets must have shape ({sequences.shape[0]}, {self.input_dim}), got {targets.shape}"
            )
        epochs = ensure_int("epochs", epochs, minimum=1)
        batch_size = ensure_int("batch_size", batch_size, minimum=1)

        n_samples = sequences.shape[0]
        result = Seq2SeqTrainingResult(epochs=epochs, batch_size=batch_size)
        for epoch in range(epochs):
            order = self.rng.permutation(n_samples)
            epoch_losses = []
            for start in range(0, n_samples, batch_size):
                batch = order[start : start + batch_size]
                batch_grads: dict[str, np.ndarray] | None = None
                batch_loss = 0.0
                for index in batch:
                    prediction = self._forward_sequence(sequences[index])
                    batch_loss += self.loss.value(prediction, targets[index])
                    d_prediction = self.loss.gradient(prediction, targets[index])
                    grads = self._backward_sequence(d_prediction)
                    if batch_grads is None:
                        batch_grads = {k: v.copy() for k, v in grads.items()}
                    else:
                        for key, value in grads.items():
                            batch_grads[key] += value
                batch_grads = {k: v / len(batch) for k, v in batch_grads.items()}
                self.optimizer.update(self.params, batch_grads)
                epoch_losses.append(batch_loss / len(batch))
            result.loss_history.append(float(np.mean(epoch_losses)))
            if verbose:  # pragma: no cover - informational printout
                print(f"epoch {epoch + 1}/{epochs}: loss={result.loss_history[-1]:.6f}")
        self._fitted = True
        return result

    # -------------------------------------------------------------- predict
    def predict(self, sequence: np.ndarray) -> np.ndarray:
        """Forecast the next command from one ``(R, d)`` history sequence."""
        if not self._fitted:
            raise NotFittedError("Seq2SeqModel.predict called before fit")
        sequence = np.atleast_2d(np.asarray(sequence, dtype=float))
        if sequence.shape[1] != self.input_dim:
            raise DimensionError(f"sequence must have {self.input_dim} columns, got {sequence.shape[1]}")
        return self._forward_sequence(sequence)

    def predict_batch(self, sequences: np.ndarray) -> np.ndarray:
        """Forecast one command per sequence in an ``(N, R, d)`` batch."""
        sequences = np.asarray(sequences, dtype=float)
        if sequences.ndim != 3:
            raise DimensionError("sequences must be a 3-D array (N, R, d)")
        return np.array([self.predict(sequence) for sequence in sequences])
