"""Activation functions with derivatives.

Each activation is a small stateless object exposing ``forward`` and
``backward`` (derivative w.r.t. the pre-activation given the *output* of the
forward pass, which is the convention the LSTM backward pass uses).
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import ConfigurationError


class Activation(abc.ABC):
    """Base class for element-wise activation functions."""

    name = "activation"

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation element-wise."""

    @abc.abstractmethod
    def backward(self, output: np.ndarray) -> np.ndarray:
        """Derivative of the activation expressed in terms of its output."""


class Sigmoid(Activation):
    """Logistic sigmoid: ``1 / (1 + exp(-x))``."""

    name = "sigmoid"

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Clip to avoid overflow in exp for very negative inputs.
        return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))

    def backward(self, output: np.ndarray) -> np.ndarray:
        return output * (1.0 - output)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)

    def backward(self, output: np.ndarray) -> np.ndarray:
        return 1.0 - output ** 2


class Relu(Activation):
    """Rectified linear unit — the activation the paper uses in both LSTM layers."""

    name = "relu"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, x)

    def backward(self, output: np.ndarray) -> np.ndarray:
        return (output > 0.0).astype(output.dtype)


class Identity(Activation):
    """Pass-through activation used for linear output layers."""

    name = "identity"

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, output: np.ndarray) -> np.ndarray:
        return np.ones_like(output)


_ACTIVATIONS: dict[str, type[Activation]] = {
    cls.name: cls for cls in (Sigmoid, Tanh, Relu, Identity)
}


def get_activation(name: str | Activation) -> Activation:
    """Resolve an activation by name (or pass an instance through)."""
    if isinstance(name, Activation):
        return name
    try:
        return _ACTIVATIONS[name]()
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown activation {name!r}; available: {sorted(_ACTIVATIONS)}"
        ) from exc
