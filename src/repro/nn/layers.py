"""Neural-network layers: fully-connected and LSTM with full BPTT.

The layers operate on single sequences (no batch dimension): an LSTM layer
maps an ``(T, input_dim)`` sequence to an ``(T, hidden_dim)`` sequence, and a
dense layer maps an ``(n, input_dim)`` matrix to ``(n, output_dim)``.  Batches
are handled by the model (:mod:`repro.nn.seq2seq`) by accumulating gradients
over the sequences of a mini-batch, which keeps the layer code simple and
easy to verify with numerical gradient checks (see the nn tests).

Parameter naming follows the convention ``<layer>/<name>`` so that an
optimiser can treat the full model as a flat dictionary of arrays — the
"unrolled weight vector w" of the paper.
"""

from __future__ import annotations

import numpy as np

from .._validation import ensure_int, rng_from
from ..errors import DimensionError
from .activations import Activation, Sigmoid, Tanh, get_activation


class Dense:
    """Fully-connected layer ``y = activation(x @ W + b)``."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        activation: str | Activation = "identity",
        name: str = "dense",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.input_dim = ensure_int("input_dim", input_dim, minimum=1)
        self.output_dim = ensure_int("output_dim", output_dim, minimum=1)
        self.activation = get_activation(activation)
        self.name = name
        rng = rng_from(seed)
        scale = np.sqrt(2.0 / (self.input_dim + self.output_dim))
        self.params: dict[str, np.ndarray] = {
            f"{name}/W": rng.normal(0.0, scale, (self.input_dim, self.output_dim)),
            f"{name}/b": np.zeros(self.output_dim),
        }
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    @property
    def n_parameters(self) -> int:
        """Total number of scalar weights in the layer."""
        return int(sum(p.size for p in self.params.values()))

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Forward pass; caches inputs for :meth:`backward`."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.input_dim:
            raise DimensionError(f"expected input dim {self.input_dim}, got {x.shape[1]}")
        pre = x @ self.params[f"{self.name}/W"] + self.params[f"{self.name}/b"]
        out = self.activation.forward(pre)
        self._cache = (x, out)
        return out

    def backward(self, d_out: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Backward pass returning ``(d_input, gradients)``."""
        if self._cache is None:
            raise DimensionError("backward called before forward")
        x, out = self._cache
        d_out = np.atleast_2d(np.asarray(d_out, dtype=float))
        d_pre = d_out * self.activation.backward(out)
        grads = {
            f"{self.name}/W": x.T @ d_pre,
            f"{self.name}/b": d_pre.sum(axis=0),
        }
        d_input = d_pre @ self.params[f"{self.name}/W"].T
        return d_input, grads


class LstmLayer:
    """Single LSTM layer with full backpropagation through time.

    Gate equations for step ``t`` (``z = [i, f, g, o]`` concatenated):

    .. math::

        z_t = x_t W_x + h_{t-1} W_h + b \\\\
        i_t = \\sigma(z^i_t),\\; f_t = \\sigma(z^f_t),\\;
        g_t = \\tanh(z^g_t),\\; o_t = \\sigma(z^o_t) \\\\
        c_t = f_t c_{t-1} + i_t g_t \\\\
        h_t = o_t \\phi(c_t)

    where ``φ`` is the output activation — ``tanh`` in a textbook LSTM, but
    configurable because the paper specifies ReLU activations for both the
    encoder and decoder layers.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        output_activation: str | Activation = "tanh",
        name: str = "lstm",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.input_dim = ensure_int("input_dim", input_dim, minimum=1)
        self.hidden_dim = ensure_int("hidden_dim", hidden_dim, minimum=1)
        self.name = name
        self._sigmoid = Sigmoid()
        self._tanh = Tanh()
        self._out_act = get_activation(output_activation)
        rng = rng_from(seed)
        scale = 1.0 / np.sqrt(self.hidden_dim)
        self.params: dict[str, np.ndarray] = {
            f"{name}/Wx": rng.normal(0.0, scale, (self.input_dim, 4 * self.hidden_dim)),
            f"{name}/Wh": rng.normal(0.0, scale, (self.hidden_dim, 4 * self.hidden_dim)),
            f"{name}/b": np.zeros(4 * self.hidden_dim),
        }
        # Forget-gate bias initialised to 1 (standard trick for gradient flow).
        self.params[f"{name}/b"][self.hidden_dim : 2 * self.hidden_dim] = 1.0
        self._cache: dict[str, list[np.ndarray]] | None = None

    @property
    def n_parameters(self) -> int:
        """Total number of scalar weights in the layer."""
        return int(sum(p.size for p in self.params.values()))

    # ---------------------------------------------------------------- forward
    def forward(self, sequence: np.ndarray) -> np.ndarray:
        """Run the LSTM over ``(T, input_dim)`` and return ``(T, hidden_dim)``."""
        sequence = np.atleast_2d(np.asarray(sequence, dtype=float))
        if sequence.shape[1] != self.input_dim:
            raise DimensionError(f"expected input dim {self.input_dim}, got {sequence.shape[1]}")
        wx = self.params[f"{self.name}/Wx"]
        wh = self.params[f"{self.name}/Wh"]
        bias = self.params[f"{self.name}/b"]
        hidden = self.hidden_dim

        h = np.zeros(hidden)
        c = np.zeros(hidden)
        cache: dict[str, list[np.ndarray]] = {
            "x": [], "i": [], "f": [], "g": [], "o": [],
            "c": [], "c_prev": [], "h_prev": [], "c_act": [],
        }
        outputs = np.empty((sequence.shape[0], hidden))
        for t, x_t in enumerate(sequence):
            z = x_t @ wx + h @ wh + bias
            i = self._sigmoid.forward(z[:hidden])
            f = self._sigmoid.forward(z[hidden : 2 * hidden])
            g = self._tanh.forward(z[2 * hidden : 3 * hidden])
            o = self._sigmoid.forward(z[3 * hidden :])
            cache["c_prev"].append(c)
            cache["h_prev"].append(h)
            c = f * c + i * g
            c_act = self._out_act.forward(c)
            h = o * c_act
            outputs[t] = h
            cache["x"].append(x_t)
            cache["i"].append(i)
            cache["f"].append(f)
            cache["g"].append(g)
            cache["o"].append(o)
            cache["c"].append(c)
            cache["c_act"].append(c_act)
        self._cache = cache
        return outputs

    # --------------------------------------------------------------- backward
    def backward(self, d_outputs: np.ndarray) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """BPTT given gradients w.r.t. every hidden output.

        Returns ``(d_inputs, gradients)`` where ``d_inputs`` has the shape of
        the forward input sequence.
        """
        if self._cache is None:
            raise DimensionError("backward called before forward")
        cache = self._cache
        steps = len(cache["x"])
        d_outputs = np.atleast_2d(np.asarray(d_outputs, dtype=float))
        if d_outputs.shape != (steps, self.hidden_dim):
            raise DimensionError(
                f"d_outputs must have shape ({steps}, {self.hidden_dim}), got {d_outputs.shape}"
            )
        wx = self.params[f"{self.name}/Wx"]
        wh = self.params[f"{self.name}/Wh"]
        hidden = self.hidden_dim

        d_wx = np.zeros_like(wx)
        d_wh = np.zeros_like(wh)
        d_b = np.zeros(4 * hidden)
        d_inputs = np.zeros((steps, self.input_dim))
        d_h_next = np.zeros(hidden)
        d_c_next = np.zeros(hidden)

        for t in range(steps - 1, -1, -1):
            i, f, g, o = cache["i"][t], cache["f"][t], cache["g"][t], cache["o"][t]
            c, c_prev = cache["c"][t], cache["c_prev"][t]
            c_act, h_prev, x_t = cache["c_act"][t], cache["h_prev"][t], cache["x"][t]

            d_h = d_outputs[t] + d_h_next
            d_o = d_h * c_act
            d_c = d_h * o * self._out_act.backward(c_act) + d_c_next
            d_f = d_c * c_prev
            d_i = d_c * g
            d_g = d_c * i
            d_c_next = d_c * f

            d_z = np.concatenate(
                [
                    d_i * self._sigmoid.backward(i),
                    d_f * self._sigmoid.backward(f),
                    d_g * self._tanh.backward(g),
                    d_o * self._sigmoid.backward(o),
                ]
            )
            d_wx += np.outer(x_t, d_z)
            d_wh += np.outer(h_prev, d_z)
            d_b += d_z
            d_inputs[t] = d_z @ wx.T
            d_h_next = d_z @ wh.T

        grads = {
            f"{self.name}/Wx": d_wx,
            f"{self.name}/Wh": d_wh,
            f"{self.name}/b": d_b,
        }
        return d_inputs, grads
