"""A minimal, general-purpose discrete-event simulation engine.

The engine is a classic event-calendar simulator: callers schedule
:class:`Event` objects at absolute simulation times, and :class:`Simulator`
pops them in chronological order, advancing the clock and invoking each
event's callback.  Callbacks may schedule further events, which is how the
queueing models in :mod:`repro.des.queueing` express arrivals and departures.

The engine is intentionally small — it only needs to support the workloads in
this reproduction — but it is written as a reusable component: events carry
arbitrary payloads, ties are broken deterministically by insertion order, and
the run can be bounded by time, by event count, or stopped from inside a
callback.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry; ordering is (time, sequence number)."""

    time: float
    sequence: int
    event: "Event" = field(compare=False)


@dataclass
class Event:
    """A single simulation event.

    Attributes
    ----------
    name:
        Human-readable label (useful when tracing a simulation).
    callback:
        Callable invoked as ``callback(simulator, event)`` when the event
        fires.  May be ``None`` for pure marker events.
    payload:
        Arbitrary data attached to the event (e.g. a customer record).
    """

    name: str
    callback: Callable[["Simulator", "Event"], None] | None = None
    payload: Any = None
    time: float | None = None
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class EventScheduler:
    """Priority queue of future events keyed by simulation time."""

    def __init__(self) -> None:
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, event: Event) -> None:
        """Schedule ``event`` at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule an event at negative time {time}")
        event.time = time
        heapq.heappush(self._heap, _ScheduledEvent(time, next(self._counter), event))

    def pop(self) -> tuple[float, Event]:
        """Remove and return the chronologically next ``(time, event)`` pair."""
        if not self._heap:
            raise SimulationError("event calendar is empty")
        entry = heapq.heappop(self._heap)
        return entry.time, entry.event

    def peek_time(self) -> float | None:
        """Time of the next event, or ``None`` if the calendar is empty."""
        return self._heap[0].time if self._heap else None


class Simulator:
    """Event-calendar simulator with a monotonically advancing clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self.scheduler = EventScheduler()
        self.events_processed: int = 0
        self._stopped = False

    def schedule(self, delay: float, event: Event) -> Event:
        """Schedule ``event`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event with negative delay {delay}")
        self.scheduler.push(self.now + delay, event)
        return event

    def schedule_at(self, time: float, event: Event) -> Event:
        """Schedule ``event`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule an event in the past (now={self.now}, requested={time})"
            )
        self.scheduler.push(time, event)
        return event

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until exhaustion, ``until`` time, or ``max_events``.

        Returns the simulation time at which the run stopped.
        """
        self._stopped = False
        while len(self.scheduler) > 0 and not self._stopped:
            next_time = self.scheduler.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = until
                break
            time, event = self.scheduler.pop()
            if event.cancelled:
                continue
            if time < self.now - 1e-12:
                raise SimulationError("event calendar produced a non-monotonic time")
            self.now = max(self.now, time)
            if event.callback is not None:
                event.callback(self, event)
            self.events_processed += 1
            if max_events is not None and self.events_processed >= max_events:
                break
        if until is not None and len(self.scheduler) == 0 and not self._stopped:
            self.now = max(self.now, until)
        return self.now
