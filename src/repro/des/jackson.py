"""Open Jackson network model of the wired transport segment.

Paper Assumption 1 states that the transport-network delay ``Δ_T(c_i)`` is
upper-bounded by a constant ``D`` because every switch/router on the path has
a finite queue, so the path can be modelled as a Jackson network whose total
expected waiting plus processing time is finite.

This module provides:

* :class:`JacksonStation` — one M/M/1 station (service rate, visit ratio).
* :class:`JacksonNetwork` — an open network with a routing matrix; computes
  per-station arrival rates from the traffic equations, checks stability and
  evaluates the classic product-form metrics (mean queue length, mean delay).
* :class:`TransportNetworkModel` — the thin wrapper the teleoperation session
  uses: samples a bounded per-command transport delay and exposes the bound
  ``D`` used in Assumption 1.

The analytical results use the standard Jackson product-form formulas; the
sampling path draws per-hop exponential sojourns truncated at the configured
bound so the assumption ``Δ_T(c_i) <= D`` holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import ensure_positive, rng_from
from ..errors import ConfigurationError


@dataclass
class JacksonStation:
    """One M/M/1 station of the transport network.

    Attributes
    ----------
    name:
        Label used in reports (e.g. ``"edge-router"``).
    service_rate:
        Service rate μ in packets per millisecond.
    external_arrival_rate:
        Rate of traffic entering the network directly at this station
        (packets per millisecond).
    """

    name: str
    service_rate: float
    external_arrival_rate: float = 0.0

    def __post_init__(self) -> None:
        ensure_positive("service_rate", self.service_rate)
        if self.external_arrival_rate < 0:
            raise ConfigurationError("external_arrival_rate must be non-negative")


class JacksonNetwork:
    """Open Jackson network with product-form steady-state metrics."""

    def __init__(self, stations: list[JacksonStation], routing: np.ndarray | None = None) -> None:
        if not stations:
            raise ConfigurationError("a Jackson network needs at least one station")
        self.stations = list(stations)
        n = len(stations)
        if routing is None:
            # Default: a feed-forward chain ending at the sink (all traffic
            # leaves after the last station) — the shape of a transport path.
            routing = np.zeros((n, n))
            for i in range(n - 1):
                routing[i, i + 1] = 1.0
        routing = np.asarray(routing, dtype=float)
        if routing.shape != (n, n):
            raise ConfigurationError(f"routing matrix must be {n}x{n}, got {routing.shape}")
        if np.any(routing < 0) or np.any(routing.sum(axis=1) > 1.0 + 1e-9):
            raise ConfigurationError("routing rows must be sub-stochastic (sum <= 1, entries >= 0)")
        self.routing = routing
        self._arrival_rates = self._solve_traffic_equations()

    # ----------------------------------------------------------- analytics
    def _solve_traffic_equations(self) -> np.ndarray:
        """Solve ``λ = γ + R^T λ`` for the effective per-station arrival rates."""
        n = len(self.stations)
        gamma = np.array([s.external_arrival_rate for s in self.stations])
        lam = np.linalg.solve(np.eye(n) - self.routing.T, gamma)
        if np.any(lam < -1e-9):
            raise ConfigurationError("traffic equations produced a negative arrival rate")
        return np.clip(lam, 0.0, None)

    @property
    def arrival_rates(self) -> np.ndarray:
        """Effective arrival rate λ_i at each station."""
        return self._arrival_rates.copy()

    def utilisations(self) -> np.ndarray:
        """ρ_i = λ_i / μ_i for every station."""
        mus = np.array([s.service_rate for s in self.stations])
        return self._arrival_rates / mus

    def is_stable(self) -> bool:
        """True when every station has ρ_i < 1 (finite expected queues)."""
        return bool(np.all(self.utilisations() < 1.0))

    def mean_queue_lengths(self) -> np.ndarray:
        """Mean number of customers in each M/M/1 station: ρ / (1 - ρ)."""
        rho = self.utilisations()
        if np.any(rho >= 1.0):
            raise ConfigurationError("network is unstable; mean queue lengths diverge")
        return rho / (1.0 - rho)

    def mean_station_delays(self) -> np.ndarray:
        """Mean sojourn time at each station: 1 / (μ - λ)."""
        rho = self.utilisations()
        if np.any(rho >= 1.0):
            raise ConfigurationError("network is unstable; delays diverge")
        mus = np.array([s.service_rate for s in self.stations])
        return 1.0 / (mus - self._arrival_rates)

    def mean_path_delay(self) -> float:
        """Expected end-to-end delay of one packet traversing every station."""
        return float(self.mean_station_delays().sum())


class TransportNetworkModel:
    """Bounded transport-delay sampler implementing paper Assumption 1.

    Parameters
    ----------
    network:
        The underlying Jackson network.  If ``None`` a two-hop default
        (access switch + aggregation router) is built with the given
        ``command_rate``.
    bound_ms:
        The constant ``D``: per-command transport delay is truncated at this
        value.  If ``None``, the bound is set to five times the analytical
        mean path delay, which comfortably exceeds the expected waiting plus
        processing time at every queue.
    command_rate:
        Command arrival rate in commands per millisecond (1/Ω), used only
        when the default network is constructed.
    """

    def __init__(
        self,
        network: JacksonNetwork | None = None,
        bound_ms: float | None = None,
        command_rate: float = 1.0 / 20.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if network is None:
            network = JacksonNetwork(
                [
                    JacksonStation("l2-switch", service_rate=2.0, external_arrival_rate=command_rate),
                    JacksonStation("access-router", service_rate=2.0),
                ]
            )
        if not network.is_stable():
            raise ConfigurationError("transport network must be stable (ρ < 1 at every hop)")
        self.network = network
        mean_delay = network.mean_path_delay()
        self.bound_ms = float(bound_ms) if bound_ms is not None else 5.0 * mean_delay
        if self.bound_ms <= 0:
            raise ConfigurationError("transport delay bound D must be positive")
        self.rng = rng_from(seed)
        self._station_delays = network.mean_station_delays()

    def sample_delay(self) -> float:
        """Sample one per-command transport delay (ms), truncated at ``D``."""
        per_hop = self.rng.exponential(self._station_delays)
        return float(min(self.bound_ms, per_hop.sum()))

    def sample_delays(self, n: int) -> np.ndarray:
        """Vectorised version of :meth:`sample_delay`."""
        hops = self.rng.exponential(
            np.tile(self._station_delays, (n, 1))
        ).sum(axis=1)
        return np.minimum(self.bound_ms, hops)

    @property
    def bound(self) -> float:
        """The Assumption-1 constant ``D`` in milliseconds."""
        return self.bound_ms
