"""Finite-capacity single-server queue built on the DES engine.

The paper models the IEEE 802.11 access point as a **G/HEXP/1/Q** queue:
commands arrive every Ω ms (a general — here deterministic — arrival process),
are served by a single radio whose service time is hyper-exponential (one
phase per retransmission count), and wait in a finite buffer of length ``Q``.
Commands that find the buffer full are dropped, and commands whose service
phase corresponds to exceeding the retransmission limit are lost on the air.

:class:`FiniteQueueSimulator` implements exactly that, on top of the generic
:class:`repro.des.engine.Simulator`, and records a :class:`CustomerRecord` per
arrival so the wireless layer can translate queueing delays into per-command
network delays ``Δ_W(c_i)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from .._validation import ensure_int, ensure_probability, rng_from
from ..errors import ConfigurationError
from .distributions import Distribution
from .engine import Event, Simulator


@dataclass
class CustomerRecord:
    """Per-customer (per-command) record produced by the queue simulator.

    Attributes
    ----------
    index:
        Zero-based arrival index.
    arrival_time:
        Time at which the customer arrived to the queue.
    service_start:
        Time service began (``nan`` if the customer was dropped or lost).
    departure_time:
        Time the customer left the system (``nan`` if dropped/lost).
    dropped:
        True if the customer found the buffer full and was rejected.
    lost:
        True if the customer was admitted but lost in service (e.g. the frame
        exceeded the 802.11 retransmission limit).
    service_phase:
        Index of the hyper-exponential phase that served this customer, i.e.
        the number of retransmissions the frame required (-1 if not served).
    """

    index: int
    arrival_time: float
    service_start: float = float("nan")
    departure_time: float = float("nan")
    dropped: bool = False
    lost: bool = False
    service_phase: int = -1

    @property
    def waiting_time(self) -> float:
        """Time spent in the buffer before service started."""
        return self.service_start - self.arrival_time

    @property
    def sojourn_time(self) -> float:
        """Total time in system (waiting + service); ``nan`` if dropped/lost."""
        return self.departure_time - self.arrival_time

    @property
    def delivered(self) -> bool:
        """True when the customer completed service successfully."""
        return not self.dropped and not self.lost


@dataclass
class QueueMetrics:
    """Aggregate statistics over a finished queue simulation."""

    n_arrivals: int
    n_delivered: int
    n_dropped: int
    n_lost: int
    mean_waiting_time: float
    mean_sojourn_time: float
    p95_sojourn_time: float
    utilisation: float

    @property
    def loss_probability(self) -> float:
        """Fraction of arrivals that were dropped or lost."""
        if self.n_arrivals == 0:
            return 0.0
        return (self.n_dropped + self.n_lost) / self.n_arrivals


class FiniteQueueSimulator:
    """G/G/1/Q queue with optional in-service loss.

    Parameters
    ----------
    arrival:
        Inter-arrival time distribution (deterministic ``Ω`` for commands).
    service:
        Service time distribution.  If it exposes ``sample_with_phase`` (the
        hyper-exponential does), the phase index is recorded per customer.
    capacity:
        Buffer size ``Q`` *excluding* the customer in service.  ``None`` means
        an infinite buffer.
    loss_probability:
        Probability that an admitted customer is lost during service — the
        802.11 frame-loss probability ``a_{m+2}`` from the analytical model.
        Lost customers still occupy the server for their sampled service time
        (the radio spends the retransmission attempts before giving up).
    seed:
        Seed or generator for reproducible runs.
    """

    def __init__(
        self,
        arrival: Distribution,
        service: Distribution,
        capacity: int | None = None,
        loss_probability: float = 0.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if capacity is not None:
            capacity = ensure_int("capacity", capacity, minimum=0)
        self.arrival = arrival
        self.service = service
        self.capacity = capacity
        self.loss_probability = ensure_probability("loss_probability", loss_probability)
        self.rng = rng_from(seed)
        self.records: list[CustomerRecord] = []
        self._busy_time = 0.0

    # ------------------------------------------------------------------ run
    def run(self, n_customers: int) -> list[CustomerRecord]:
        """Simulate ``n_customers`` arrivals and return their records."""
        n_customers = ensure_int("n_customers", n_customers, minimum=1)
        simulator = Simulator()
        self.records = []
        self._busy_time = 0.0
        state = _QueueState()

        def schedule_arrival(sim: Simulator, index: int, when: float) -> None:
            record = CustomerRecord(index=index, arrival_time=when)
            sim.schedule_at(when, Event("arrival", callback=_on_arrival, payload=record))

        def _on_arrival(sim: Simulator, event: Event) -> None:
            record: CustomerRecord = event.payload
            self.records.append(record)
            buffer_full = self.capacity is not None and len(state.buffer) >= self.capacity
            if buffer_full and state.in_service is not None:
                record.dropped = True
            else:
                state.buffer.append(record)
                _try_start_service(sim)
            next_index = record.index + 1
            if next_index < n_customers:
                gap = float(self.arrival.sample(self.rng))
                schedule_arrival(sim, next_index, sim.now + gap)

        def _try_start_service(sim: Simulator) -> None:
            if state.in_service is not None or not state.buffer:
                return
            record = state.buffer.pop(0)
            state.in_service = record
            record.service_start = sim.now
            if hasattr(self.service, "sample_with_phase"):
                duration, phase = self.service.sample_with_phase(self.rng)
                record.service_phase = phase
            else:
                duration = float(self.service.sample(self.rng))
            if self.loss_probability > 0 and self.rng.random() < self.loss_probability:
                record.lost = True
            self._busy_time += duration
            sim.schedule(duration, Event("departure", callback=_on_departure, payload=record))

        def _on_departure(sim: Simulator, event: Event) -> None:
            record: CustomerRecord = event.payload
            if not record.lost:
                record.departure_time = sim.now
            state.in_service = None
            _try_start_service(sim)

        schedule_arrival(simulator, 0, 0.0)
        simulator.run()
        self._total_time = simulator.now
        return self.records

    # -------------------------------------------------------------- metrics
    def metrics(self) -> QueueMetrics:
        """Summarise the most recent :meth:`run` into :class:`QueueMetrics`."""
        if not self.records:
            raise ConfigurationError("run() must be called before metrics()")
        delivered = [r for r in self.records if r.delivered]
        dropped = [r for r in self.records if r.dropped]
        lost = [r for r in self.records if r.lost]
        waits = np.array([r.waiting_time for r in delivered]) if delivered else np.array([0.0])
        sojourns = np.array([r.sojourn_time for r in delivered]) if delivered else np.array([0.0])
        total_time = max(self._total_time, 1e-12)
        return QueueMetrics(
            n_arrivals=len(self.records),
            n_delivered=len(delivered),
            n_dropped=len(dropped),
            n_lost=len(lost),
            mean_waiting_time=float(waits.mean()),
            mean_sojourn_time=float(sojourns.mean()),
            p95_sojourn_time=float(np.quantile(sojourns, 0.95)),
            utilisation=float(min(1.0, self._busy_time / total_time)),
        )

    def sojourn_times(self) -> Iterator[float]:
        """Yield the sojourn time of every arrival; ``inf`` for dropped/lost.

        This is the mapping used by the wireless layer: a dropped or lost
        command has effectively infinite delay ``Δ_W(c_i) → ∞`` (paper
        Lemma 1 / Corollary 1).
        """
        for record in self.records:
            if record.delivered:
                yield record.sojourn_time
            else:
                yield float("inf")


@dataclass
class _QueueState:
    """Mutable queue state shared by the event callbacks."""

    buffer: list[CustomerRecord] = field(default_factory=list)
    in_service: CustomerRecord | None = None
