"""Discrete-event simulation substrate.

This package replaces the CIW discrete-event simulation library used by the
paper to evaluate the G/HEXP/1/Q access-point queue.  It provides:

* :mod:`repro.des.distributions` — random variate generators (deterministic,
  exponential, hyper-exponential, gamma, empirical) with a uniform interface.
* :mod:`repro.des.engine` — a minimal but general event-calendar simulator.
* :mod:`repro.des.queueing` — a finite-capacity single-server queue
  (G/G/1/Q — instantiated as G/HEXP/1/Q by the wireless package) that records
  per-customer waiting, service and loss.
* :mod:`repro.des.jackson` — an open Jackson network of M/M/1 stations used to
  model the wired transport segment (paper Assumption 1).
"""

from .distributions import (
    Deterministic,
    Distribution,
    EmpiricalDistribution,
    Exponential,
    GammaDistribution,
    HyperExponential,
    LogNormal,
    UniformDistribution,
)
from .engine import Event, EventScheduler, Simulator
from .jackson import JacksonNetwork, JacksonStation, TransportNetworkModel
from .queueing import CustomerRecord, FiniteQueueSimulator, QueueMetrics

__all__ = [
    "Deterministic",
    "Distribution",
    "EmpiricalDistribution",
    "Exponential",
    "GammaDistribution",
    "HyperExponential",
    "LogNormal",
    "UniformDistribution",
    "Event",
    "EventScheduler",
    "Simulator",
    "JacksonNetwork",
    "JacksonStation",
    "TransportNetworkModel",
    "CustomerRecord",
    "FiniteQueueSimulator",
    "QueueMetrics",
]
