"""Random variate distributions for the discrete-event simulator.

Every distribution exposes the same tiny interface:

* :meth:`Distribution.sample` draws one variate (optionally a vector of them),
* :meth:`Distribution.mean` returns the analytical mean where it exists.

The hyper-exponential distribution is the work-horse of the reproduction: the
paper models the IEEE 802.11 access-point service time as a hyper-exponential
whose phases correspond to the number of retransmissions a frame needed
(phase *j* occurs with probability ``a_j`` and has rate ``1 / E_j[delta_W]``).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from .._validation import ensure_positive, rng_from
from ..errors import ConfigurationError


class Distribution(abc.ABC):
    """Abstract base class for random variate generators."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        """Draw one variate (``size=None``) or an array of ``size`` variates."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytical mean of the distribution."""

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` variates as a 1-D array (convenience wrapper)."""
        return np.asarray(self.sample(rng, size=size), dtype=float).reshape(size)


class Deterministic(Distribution):
    """Degenerate distribution that always returns ``value``.

    Used for the periodic command arrival process (one command every Ω ms).
    """

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ConfigurationError(f"Deterministic value must be >= 0, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        if size is None:
            return self.value
        return np.full(size, self.value)

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deterministic({self.value})"


class Exponential(Distribution):
    """Exponential distribution parameterised by its *rate* (1 / mean)."""

    def __init__(self, rate: float) -> None:
        self.rate = ensure_positive("rate", rate)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        return rng.exponential(1.0 / self.rate, size=size)

    def mean(self) -> float:
        return 1.0 / self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Exponential(rate={self.rate})"


class UniformDistribution(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ConfigurationError(f"Uniform requires high >= low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


class GammaDistribution(Distribution):
    """Gamma distribution with ``shape`` and ``scale`` parameters.

    Included because related work ([36] in the paper) models 802.11 command
    delay as a Gamma distribution; the ablation benches compare it against the
    hyper-exponential derived from the interference-aware analytical model.
    """

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = ensure_positive("shape", shape)
        self.scale = ensure_positive("scale", scale)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        return rng.gamma(self.shape, self.scale, size=size)

    def mean(self) -> float:
        return self.shape * self.scale


class LogNormal(Distribution):
    """Log-normal distribution parameterised by the underlying normal's mu/sigma."""

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = ensure_positive("sigma", sigma)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    def mean(self) -> float:
        return float(np.exp(self.mu + 0.5 * self.sigma ** 2))


class HyperExponential(Distribution):
    """Mixture of exponentials: phase ``i`` w.p. ``probs[i]``, rate ``rates[i]``.

    The wireless model maps retransmission count *j* to a phase, so a sample
    from this distribution is the service time of one command at the 802.11
    access point conditioned on the command eventually being delivered.
    """

    def __init__(self, probs: Sequence[float], rates: Sequence[float]) -> None:
        probs_arr = np.asarray(probs, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        if probs_arr.ndim != 1 or rates_arr.ndim != 1 or probs_arr.size != rates_arr.size:
            raise ConfigurationError("probs and rates must be 1-D sequences of equal length")
        if probs_arr.size == 0:
            raise ConfigurationError("HyperExponential requires at least one phase")
        if np.any(probs_arr < 0) or not np.isclose(probs_arr.sum(), 1.0, atol=1e-6):
            raise ConfigurationError("phase probabilities must be non-negative and sum to 1")
        if np.any(rates_arr <= 0):
            raise ConfigurationError("phase rates must be strictly positive")
        self.probs = probs_arr / probs_arr.sum()
        self.rates = rates_arr

    @property
    def n_phases(self) -> int:
        """Number of mixture phases."""
        return self.probs.size

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        n = 1 if size is None else int(size)
        phases = rng.choice(self.n_phases, size=n, p=self.probs)
        values = rng.exponential(1.0 / self.rates[phases])
        if size is None:
            return float(values[0])
        return values

    def sample_with_phase(self, rng: np.random.Generator) -> tuple[float, int]:
        """Draw one variate and also return the phase index that produced it."""
        phase = int(rng.choice(self.n_phases, p=self.probs))
        value = float(rng.exponential(1.0 / self.rates[phase]))
        return value, phase

    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))

    def variance(self) -> float:
        """Analytical variance of the mixture."""
        second_moment = float(np.sum(self.probs * 2.0 / self.rates ** 2))
        return second_moment - self.mean() ** 2

    def squared_coefficient_of_variation(self) -> float:
        """``Var(X) / E[X]^2`` — always >= 1 for a hyper-exponential."""
        return self.variance() / self.mean() ** 2


class EmpiricalDistribution(Distribution):
    """Resampling distribution built from observed samples.

    Useful for replaying measured delay traces through the queueing model.
    """

    def __init__(self, samples: Sequence[float]) -> None:
        data = np.asarray(samples, dtype=float)
        if data.ndim != 1 or data.size == 0:
            raise ConfigurationError("EmpiricalDistribution requires a non-empty 1-D sample set")
        if np.any(data < 0):
            raise ConfigurationError("EmpiricalDistribution samples must be non-negative")
        self.samples = data

    def sample(self, rng: np.random.Generator, size: int | None = None) -> float | np.ndarray:
        return rng.choice(self.samples, size=size)

    def mean(self) -> float:
        return float(self.samples.mean())

    def quantile(self, q: float) -> float:
        """Empirical quantile of the stored samples."""
        return float(np.quantile(self.samples, q))


def build_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Public helper mirroring :func:`repro._validation.rng_from`."""
    return rng_from(seed)
