"""Public-API parity rule: ``__all__`` must resolve and be documented.

``API001`` checks every module that declares ``__all__``: each listed name
must actually be bound in the module (defined, imported or assigned — a
stale export is an ImportError waiting for the first ``from x import *`` or
doc build), and every listed name *defined in that module* must carry a
docstring (the public surface the docs site references stays documented).
Imported re-exports are checked for resolution only; their docstrings live
at the definition site.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .registry import FileContext, Rule, register


def _module_bindings(tree: ast.Module) -> dict[str, ast.AST | None]:
    """Top-level name bindings: name -> def/class node (``None`` if opaque)."""
    bindings: dict[str, ast.AST | None] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bindings[node.name] = node
        elif isinstance(node, ast.Import):
            for alias in node.names:
                bindings[(alias.asname or alias.name).split(".")[0]] = None
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                bindings[alias.asname or alias.name] = None
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = None
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bindings[node.target.id] = None
        elif isinstance(node, (ast.If, ast.Try)):
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bindings.setdefault(child.name, None)
                elif isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        bindings.setdefault((alias.asname or alias.name).split(".")[0], None)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            bindings.setdefault(target.id, None)
    return bindings


def _all_declaration(tree: ast.Module) -> tuple[ast.Assign, list[str]] | None:
    """The top-level ``__all__`` assignment and its literal entries, if any."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets):
                try:
                    entries = ast.literal_eval(node.value)
                except ValueError:
                    return None
                if isinstance(entries, (list, tuple)):
                    return node, [e for e in entries if isinstance(e, str)]
    return None


class PublicApiDocstringRule(Rule):
    """``API001``: names in ``__all__`` resolve and are documented."""

    rule_id = "API001"
    title = "__all__ entries must resolve to bound names and be documented where defined"
    fix_hint = "remove the stale export, or add a docstring to the definition"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag unresolved ``__all__`` entries and undocumented definitions."""
        declaration = _all_declaration(ctx.tree)
        if declaration is None:
            return
        node, entries = declaration
        bindings = _module_bindings(ctx.tree)
        for name in entries:
            if name.startswith("__") and name.endswith("__"):
                continue
            if name not in bindings:
                yield self.finding(ctx, node, f"__all__ exports {name!r}, which is not bound in the module")
                continue
            definition = bindings[name]
            if definition is not None and ast.get_docstring(definition) is None:
                yield self.finding(
                    ctx,
                    definition,
                    f"__all__ exports {name!r}, but its definition has no docstring",
                )


register(PublicApiDocstringRule())
