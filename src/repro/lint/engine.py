"""File collection, per-file rule dispatch and baseline application.

:func:`run_lint` is the one entry point everything else (the ``replint``
CLI, the CI job, the tests) goes through: it walks the requested paths,
parses every Python file once, dispatches the registered rules
(:func:`repro.lint.registry.all_rules`), applies the committed baseline and
returns a :class:`LintReport` whose findings are deterministic — sorted by
path, line and rule — so two runs over the same tree always render the same
output.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding
from .registry import FileContext, ProjectContext, Rule, all_rules

#: Directory names never scanned (test/fixture trees carry intentional
#: violations; generated/vendored trees are not library code).
EXCLUDED_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "build", "dist", "tests", "benchmarks", "examples", "fixtures"}
)

#: Rules whose findings the baseline may never suppress: the epoch guard
#: (an exception would be exactly the silent store poisoning it prevents)
#: and the baseline-integrity rules themselves.
NON_BASELINABLE = frozenset({"EPOCH001", "BASE001", "BASE002", "SYNTAX001"})

#: Default committed-file names, resolved against the project root.
DEFAULT_BASELINE_NAME = "replint-baseline.json"
DEFAULT_MANIFEST_NAME = "engine-epoch.json"


@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` run.

    ``findings`` are the *active* (unsuppressed) violations; ``suppressed``
    pairs each baselined finding with the entry that allowlisted it, so JSON
    output can show the justification next to what it waives.
    """

    findings: list[Finding]
    suppressed: list[tuple[Finding, BaselineEntry]]
    files_checked: int

    @property
    def ok(self) -> bool:
        """Whether the run is clean (no active findings)."""
        return not self.findings

    def to_dict(self) -> dict:
        """JSON-ready rendering of the whole report."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": [
                {"finding": finding.to_dict(), "justification": entry.justification}
                for finding, entry in self.suppressed
            ],
        }

    def render_text(self) -> str:
        """Human rendering: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.findings]
        status = "clean" if self.ok else f"{len(self.findings)} finding(s)"
        lines.append(
            f"replint: {status}, {len(self.suppressed)} suppressed by baseline, "
            f"{self.files_checked} file(s) checked"
        )
        return "\n".join(lines)


def iter_python_files(root: Path, paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (resolved against ``root``), sorted.

    Directories named in :data:`EXCLUDED_DIRS` are pruned at any depth.
    """
    collected = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_file() and path.suffix == ".py":
            collected.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                relative = candidate.relative_to(path)
                if any(part in EXCLUDED_DIRS for part in relative.parts[:-1]):
                    continue
                collected.add(candidate)
    return sorted(collected, key=lambda p: p.as_posix())


def _parse_file(root: Path, path: Path) -> FileContext | Finding:
    """Parse one file into a :class:`FileContext`, or a syntax finding."""
    rel_path = path.relative_to(root).as_posix() if path.is_relative_to(root) else path.as_posix()
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return Finding(
            rule_id="SYNTAX001",
            path=rel_path,
            line=int(exc.lineno or 0),
            message=f"file does not parse: {exc.msg}",
            fix_hint="fix the syntax error",
            line_content="",
        )
    return FileContext(rel_path=rel_path, source=source, tree=tree, lines=tuple(source.splitlines()))


def lint_source(source: str, rel_path: str, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run the file-scope rules over one in-memory source (test/fixture hook)."""
    tree = ast.parse(source)
    ctx = FileContext(rel_path=rel_path, source=source, tree=tree, lines=tuple(source.splitlines()))
    selected = tuple(rules) if rules is not None else all_rules()
    findings = []
    for rule in selected:
        if rule.scope == "file":
            findings.extend(rule.check_file(ctx))
    return sorted(findings, key=Finding.sort_key)


def run_lint(
    root: str | Path,
    paths: Sequence[str | Path] = ("src",),
    baseline: Baseline | None = None,
    manifest_path: str | Path | None = None,
    rules: Iterable[Rule] | None = None,
) -> LintReport:
    """Lint ``paths`` under ``root`` and apply the baseline.

    Parameters
    ----------
    root:
        Project root all relative paths and finding paths are anchored to.
    paths:
        Files or directories to scan (default: ``src``).
    baseline:
        Allowlist of intentional exceptions (default: empty).  Entries that
        match nothing, or carry no justification, are themselves findings.
    manifest_path:
        The engine-epoch manifest location (default:
        ``<root>/engine-epoch.json``).
    rules:
        Rule subset to run (default: every registered rule).
    """
    root = Path(root).resolve()
    baseline = baseline if baseline is not None else Baseline()
    manifest = Path(manifest_path) if manifest_path is not None else root / DEFAULT_MANIFEST_NAME
    selected = tuple(rules) if rules is not None else all_rules()

    raw_findings: list[Finding] = []
    contexts: list[FileContext] = []
    for path in iter_python_files(root, paths):
        parsed = _parse_file(root, path)
        if isinstance(parsed, Finding):
            raw_findings.append(parsed)
        else:
            contexts.append(parsed)

    for rule in selected:
        if rule.scope == "file":
            for ctx in contexts:
                raw_findings.extend(rule.check_file(ctx))
    project = ProjectContext(root=root, files=tuple(contexts), manifest_path=manifest)
    for rule in selected:
        if rule.scope == "project":
            raw_findings.extend(rule.check_project(project))

    active: list[Finding] = []
    suppressed: list[tuple[Finding, BaselineEntry]] = []
    used: set[int] = set()
    for finding in raw_findings:
        entry = None if finding.rule_id in NON_BASELINABLE else baseline.match(finding)
        if entry is None:
            active.append(finding)
        else:
            used.add(id(entry))
            suppressed.append((finding, entry))

    baseline_name = DEFAULT_BASELINE_NAME
    active.extend(baseline.integrity_findings(baseline_name))
    active.extend(baseline.stale_findings(used, baseline_name))

    active.sort(key=Finding.sort_key)
    suppressed.sort(key=lambda pair: pair[0].sort_key())
    return LintReport(findings=active, suppressed=suppressed, files_checked=len(contexts))
