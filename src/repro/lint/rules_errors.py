"""Error-taxonomy rules: anticipated failures raise ``repro.errors`` types.

The library's contract (:mod:`repro.errors`) is that every *anticipated*
failure mode — bad configuration, malformed records, invalid parameters —
raises a :class:`~repro.errors.ReproError` subclass, so callers can catch
the taxonomy without accidentally swallowing programming errors.  Two rules
police it:

* ``ERR001`` — ``raise ValueError/Exception/RuntimeError`` is banned in
  library code; anticipated failures get a typed subclass (quarantine paths
  that must stay builtin for corruption tolerance go in the baseline with a
  justification);
* ``ERR002`` — an ``except`` clause naming :class:`ReproError`, one of its
  subclasses, or blanket ``Exception`` may not swallow it with a bare
  ``pass`` body (silent loss of a typed failure).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .registry import FileContext, Rule, dotted_name, register

#: Builtin exception types anticipated failures must not raise directly.
_BANNED_RAISES = frozenset({"ValueError", "Exception", "RuntimeError"})

#: The repro.errors taxonomy (plus blanket catches) ERR002 protects.
_TAXONOMY = frozenset(
    {
        "ReproError",
        "ConfigurationError",
        "NotFittedError",
        "DimensionError",
        "SimulationError",
        "DatasetError",
        "ChannelError",
        "RobotError",
        "ValidationError",
        "StoreError",
        "Exception",
        "BaseException",
    }
)


def _exception_names(node: ast.AST | None) -> list[str]:
    """The exception type names an ``except`` clause catches (may be empty)."""
    if node is None:
        return ["<bare>"]
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for candidate in candidates:
        chain = dotted_name(candidate)
        if chain is not None:
            names.append(chain[-1])
    return names


class BareBuiltinRaiseRule(Rule):
    """``ERR001``: anticipated failures raise the typed taxonomy."""

    rule_id = "ERR001"
    title = "raise ValueError/Exception/RuntimeError is banned in library code"
    fix_hint = "raise the matching repro.errors subclass (ConfigurationError, StoreError, ...)"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ``raise <BannedBuiltin>(...)`` and bare ``raise <BannedBuiltin>``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc.func if isinstance(node.exc, ast.Call) else node.exc
            chain = dotted_name(target)
            if chain is not None and len(chain) == 1 and chain[0] in _BANNED_RAISES:
                yield self.finding(ctx, node, f"raises bare {chain[0]} for an anticipated failure")


class SwallowedReproErrorRule(Rule):
    """``ERR002``: no ``except ReproError: pass``."""

    rule_id = "ERR002"
    title = "except clauses may not swallow ReproError (or blanket Exception) with a bare pass"
    fix_hint = "handle the error, log-and-continue explicitly, or narrow the except clause"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag except handlers over the taxonomy whose body is just ``pass``."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if len(node.body) != 1 or not isinstance(node.body[0], ast.Pass):
                continue
            caught = _exception_names(node.type)
            swallowed = [name for name in caught if name in _TAXONOMY or name == "<bare>"]
            if swallowed:
                label = ", ".join(swallowed).replace("<bare>", "a bare except")
                yield self.finding(ctx, node, f"silently swallows {label} with a bare pass")


register(BareBuiltinRaiseRule())
register(SwallowedReproErrorRule())
