"""Machine-readable finding format shared by every ``replint`` rule.

A :class:`Finding` is the unit every layer of the checker trades in: rules
emit them, the baseline suppresses them, the CLI renders them as text or
JSON, and the tests assert on them.  The format is deliberately small and
stable — rule id, location, message, fix hint — so CI logs, editors and the
baseline file can all consume the same records.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    Attributes
    ----------
    rule_id:
        Stable identifier of the violated rule (e.g. ``"RNG003"``).
    path:
        Path of the offending file, POSIX-style and relative to the project
        root (so findings are machine-comparable across checkouts).
    line:
        1-based line number; ``0`` for project-scope findings that have no
        single source line (e.g. the engine-epoch manifest guard).
    message:
        One-sentence statement of the violation.
    fix_hint:
        One-sentence recipe for resolving it.
    line_content:
        The stripped source line the finding anchors to.  This — not the
        line *number* — is the baseline fingerprint, so allowlisted
        exceptions survive unrelated edits that shift lines.
    """

    rule_id: str
    path: str
    line: int
    message: str
    fix_hint: str
    line_content: str = ""

    def sort_key(self) -> tuple[str, int, str]:
        """Deterministic output ordering: by path, then line, then rule."""
        return (self.path, self.line, self.rule_id)

    def to_dict(self) -> dict:
        """JSON-ready rendering (all fields, stable key names)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "line_content": self.line_content,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line: RULE message (fix: hint)``."""
        location = f"{self.path}:{self.line}" if self.line else self.path
        return f"{location}: {self.rule_id} {self.message} (fix: {self.fix_hint})"
