"""The ``ENGINE_EPOCH`` manifest guard.

The content-addressed result store trusts :data:`~repro.scenarios.engine.
ENGINE_EPOCH` completely: two runs share a shard whenever spec hash *and*
epoch match.  The convention — "bump the epoch whenever a code change alters
results for an unchanged spec hash" — is the most load-bearing and least
testable rule in the repository, because forgetting it does not fail any
test; it silently serves stale physics out of warm stores.

This module turns the convention into a mechanical check.  A committed
manifest maps the current epoch to a **semantic hash** of every
engine-semantic module (the scenario engine, the fleet couplers, every
wireless sampler).  The semantic hash is the SHA-256 of the
docstring-stripped AST dump, so comment/docstring/formatting edits do not
churn the manifest while any executable change does.  ``EPOCH001`` fails
when a tracked file changed without the manifest being regenerated (and the
regeneration diff — with or without an epoch bump — is what the reviewer
sees), when the manifest's epoch disagrees with the code, or when a tracked
file is missing from the manifest.
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Iterator

from ..errors import ConfigurationError
from .findings import Finding
from .registry import ProjectContext, Rule, register

#: Engine-semantic modules tracked explicitly (wireless/*.py is added by glob).
_TRACKED_FIXED = (
    "src/repro/scenarios/engine.py",
    "src/repro/fleet/__init__.py",
    "src/repro/fleet/engine.py",
    "src/repro/fleet/hybrid.py",
    "src/repro/fleet/objective.py",
    "src/repro/fleet/plan.py",
    "src/repro/fleet/spec.py",
    "src/repro/service/__init__.py",
    "src/repro/service/engine.py",
    "src/repro/service/policies.py",
    "src/repro/service/spec.py",
)

#: Module whose ``ENGINE_EPOCH = <int>`` assignment defines the current epoch.
EPOCH_SOURCE = "src/repro/scenarios/engine.py"

#: Schema version of the manifest file.
MANIFEST_VERSION = 1


def tracked_files(root: Path) -> list[str]:
    """The engine-semantic modules the manifest must cover (sorted, relative).

    The fixed set (scenario engine, fleet couplers and spec, service
    admission engine and policies) plus every module of
    :mod:`repro.wireless` — all delay samplers and channel models live
    there, and a new sampler is engine-semantic by construction.
    """
    tracked = set(_TRACKED_FIXED)
    wireless = Path(root) / "src" / "repro" / "wireless"
    if wireless.is_dir():
        for path in wireless.glob("*.py"):
            tracked.add(path.relative_to(root).as_posix())
    return sorted(tracked)


def _strip_docstrings(tree: ast.Module) -> ast.Module:
    """Remove module/class/function docstrings in place (keep bodies valid)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                node.body = body[1:] or [ast.Pass()]
    return tree


def semantic_hash(source: str) -> str:
    """SHA-256 of the docstring-stripped AST dump of ``source``.

    Stable under comment, docstring and formatting edits; changed by any
    executable difference.  Raises :class:`SyntaxError` for unparseable
    source (the caller reports it as a finding).
    """
    tree = _strip_docstrings(ast.parse(source))
    dump = ast.dump(tree, annotate_fields=True, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()


def read_engine_epoch(root: Path) -> int | None:
    """The ``ENGINE_EPOCH`` integer parsed statically from the engine module."""
    path = Path(root) / EPOCH_SOURCE
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
            if "ENGINE_EPOCH" in targets and isinstance(node.value, ast.Constant):
                value = node.value.value
                if isinstance(value, int):
                    return value
    return None


def build_manifest(root: Path) -> dict:
    """Compute the manifest for the current tree and epoch."""
    root = Path(root)
    epoch = read_engine_epoch(root)
    if epoch is None:
        raise ConfigurationError(f"could not parse ENGINE_EPOCH from {EPOCH_SOURCE}")
    files = {}
    for rel_path in tracked_files(root):
        path = root / rel_path
        if not path.is_file():
            raise ConfigurationError(f"tracked engine module {rel_path} does not exist")
        files[rel_path] = semantic_hash(path.read_text(encoding="utf-8"))
    return {
        "version": MANIFEST_VERSION,
        "epoch": epoch,
        "note": (
            "Semantic hashes (docstring-stripped AST SHA-256) of every engine-semantic "
            "module at this ENGINE_EPOCH. Regenerate with "
            "'python scripts/replint.py --update-epoch-manifest' after deciding whether "
            "the change needs an epoch bump (see docs/linting.md)."
        ),
        "files": files,
    }


def load_manifest(path: Path) -> dict | None:
    """Read a manifest file; ``None`` when missing or unparseable."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(payload, dict) or not isinstance(payload.get("files"), dict):
        return None
    return payload


def write_manifest(path: Path, manifest: dict) -> None:
    """Write a manifest with stable formatting (sorted file entries)."""
    payload = dict(manifest)
    payload["files"] = {k: payload["files"][k] for k in sorted(payload["files"])}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


class EngineEpochRule(Rule):
    """``EPOCH001``: engine-semantic edits require epoch bump + manifest regen.

    Project-scope and **never baselinable**: an exception to the epoch guard
    is precisely the silent store poisoning the guard exists to prevent.
    """

    rule_id = "EPOCH001"
    title = "engine-semantic modules must match the committed ENGINE_EPOCH manifest"
    fix_hint = (
        "decide whether the change alters results for unchanged spec hashes; bump ENGINE_EPOCH "
        "if so, then run 'python scripts/replint.py --update-epoch-manifest' and commit the diff"
    )
    scope = "project"

    def _finding(self, path: str, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=0,
            message=message,
            fix_hint=self.fix_hint,
            line_content="",
        )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Verify manifest presence, epoch agreement and per-file hashes."""
        manifest_name = project.manifest_path.name
        manifest = load_manifest(project.manifest_path)
        if manifest is None:
            yield self._finding(manifest_name, "engine-epoch manifest is missing or unparseable")
            return
        code_epoch = read_engine_epoch(project.root)
        if code_epoch is None:
            yield self._finding(EPOCH_SOURCE, "could not parse ENGINE_EPOCH from the engine module")
            return
        if manifest.get("epoch") != code_epoch:
            yield self._finding(
                manifest_name,
                f"manifest epoch {manifest.get('epoch')!r} != ENGINE_EPOCH {code_epoch} in the code",
            )
        recorded: dict = manifest["files"]
        for rel_path in tracked_files(project.root):
            if rel_path not in recorded:
                yield self._finding(rel_path, "engine-semantic module is not covered by the manifest")
        for rel_path in sorted(recorded):
            path = project.root / rel_path
            if not path.is_file():
                yield self._finding(rel_path, "manifest tracks a file that no longer exists")
                continue
            try:
                current = semantic_hash(path.read_text(encoding="utf-8"))
            except SyntaxError:
                yield self._finding(rel_path, "tracked engine module does not parse")
                continue
            if current != recorded[rel_path]:
                yield self._finding(
                    rel_path,
                    "engine-semantic module changed without an ENGINE_EPOCH bump + manifest regeneration",
                )


register(EngineEpochRule())
